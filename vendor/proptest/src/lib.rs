//! An offline, dependency-free drop-in subset of the
//! [`proptest`](https://docs.rs/proptest) property-testing API.
//!
//! The container this repository builds in has no network access, so the
//! real crates.io `proptest` cannot be fetched. This vendored stand-in
//! implements exactly the surface the Synchroscalar test-suite uses:
//!
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, ...)`
//!   test bodies,
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`],
//! * range strategies (`1.0f64..560.0`, `1u32..64`, ...),
//! * [`prelude::any`], `prop::array::uniform16` and
//!   `prop::collection::vec`.
//!
//! Sampling is deterministic: each test derives its RNG seed from its own
//! function name, so failures reproduce run-to-run without a persisted
//! regression file. Shrinking is not implemented — on failure the macro
//! panics with the sampled inputs' debug representation instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Default number of accepted cases each `proptest!` test runs (see
/// [`cases`] for the runtime override).
pub const CASES: u32 = 64;
/// Upper bound on sampling attempts (accepted + rejected) per test at the
/// default case count.
pub const MAX_ATTEMPTS: u32 = CASES * 64;

/// Number of accepted cases each `proptest!` test runs: the
/// `PROPTEST_CASES` environment variable when set to a positive integer
/// (nightly CI bumps it for deeper sweeps), [`CASES`] otherwise.
pub fn cases() -> u32 {
    parse_cases(std::env::var("PROPTEST_CASES").ok().as_deref())
}

/// Attempt bound matching the configured [`cases`] count.
pub fn max_attempts() -> u32 {
    cases().saturating_mul(64)
}

fn parse_cases(var: Option<&str>) -> u32 {
    var.and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(CASES)
}

/// Error type a generated test-case closure returns.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure from anything printable.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic test RNGs.
pub mod test_runner {
    /// A small, fast, deterministic RNG (splitmix64).
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed the RNG from a test name (FNV-1a hash), so every test gets
        /// a distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type — the subset of proptest's
/// `Strategy` trait the suite needs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range strategy");
                let r = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing any value of `T` (proptest's `any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Create an [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]` from a per-element strategy.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            /// Strategy for an array of that many elements.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }
    uniform_fn!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Inclusive-exclusive bounds on a generated collection's length.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`] (proptest's `prop::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// What `use proptest::prelude::*;` brings into scope.
pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::array`, `prop::collection`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Reject the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples [`CASES`] accepted inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let cases = $crate::cases();
                let max_attempts = $crate::max_attempts();
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let case = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    match case {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} falsified: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::parse_cases;

    #[test]
    fn case_count_parses_positive_integers_and_rejects_the_rest() {
        assert_eq!(parse_cases(None), super::CASES);
        assert_eq!(parse_cases(Some("256")), 256);
        assert_eq!(parse_cases(Some(" 1024 ")), 1024);
        assert_eq!(parse_cases(Some("0")), super::CASES);
        assert_eq!(parse_cases(Some("-3")), super::CASES);
        assert_eq!(parse_cases(Some("many")), super::CASES);
    }
}
