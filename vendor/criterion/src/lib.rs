//! An offline, dependency-free drop-in subset of the
//! [`criterion`](https://docs.rs/criterion) benchmarking API.
//!
//! The build container has no network access, so the real crates.io
//! `criterion` cannot be fetched. This stand-in implements the surface the
//! Synchroscalar benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple calibrated timing loop instead of criterion's statistical
//! machinery. Results print as `name: median ns/iter` lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// The benchmark driver handed to each `fn(c: &mut Criterion)`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as a named benchmark and print its per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: None };
        f(&mut b);
        match b.ns_per_iter {
            Some(ns) => println!("{name:<32} {ns:>12.1} ns/iter"),
            None => println!("{name:<32} (no measurement)"),
        }
        self
    }
}

/// Measures one closure; handed to the `|b| ...` callback.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Time `routine`, first calibrating an iteration count that fills the
    /// measurement budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: grow the batch until it takes ≥ 1 ms.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 8;
        };
        // Measure: repeat the calibrated batch until the budget is spent,
        // keeping the fastest batch (least interference).
        let batch_budget = MEASURE_BUDGET.as_nanos() as f64;
        let rounds = (batch_budget / (per_iter_ns * batch as f64)).clamp(1.0, 64.0) as u32;
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = Some(best);
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
