//! Synchronous Dataflow (SDF) application modelling (Section 2.1).
//!
//! Synchroscalar applications fit the SDF model of computation: a graph of
//! actors connected by FIFO channels, where every actor produces and
//! consumes a fixed number of tokens per firing.  This restriction buys
//! static schedulability and decidability of bounded-memory and deadlock
//! questions, which is what lets the paper statically assign columns,
//! frequencies and communication schedules.
//!
//! The crate provides:
//!
//! * [`SdfGraph`] — graph construction and validation,
//! * [`SdfGraph::repetition_vector`] — the balance-equation solution
//!   (rate consistency check),
//! * [`SdfGraph::schedule`] — a periodic admissible sequential schedule
//!   (and with it a deadlock check),
//! * [`SdfGraph::buffer_bounds`] — bounded-memory requirements per edge,
//! * [`Mapping`] — assignment of actors to groups of tiles with the
//!   frequency each group must sustain for a target graph-iteration rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// Identifier of an actor within a graph (index order of insertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// One SDF actor: a computational block with a fixed per-firing cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Actor {
    /// Human-readable name ("FFT", "Viterbi ACS", ...).
    pub name: String,
    /// Tile-cycles required per firing when the actor runs on one tile.
    pub cycles_per_firing: u64,
    /// Maximum useful parallelism: the largest number of tiles across which
    /// one firing can be split (1 for inherently serial actors such as the
    /// stereo-vision SVD).
    pub max_parallel_tiles: u32,
}

/// One SDF edge: a FIFO channel with fixed production/consumption rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing actor.
    pub from: ActorId,
    /// Consuming actor.
    pub to: ActorId,
    /// Tokens produced per firing of `from`.
    pub produce: u64,
    /// Tokens consumed per firing of `to`.
    pub consume: u64,
    /// Initial tokens (delays) on the channel.
    pub initial_tokens: u64,
}

/// Errors raised by graph analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdfError {
    /// An edge referenced an actor that does not exist.
    UnknownActor {
        /// The dangling actor id.
        id: ActorId,
    },
    /// A rate or cycle count of zero was supplied where a positive value is
    /// required.
    ZeroRate {
        /// Description of the offending quantity.
        what: &'static str,
    },
    /// The balance equations have no non-trivial solution: the graph is
    /// rate-inconsistent and cannot run forever in bounded memory.
    Inconsistent {
        /// The edge at which the inconsistency was detected.
        edge: usize,
    },
    /// The graph is consistent but deadlocks: no periodic admissible
    /// schedule exists with the given initial tokens.
    Deadlock {
        /// Actors that still had firings outstanding when progress stopped.
        blocked: Vec<ActorId>,
    },
    /// The graph has no actors.
    Empty,
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::UnknownActor { id } => write!(f, "edge references unknown actor {}", id.0),
            SdfError::ZeroRate { what } => write!(f, "{what} must be positive"),
            SdfError::Inconsistent { edge } => {
                write!(f, "balance equations are inconsistent at edge {edge}")
            }
            SdfError::Deadlock { blocked } => {
                write!(f, "graph deadlocks with {} actors blocked", blocked.len())
            }
            SdfError::Empty => write!(f, "graph has no actors"),
        }
    }
}

impl Error for SdfError {}

/// A synchronous dataflow graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdfGraph {
    actors: Vec<Actor>,
    edges: Vec<Edge>,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

impl SdfGraph {
    /// An empty graph.
    pub fn new() -> Self {
        SdfGraph::default()
    }

    /// Add an actor and return its id.
    pub fn add_actor(
        &mut self,
        name: impl Into<String>,
        cycles_per_firing: u64,
        max_parallel_tiles: u32,
    ) -> ActorId {
        self.actors.push(Actor {
            name: name.into(),
            cycles_per_firing,
            max_parallel_tiles: max_parallel_tiles.max(1),
        });
        ActorId(self.actors.len() - 1)
    }

    /// Add an edge.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError`] if either endpoint is unknown or a rate is zero.
    pub fn add_edge(
        &mut self,
        from: ActorId,
        to: ActorId,
        produce: u64,
        consume: u64,
        initial_tokens: u64,
    ) -> Result<(), SdfError> {
        for id in [from, to] {
            if id.0 >= self.actors.len() {
                return Err(SdfError::UnknownActor { id });
            }
        }
        if produce == 0 {
            return Err(SdfError::ZeroRate {
                what: "produce rate",
            });
        }
        if consume == 0 {
            return Err(SdfError::ZeroRate {
                what: "consume rate",
            });
        }
        self.edges.push(Edge {
            from,
            to,
            produce,
            consume,
            initial_tokens,
        });
        Ok(())
    }

    /// The actors in insertion order.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// The edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Look up an actor.
    pub fn actor(&self, id: ActorId) -> Option<&Actor> {
        self.actors.get(id.0)
    }

    /// Solve the balance equations and return the repetition vector: the
    /// minimal positive number of firings of each actor per graph iteration.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::Empty`] for an empty graph or
    /// [`SdfError::Inconsistent`] when no solution exists.
    pub fn repetition_vector(&self) -> Result<Vec<u64>, SdfError> {
        if self.actors.is_empty() {
            return Err(SdfError::Empty);
        }
        // Represent each actor's rate as a rational num/den and propagate
        // along edges; disconnected components each get an independent
        // normalisation.
        let n = self.actors.len();
        let mut num = vec![0u64; n];
        let mut den = vec![1u64; n];

        for start in 0..n {
            if num[start] != 0 {
                continue;
            }
            num[start] = 1;
            den[start] = 1;
            // Breadth-first propagation across edges touching known actors.
            let mut changed = true;
            while changed {
                changed = false;
                for (ei, e) in self.edges.iter().enumerate() {
                    let (a, b) = (e.from.0, e.to.0);
                    let known_a = num[a] != 0;
                    let known_b = num[b] != 0;
                    if known_a && !known_b {
                        // r_b = r_a * produce / consume
                        let g = gcd(e.produce, e.consume);
                        num[b] = num[a] * (e.produce / g);
                        den[b] = den[a] * (e.consume / g);
                        let g2 = gcd(num[b], den[b]);
                        num[b] /= g2;
                        den[b] /= g2;
                        changed = true;
                    } else if known_b && !known_a {
                        let g = gcd(e.produce, e.consume);
                        num[a] = num[b] * (e.consume / g);
                        den[a] = den[b] * (e.produce / g);
                        let g2 = gcd(num[a], den[a]);
                        num[a] /= g2;
                        den[a] /= g2;
                        changed = true;
                    } else if known_a && known_b {
                        // Consistency check: r_a * produce == r_b * consume.
                        let lhs = num[a] as u128 * e.produce as u128 * den[b] as u128;
                        let rhs = num[b] as u128 * e.consume as u128 * den[a] as u128;
                        if lhs != rhs {
                            return Err(SdfError::Inconsistent { edge: ei });
                        }
                    }
                }
            }
        }

        // Scale to the smallest integer vector.
        let common_den = den.iter().fold(1u64, |acc, &d| lcm(acc, d));
        let mut reps: Vec<u64> = num
            .iter()
            .zip(&den)
            .map(|(&n_i, &d_i)| n_i * (common_den / d_i))
            .collect();
        let common_gcd = reps.iter().fold(0u64, |acc, &r| gcd(acc, r));
        if common_gcd > 1 {
            for r in &mut reps {
                *r /= common_gcd;
            }
        }
        Ok(reps)
    }

    /// Compute a periodic admissible sequential schedule (one graph
    /// iteration) by demand-driven simulation, which doubles as the
    /// deadlock check.
    ///
    /// # Errors
    ///
    /// Propagates rate-consistency errors and returns
    /// [`SdfError::Deadlock`] when no actor can fire but firings remain.
    pub fn schedule(&self) -> Result<Vec<ActorId>, SdfError> {
        let reps = self.repetition_vector()?;
        let mut remaining: Vec<u64> = reps.clone();
        let mut tokens: Vec<u64> = self.edges.iter().map(|e| e.initial_tokens).collect();
        let mut order = Vec::with_capacity(reps.iter().sum::<u64>() as usize);

        loop {
            if remaining.iter().all(|&r| r == 0) {
                return Ok(order);
            }
            let mut fired = false;
            for (i, _) in self.actors.iter().enumerate() {
                if remaining[i] == 0 {
                    continue;
                }
                let can_fire = self
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.to.0 == i)
                    .all(|(ei, e)| tokens[ei] >= e.consume);
                if can_fire {
                    for (ei, e) in self.edges.iter().enumerate() {
                        if e.to.0 == i {
                            tokens[ei] -= e.consume;
                        }
                        if e.from.0 == i {
                            tokens[ei] += e.produce;
                        }
                    }
                    remaining[i] -= 1;
                    order.push(ActorId(i));
                    fired = true;
                }
            }
            if !fired {
                let blocked = remaining
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r > 0)
                    .map(|(i, _)| ActorId(i))
                    .collect();
                return Err(SdfError::Deadlock { blocked });
            }
        }
    }

    /// Maximum tokens simultaneously buffered on each edge during the
    /// schedule returned by [`SdfGraph::schedule`] — the bounded-memory
    /// guarantee the SDF restriction provides.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn buffer_bounds(&self) -> Result<Vec<u64>, SdfError> {
        let order = self.schedule()?;
        let mut tokens: Vec<u64> = self.edges.iter().map(|e| e.initial_tokens).collect();
        let mut bounds = tokens.clone();
        for id in order {
            for (ei, e) in self.edges.iter().enumerate() {
                if e.to == id {
                    tokens[ei] -= e.consume;
                }
            }
            for (ei, e) in self.edges.iter().enumerate() {
                if e.from == id {
                    tokens[ei] += e.produce;
                    bounds[ei] = bounds[ei].max(tokens[ei]);
                }
            }
        }
        Ok(bounds)
    }

    /// Tokens that flow across each edge during one graph iteration:
    /// `reps[from] × produce`, which by the balance equations equals
    /// `reps[to] × consume`.  This is the analytic communication-traffic
    /// model a mapped chip's measured bus transfers are validated against.
    ///
    /// # Errors
    ///
    /// Propagates rate-consistency errors.
    pub fn tokens_per_iteration(&self) -> Result<Vec<u64>, SdfError> {
        let reps = self.repetition_vector()?;
        Ok(self
            .edges
            .iter()
            .map(|e| reps[e.from.0] * e.produce)
            .collect())
    }

    /// Total tile-cycles consumed by one graph iteration if every actor ran
    /// on a single tile.
    ///
    /// # Errors
    ///
    /// Propagates rate-consistency errors.
    pub fn cycles_per_iteration(&self) -> Result<u64, SdfError> {
        let reps = self.repetition_vector()?;
        Ok(self
            .actors
            .iter()
            .zip(&reps)
            .map(|(a, &r)| a.cycles_per_firing * r)
            .sum())
    }
}

/// One actor's placement in a [`Mapping`]: how many tiles it gets and which
/// columns host it.
///
/// The fields hold the values exactly as requested via [`Mapping::place`];
/// nothing is clamped at insertion time, so [`Mapping::validate`] can
/// report nonsensical placements instead of silently reshaping them.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The actor being placed.
    pub actor: ActorId,
    /// Number of tiles assigned.
    pub tiles: u32,
    /// Parallel efficiency of splitting the actor across those tiles
    /// (1.0 = perfect speedup; lower values model the communication and
    /// load-imbalance losses the paper's Figure 7 explores).
    pub efficiency: f64,
    /// Which chip of a board hosts the placement.  Single-chip mappings
    /// (built via [`Mapping::place`]) always use chip 0; board mappings
    /// assign chips via [`Mapping::place_on_chip`].
    pub chip: usize,
}

/// A typed description of lost or degraded hardware: failed tiles within a
/// column, whole failed columns, failed or width-degraded bridge lanes,
/// and bus splits lost per chip.
///
/// Columns are addressed by `(chip, column)` where `column` is the
/// placement's position among its chip's placements (the order the mapper
/// instantiates columns in); bridge lanes by their `(from_chip, to_chip)`
/// direction.  The spec is pure data — [`Mapping::validate_with_faults`]
/// checks a mapping against it, and the compiler threads it through
/// routing and execution so nothing is ever scheduled onto dead hardware.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSpec {
    failed_columns: Vec<(usize, usize)>,
    failed_tiles: Vec<(usize, usize, usize)>,
    failed_lanes: Vec<(usize, usize)>,
    degraded_lanes: Vec<(usize, usize, u32)>,
    lost_splits: Vec<(usize, u32)>,
}

impl FaultSpec {
    /// A spec with no faults (equivalent to `FaultSpec::default()`).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Does the spec describe any fault at all?
    pub fn is_empty(&self) -> bool {
        self.failed_columns.is_empty()
            && self.failed_tiles.is_empty()
            && self.failed_lanes.is_empty()
            && self.degraded_lanes.is_empty()
            && self.lost_splits.is_empty()
    }

    /// Mark column `column` of chip `chip` as failed.
    pub fn fail_column(&mut self, chip: usize, column: usize) -> &mut Self {
        self.failed_columns.push((chip, column));
        self
    }

    /// Mark tile `tile` within column `column` of chip `chip` as failed.
    pub fn fail_tile(&mut self, chip: usize, column: usize, tile: usize) -> &mut Self {
        self.failed_tiles.push((chip, column, tile));
        self
    }

    /// Mark the bridge lane direction `from_chip → to_chip` as failed.
    pub fn fail_lane(&mut self, from_chip: usize, to_chip: usize) -> &mut Self {
        self.failed_lanes.push((from_chip, to_chip));
        self
    }

    /// Degrade the bridge lane direction `from_chip → to_chip` to at most
    /// `width_words` words per bridge cycle (0 is equivalent to
    /// [`FaultSpec::fail_lane`]).
    pub fn degrade_lane(
        &mut self,
        from_chip: usize,
        to_chip: usize,
        width_words: u32,
    ) -> &mut Self {
        self.degraded_lanes.push((from_chip, to_chip, width_words));
        self
    }

    /// Mark `splits` of chip `chip`'s horizontal-bus splits as failed.
    pub fn lose_splits(&mut self, chip: usize, splits: u32) -> &mut Self {
        self.lost_splits.push((chip, splits));
        self
    }

    /// Is column `column` of chip `chip` failed?
    pub fn column_failed(&self, chip: usize, column: usize) -> bool {
        self.failed_columns.contains(&(chip, column))
    }

    /// Is tile `tile` within column `column` of chip `chip` failed?
    pub fn tile_failed(&self, chip: usize, column: usize, tile: usize) -> bool {
        self.failed_tiles.contains(&(chip, column, tile))
    }

    /// Is the lane direction `from_chip → to_chip` failed (outright, or
    /// degraded to zero width)?
    pub fn lane_failed(&self, from_chip: usize, to_chip: usize) -> bool {
        self.failed_lanes.contains(&(from_chip, to_chip))
            || self
                .degraded_lanes
                .iter()
                .any(|&(f, t, w)| (f, t) == (from_chip, to_chip) && w == 0)
    }

    /// The width cap (words per bridge cycle) faults impose on the lane
    /// direction `from_chip → to_chip`, if any.
    pub fn lane_width_limit(&self, from_chip: usize, to_chip: usize) -> Option<u32> {
        self.degraded_lanes
            .iter()
            .filter(|&&(f, t, _)| (f, t) == (from_chip, to_chip))
            .map(|&(_, _, w)| w)
            .min()
    }

    /// Total horizontal-bus splits chip `chip` has lost.
    pub fn splits_lost(&self, chip: usize) -> u32 {
        self.lost_splits
            .iter()
            .filter(|&&(c, _)| c == chip)
            .map(|&(_, s)| s)
            .fold(0, u32::saturating_add)
    }

    /// The failed `(chip, column)` pairs, in insertion order.
    pub fn failed_columns(&self) -> &[(usize, usize)] {
        &self.failed_columns
    }

    /// The failed `(from_chip, to_chip)` lane directions, in insertion
    /// order (outright failures only; degraded-to-zero lanes are reported
    /// through [`FaultSpec::lane_failed`]).
    pub fn failed_lanes(&self) -> &[(usize, usize)] {
        &self.failed_lanes
    }
}

/// One problem found by [`Mapping::validate`]: a placement that the lenient
/// accessors ([`Mapping::requirements`]) would otherwise silently reshape,
/// or (via [`Mapping::validate_with_faults`]) a placement landing on
/// hardware a [`FaultSpec`] marks as dead.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingViolation {
    /// A placement references an actor the graph does not contain.
    UnknownActor {
        /// The dangling actor id.
        actor: ActorId,
        /// The chip the placement targets.
        chip: usize,
        /// The column the placement occupies on that chip.
        column: usize,
    },
    /// A placement assigns zero tiles.
    ZeroTiles {
        /// The actor placed on zero tiles.
        actor: ActorId,
        /// The chip the placement targets.
        chip: usize,
        /// The column the placement occupies on that chip.
        column: usize,
    },
    /// A placement assigns more tiles than the actor can use in parallel.
    OverParallel {
        /// The over-parallelised actor.
        actor: ActorId,
        /// The chip the placement targets.
        chip: usize,
        /// The column the placement occupies on that chip.
        column: usize,
        /// Tiles the placement requested.
        tiles: u32,
        /// The actor's parallelism limit.
        max_parallel_tiles: u32,
    },
    /// A placement's parallel efficiency lies outside `(0.0, 1.0]`.
    EfficiencyOutOfRange {
        /// The actor with the bad efficiency.
        actor: ActorId,
        /// The chip the placement targets.
        chip: usize,
        /// The column the placement occupies on that chip.
        column: usize,
        /// The requested efficiency.
        efficiency: f64,
    },
    /// A placement targets a chip the board does not have (reported by
    /// [`Mapping::validate_on_board`]).
    ChipOutOfRange {
        /// The actor placed on the missing chip.
        actor: ActorId,
        /// The column the placement occupies on that chip.
        column: usize,
        /// The chip the placement requested.
        chip: usize,
        /// Number of chips on the board.
        chips: usize,
    },
    /// A placement lands on a column a [`FaultSpec`] marks as failed.
    FailedColumn {
        /// The actor placed on the dead column.
        actor: ActorId,
        /// The chip hosting the failed column.
        chip: usize,
        /// The failed column.
        column: usize,
    },
    /// A placement needs a tile a [`FaultSpec`] marks as failed.
    FailedTile {
        /// The actor whose placement covers the dead tile.
        actor: ActorId,
        /// The chip hosting the column.
        chip: usize,
        /// The column containing the failed tile.
        column: usize,
        /// The failed tile's index within the column.
        tile: usize,
        /// Tiles the placement requested (the failed tile lies below it).
        tiles: u32,
    },
    /// A chip has lost every horizontal-bus split (reported by the
    /// compiler, which knows the configured split count).
    BusSplitsExhausted {
        /// The chip with no surviving splits.
        chip: usize,
        /// Splits the chip was configured with.
        splits: u32,
        /// Splits the faults removed.
        lost: u32,
    },
    /// Every bridge lane in a direction cross-chip traffic needs is failed
    /// (reported by the compiler, which knows the board topology).
    BridgeDown {
        /// The producing chip.
        from_chip: usize,
        /// The consuming chip.
        to_chip: usize,
    },
}

impl MappingViolation {
    /// Is this violation caused by a [`FaultSpec`] (dead hardware) rather
    /// than by the mapping itself being malformed?  Fault violations are
    /// retryable by remapping around the lost resource; the rest are hard
    /// errors in the mapping.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            MappingViolation::FailedColumn { .. }
                | MappingViolation::FailedTile { .. }
                | MappingViolation::BusSplitsExhausted { .. }
                | MappingViolation::BridgeDown { .. }
        )
    }
}

impl fmt::Display for MappingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingViolation::UnknownActor {
                actor,
                chip,
                column,
            } => write!(
                f,
                "placement on chip {chip} column {column} references unknown actor {}",
                actor.0
            ),
            MappingViolation::ZeroTiles {
                actor,
                chip,
                column,
            } => write!(
                f,
                "actor {} on chip {chip} column {column} is placed on zero tiles",
                actor.0
            ),
            MappingViolation::OverParallel {
                actor,
                chip,
                column,
                tiles,
                max_parallel_tiles,
            } => write!(
                f,
                "actor {} on chip {chip} column {column} is placed on {tiles} tiles \
                 but can only use {max_parallel_tiles}",
                actor.0
            ),
            MappingViolation::EfficiencyOutOfRange {
                actor,
                chip,
                column,
                efficiency,
            } => write!(
                f,
                "actor {} on chip {chip} column {column} has parallel efficiency \
                 {efficiency} outside (0, 1]",
                actor.0
            ),
            MappingViolation::ChipOutOfRange {
                actor,
                column,
                chip,
                chips,
            } => write!(
                f,
                "actor {} (column {column}) is placed on chip {chip} but the board \
                 has {chips} chip(s)",
                actor.0
            ),
            MappingViolation::FailedColumn {
                actor,
                chip,
                column,
            } => write!(
                f,
                "actor {} is placed on failed column {column} of chip {chip}",
                actor.0
            ),
            MappingViolation::FailedTile {
                actor,
                chip,
                column,
                tile,
                tiles,
            } => write!(
                f,
                "actor {} needs {tiles} tiles on chip {chip} column {column} \
                 but tile {tile} is failed",
                actor.0
            ),
            MappingViolation::BusSplitsExhausted { chip, splits, lost } => write!(
                f,
                "chip {chip} lost {lost} of its {splits} bus split(s), leaving none"
            ),
            MappingViolation::BridgeDown { from_chip, to_chip } => write!(
                f,
                "every bridge lane from chip {from_chip} to chip {to_chip} is failed"
            ),
        }
    }
}

/// An assignment of the graph's actors to tile groups.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mapping {
    placements: Vec<Placement>,
}

/// The computed operating requirement of one placed actor.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRequirement {
    /// The actor.
    pub actor: ActorId,
    /// Tiles assigned.
    pub tiles: u32,
    /// Required per-tile frequency in MHz to sustain the target iteration
    /// rate.
    pub frequency_mhz: f64,
}

impl Mapping {
    /// An empty mapping.
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Place `actor` on `tiles` tiles with the given parallel efficiency.
    ///
    /// The values are recorded verbatim; use [`Mapping::validate`] to check
    /// them against a graph.  ([`Mapping::requirements`] clamps nonsensical
    /// values while computing, for backwards compatibility, but compilers
    /// should reject them loudly instead.)
    pub fn place(&mut self, actor: ActorId, tiles: u32, efficiency: f64) -> &mut Self {
        self.place_on_chip(0, actor, tiles, efficiency)
    }

    /// Place `actor` on `tiles` tiles of board chip `chip`.
    ///
    /// Identical to [`Mapping::place`] except that the placement is
    /// chip-qualified; use [`Mapping::validate_on_board`] to check the chip
    /// index against a board size.
    pub fn place_on_chip(
        &mut self,
        chip: usize,
        actor: ActorId,
        tiles: u32,
        efficiency: f64,
    ) -> &mut Self {
        self.placements.push(Placement {
            actor,
            tiles,
            efficiency,
            chip,
        });
        self
    }

    /// The placements made so far.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of chips the mapping spans: one more than the highest chip
    /// index referenced by any placement (at least 1, so an empty or purely
    /// single-chip mapping reports a board of one).
    pub fn chips(&self) -> usize {
        self.placements
            .iter()
            .map(|p| p.chip + 1)
            .max()
            .unwrap_or(1)
    }

    /// The `(chip, column)` seat each placement occupies, aligned with
    /// [`Mapping::placements`]: a placement's column index is its position
    /// among its chip's placements, in insertion order — exactly the order
    /// the compiler instantiates columns in, and the coordinate system
    /// [`FaultSpec`] addresses columns by.
    pub fn seats(&self) -> Vec<(usize, usize)> {
        let chips = self.chips();
        let mut next_column = vec![0usize; chips];
        self.placements
            .iter()
            .map(|p| {
                let column = next_column[p.chip];
                next_column[p.chip] += 1;
                (p.chip, column)
            })
            .collect()
    }

    /// Check every placement against `graph` and report the problems the
    /// lenient computations would otherwise paper over: unknown actors,
    /// zero-tile placements, placements beyond an actor's parallelism
    /// limit, and efficiencies outside `(0.0, 1.0]`.
    ///
    /// An empty vector means the mapping is well-formed.
    pub fn validate(&self, graph: &SdfGraph) -> Vec<MappingViolation> {
        let mut violations = Vec::new();
        for (p, (chip, column)) in self.placements.iter().zip(self.seats()) {
            let Some(actor) = graph.actor(p.actor) else {
                violations.push(MappingViolation::UnknownActor {
                    actor: p.actor,
                    chip,
                    column,
                });
                continue;
            };
            if p.tiles == 0 {
                violations.push(MappingViolation::ZeroTiles {
                    actor: p.actor,
                    chip,
                    column,
                });
            } else if p.tiles > actor.max_parallel_tiles {
                violations.push(MappingViolation::OverParallel {
                    actor: p.actor,
                    chip,
                    column,
                    tiles: p.tiles,
                    max_parallel_tiles: actor.max_parallel_tiles,
                });
            }
            if !(p.efficiency > 0.0 && p.efficiency <= 1.0) {
                violations.push(MappingViolation::EfficiencyOutOfRange {
                    actor: p.actor,
                    chip,
                    column,
                    efficiency: p.efficiency,
                });
            }
        }
        violations
    }

    /// [`Mapping::validate`] plus the board dimension: every placement's
    /// chip index must fall inside a board of `chips` chips.
    ///
    /// An empty vector means the mapping is well-formed for that board.
    pub fn validate_on_board(&self, graph: &SdfGraph, chips: usize) -> Vec<MappingViolation> {
        let mut violations = self.validate(graph);
        for (p, (chip, column)) in self.placements.iter().zip(self.seats()) {
            if p.chip >= chips {
                violations.push(MappingViolation::ChipOutOfRange {
                    actor: p.actor,
                    column,
                    chip,
                    chips,
                });
            }
        }
        violations
    }

    /// Check every placement against the hardware `faults` declares lost:
    /// placements on failed columns and placements whose tile range covers
    /// a failed tile.  Returns only the fault-class violations; run
    /// [`Mapping::validate`] (or [`Mapping::validate_on_board`]) alongside
    /// for the mapping-shape checks.
    ///
    /// An empty vector means no placement touches dead hardware.
    pub fn validate_with_faults(
        &self,
        graph: &SdfGraph,
        faults: &FaultSpec,
    ) -> Vec<MappingViolation> {
        let _ = graph;
        let mut violations = Vec::new();
        for (p, (chip, column)) in self.placements.iter().zip(self.seats()) {
            if faults.column_failed(chip, column) {
                violations.push(MappingViolation::FailedColumn {
                    actor: p.actor,
                    chip,
                    column,
                });
                continue;
            }
            for tile in 0..p.tiles as usize {
                if faults.tile_failed(chip, column, tile) {
                    violations.push(MappingViolation::FailedTile {
                        actor: p.actor,
                        chip,
                        column,
                        tile,
                        tiles: p.tiles,
                    });
                }
            }
        }
        violations
    }

    /// Total tiles used by the mapping.
    pub fn total_tiles(&self) -> u32 {
        self.placements.iter().map(|p| p.tiles).sum()
    }

    /// Compute, for every placed actor, the per-tile frequency needed to
    /// sustain `iterations_per_second` graph iterations per second.
    ///
    /// Nonsensical placements are clamped while computing (zero tiles to
    /// one, tiles above the parallelism limit down to it, efficiency into
    /// `[0.01, 1.0]`); run [`Mapping::validate`] first to detect and reject
    /// them instead.
    ///
    /// # Errors
    ///
    /// Propagates rate-consistency errors; placements of unknown actors are
    /// reported as [`SdfError::UnknownActor`].
    pub fn requirements(
        &self,
        graph: &SdfGraph,
        iterations_per_second: f64,
    ) -> Result<Vec<PlacementRequirement>, SdfError> {
        let reps = graph.repetition_vector()?;
        let mut out = Vec::with_capacity(self.placements.len());
        for p in &self.placements {
            let actor = graph
                .actor(p.actor)
                .ok_or(SdfError::UnknownActor { id: p.actor })?;
            let rep = reps[p.actor.0] as f64;
            let cycles_per_iteration = actor.cycles_per_firing as f64 * rep;
            let effective_tiles = f64::from(p.tiles.clamp(1, actor.max_parallel_tiles))
                * p.efficiency.clamp(0.01, 1.0);
            let cycles_per_tile = cycles_per_iteration / effective_tiles;
            let hz = cycles_per_tile * iterations_per_second;
            out.push(PlacementRequirement {
                actor: p.actor,
                tiles: p.tiles,
                frequency_mhz: hz / 1e6,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DDC front end: mixer → CIC integrator → CIC comb with a 1:1 and
    /// a 4:1 rate change.
    fn ddc_like() -> (SdfGraph, ActorId, ActorId, ActorId) {
        let mut g = SdfGraph::new();
        let mixer = g.add_actor("mixer", 10, 16);
        let integ = g.add_actor("integrator", 16, 16);
        let comb = g.add_actor("comb", 8, 4);
        g.add_edge(mixer, integ, 1, 1, 0).unwrap();
        g.add_edge(integ, comb, 1, 4, 0).unwrap();
        (g, mixer, integ, comb)
    }

    #[test]
    fn repetition_vector_solves_balance_equations() {
        let (g, ..) = ddc_like();
        // mixer and integrator fire 4× per comb firing.
        assert_eq!(g.repetition_vector().unwrap(), vec![4, 4, 1]);
    }

    #[test]
    fn repetition_vector_is_minimal() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1, 1);
        let b = g.add_actor("b", 1, 1);
        g.add_edge(a, b, 6, 4, 0).unwrap();
        // 6p = 4c → minimal (2, 3).
        assert_eq!(g.repetition_vector().unwrap(), vec![2, 3]);
    }

    #[test]
    fn inconsistent_graph_is_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1, 1);
        let b = g.add_actor("b", 1, 1);
        g.add_edge(a, b, 1, 1, 0).unwrap();
        g.add_edge(a, b, 2, 1, 0).unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(SdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = SdfGraph::new();
        assert!(matches!(g.repetition_vector(), Err(SdfError::Empty)));
    }

    #[test]
    fn schedule_is_admissible_and_complete() {
        let (g, mixer, integ, comb) = ddc_like();
        let order = g.schedule().unwrap();
        assert_eq!(order.len(), 9, "4 + 4 + 1 firings");
        assert_eq!(order.iter().filter(|&&a| a == mixer).count(), 4);
        assert_eq!(order.iter().filter(|&&a| a == integ).count(), 4);
        assert_eq!(order.iter().filter(|&&a| a == comb).count(), 1);
        // The comb can only fire after the integrator has fired four times.
        let comb_pos = order.iter().position(|&a| a == comb).unwrap();
        let integ_count_before = order[..comb_pos].iter().filter(|&&a| a == integ).count();
        assert_eq!(integ_count_before, 4);
    }

    #[test]
    fn cyclic_graph_without_delays_deadlocks() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1, 1);
        let b = g.add_actor("b", 1, 1);
        g.add_edge(a, b, 1, 1, 0).unwrap();
        g.add_edge(b, a, 1, 1, 0).unwrap();
        assert!(matches!(g.schedule(), Err(SdfError::Deadlock { .. })));
    }

    #[test]
    fn cyclic_graph_with_initial_tokens_schedules() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1, 1);
        let b = g.add_actor("b", 1, 1);
        g.add_edge(a, b, 1, 1, 0).unwrap();
        g.add_edge(b, a, 1, 1, 1).unwrap();
        let order = g.schedule().unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn buffer_bounds_are_finite_and_cover_rate_changes() {
        let (g, ..) = ddc_like();
        let bounds = g.buffer_bounds().unwrap();
        assert_eq!(bounds.len(), 2);
        // The integrator→comb edge must buffer the 4 tokens one comb firing
        // consumes.
        assert_eq!(bounds[1], 4);
    }

    #[test]
    fn tokens_per_iteration_balance_both_directions() {
        let (g, ..) = ddc_like();
        let tokens = g.tokens_per_iteration().unwrap();
        let reps = g.repetition_vector().unwrap();
        assert_eq!(tokens, vec![4, 4]);
        for (t, e) in tokens.iter().zip(g.edges()) {
            assert_eq!(*t, reps[e.from.0] * e.produce);
            assert_eq!(*t, reps[e.to.0] * e.consume);
        }
    }

    #[test]
    fn zero_rates_and_unknown_actors_are_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1, 1);
        assert!(matches!(
            g.add_edge(a, ActorId(5), 1, 1, 0),
            Err(SdfError::UnknownActor { .. })
        ));
        let b = g.add_actor("b", 1, 1);
        assert!(matches!(
            g.add_edge(a, b, 0, 1, 0),
            Err(SdfError::ZeroRate { .. })
        ));
        assert!(matches!(
            g.add_edge(a, b, 1, 0, 0),
            Err(SdfError::ZeroRate { .. })
        ));
    }

    #[test]
    fn cycles_per_iteration_weights_by_repetitions() {
        let (g, ..) = ddc_like();
        // 4×10 + 4×16 + 1×8 = 112.
        assert_eq!(g.cycles_per_iteration().unwrap(), 112);
    }

    #[test]
    fn mapping_computes_frequency_requirements() {
        let (g, mixer, integ, comb) = ddc_like();
        let mut m = Mapping::new();
        m.place(mixer, 8, 1.0);
        m.place(integ, 8, 1.0);
        m.place(comb, 2, 1.0);
        assert_eq!(m.total_tiles(), 18);
        // 16 M graph iterations/s (64 MS/s with 4 samples per iteration).
        let reqs = m.requirements(&g, 16e6).unwrap();
        // Mixer: 10 cycles × 4 firings / 8 tiles = 5 cycles per iteration
        // per tile → 80 MHz.
        assert!((reqs[0].frequency_mhz - 80.0).abs() < 1e-6);
        // Integrator: 16 × 4 / 8 = 8 → 128 MHz.
        assert!((reqs[1].frequency_mhz - 128.0).abs() < 1e-6);
        // Comb: 8 × 1 / 2 = 4 → 64 MHz.
        assert!((reqs[2].frequency_mhz - 64.0).abs() < 1e-6);
    }

    #[test]
    fn mapping_respects_parallelism_limits_and_efficiency() {
        let mut g = SdfGraph::new();
        let svd = g.add_actor("svd", 1000, 1);
        let mut m = Mapping::new();
        // Asking for 16 tiles on a serial actor must not reduce the
        // frequency requirement below the 1-tile value.
        m.place(svd, 16, 1.0);
        let reqs = m.requirements(&g, 1000.0).unwrap();
        assert!((reqs[0].frequency_mhz - 1.0).abs() < 1e-9);

        let mut m2 = Mapping::new();
        m2.place(svd, 1, 0.5);
        let reqs2 = m2.requirements(&g, 1000.0).unwrap();
        assert!(reqs2[0].frequency_mhz > reqs[0].frequency_mhz);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SdfError::Empty.to_string().contains("no actors"));
        assert!(SdfError::Inconsistent { edge: 3 }.to_string().contains('3'));
    }

    #[test]
    fn validate_accepts_wellformed_mappings() {
        let (g, mixer, integ, comb) = ddc_like();
        let mut m = Mapping::new();
        m.place(mixer, 8, 1.0);
        m.place(integ, 8, 0.9);
        m.place(comb, 2, 1.0);
        assert!(m.validate(&g).is_empty());
    }

    #[test]
    fn place_defaults_to_chip_zero_and_chips_counts_the_span() {
        let (g, mixer, integ, comb) = ddc_like();
        let mut m = Mapping::new();
        m.place(mixer, 8, 1.0);
        assert_eq!(m.placements()[0].chip, 0);
        assert_eq!(m.chips(), 1);
        m.place_on_chip(1, integ, 8, 0.9);
        m.place_on_chip(1, comb, 2, 1.0);
        assert_eq!(m.chips(), 2);
        assert!(m.validate(&g).is_empty());
        assert_eq!(Mapping::new().chips(), 1);
    }

    #[test]
    fn validate_on_board_reports_out_of_range_chips() {
        let (g, mixer, integ, _) = ddc_like();
        let mut m = Mapping::new();
        m.place(mixer, 8, 1.0);
        m.place_on_chip(3, integ, 8, 0.9);
        assert!(m.validate_on_board(&g, 4).is_empty());
        let violations = m.validate_on_board(&g, 2);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            MappingViolation::ChipOutOfRange { actor, chip: 3, chips: 2, .. } if actor == integ
        ));
    }

    #[test]
    fn validate_reports_zero_tile_and_over_parallel_placements() {
        let (g, mixer, _, comb) = ddc_like();
        let mut m = Mapping::new();
        m.place(mixer, 0, 1.0);
        m.place(comb, 9, 1.0); // comb can use at most 4 tiles
        let violations = m.validate(&g);
        assert_eq!(violations.len(), 2);
        assert!(matches!(
            violations[0],
            MappingViolation::ZeroTiles { actor, .. } if actor == mixer
        ));
        assert!(matches!(
            violations[1],
            MappingViolation::OverParallel { actor, tiles: 9, max_parallel_tiles: 4, .. }
                if actor == comb
        ));
    }

    #[test]
    fn validate_reports_unknown_actors_and_bad_efficiency() {
        let (g, mixer, ..) = ddc_like();
        let mut m = Mapping::new();
        m.place(ActorId(17), 2, 1.0);
        m.place(mixer, 4, 0.0);
        m.place(mixer, 4, 1.5);
        let violations = m.validate(&g);
        assert_eq!(violations.len(), 3);
        assert!(matches!(
            violations[0],
            MappingViolation::UnknownActor {
                actor: ActorId(17),
                ..
            }
        ));
        assert!(matches!(
            violations[1],
            MappingViolation::EfficiencyOutOfRange { .. }
        ));
        assert!(matches!(
            violations[2],
            MappingViolation::EfficiencyOutOfRange { .. }
        ));
        for v in &violations {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn validate_display_pins_chip_column_and_tile_indices() {
        let (g, mixer, integ, comb) = ddc_like();
        let mut m = Mapping::new();
        m.place(mixer, 0, 1.0);
        m.place_on_chip(1, integ, 8, 1.5);
        m.place_on_chip(1, comb, 9, 1.0);
        m.place_on_chip(3, ActorId(17), 2, 1.0);
        let texts: Vec<String> = m
            .validate_on_board(&g, 2)
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            texts,
            vec![
                "actor 0 on chip 0 column 0 is placed on zero tiles".to_string(),
                "actor 1 on chip 1 column 0 has parallel efficiency 1.5 outside (0, 1]".to_string(),
                "actor 2 on chip 1 column 1 is placed on 9 tiles but can only use 4".to_string(),
                "placement on chip 3 column 0 references unknown actor 17".to_string(),
                "actor 17 (column 0) is placed on chip 3 but the board has 2 chip(s)".to_string(),
            ]
        );
    }

    #[test]
    fn seats_number_columns_per_chip_in_placement_order() {
        let (_, mixer, integ, comb) = ddc_like();
        let mut m = Mapping::new();
        m.place_on_chip(1, mixer, 8, 1.0);
        m.place(integ, 8, 1.0);
        m.place_on_chip(1, comb, 2, 1.0);
        assert_eq!(m.seats(), vec![(1, 0), (0, 0), (1, 1)]);
        assert!(Mapping::new().seats().is_empty());
    }

    #[test]
    fn fault_spec_builders_and_queries_agree() {
        let mut f = FaultSpec::none();
        assert!(f.is_empty());
        f.fail_column(0, 2)
            .fail_tile(1, 0, 3)
            .fail_lane(0, 1)
            .degrade_lane(1, 0, 2)
            .degrade_lane(1, 0, 1)
            .degrade_lane(2, 0, 0)
            .lose_splits(0, 1)
            .lose_splits(0, 2);
        assert!(!f.is_empty());
        assert!(f.column_failed(0, 2));
        assert!(!f.column_failed(0, 1));
        assert!(f.tile_failed(1, 0, 3));
        assert!(!f.tile_failed(1, 0, 2));
        assert!(f.lane_failed(0, 1), "outright failure");
        assert!(f.lane_failed(2, 0), "degraded to zero width");
        assert!(!f.lane_failed(1, 0), "degraded but alive");
        assert_eq!(f.lane_width_limit(1, 0), Some(1), "tightest cap wins");
        assert_eq!(f.lane_width_limit(0, 2), None);
        assert_eq!(f.splits_lost(0), 3);
        assert_eq!(f.splits_lost(1), 0);
        assert_eq!(f.failed_columns(), &[(0, 2)]);
        assert_eq!(f.failed_lanes(), &[(0, 1)]);
    }

    #[test]
    fn validate_with_faults_reports_dead_columns_and_tiles() {
        let (g, mixer, integ, comb) = ddc_like();
        let mut m = Mapping::new();
        m.place(mixer, 8, 1.0);
        m.place(integ, 8, 1.0);
        m.place(comb, 2, 1.0);
        assert!(m.validate_with_faults(&g, &FaultSpec::none()).is_empty());

        let mut f = FaultSpec::none();
        f.fail_column(0, 1);
        // Tile 1 lies under the comb's 2-tile placement; tile 7 of the
        // mixer's column is beyond nothing (tile 7 < 8 tiles, so it hits).
        f.fail_tile(0, 2, 1).fail_tile(0, 0, 7);
        // A failure beyond the placement's width is harmless.
        f.fail_tile(0, 2, 3);
        let violations = m.validate_with_faults(&g, &f);
        assert_eq!(violations.len(), 3);
        assert!(matches!(
            violations[0],
            MappingViolation::FailedTile { actor, chip: 0, column: 0, tile: 7, tiles: 8 }
                if actor == mixer
        ));
        assert!(matches!(
            violations[1],
            MappingViolation::FailedColumn { actor, chip: 0, column: 1 } if actor == integ
        ));
        assert!(matches!(
            violations[2],
            MappingViolation::FailedTile { actor, chip: 0, column: 2, tile: 1, tiles: 2 }
                if actor == comb
        ));
        for v in &violations {
            assert!(v.is_fault());
        }
        assert_eq!(
            violations[1].to_string(),
            "actor 1 is placed on failed column 1 of chip 0"
        );
        assert_eq!(
            violations[2].to_string(),
            "actor 2 needs 2 tiles on chip 0 column 2 but tile 1 is failed"
        );
    }

    #[test]
    fn fault_classification_separates_fault_from_shape_violations() {
        let shape = [
            MappingViolation::UnknownActor {
                actor: ActorId(0),
                chip: 0,
                column: 0,
            },
            MappingViolation::ZeroTiles {
                actor: ActorId(0),
                chip: 0,
                column: 0,
            },
            MappingViolation::OverParallel {
                actor: ActorId(0),
                chip: 0,
                column: 0,
                tiles: 9,
                max_parallel_tiles: 4,
            },
            MappingViolation::EfficiencyOutOfRange {
                actor: ActorId(0),
                chip: 0,
                column: 0,
                efficiency: 0.0,
            },
            MappingViolation::ChipOutOfRange {
                actor: ActorId(0),
                column: 0,
                chip: 3,
                chips: 2,
            },
        ];
        for v in &shape {
            assert!(!v.is_fault(), "{v}");
        }
        let faulty = [
            MappingViolation::FailedColumn {
                actor: ActorId(0),
                chip: 0,
                column: 0,
            },
            MappingViolation::FailedTile {
                actor: ActorId(0),
                chip: 0,
                column: 0,
                tile: 0,
                tiles: 1,
            },
            MappingViolation::BusSplitsExhausted {
                chip: 0,
                splits: 1,
                lost: 1,
            },
            MappingViolation::BridgeDown {
                from_chip: 0,
                to_chip: 1,
            },
        ];
        for v in &faulty {
            assert!(v.is_fault(), "{v}");
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn requirements_still_clamp_raw_placements() {
        // Backwards compatibility: the lenient computation reshapes what
        // validate() reports, so legacy callers keep working.
        let (g, mixer, ..) = ddc_like();
        let mut zero = Mapping::new();
        zero.place(mixer, 0, 1.0);
        let mut one = Mapping::new();
        one.place(mixer, 1, 1.0);
        let rz = zero.requirements(&g, 1e6).unwrap();
        let ro = one.requirements(&g, 1e6).unwrap();
        assert!((rz[0].frequency_mhz - ro[0].frequency_mhz).abs() < 1e-9);
        assert!(rz[0].frequency_mhz.is_finite());
    }
}
