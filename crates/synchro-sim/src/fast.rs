//! The fast execution tier: batched steady-state simulation.
//!
//! Synchroscalar programs are statically scheduled — a mapped column
//! repeats one firing pattern a known number of times, the DOU replays a
//! fixed per-firing transfer pattern, and the horizontal bus runs a
//! periodic TDM schedule.  Every statistic the interpreter produces is a
//! sum over cycles of that steady state, so instead of interpreting
//! millions of firings the fast tier:
//!
//! 1. **profiles** one firing through the existing interpreter
//!    ([`FiringProfile::measure`]), capturing the per-firing
//!    [`ColumnStats`] and vertical-bus [`BusStats`] deltas,
//! 2. **verifies** the pattern is steady (a second profiled firing must
//!    produce the same deltas),
//! 3. **replays** the remaining firings in closed form
//!    ([`FastTier::run`]): per-column counters are `firings × delta`,
//!    Zero-Overhead Rate Matching stalls are expanded analytically (they
//!    are *not* uniform per firing), the reference clock jumps straight
//!    to the tick on which the slowest column observes its `HALT`, and
//!    the horizontal-bus program is drained in bulk
//!    ([`crate::Chip::finish_bus_program_batched`]).
//!
//! The produced [`crate::ChipStats`], per-column [`ColumnStats`] and all
//! [`BusStats`] are bit-identical to an interpreted run of the same chip
//! (enforced by the `sim_equivalence` differential suite); tile register
//! files are *not* reproduced — the fast tier force-halts the controllers
//! without executing data movement.

use std::error::Error;
use std::fmt;

use crate::chip::Chip;
use crate::column::{Column, ColumnConfig, ColumnError, ColumnStats};
use synchro_bus::BusStats;
use synchro_dou::DouProgram;
use synchro_isa::Program;
use synchro_trace::TraceEvent;

/// Errors raised while profiling a firing or applying a batch.
#[derive(Debug)]
pub enum FastTierError {
    /// The profiling replica faulted while interpreting a firing.
    Column(ColumnError),
    /// The program halted before the declared firing length elapsed — the
    /// program is shorter than the caller's steady-state model.
    HaltedEarly {
        /// Column cycles the probe actually executed.
        executed: u64,
        /// Column cycles one firing was declared to take.
        expected: u64,
    },
    /// Two profiled firings produced different deltas: the program is not
    /// steady-state per firing and cannot be batched.
    NonUniform {
        /// The probe index (1-based) whose delta diverged from the first.
        firing: u64,
    },
    /// The column combines a rate matcher with a DOU.  ZORM stall cycles
    /// step the DOU too, desynchronising the transfer pattern from the
    /// firing pattern, so no per-firing closed form exists.
    RateMatchedDou {
        /// The offending column index.
        column: usize,
    },
    /// A rate matcher with `stalls >= period` never issues a useful slot;
    /// the column would stall forever.
    SaturatedRateMatcher {
        /// The offending column index.
        column: usize,
    },
    /// A batch names a column the chip does not have.
    UnknownColumn {
        /// The offending column index.
        column: usize,
    },
    /// Two batches name the same column.
    DuplicateColumn {
        /// The offending column index.
        column: usize,
    },
    /// A batch names a column that has already halted, or a live column
    /// has no batch: the closed form models a full run from reset.
    BadCoverage {
        /// The offending column index.
        column: usize,
        /// True when the column was already halted, false when it is live
        /// but unbatched.
        halted: bool,
    },
    /// The chip has already been stepped; batched replay assumes a chip at
    /// reference tick zero with unstepped columns.
    ChipNotFresh,
}

impl fmt::Display for FastTierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastTierError::Column(e) => write!(f, "profiling replica faulted: {e}"),
            FastTierError::HaltedEarly { executed, expected } => write!(
                f,
                "program halted after {executed} of {expected} declared cycles per firing"
            ),
            FastTierError::NonUniform { firing } => {
                write!(f, "firing {firing} diverged from the profiled delta")
            }
            FastTierError::RateMatchedDou { column } => write!(
                f,
                "column {column} combines a rate matcher with a DOU; no per-firing closed form"
            ),
            FastTierError::SaturatedRateMatcher { column } => write!(
                f,
                "column {column} has a rate matcher with stalls >= period and can never halt"
            ),
            FastTierError::UnknownColumn { column } => {
                write!(f, "batch references unknown column {column}")
            }
            FastTierError::DuplicateColumn { column } => {
                write!(f, "column {column} appears in more than one batch")
            }
            FastTierError::BadCoverage { column, halted } => {
                if *halted {
                    write!(f, "column {column} already halted before batching")
                } else {
                    write!(f, "live column {column} has no batch")
                }
            }
            FastTierError::ChipNotFresh => {
                write!(f, "chip already stepped; batched replay needs a fresh chip")
            }
        }
    }
}

impl Error for FastTierError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FastTierError::Column(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnError> for FastTierError {
    fn from(value: ColumnError) -> Self {
        FastTierError::Column(value)
    }
}

/// The per-firing execution delta of one column, measured by interpreting
/// a firing on a throw-away replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiringProfile {
    cycles: u64,
    stats: ColumnStats,
    bus: BusStats,
    has_dou: bool,
}

impl FiringProfile {
    /// Interpret one firing of `program` (with `dou_program`, if any) on a
    /// fresh replica of a column built from `config` and record the
    /// per-firing [`ColumnStats`] and vertical-bus [`BusStats`] deltas.
    ///
    /// The replica runs with the rate matcher stripped: ZORM stalls are
    /// *not* uniform per firing and are reconstructed in closed form when
    /// the profile is applied.  When `firings_available >= 2` a second
    /// firing is interpreted and compared, so a program whose firings are
    /// not all identical is rejected instead of silently mis-batched.
    ///
    /// `cycles_per_firing` is the column-cycle length of one firing (for
    /// mapper-generated programs, the column's TDM slot count).
    ///
    /// # Errors
    ///
    /// [`FastTierError::HaltedEarly`] when the program halts inside a
    /// probed firing, [`FastTierError::NonUniform`] when the second firing
    /// diverges, [`FastTierError::Column`] when the replica faults.
    pub fn measure(
        config: &ColumnConfig,
        program: &Program,
        dou_program: Option<&DouProgram>,
        cycles_per_firing: u64,
        firings_available: u64,
    ) -> Result<FiringProfile, FastTierError> {
        let has_dou = dou_program.is_some();
        let mut replica_config = config.clone();
        replica_config.rate_matcher = None;
        let mut replica = Column::new(replica_config, program.clone(), dou_program.cloned());

        let probes = firings_available.min(2);
        let mut first: Option<(ColumnStats, BusStats)> = None;
        for probe in 0..probes {
            let stats_before = replica.stats();
            let bus_before = replica.bus_stats();
            let consumed = replica.run(cycles_per_firing)?;
            if consumed != cycles_per_firing {
                return Err(FastTierError::HaltedEarly {
                    executed: consumed,
                    expected: cycles_per_firing,
                });
            }
            let delta = (
                stats_delta(replica.stats(), stats_before),
                bus_delta(replica.bus_stats(), bus_before),
            );
            match &first {
                None => first = Some(delta),
                Some(reference) if *reference != delta => {
                    return Err(FastTierError::NonUniform { firing: probe + 1 });
                }
                Some(_) => {}
            }
        }
        let (stats, bus) = first.unwrap_or_default();
        debug_assert_eq!(
            stats.rate_match_stalls, 0,
            "the replica runs without a rate matcher"
        );
        Ok(FiringProfile {
            cycles: cycles_per_firing,
            stats,
            bus,
            has_dou,
        })
    }

    /// Column cycles one firing takes.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-firing column-statistics delta.
    pub fn stats(&self) -> ColumnStats {
        self.stats
    }

    /// Per-firing vertical-bus delta.
    pub fn bus(&self) -> BusStats {
        self.bus
    }
}

fn stats_delta(after: ColumnStats, before: ColumnStats) -> ColumnStats {
    ColumnStats {
        cycles: after.cycles - before.cycles,
        broadcasts: after.broadcasts - before.broadcasts,
        branch_stalls: after.branch_stalls - before.branch_stalls,
        rate_match_stalls: after.rate_match_stalls - before.rate_match_stalls,
        bus_word_transfers: after.bus_word_transfers - before.bus_word_transfers,
    }
}

fn bus_delta(after: BusStats, before: BusStats) -> BusStats {
    BusStats {
        active_cycles: after.active_cycles - before.active_cycles,
        word_transfers: after.word_transfers - before.word_transfers,
        deliveries: after.deliveries - before.deliveries,
        scheduled_slots: after.scheduled_slots - before.scheduled_slots,
        occupied_slots: after.occupied_slots - before.occupied_slots,
    }
}

/// One column's batched workload: replay `firings` firings of `profile`
/// on column `column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBatch {
    /// Chip column index the batch applies to.
    pub column: usize,
    /// Total firings to replay.
    pub firings: u64,
    /// The measured per-firing delta.
    pub profile: FiringProfile,
}

/// A validated per-column application plan.
struct BatchPlan {
    column: usize,
    billed_cycles: u64,
    rate_match_stalls: u64,
    halt_tick: u64,
}

/// The batched execution tier: a set of [`ColumnBatch`]es applied to a
/// fresh [`Chip`] in closed form.
#[derive(Debug, Default)]
pub struct FastTier {
    batches: Vec<ColumnBatch>,
}

impl FastTier {
    /// An empty tier.
    pub fn new() -> Self {
        FastTier::default()
    }

    /// Add one column's batch.
    pub fn push(&mut self, batch: ColumnBatch) {
        self.batches.push(batch);
    }

    /// The batches added so far.
    pub fn batches(&self) -> &[ColumnBatch] {
        &self.batches
    }

    /// The reference tick on which the slowest batched column observes its
    /// `HALT` — the chip halts after processing this tick, so an
    /// equivalent interpreted run consumes exactly this many ticks plus
    /// one.  `None` when there are no batches (nothing runs).
    ///
    /// Pure: validates the batches against `chip` without mutating it, so
    /// a driver can decide *before* applying whether the interpreted path
    /// would have completed within its tick budget.
    ///
    /// # Errors
    ///
    /// Any [`FastTierError`] the application itself would raise.
    pub fn completion_tick(&self, chip: &Chip) -> Result<Option<u64>, FastTierError> {
        Ok(self.plan(chip)?.iter().map(|p| p.halt_tick).max())
    }

    /// Apply every batch to `chip`: fold `firings × profile` into each
    /// column's counters (expanding ZORM stalls in closed form), force the
    /// controllers halted, jump the reference clock to one past the
    /// slowest column's halt-observing tick, and drain any loaded bus
    /// program in bulk.  Returns the reference ticks consumed — the same
    /// number an interpreted run-to-halt would consume.
    ///
    /// # Errors
    ///
    /// Validation errors ([`FastTierError`]) leave the chip untouched; a
    /// bus fault during the drain indicates a broken schedule.
    pub fn run(&self, chip: &mut Chip) -> Result<u64, FastTierError> {
        let plans = self.plan(chip)?;
        let trace = chip.trace().clone();
        let chip_id = chip.chip_id();
        let mut final_tick = None;
        for (batch, plan) in self.batches.iter().zip(&plans) {
            let delta = ColumnStats {
                cycles: plan.billed_cycles,
                broadcasts: batch.profile.stats.broadcasts * batch.firings,
                branch_stalls: batch.profile.stats.branch_stalls * batch.firings,
                rate_match_stalls: plan.rate_match_stalls,
                bus_word_transfers: batch.profile.stats.bus_word_transfers * batch.firings,
            };
            let column = chip
                .column_mut(plan.column)
                .expect("column validated by plan()");
            if trace.enabled() && plan.billed_cycles > 0 {
                // One batched event per track, normalizing to the stream
                // the interpreter emits one event per billed cycle: the
                // k-th billed cycle lands on tick (k-1) × divider, the
                // rate matcher re-locks once per started period, and every
                // ZORM stall cycle is billed.
                let divider = u64::from(column.config().clock_divider.max(1));
                let last_tick = (plan.billed_cycles - 1) * divider;
                if let Some(rate) = column.config().rate_matcher {
                    let relocks = plan.billed_cycles.div_ceil(u64::from(rate.period.max(1)));
                    trace.emit(|| TraceEvent::RateMatcherRelock {
                        chip: chip_id,
                        column: plan.column as u32,
                        tick: last_tick,
                        count: relocks,
                    });
                }
                trace.emit(|| TraceEvent::DividerTick {
                    chip: chip_id,
                    column: plan.column as u32,
                    tick: last_tick,
                    count: plan.billed_cycles,
                });
                if plan.rate_match_stalls > 0 {
                    trace.emit(|| TraceEvent::ZormStall {
                        chip: chip_id,
                        column: plan.column as u32,
                        tick: last_tick,
                        cycles: plan.rate_match_stalls,
                    });
                }
            }
            column.apply_batched(delta, &batch.profile.bus, batch.firings);
            chip.add_column_cycles(plan.billed_cycles);
            final_tick = final_tick.max(Some(plan.halt_tick));
        }
        // The interpreted scheduler leaves the reference clock one past
        // the tick on which the last column observed its HALT.
        if let Some(tick) = final_tick {
            chip.fast_forward_reference(tick + 1);
        }
        chip.finish_bus_program_batched()?;
        Ok(chip.stats().reference_cycles)
    }

    /// Validate the batches against `chip` and compute each column's
    /// closed-form totals.
    fn plan(&self, chip: &Chip) -> Result<Vec<BatchPlan>, FastTierError> {
        if chip.stats().reference_cycles != 0 || chip.stats().column_cycles != 0 {
            return Err(FastTierError::ChipNotFresh);
        }
        let mut seen = vec![false; chip.columns()];
        let mut plans = Vec::with_capacity(self.batches.len());
        for batch in &self.batches {
            let column = chip
                .column(batch.column)
                .ok_or(FastTierError::UnknownColumn {
                    column: batch.column,
                })?;
            if std::mem::replace(&mut seen[batch.column], true) {
                return Err(FastTierError::DuplicateColumn {
                    column: batch.column,
                });
            }
            if column.is_halted() {
                return Err(FastTierError::BadCoverage {
                    column: batch.column,
                    halted: true,
                });
            }
            let config = column.config();
            let divider = u64::from(config.clock_divider.max(1));
            let (billed_cycles, rate_match_stalls) =
                closed_form_cycles(config, batch.column, batch.firings, &batch.profile)?;
            plans.push(BatchPlan {
                column: batch.column,
                billed_cycles,
                rate_match_stalls,
                // The halt-observing step is the column's step number
                // `billed_cycles` (0-indexed), scheduled at this tick.
                halt_tick: billed_cycles * divider,
            });
        }
        // Every live column must be batched, or the chip never halts.
        for (index, batched) in seen.iter().enumerate() {
            let live = chip.column(index).is_some_and(|c| !c.is_halted());
            if live && !batched {
                return Err(FastTierError::BadCoverage {
                    column: index,
                    halted: false,
                });
            }
        }
        Ok(plans)
    }
}

/// Closed-form billed column cycles and rate-match stalls for `firings`
/// firings of `profile` under the column's (possibly rate-matched) issue
/// schedule.
///
/// Without a matcher every step is useful: `billed = firings × cycles`.
/// With ZORM `(period P, stalls S)` the first `S` issue slots of every
/// `P`-slot window stall (billed, but useless), so the `n`-th useful slot
/// (1-indexed) sits at step `(n-1 div P-S) × P + S + (n-1 mod P-S)`.  The
/// program needs `useful = firings × cycles` useful slots and then one
/// more on which the `HALT` is observed (unbilled); every step before
/// that observation is billed.
fn closed_form_cycles(
    config: &ColumnConfig,
    column: usize,
    firings: u64,
    profile: &FiringProfile,
) -> Result<(u64, u64), FastTierError> {
    let useful = firings * profile.cycles;
    let matcher = config.rate_matcher.filter(|m| m.stalls > 0);
    let Some(matcher) = matcher else {
        return Ok((useful, 0));
    };
    if profile.has_dou {
        return Err(FastTierError::RateMatchedDou { column });
    }
    let (period, stalls) = (u64::from(matcher.period), u64::from(matcher.stalls));
    if stalls >= period {
        return Err(FastTierError::SaturatedRateMatcher { column });
    }
    let useful_per_period = period - stalls;
    // Step index of the halt-observing slot: the (useful + 1)-th useful
    // slot of the stall-striped schedule.
    let full_periods = useful / useful_per_period;
    let into_period = useful % useful_per_period;
    let halt_step = full_periods * period + stalls + into_period;
    Ok((halt_step, halt_step - useful))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BusProgram, BusSlot};
    use synchro_bus::BusOp;
    use synchro_dou::ScheduleCompiler;
    use synchro_isa::{assemble, DataReg, ProgramBuilder};
    use synchro_simd::RateMatcher;

    /// A mapper-shaped firing: li, send, `compute` nops, recv.
    fn firing_program(firings: u32, compute: u32) -> Program {
        let mut b = ProgramBuilder::new();
        b.counted_loop(firings, |b| {
            b.load_imm(DataReg::new(7), 1);
            b.send();
            b.counted_loop(compute, |b| {
                b.nop();
            });
            b.recv(DataReg::new(2));
        });
        b.halt();
        b.build().unwrap()
    }

    fn firing_dou(slots: usize, firings: u32) -> DouProgram {
        let mut schedule = ScheduleCompiler::new();
        schedule.idle();
        schedule.idle();
        schedule.push(synchro_dou::PatternCycle {
            segments: None,
            ops: vec![BusOp {
                split: 0,
                producer: 0,
                consumers: vec![1, 2, 3],
            }],
        });
        for _ in 0..slots.saturating_sub(3) {
            schedule.idle();
        }
        schedule.compile(firings).unwrap()
    }

    /// Interpreted-vs-batched equivalence on one self-contained chip,
    /// including the normalized trace streams both tiers emit.
    fn assert_equivalent(build: impl Fn() -> (Chip, Vec<ColumnBatch>)) {
        use std::sync::Arc;
        use synchro_trace::{normalize, RingBufferSink, Trace};

        let (mut interpreted, _) = build();
        let (mut batched, batches) = build();
        let interpreted_ring = Arc::new(RingBufferSink::new(1 << 20));
        let batched_ring = Arc::new(RingBufferSink::new(1 << 20));
        interpreted.set_trace(Trace::to(interpreted_ring.clone()), 0);
        batched.set_trace(Trace::to(batched_ring.clone()), 0);
        // Interpreted reference: run to halt, then drain.
        while !interpreted.all_halted() {
            interpreted.run(1 << 20).unwrap();
        }
        interpreted.finish_bus_program().unwrap();
        let mut tier = FastTier::new();
        for b in batches {
            tier.push(b);
        }
        let predicted = tier.completion_tick(&batched).unwrap();
        tier.run(&mut batched).unwrap();
        assert_eq!(
            interpreted_ring.dropped(),
            0,
            "ring sized for the whole run"
        );
        assert_eq!(
            normalize(&interpreted_ring.events()),
            normalize(&batched_ring.events()),
            "tiers must emit equivalent event streams"
        );
        assert!(
            batched_ring.len() <= interpreted_ring.len(),
            "the fast tier batches, never inflates"
        );
        assert_eq!(interpreted.stats(), batched.stats());
        assert_eq!(interpreted.column_stats(), batched.column_stats());
        assert_eq!(interpreted.horizontal_stats(), batched.horizontal_stats());
        for i in 0..interpreted.columns() {
            assert_eq!(
                interpreted.column(i).unwrap().bus_stats(),
                batched.column(i).unwrap().bus_stats(),
                "column {i} vertical bus"
            );
        }
        assert!(batched.all_halted());
        if let Some(tick) = predicted {
            assert_eq!(batched.stats().reference_cycles, tick + 1);
        }
    }

    #[test]
    fn plain_firing_batches_bit_identically() {
        assert_equivalent(|| {
            let firings = 37u32;
            let compute = 4u32;
            let slots = u64::from(compute) + 3;
            let program = firing_program(firings, compute);
            let dou = firing_dou(slots as usize, firings);
            let config = ColumnConfig::isca2004().with_divider(3);
            let profile =
                FiringProfile::measure(&config, &program, Some(&dou), slots, u64::from(firings))
                    .unwrap();
            let mut chip = Chip::new();
            chip.add_column(Column::new(config, program, Some(dou)));
            let batch = ColumnBatch {
                column: 0,
                firings: u64::from(firings),
                profile,
            };
            (chip, vec![batch])
        });
    }

    #[test]
    fn zorm_stalls_are_expanded_in_closed_form() {
        // 30 useful slots on a (period 4, stalls 1) matcher: the simd
        // crate pins 10-or-11 stalls; the closed form must land exactly
        // where the interpreter does (11: the halt lands after a stall).
        for (firings, period, stalls, divider) in [
            (30u32, 4u32, 1u32, 1u32),
            (7, 5, 3, 6),
            (1, 7, 2, 2),
            (13, 1024, 511, 3),
        ] {
            assert_equivalent(move || {
                let program = firing_program(firings, 0);
                let mut config = ColumnConfig::isca2004().with_divider(divider);
                config.rate_matcher = Some(RateMatcher { period, stalls });
                let profile =
                    FiringProfile::measure(&config, &program, None, 3, u64::from(firings)).unwrap();
                let mut chip = Chip::new();
                chip.add_column(Column::new(config, program, None));
                let batch = ColumnBatch {
                    column: 0,
                    firings: u64::from(firings),
                    profile,
                };
                (chip, vec![batch])
            });
        }
    }

    #[test]
    fn multi_column_chip_with_bus_program_batches_bit_identically() {
        assert_equivalent(|| {
            let mut chip = Chip::new();
            let mut batches = Vec::new();
            for (i, (firings, compute, divider)) in
                [(15u32, 4u32, 6u32), (10, 6, 7)].into_iter().enumerate()
            {
                let slots = u64::from(compute) + 3;
                let program = firing_program(firings, compute);
                let dou = firing_dou(slots as usize, firings);
                let config = ColumnConfig::isca2004().with_divider(divider);
                let profile = FiringProfile::measure(
                    &config,
                    &program,
                    Some(&dou),
                    slots,
                    u64::from(firings),
                )
                .unwrap();
                chip.add_column(Column::new(config, program, Some(dou)));
                batches.push(ColumnBatch {
                    column: i,
                    firings: u64::from(firings),
                    profile,
                });
            }
            let program = BusProgram::new(
                126,
                5,
                126,
                vec![
                    BusSlot {
                        tick: 10,
                        from: 0,
                        to: vec![1],
                        words: 3,
                    },
                    BusSlot {
                        tick: 90,
                        from: 1,
                        to: vec![0],
                        words: 2,
                    },
                ],
            );
            chip.load_bus_program(program).unwrap();
            (chip, batches)
        });
    }

    #[test]
    fn zero_firings_still_bill_the_zorm_stall_prefix() {
        // An immediately-halting program behind a (4, 1) matcher: the
        // interpreter bills one stall before the first useful slot can
        // observe the HALT.
        assert_equivalent(|| {
            let program = assemble("halt\n").unwrap();
            let mut config = ColumnConfig::isca2004();
            config.rate_matcher = Some(RateMatcher {
                period: 4,
                stalls: 1,
            });
            let profile = FiringProfile::measure(&config, &program, None, 0, 0).unwrap();
            let mut chip = Chip::new();
            chip.add_column(Column::new(config, program, None));
            let batch = ColumnBatch {
                column: 0,
                firings: 0,
                profile,
            };
            (chip, vec![batch])
        });
    }

    #[test]
    fn profiling_rejects_non_steady_programs() {
        // Firing length 2 with a program that issues 3-cycle firings:
        // the first probe consumes mid-firing state, the second diverges
        // (recv/li boundaries shift), or the run halts early.
        let program = firing_program(2, 0);
        let err = FiringProfile::measure(&ColumnConfig::isca2004(), &program, None, 4, 2);
        assert!(
            matches!(
                err,
                Err(FastTierError::NonUniform { .. }) | Err(FastTierError::HaltedEarly { .. })
            ),
            "got {err:?}"
        );
        // A declared length past the whole program halts early.
        let short = assemble("nop\nhalt\n").unwrap();
        let err = FiringProfile::measure(&ColumnConfig::isca2004(), &short, None, 5, 1);
        assert!(matches!(
            err,
            Err(FastTierError::HaltedEarly {
                executed: 1,
                expected: 5
            })
        ));
    }

    #[test]
    fn batch_validation_catches_misuse() {
        let program = firing_program(3, 1);
        let config = ColumnConfig::isca2004();
        let profile = FiringProfile::measure(&config, &program, None, 4, 3).unwrap();
        let batch = |column| ColumnBatch {
            column,
            firings: 3,
            profile: profile.clone(),
        };

        // Unknown column.
        let mut chip = Chip::new();
        chip.add_column(Column::new(config.clone(), program.clone(), None));
        let mut tier = FastTier::new();
        tier.push(batch(7));
        assert!(matches!(
            tier.run(&mut chip),
            Err(FastTierError::UnknownColumn { column: 7 })
        ));

        // Duplicate column.
        let mut tier = FastTier::new();
        tier.push(batch(0));
        tier.push(batch(0));
        assert!(matches!(
            tier.run(&mut chip),
            Err(FastTierError::DuplicateColumn { column: 0 })
        ));

        // Live column without a batch.
        let tier = FastTier::new();
        assert!(matches!(
            tier.completion_tick(&chip),
            Err(FastTierError::BadCoverage {
                column: 0,
                halted: false
            })
        ));

        // Stepped chip is rejected.
        chip.run(2).unwrap();
        let mut tier = FastTier::new();
        tier.push(batch(0));
        assert!(matches!(
            tier.run(&mut chip),
            Err(FastTierError::ChipNotFresh)
        ));

        // Rate matcher + DOU has no closed form.
        let mut zorm = ColumnConfig::isca2004();
        zorm.rate_matcher = Some(RateMatcher {
            period: 4,
            stalls: 1,
        });
        let dou = firing_dou(4, 3);
        let dou_profile = FiringProfile::measure(&zorm, &program, Some(&dou), 4, 3).unwrap();
        let mut chip = Chip::new();
        chip.add_column(Column::new(zorm, program.clone(), Some(dou)));
        let mut tier = FastTier::new();
        tier.push(ColumnBatch {
            column: 0,
            firings: 3,
            profile: dou_profile,
        });
        assert!(matches!(
            tier.run(&mut chip),
            Err(FastTierError::RateMatchedDou { column: 0 })
        ));

        // A saturated matcher can never halt.
        let mut saturated = ColumnConfig::isca2004();
        saturated.rate_matcher = Some(RateMatcher {
            period: 4,
            stalls: 4,
        });
        let sat_profile = FiringProfile::measure(&saturated, &program, None, 4, 3).unwrap();
        let mut chip = Chip::new();
        chip.add_column(Column::new(saturated, program, None));
        let mut tier = FastTier::new();
        tier.push(ColumnBatch {
            column: 0,
            firings: 3,
            profile: sat_profile,
        });
        assert!(matches!(
            tier.run(&mut chip),
            Err(FastTierError::SaturatedRateMatcher { column: 0 })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = FastTierError::HaltedEarly {
            executed: 2,
            expected: 5,
        };
        assert!(e.to_string().contains("2 of 5"));
        assert!(FastTierError::ChipNotFresh.to_string().contains("fresh"));
        assert!(FastTierError::RateMatchedDou { column: 3 }
            .to_string()
            .contains("column 3"));
    }
}
