//! One Synchroscalar column: SIMD controller + four tiles + DOU + bus.

use std::error::Error;
use std::fmt;

use synchro_bus::{BusError, SegmentConfig, SegmentedBus};
use synchro_dou::{Dou, DouProgram};
use synchro_isa::Program;
use synchro_simd::{Issue, RateMatcher, SimdController, StallReason};
use synchro_tile::{ExecError, Tile, TileEvent};
use synchro_trace::{Trace, TraceEvent};

/// Errors surfaced while simulating a column.
#[derive(Debug)]
pub enum ColumnError {
    /// A tile rejected an instruction or faulted on memory.
    Tile {
        /// Index of the faulting tile within the column.
        tile: usize,
        /// The underlying execution error.
        source: ExecError,
    },
    /// The DOU asked the bus for a physically impossible transfer.
    Bus(BusError),
}

impl fmt::Display for ColumnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnError::Tile { tile, source } => write!(f, "tile {tile}: {source}"),
            ColumnError::Bus(e) => write!(f, "bus: {e}"),
        }
    }
}

impl Error for ColumnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ColumnError::Tile { source, .. } => Some(source),
            ColumnError::Bus(e) => Some(e),
        }
    }
}

impl From<BusError> for ColumnError {
    fn from(value: BusError) -> Self {
        ColumnError::Bus(value)
    }
}

/// Static configuration of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnConfig {
    /// Number of tiles in the column (4 in the paper).
    pub tiles: usize,
    /// Clock divider relative to the chip reference clock (1 = full rate).
    pub clock_divider: u32,
    /// Supply voltage assigned to the column, in volts (recorded for the
    /// power pipeline; the functional simulation does not depend on it).
    pub voltage: f64,
    /// Which tiles are enabled (idle tiles are supply gated).
    pub enabled_tiles: Vec<bool>,
    /// Optional Zero-Overhead Rate Matching configuration.
    pub rate_matcher: Option<RateMatcher>,
}

impl ColumnConfig {
    /// The paper's default: four enabled tiles, full-rate clock, 1.0 V.
    pub fn isca2004() -> Self {
        ColumnConfig {
            tiles: 4,
            clock_divider: 1,
            voltage: 1.0,
            enabled_tiles: vec![true; 4],
            rate_matcher: None,
        }
    }

    /// Builder-style override of the clock divider.
    #[must_use]
    pub fn with_divider(mut self, divider: u32) -> Self {
        self.clock_divider = divider.max(1);
        self
    }

    /// Builder-style override of the supply voltage.
    #[must_use]
    pub fn with_voltage(mut self, voltage: f64) -> Self {
        self.voltage = voltage;
        self
    }
}

impl Default for ColumnConfig {
    fn default() -> Self {
        ColumnConfig::isca2004()
    }
}

/// Per-column execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnStats {
    /// Column clock cycles executed.
    pub cycles: u64,
    /// Compute instructions broadcast.
    pub broadcasts: u64,
    /// Branch stall cycles.
    pub branch_stalls: u64,
    /// Rate-matching stall cycles.
    pub rate_match_stalls: u64,
    /// Bus word transfers performed by the DOU.
    pub bus_word_transfers: u64,
}

impl ColumnStats {
    /// Counter-wise `self - earlier`, for reporting one run's activity out
    /// of two lifetime snapshots of the same column.
    #[must_use]
    pub fn delta(&self, earlier: &ColumnStats) -> ColumnStats {
        ColumnStats {
            cycles: self.cycles - earlier.cycles,
            broadcasts: self.broadcasts - earlier.broadcasts,
            branch_stalls: self.branch_stalls - earlier.branch_stalls,
            rate_match_stalls: self.rate_match_stalls - earlier.rate_match_stalls,
            bus_word_transfers: self.bus_word_transfers - earlier.bus_word_transfers,
        }
    }
}

/// One column of the chip.
#[derive(Debug)]
pub struct Column {
    config: ColumnConfig,
    controller: SimdController,
    tiles: Vec<Tile>,
    dou: Option<Dou>,
    bus: SegmentedBus,
    segment_config: SegmentConfig,
    stats: ColumnStats,
    trace: Trace,
    chip_id: u32,
    column_id: u32,
    failed: bool,
}

impl Column {
    /// Build a column from its configuration, SIMD program and optional DOU
    /// program.
    ///
    /// A `clock_divider` of zero (possible when a [`ColumnConfig`] is built
    /// by hand rather than through [`ColumnConfig::with_divider`]) is
    /// normalised to 1 here, so every later consumer can rely on the
    /// invariant `clock_divider >= 1`.
    pub fn new(
        mut config: ColumnConfig,
        program: Program,
        dou_program: Option<DouProgram>,
    ) -> Self {
        config.clock_divider = config.clock_divider.max(1);
        let mut controller = SimdController::new(program);
        if let Some(rate) = config.rate_matcher {
            controller.set_rate_matcher(rate);
        }
        let mut tiles: Vec<Tile> = (0..config.tiles).map(|_| Tile::new()).collect();
        for (i, tile) in tiles.iter_mut().enumerate() {
            let enabled = config.enabled_tiles.get(i).copied().unwrap_or(true);
            tile.set_enabled(enabled);
        }
        let bus = SegmentedBus::new(8, config.tiles.max(1));
        let segment_config = SegmentConfig::all_closed(8, config.tiles.max(1));
        Column {
            config,
            controller,
            tiles,
            dou: dou_program.map(Dou::new),
            bus,
            segment_config,
            stats: ColumnStats::default(),
            trace: Trace::off(),
            chip_id: 0,
            column_id: 0,
            failed: false,
        }
    }

    /// Install a trace sink and the `(chip, column)` identity stamped on
    /// every event the column emits.
    pub fn set_trace(&mut self, trace: Trace, chip: u32, column: u32) {
        self.trace = trace;
        self.chip_id = chip;
        self.column_id = column;
    }

    /// The trace handle events flow through (disabled by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The column's configuration.
    pub fn config(&self) -> &ColumnConfig {
        &self.config
    }

    /// Access a tile (e.g. to stage data into its local memory).
    pub fn tile_mut(&mut self, index: usize) -> Option<&mut Tile> {
        self.tiles.get_mut(index)
    }

    /// Shared access to a tile.
    pub fn tile(&self, index: usize) -> Option<&Tile> {
        self.tiles.get(index)
    }

    /// Has the column's program halted?
    ///
    /// A [failed](Column::fail) column is *not* halted: the hardware is
    /// dead, not done, and a driver waiting for `all_halted` will starve.
    pub fn is_halted(&self) -> bool {
        self.controller.is_halted()
    }

    /// Mark the column as failed hardware: every subsequent step is an
    /// unbilled no-op, but the column never reports halted — the static
    /// schedule has no recovery path, so consumers of its data starve.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Has the column been killed by a fault?
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ColumnStats {
        self.stats
    }

    /// The column's segmented vertical-bus statistics, including the
    /// scheduled-vs-occupied slot split the power calibration consumes.
    pub fn bus_stats(&self) -> synchro_bus::BusStats {
        self.bus.stats()
    }

    /// Fold a closed-form execution delta into the column's counters and
    /// halt the controller, as if the remaining firings had been stepped
    /// by the interpreter (used by the fast tier; see `crate::fast`).
    pub(crate) fn apply_batched(
        &mut self,
        stats_delta: ColumnStats,
        bus_delta: &synchro_bus::BusStats,
        bus_times: u64,
    ) {
        self.stats.cycles += stats_delta.cycles;
        self.stats.broadcasts += stats_delta.broadcasts;
        self.stats.branch_stalls += stats_delta.branch_stalls;
        self.stats.rate_match_stalls += stats_delta.rate_match_stalls;
        self.stats.bus_word_transfers += stats_delta.bus_word_transfers;
        self.bus.accumulate(bus_delta, bus_times);
        self.controller.force_halt();
    }

    /// Advance the column by one of its own clock cycles.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnError`] when a tile faults or the DOU schedules an
    /// impossible bus transfer (both indicate a broken static schedule).
    pub fn step(&mut self) -> Result<(), ColumnError> {
        if self.failed || self.controller.is_halted() {
            return Ok(());
        }

        // 1. The SIMD controller issues one slot.  The step that merely
        // observes the HALT (or the end of the program) does no work and
        // must not be billed as a column cycle.
        let issue = self.controller.step();
        if issue == Issue::Halted {
            return Ok(());
        }
        self.stats.cycles += 1;
        if self.trace.enabled() {
            // A live column is stepped on exactly the reference ticks its
            // divider selects (halt-observing steps are unbilled above),
            // so the k-th billed cycle lands on reference tick
            // (k-1) * divider — no reference clock needs threading in.
            let slot = self.stats.cycles - 1;
            let tick = slot * u64::from(self.config.clock_divider);
            if let Some(rate) = self.config.rate_matcher {
                if slot.is_multiple_of(u64::from(rate.period.max(1))) {
                    self.trace.emit(|| TraceEvent::RateMatcherRelock {
                        chip: self.chip_id,
                        column: self.column_id,
                        tick,
                        count: 1,
                    });
                }
            }
            self.trace.emit(|| TraceEvent::DividerTick {
                chip: self.chip_id,
                column: self.column_id,
                tick,
                count: 1,
            });
            if issue == Issue::Stall(StallReason::RateMatch) {
                self.trace.emit(|| TraceEvent::ZormStall {
                    chip: self.chip_id,
                    column: self.column_id,
                    tick,
                    cycles: 1,
                });
            }
        }
        match issue {
            Issue::Broadcast(inst) => {
                self.stats.broadcasts += 1;
                for (i, tile) in self.tiles.iter_mut().enumerate() {
                    let event = tile
                        .execute(inst)
                        .map_err(|source| ColumnError::Tile { tile: i, source })?;
                    if let TileEvent::Condition(v) = event {
                        // Tile 0 of the column drives data-dependent control.
                        if i == 0 {
                            self.controller.set_condition(v);
                        }
                    }
                }
            }
            Issue::Stall(StallReason::Branch) => self.stats.branch_stalls += 1,
            Issue::Stall(StallReason::RateMatch) => self.stats.rate_match_stalls += 1,
            Issue::Halted => unreachable!("halted issues are filtered above"),
        }

        // 2. The DOU moves data between tiles through the segmented bus.
        // Every DOU step is a scheduled bus cycle — idle pattern cycles
        // reserve the splits without driving them, which the bus counts
        // as scheduled-but-idle slots for the power calibration.
        if let Some(dou) = &mut self.dou {
            let output = dou.step();
            if let Some(segments) = output.segments {
                self.segment_config = segments;
            }
            self.bus.cycle(&self.segment_config, &output.ops)?;
            if !output.ops.is_empty() {
                for op in &output.ops {
                    let value = self
                        .tiles
                        .get(op.producer)
                        .and_then(Tile::peek_outgoing)
                        .unwrap_or(0);
                    for &consumer in &op.consumers {
                        if let Some(t) = self.tiles.get_mut(consumer) {
                            t.deliver(value);
                        }
                    }
                    self.stats.bus_word_transfers += 1;
                }
            }
        }
        Ok(())
    }

    /// Run the column until it halts or `max_cycles` of its own clock
    /// elapse.  Returns the number of cycles consumed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ColumnError`] encountered.
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, ColumnError> {
        let start = self.stats.cycles;
        for _ in 0..max_cycles {
            if self.failed || self.controller.is_halted() {
                break;
            }
            self.step()?;
        }
        Ok(self.stats.cycles - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchro_bus::BusOp;
    use synchro_dou::{PatternCycle, ScheduleCompiler};
    use synchro_isa::{assemble, DataReg};

    #[test]
    fn simd_broadcast_executes_on_all_enabled_tiles() {
        let program = assemble("li r0, 7\nadd r1, r0, r0\nhalt\n").unwrap();
        let mut col = Column::new(ColumnConfig::isca2004(), program, None);
        col.run(100).unwrap();
        for i in 0..4 {
            assert_eq!(col.tile(i).unwrap().reg(DataReg::new(1)), 14);
        }
        assert_eq!(col.stats().broadcasts, 2);
        assert!(col.is_halted());
    }

    #[test]
    fn disabled_tiles_do_not_execute() {
        let program = assemble("li r0, 7\nhalt\n").unwrap();
        let mut config = ColumnConfig::isca2004();
        config.enabled_tiles = vec![true, false, true, false];
        let mut col = Column::new(config, program, None);
        col.run(10).unwrap();
        assert_eq!(col.tile(0).unwrap().reg(DataReg::new(0)), 7);
        assert_eq!(col.tile(1).unwrap().reg(DataReg::new(0)), 0);
        assert_eq!(col.tile(2).unwrap().reg(DataReg::new(0)), 7);
        assert_eq!(col.tile(3).unwrap().reg(DataReg::new(0)), 0);
    }

    #[test]
    fn dou_moves_r7_between_tiles() {
        // Every tile loads its own value into R7 (SIMD, so all tiles load
        // the same immediate here), sends, then receives: the DOU schedule
        // routes tile 0's word to tile 3.
        let program = assemble("li r7, 42\nsend\nnop\nrecv r2\nhalt\n").unwrap();
        let mut compiler = ScheduleCompiler::new();
        // Cycle 0 (li): idle.  Cycle 1 (send): idle — the write buffer is
        // filled during this cycle.  Cycle 2 (nop): transfer tile0 → tile3.
        compiler.idle();
        compiler.idle();
        compiler.push(PatternCycle {
            segments: None,
            ops: vec![BusOp {
                split: 0,
                producer: 0,
                consumers: vec![3],
            }],
        });
        compiler.idle();
        let dou_program = compiler.compile(1).unwrap();
        let mut col = Column::new(ColumnConfig::isca2004(), program, Some(dou_program));
        col.run(20).unwrap();
        assert_eq!(col.tile(3).unwrap().reg(DataReg::new(2)), 42);
        assert_eq!(col.stats().bus_word_transfers, 1);
    }

    #[test]
    fn broken_dou_schedule_is_reported() {
        // Two producers on the same fully-connected split in one cycle.
        let program = assemble("li r7, 1\nsend\nnop\nhalt\n").unwrap();
        let mut compiler = ScheduleCompiler::new();
        compiler.idle();
        compiler.idle();
        compiler.push(PatternCycle {
            segments: None,
            ops: vec![
                BusOp {
                    split: 0,
                    producer: 0,
                    consumers: vec![1],
                },
                BusOp {
                    split: 0,
                    producer: 2,
                    consumers: vec![3],
                },
            ],
        });
        let dou_program = compiler.compile(1).unwrap();
        let mut col = Column::new(ColumnConfig::isca2004(), program, Some(dou_program));
        let err = col.run(20).unwrap_err();
        assert!(matches!(err, ColumnError::Bus(_)));
        assert!(err.to_string().contains("bus"));
    }

    #[test]
    fn rate_matcher_inflates_cycle_count_without_changing_results() {
        let src = "loop 8, 2\nli r0, 3\nadd r1, r1, r0\nhalt\n";
        let p = assemble(src).unwrap();
        let mut plain = Column::new(ColumnConfig::isca2004(), p.clone(), None);
        let plain_cycles = plain.run(1000).unwrap();

        let mut config = ColumnConfig::isca2004();
        config.rate_matcher = RateMatcher::for_rates(200.0, 100.0);
        let mut throttled = Column::new(config, p, None);
        let throttled_cycles = throttled.run(1000).unwrap();

        assert_eq!(
            plain.tile(0).unwrap().reg(DataReg::new(1)),
            throttled.tile(0).unwrap().reg(DataReg::new(1))
        );
        assert!(throttled_cycles > plain_cycles);
        assert!(throttled.stats().rate_match_stalls > 0);
    }

    #[test]
    fn halted_column_ignores_further_steps() {
        let p = assemble("halt\n").unwrap();
        let mut col = Column::new(ColumnConfig::isca2004(), p, None);
        col.step().unwrap();
        let before = col.stats().cycles;
        col.step().unwrap();
        assert_eq!(col.stats().cycles, before);
    }

    #[test]
    fn tile_fault_is_reported_with_tile_index() {
        let p = assemble("setp p0, 9000\nld r0, p0, 0\nhalt\n").unwrap();
        let mut col = Column::new(ColumnConfig::isca2004(), p, None);
        let err = col.run(10).unwrap_err();
        match err {
            ColumnError::Tile { tile, .. } => assert_eq!(tile, 0),
            other => panic!("expected tile error, got {other}"),
        }
    }

    #[test]
    fn hand_built_zero_divider_is_normalised_at_construction() {
        let config = ColumnConfig {
            clock_divider: 0,
            ..ColumnConfig::isca2004()
        };
        let col = Column::new(config, assemble("halt\n").unwrap(), None);
        assert_eq!(col.config().clock_divider, 1);
    }

    #[test]
    fn halt_observation_does_not_inflate_cycle_count() {
        // 3 broadcasts, then one step that only discovers the HALT: the
        // column must report exactly 3 cycles, not 4.
        let p = assemble("li r0, 1\nadd r1, r1, r0\nadd r1, r1, r0\nhalt\n").unwrap();
        let mut col = Column::new(ColumnConfig::isca2004(), p, None);
        let cycles = col.run(100).unwrap();
        assert!(col.is_halted());
        assert_eq!(cycles, 3);
        assert_eq!(col.stats().cycles, 3);
        assert_eq!(col.stats().broadcasts, 3);
    }

    #[test]
    fn config_builders_work() {
        let c = ColumnConfig::isca2004().with_divider(5).with_voltage(0.8);
        assert_eq!(c.clock_divider, 5);
        assert!((c.voltage - 0.8).abs() < 1e-12);
        assert_eq!(ColumnConfig::default(), ColumnConfig::isca2004());
    }
}
