//! A board of chips: co-advances several [`Chip`]s in shared reference
//! time and replays the statically compiled chip-to-chip bridge schedule.
//!
//! The board is the multi-chip generalization of the single-chip driver:
//! each chip keeps its own columns, horizontal bus and [`BusProgram`]
//! exactly as before, while the board holds the fleet, a board-level
//! reference clock (the frontier of the chips' reference clocks), and a
//! periodic [`BridgeProgram`] that accounts inter-chip transfers the same
//! way a chip's bus program accounts intra-chip slots.  Bridge statistics
//! reuse [`BusStats`], so the occupied/scheduled slot split survives into
//! the power calibration unchanged.
//!
//! [`BusProgram`]: crate::chip::BusProgram

use crate::chip::Chip;
use crate::column::ColumnError;
use synchro_bus::BusStats;
use synchro_trace::{Trace, TraceEvent};

/// One scheduled transfer of a [`BridgeProgram`]: `words` words over
/// bridge lane `lane` from a column of `from_chip` to a column of
/// `to_chip`, occupying `cycles` back-to-back bridge cycles, issued when
/// the board reference clock passes `tick` (an offset within the
/// program's period).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeTransfer {
    /// Reference-tick offset within the period at which the slot fires.
    pub tick: u64,
    /// Bridge lane carrying the words.
    pub lane: usize,
    /// Producing chip.
    pub from_chip: usize,
    /// Consuming chip.
    pub to_chip: usize,
    /// Words transferred.
    pub words: u64,
    /// Bridge cycles the slot occupies (`words.div_ceil(lane width)`).
    pub cycles: u64,
}

/// A periodic, statically compiled bridge schedule: `slots` fire every
/// `period` reference ticks, `iterations` times in total — the
/// board-level counterpart of a chip's [`BusProgram`](crate::BusProgram).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeProgram {
    period: u64,
    iterations: u64,
    /// Bridge cycles the schedule reserves per period (`lanes × bridge
    /// period`), accounted into [`BusStats::scheduled_slots`] as periods
    /// complete.
    scheduled_slots_per_period: u64,
    slots: Vec<BridgeTransfer>,
}

impl BridgeProgram {
    /// Build a program.  `slots` must be sorted by `tick` and lie inside
    /// `period`; `iterations` is the number of periods the program runs.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, slots are unsorted, or a slot's tick
    /// falls outside the period (all indicate a broken schedule compiler).
    pub fn new(
        period: u64,
        iterations: u64,
        scheduled_slots_per_period: u64,
        slots: Vec<BridgeTransfer>,
    ) -> Self {
        assert!(period > 0, "a bridge program needs a positive period");
        assert!(
            slots.windows(2).all(|w| w[0].tick <= w[1].tick),
            "bridge program slots must be sorted by tick"
        );
        assert!(
            slots.iter().all(|s| s.tick < period),
            "bridge program slots must fire within the period"
        );
        BridgeProgram {
            period,
            iterations,
            scheduled_slots_per_period,
            slots,
        }
    }

    /// Reference ticks per period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Periods the program runs.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The slots of one period.
    pub fn slots(&self) -> &[BridgeTransfer] {
        &self.slots
    }

    /// Words the program transfers per period.
    pub fn words_per_period(&self) -> u64 {
        self.slots.iter().map(|s| s.words).sum()
    }
}

/// Progress of a loaded bridge program (mirrors the chip's bus-program
/// state).
#[derive(Debug)]
struct BridgeProgramState {
    program: BridgeProgram,
    origin: u64,
    iteration: u64,
    next_slot: usize,
}

/// A board of Synchroscalar chips sharing one reference clock, joined by
/// chip-to-chip bridge lanes.
#[derive(Debug, Default)]
pub struct Board {
    chips: Vec<Chip>,
    bridge_program: Option<BridgeProgramState>,
    bridge: BusStats,
    lane_words: Vec<u64>,
    /// Per-lane fault tick: slots on lane `l` whose absolute reference
    /// tick is `>= lane_dead_from[l]` are dropped undelivered.
    lane_dead_from: Vec<Option<u64>>,
    reference_cycles: u64,
    trace: Trace,
}

impl Board {
    /// An empty board.
    pub fn new() -> Self {
        Board::default()
    }

    /// Add a chip; returns its index.
    pub fn add_chip(&mut self, mut chip: Chip) -> usize {
        let index = self.chips.len();
        if self.trace.enabled() {
            chip.set_trace(self.trace.clone(), index as u32);
        }
        self.chips.push(chip);
        index
    }

    /// Install a trace sink on the board and every chip (and hence column)
    /// it holds; chips added later inherit it, stamped with their board
    /// chip index.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
        for (index, chip) in self.chips.iter_mut().enumerate() {
            chip.set_trace(self.trace.clone(), index as u32);
        }
    }

    /// The trace handle events flow through (disabled by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.chips.len()
    }

    /// Access a chip.
    pub fn chip(&self, index: usize) -> Option<&Chip> {
        self.chips.get(index)
    }

    /// Mutable access to a chip (e.g. to load its bus program).
    pub fn chip_mut(&mut self, index: usize) -> Option<&mut Chip> {
        self.chips.get_mut(index)
    }

    /// Consume the board and return its chips (the single-chip compile
    /// path unwraps a board of one through this).
    pub fn into_chips(self) -> Vec<Chip> {
        self.chips
    }

    /// The board reference clock: the frontier the fleet has advanced to.
    pub fn reference_cycles(&self) -> u64 {
        self.reference_cycles
    }

    /// Bridge traffic statistics (occupied/scheduled bridge cycles, words,
    /// per-word deliveries) — same shape as a horizontal bus's
    /// [`BusStats`].
    pub fn bridge_stats(&self) -> BusStats {
        self.bridge
    }

    /// Words moved per bridge lane so far (indexed like the board spec's
    /// lanes).
    pub fn lane_words(&self) -> &[u64] {
        &self.lane_words
    }

    /// True when every column of every chip has halted.
    pub fn all_halted(&self) -> bool {
        self.chips.iter().all(Chip::all_halted)
    }

    /// Kill column `column` of chip `chip` at reference tick `tick`
    /// (see [`Chip::fail_column`]).  Returns `false` if either index is
    /// out of range.
    pub fn fail_column(&mut self, chip: usize, column: usize, tick: u64) -> bool {
        self.chips
            .get_mut(chip)
            .is_some_and(|c| c.fail_column(column, tick))
    }

    /// Kill bridge lane `lane` at reference tick `tick`: every scheduled
    /// slot on the lane whose absolute tick is `>= tick` is dropped
    /// undelivered (and unaccounted).  Emits
    /// [`TraceEvent::FaultLaneKilled`], with the lane's endpoints taken
    /// from the loaded bridge program's first slot on that lane.
    pub fn fail_lane(&mut self, lane: usize, tick: u64) {
        if lane >= self.lane_dead_from.len() {
            self.lane_dead_from.resize(lane + 1, None);
        }
        let dead = self.lane_dead_from[lane].get_or_insert(tick);
        *dead = (*dead).min(tick);
        let endpoints = self
            .bridge_program
            .as_ref()
            .and_then(|s| s.program.slots.iter().find(|t| t.lane == lane))
            .map(|t| (t.from_chip as u32, t.to_chip as u32))
            .unwrap_or((0, 0));
        self.trace.emit(|| TraceEvent::FaultLaneKilled {
            lane: lane as u32,
            from_chip: endpoints.0,
            to_chip: endpoints.1,
            tick,
        });
    }

    /// True when a slot on `lane` firing at absolute tick `at` would hit
    /// dead hardware.
    fn lane_dead_at(&self, lane: usize, at: u64) -> bool {
        self.lane_dead_from
            .get(lane)
            .copied()
            .flatten()
            .is_some_and(|dead| at >= dead)
    }

    /// True when any bridge lane has been killed by a fault.
    pub fn any_lane_failed(&self) -> bool {
        self.lane_dead_from.iter().any(Option::is_some)
    }

    /// Load a statically compiled bridge schedule.  The program starts at
    /// the current board reference tick; [`Board::run`] then replays the
    /// transfers as the reference clock passes each slot's time.
    ///
    /// # Errors
    ///
    /// Returns [`synchro_bus::BusError::IndexOutOfRange`] if a slot
    /// references a chip the board does not have.
    pub fn load_bridge_program(
        &mut self,
        program: BridgeProgram,
    ) -> Result<(), synchro_bus::BusError> {
        let chips = self.chips.len();
        let mut lanes = self.lane_words.len();
        for slot in &program.slots {
            for &c in [slot.from_chip, slot.to_chip].iter() {
                if c >= chips {
                    return Err(synchro_bus::BusError::IndexOutOfRange {
                        what: "chip",
                        index: c,
                        limit: chips,
                    });
                }
            }
            lanes = lanes.max(slot.lane + 1);
        }
        self.lane_words.resize(lanes, 0);
        self.bridge_program = Some(BridgeProgramState {
            program,
            origin: self.reference_cycles,
            iteration: 0,
            next_slot: 0,
        });
        Ok(())
    }

    /// Account one bridge transfer: `cycles` occupied bridge cycles
    /// carrying `words` words over `lane`.
    fn account_transfer(&mut self, lane: usize, words: u64, cycles: u64) {
        self.bridge.active_cycles += cycles;
        self.bridge.word_transfers += words;
        self.bridge.occupied_slots += cycles;
        self.bridge.deliveries += words;
        if lane >= self.lane_words.len() {
            self.lane_words.resize(lane + 1, 0);
        }
        self.lane_words[lane] += words;
    }

    /// Issue every bridge-program slot whose absolute reference tick lies
    /// before `end`, and account each fully elapsed period's scheduled
    /// bridge cycles (mirrors the chip's bus-program drive).
    fn drive_bridge_through(&mut self, end: u64) {
        loop {
            let Some(state) = &self.bridge_program else {
                return;
            };
            if state.iteration >= state.program.iterations {
                return;
            }
            let base = state
                .origin
                .saturating_add(state.iteration.saturating_mul(state.program.period));
            if state.next_slot < state.program.slots.len() {
                let slot = &state.program.slots[state.next_slot];
                if base.saturating_add(slot.tick) >= end {
                    return;
                }
                let at = base.saturating_add(slot.tick);
                let (lane, from_chip, to_chip) = (slot.lane, slot.from_chip, slot.to_chip);
                let (words, cycles) = (slot.words, slot.cycles);
                if self.lane_dead_at(lane, at) {
                    // Dead lane: the slot is consumed but delivers nothing.
                    let state = self.bridge_program.as_mut().expect("still loaded");
                    state.next_slot += 1;
                    continue;
                }
                self.account_transfer(lane, words, cycles);
                self.trace.emit(|| TraceEvent::BridgeTransfer {
                    lane: lane as u32,
                    from_chip: from_chip as u32,
                    to_chip: to_chip as u32,
                    tick: at,
                    words,
                    count: 1,
                });
                let state = self.bridge_program.as_mut().expect("still loaded");
                state.next_slot += 1;
            } else if base.saturating_add(state.program.period) <= end {
                let scheduled = state.program.scheduled_slots_per_period;
                self.bridge.scheduled_slots += scheduled;
                let state = self.bridge_program.as_mut().expect("still loaded");
                state.iteration += 1;
                state.next_slot = 0;
            } else {
                return;
            }
        }
    }

    /// Drive the loaded bridge program to completion regardless of how far
    /// the reference clock has advanced — the drain step a board driver
    /// calls once every chip has halted.
    ///
    /// Idempotent: a finished (or absent) program is a no-op.
    pub fn finish_bridge_program(&mut self) {
        self.drive_bridge_through(u64::MAX);
    }

    /// The batched equivalent of [`Board::finish_bridge_program`]: drain
    /// every remaining period in O(slots per period) work.  Statistics are
    /// bit-identical to the per-period replay by the linearity of the
    /// accounting — replaying a slot across `n` periods moves `n × words`
    /// words and occupies `n × cycles` bridge cycles.  This is the tail
    /// drain the fast execution tier uses.
    ///
    /// Idempotent: a finished (or absent) program is a no-op, and a
    /// subsequent [`Board::finish_bridge_program`] sees a completed
    /// program.
    pub fn finish_bridge_program_batched(&mut self) {
        // With a dead lane the per-slot linearity breaks (slots before the
        // fault tick deliver, later ones don't), so fall back to the
        // per-period replay — faulted runs take the interpreted path
        // anyway, this keeps the drain correct for any caller.
        if self.any_lane_failed() {
            self.finish_bridge_program();
            return;
        }
        let Some(state) = self.bridge_program.take() else {
            return;
        };
        let BridgeProgramState {
            program,
            origin,
            mut iteration,
            mut next_slot,
        } = state;
        if iteration < program.iterations {
            // Pending slots of the current (possibly partial) period.
            let base = origin.saturating_add(iteration.saturating_mul(program.period));
            for i in next_slot..program.slots.len() {
                let slot = program.slots[i].clone();
                self.account_transfer(slot.lane, slot.words, slot.cycles);
                self.trace.emit(|| TraceEvent::BridgeTransfer {
                    lane: slot.lane as u32,
                    from_chip: slot.from_chip as u32,
                    to_chip: slot.to_chip as u32,
                    tick: base.saturating_add(slot.tick),
                    words: slot.words,
                    count: 1,
                });
            }
            // All remaining full periods, one bulk charge per slot and one
            // batched trace event per slot (normalizes to the per-period
            // replay's one-event-per-transfer stream).
            let full = program.iterations - iteration - 1;
            if full > 0 {
                let last_base =
                    origin.saturating_add((program.iterations - 1).saturating_mul(program.period));
                for slot in program.slots.clone() {
                    self.account_transfer(slot.lane, slot.words * full, slot.cycles * full);
                    self.trace.emit(|| TraceEvent::BridgeTransfer {
                        lane: slot.lane as u32,
                        from_chip: slot.from_chip as u32,
                        to_chip: slot.to_chip as u32,
                        tick: last_base.saturating_add(slot.tick),
                        words: slot.words * full,
                        count: full,
                    });
                }
            }
            self.bridge.scheduled_slots +=
                program.scheduled_slots_per_period * (program.iterations - iteration);
            iteration = program.iterations;
            next_slot = 0;
        }
        self.bridge_program = Some(BridgeProgramState {
            program,
            origin,
            iteration,
            next_slot,
        });
    }

    /// Co-advance the fleet by up to `max_ticks` board reference ticks:
    /// every chip runs to the common absolute reference target (each with
    /// its own event-driven driver, so the per-chip statistics are
    /// bit-identical to running it alone), then the board clock moves to
    /// the fleet's frontier and the bridge schedule replays up to it.
    /// Returns the board reference ticks consumed.
    ///
    /// A fully halted fleet consumes no ticks — like a single chip, the
    /// remaining bridge slots are drained by
    /// [`Board::finish_bridge_program`].
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn run(&mut self, max_ticks: u64) -> Result<u64, ColumnError> {
        let start = self.reference_cycles;
        let end = start.saturating_add(max_ticks);
        for chip in &mut self.chips {
            let now = chip.stats().reference_cycles;
            if now < end && !chip.all_halted() {
                chip.run(end - now)?;
            }
        }
        let frontier = self
            .chips
            .iter()
            .map(|c| c.stats().reference_cycles)
            .max()
            .unwrap_or(start);
        if frontier > self.reference_cycles {
            self.reference_cycles = frontier;
        }
        self.drive_bridge_through(self.reference_cycles);
        Ok(self.reference_cycles - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnConfig};
    use synchro_isa::assemble;

    fn counting_column(iterations: u32, divider: u32) -> Column {
        let src = format!("loop {iterations}, 2\nli r0, 1\nadd r1, r1, r0\nhalt\n");
        let program = assemble(&src).unwrap();
        let config = ColumnConfig {
            tiles: 1,
            clock_divider: divider,
            voltage: 1.0,
            enabled_tiles: vec![true],
            rate_matcher: None,
        };
        Column::new(config, program, None)
    }

    fn one_column_chip(iterations: u32, divider: u32) -> Chip {
        let mut chip = Chip::new();
        chip.add_column(counting_column(iterations, divider));
        chip
    }

    fn two_chip_board() -> Board {
        let mut board = Board::new();
        board.add_chip(one_column_chip(4, 1));
        board.add_chip(one_column_chip(2, 3));
        board
    }

    fn bridge_program(iterations: u64) -> BridgeProgram {
        BridgeProgram::new(
            8,
            iterations,
            2 * 8,
            vec![
                BridgeTransfer {
                    tick: 0,
                    lane: 0,
                    from_chip: 0,
                    to_chip: 1,
                    words: 2,
                    cycles: 2,
                },
                BridgeTransfer {
                    tick: 4,
                    lane: 1,
                    from_chip: 1,
                    to_chip: 0,
                    words: 1,
                    cycles: 1,
                },
            ],
        )
    }

    #[test]
    fn chips_co_advance_in_reference_time() {
        let mut board = two_chip_board();
        board.run(100).unwrap();
        assert!(board.all_halted());
        // Chip 0 (divider 1) halts early; chip 1 (divider 3) runs longer.
        let r0 = board.chip(0).unwrap().stats().reference_cycles;
        let r1 = board.chip(1).unwrap().stats().reference_cycles;
        assert!(r0 < r1, "{r0} vs {r1}");
        assert_eq!(board.reference_cycles(), r0.max(r1));
        // A halted fleet consumes no further ticks.
        assert_eq!(board.run(10).unwrap(), 0);
    }

    #[test]
    fn bridge_program_replays_like_a_bus_program() {
        let mut board = two_chip_board();
        board.load_bridge_program(bridge_program(3)).unwrap();
        board.run(u64::MAX).unwrap();
        board.finish_bridge_program();
        let stats = board.bridge_stats();
        assert_eq!(stats.word_transfers, 3 * 3);
        assert_eq!(stats.occupied_slots, 3 * 3);
        assert_eq!(stats.scheduled_slots, 3 * 16);
        assert_eq!(board.lane_words(), &[6, 3]);
    }

    #[test]
    fn batched_drain_is_bit_identical_to_replay() {
        let mut interpreted = two_chip_board();
        interpreted.load_bridge_program(bridge_program(5)).unwrap();
        interpreted.run(u64::MAX).unwrap();
        interpreted.finish_bridge_program();

        let mut batched = two_chip_board();
        batched.load_bridge_program(bridge_program(5)).unwrap();
        batched.run(u64::MAX).unwrap();
        batched.finish_bridge_program_batched();

        assert_eq!(interpreted.bridge_stats(), batched.bridge_stats());
        assert_eq!(interpreted.lane_words(), batched.lane_words());
        // Idempotent, and the two drains compose.
        batched.finish_bridge_program();
        batched.finish_bridge_program_batched();
        assert_eq!(interpreted.bridge_stats(), batched.bridge_stats());
    }

    #[test]
    fn partial_progress_then_batched_drain_matches() {
        let mut replayed = two_chip_board();
        replayed.load_bridge_program(bridge_program(4)).unwrap();
        replayed.run(u64::MAX).unwrap();
        replayed.finish_bridge_program();

        // Fire only a prefix by hand, then drain the rest in bulk.
        let mut mixed = two_chip_board();
        mixed.load_bridge_program(bridge_program(4)).unwrap();
        mixed.drive_bridge_through(13); // first period + slot 0 of second
        mixed.finish_bridge_program_batched();
        assert_eq!(replayed.bridge_stats(), mixed.bridge_stats());
        assert_eq!(replayed.lane_words(), mixed.lane_words());
    }

    #[test]
    fn dead_lane_drops_slots_from_the_fault_tick_on() {
        let mut board = two_chip_board();
        board.load_bridge_program(bridge_program(3)).unwrap();
        // Lane 0 fires at ticks 0, 8, 16; kill it before the second firing.
        board.fail_lane(0, 5);
        assert!(board.any_lane_failed());
        board.run(u64::MAX).unwrap();
        board.finish_bridge_program();
        // Only lane 0's tick-0 slot delivered; lane 1 is untouched.
        assert_eq!(board.lane_words(), &[2, 3]);
        let stats = board.bridge_stats();
        assert_eq!(stats.word_transfers, 2 + 3);
        // Scheduled slots are still reserved — the TDM frame does not
        // shrink because a lane died.
        assert_eq!(stats.scheduled_slots, 3 * 16);
        // The batched drain falls back to the replay under a dead lane.
        let mut batched = two_chip_board();
        batched.load_bridge_program(bridge_program(3)).unwrap();
        batched.fail_lane(0, 5);
        batched.run(u64::MAX).unwrap();
        batched.finish_bridge_program_batched();
        assert_eq!(batched.bridge_stats(), stats);
        assert_eq!(batched.lane_words(), board.lane_words());
    }

    #[test]
    fn failed_board_column_prevents_all_halted() {
        let mut board = two_chip_board();
        assert!(board.fail_column(1, 0, 0));
        assert!(!board.fail_column(5, 0, 0));
        board.run(1_000).unwrap();
        assert!(!board.all_halted());
        assert!(board.chip(0).unwrap().all_halted());
        assert!(board.chip(1).unwrap().any_failed());
    }

    #[test]
    fn load_rejects_out_of_range_chips() {
        let mut board = Board::new();
        board.add_chip(one_column_chip(1, 1));
        let program = BridgeProgram::new(
            4,
            1,
            4,
            vec![BridgeTransfer {
                tick: 0,
                lane: 0,
                from_chip: 0,
                to_chip: 1,
                words: 1,
                cycles: 1,
            }],
        );
        assert!(board.load_bridge_program(program).is_err());
    }
}
