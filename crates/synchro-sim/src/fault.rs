//! Deterministic runtime fault injection.
//!
//! A [`FaultPlan`] is a list of hardware-loss events pinned to reference
//! ticks: at tick N a column dies (it stops executing and billing cycles
//! but never reports halted — the paper's static schedules have no
//! recovery path, so the rest of the chip starves) or a bridge lane dies
//! (slots scheduled on it from that tick on are dropped undelivered).
//! Both execution tiers consume the same plan with the same firing rule —
//! an event fires iff the machine has not fully halted when its tick is
//! reached — so a faulted run stays bit-identical across tiers up to the
//! injection point and agrees on the structured [`SimFault`] outcome.

use std::error::Error;
use std::fmt;

/// The hardware resource a [`FaultEvent`] kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A whole SIMD column: from the event tick on it executes nothing
    /// and bills no cycles, but never halts.
    Column {
        /// Board chip index.
        chip: usize,
        /// Column index within the chip.
        column: usize,
    },
    /// A chip-to-chip bridge lane: slots scheduled on it at or after the
    /// event tick are dropped undelivered.
    BridgeLane {
        /// Bridge lane index (the board spec's lane order).
        lane: usize,
    },
}

/// One scheduled hardware loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Reference tick the fault fires at (if the machine is still live).
    pub at_tick: u64,
    /// What dies.
    pub target: FaultTarget,
}

/// A deterministic injection schedule: fault events sorted by tick.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan — running with it is exactly the un-faulted run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedule a column kill at reference tick `at_tick`.
    pub fn kill_column(&mut self, chip: usize, column: usize, at_tick: u64) -> &mut Self {
        self.push(FaultEvent {
            at_tick,
            target: FaultTarget::Column { chip, column },
        });
        self
    }

    /// Schedule a bridge-lane kill at reference tick `at_tick`.
    pub fn kill_lane(&mut self, lane: usize, at_tick: u64) -> &mut Self {
        self.push(FaultEvent {
            at_tick,
            target: FaultTarget::BridgeLane { lane },
        });
        self
    }

    fn push(&mut self, event: FaultEvent) {
        let at = self.events.partition_point(|e| e.at_tick <= event.at_tick);
        self.events.insert(at, event);
    }

    /// True when no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, sorted by tick.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The earliest scheduled tick, if any.
    pub fn first_tick(&self) -> Option<u64> {
        self.events.first().map(|e| e.at_tick)
    }
}

/// The structured outcome of a run that could not complete because of
/// injected (or modelled) hardware loss — returned instead of wedging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFault {
    /// The starvation watchdog saw zero column, bus, and bridge progress
    /// across a full observation window while columns were still live.
    Stalled {
        /// Reference tick the run was abandoned at.
        reference_cycles: u64,
        /// Watchdog window (reference ticks) that observed no progress.
        window: u64,
    },
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::Stalled {
                reference_cycles,
                window,
            } => write!(
                f,
                "simulation stalled at reference tick {reference_cycles}: no progress \
                 across a {window}-tick watchdog window"
            ),
        }
    }
}

impl Error for SimFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_events_by_tick_and_keep_insertion_order_on_ties() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.first_tick(), None);
        plan.kill_lane(1, 500)
            .kill_column(0, 2, 100)
            .kill_column(1, 0, 500);
        assert!(!plan.is_empty());
        assert_eq!(plan.first_tick(), Some(100));
        let ticks: Vec<u64> = plan.events().iter().map(|e| e.at_tick).collect();
        assert_eq!(ticks, vec![100, 500, 500]);
        // Ties keep insertion order: the lane kill was scheduled first.
        assert_eq!(plan.events()[1].target, FaultTarget::BridgeLane { lane: 1 });
    }

    #[test]
    fn sim_fault_display_names_the_stall_point() {
        let fault = SimFault::Stalled {
            reference_cycles: 1440,
            window: 720,
        };
        let text = fault.to_string();
        assert!(text.contains("1440") && text.contains("720"), "{text}");
    }
}
