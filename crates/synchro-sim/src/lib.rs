//! Cycle-accurate whole-chip simulation of Synchroscalar.
//!
//! A [`Chip`] is a set of [`Column`]s, each with its own clock divider
//! (Section 2.4: every column's clock is rationally related to the
//! reference clock), a SIMD controller, four tiles, a DOU and a segmented
//! vertical bus, plus one horizontal inter-column bus.  The simulator steps
//! the reference clock; a column advances on the reference ticks its
//! divider selects, so two columns with dividers 2 and 5 run at exactly
//! 1/2 and 1/5 of the reference frequency — no asynchronous FIFOs are
//! modelled, matching the paper's rationally-related-clocks design point.
//!
//! The principal output is cycle counts (per column and per chip), which
//! the mapping methodology converts into the frequency each column must
//! run at and hence, via `synchro-power`, into power.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod chip;
pub mod column;
pub mod fast;
pub mod fault;

pub use board::{Board, BridgeProgram, BridgeTransfer};
pub use chip::{BusProgram, BusSlot, Chip, ChipStats};
pub use column::{Column, ColumnConfig, ColumnError, ColumnStats};
pub use fast::{ColumnBatch, FastTier, FastTierError, FiringProfile};
pub use fault::{FaultEvent, FaultPlan, FaultTarget, SimFault};
