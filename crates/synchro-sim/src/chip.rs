//! The whole chip: columns in rationally-related clock domains plus the
//! horizontal inter-column bus.

use crate::column::{Column, ColumnError, ColumnStats};
use synchro_bus::{BusStats, HorizontalBus};

/// Chip-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChipStats {
    /// Reference-clock ticks simulated.
    pub reference_cycles: u64,
    /// Sum of column clock cycles actually executed.
    pub column_cycles: u64,
    /// Horizontal bus traffic.
    pub horizontal_transfers: u64,
}

/// A Synchroscalar chip: a set of columns, each in its own clock (and
/// voltage) domain, connected by one horizontal bus.
#[derive(Debug, Default)]
pub struct Chip {
    columns: Vec<Column>,
    horizontal: Option<HorizontalBus>,
    stats: ChipStats,
}

impl Chip {
    /// An empty chip.
    pub fn new() -> Self {
        Chip::default()
    }

    /// Add a column; returns its index.
    pub fn add_column(&mut self, column: Column) -> usize {
        self.columns.push(column);
        self.horizontal = Some(HorizontalBus::new(self.columns.len()));
        self.columns.len() - 1
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Access a column.
    pub fn column(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// Mutable access to a column (e.g. to stage tile memories).
    pub fn column_mut(&mut self, index: usize) -> Option<&mut Column> {
        self.columns.get_mut(index)
    }

    /// Record one inter-column transfer on the horizontal bus (the DOUs of
    /// the producing and consuming columns coordinate the actual word
    /// movement; the chip model accounts the traffic for the power model).
    ///
    /// # Errors
    ///
    /// Returns an error if a column index is out of range.
    pub fn horizontal_transfer(
        &mut self,
        from: usize,
        to: &[usize],
    ) -> Result<(), synchro_bus::BusError> {
        let bus = self
            .horizontal
            .get_or_insert_with(|| HorizontalBus::new(self.columns.len().max(1)));
        bus.transfer(from, to)?;
        self.stats.horizontal_transfers += 1;
        Ok(())
    }

    /// Horizontal bus statistics, if any column exists.
    pub fn horizontal_stats(&self) -> Option<BusStats> {
        self.horizontal.as_ref().map(HorizontalBus::stats)
    }

    /// True when every column has halted.
    pub fn all_halted(&self) -> bool {
        self.columns.iter().all(Column::is_halted)
    }

    /// Chip statistics so far.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// Per-column statistics.
    pub fn column_stats(&self) -> Vec<ColumnStats> {
        self.columns.iter().map(Column::stats).collect()
    }

    /// Advance the reference clock by one tick.  Each column steps only on
    /// ticks its clock divider selects, so a column with divider `d` runs
    /// at exactly `1/d` of the reference frequency.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn tick(&mut self) -> Result<(), ColumnError> {
        let tick_index = self.stats.reference_cycles;
        self.stats.reference_cycles += 1;
        for column in &mut self.columns {
            let divider = u64::from(column.config().clock_divider.max(1));
            if tick_index.is_multiple_of(divider) && !column.is_halted() {
                column.step()?;
                self.stats.column_cycles += 1;
            }
        }
        Ok(())
    }

    /// Run the reference clock until every column halts or `max_ticks`
    /// elapse.  Returns the number of reference ticks consumed.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn run(&mut self, max_ticks: u64) -> Result<u64, ColumnError> {
        let start = self.stats.reference_cycles;
        for _ in 0..max_ticks {
            if self.all_halted() {
                break;
            }
            self.tick()?;
        }
        Ok(self.stats.reference_cycles - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnConfig;
    use synchro_isa::{assemble, DataReg};

    fn counting_column(iterations: u32, divider: u32) -> Column {
        let src = format!("loop {iterations}, 2\nli r0, 1\nadd r1, r1, r0\nhalt\n");
        let program = assemble(&src).unwrap();
        Column::new(
            ColumnConfig::isca2004().with_divider(divider),
            program,
            None,
        )
    }

    #[test]
    fn clock_dividers_give_rationally_related_rates() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(10, 1));
        chip.add_column(counting_column(10, 2));
        chip.add_column(counting_column(10, 5));
        // Run a fixed window shorter than any program's completion.
        for _ in 0..10 {
            chip.tick().unwrap();
        }
        let stats = chip.column_stats();
        assert_eq!(stats[0].cycles, 10);
        assert_eq!(stats[1].cycles, 5);
        assert_eq!(stats[2].cycles, 2);
        assert_eq!(chip.stats().reference_cycles, 10);
        assert_eq!(chip.stats().column_cycles, 17);
    }

    #[test]
    fn run_stops_when_all_columns_halt() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(3, 1));
        chip.add_column(counting_column(3, 2));
        let ticks = chip.run(1000).unwrap();
        assert!(chip.all_halted());
        assert!(ticks < 1000);
        // Both columns computed the same result despite different clocks.
        let r1 = chip
            .column(0)
            .unwrap()
            .tile(0)
            .unwrap()
            .reg(DataReg::new(1));
        let r2 = chip
            .column(1)
            .unwrap()
            .tile(0)
            .unwrap()
            .reg(DataReg::new(1));
        assert_eq!(r1, 3);
        assert_eq!(r1, r2);
    }

    #[test]
    fn slower_column_takes_proportionally_more_reference_ticks() {
        let mut fast = Chip::new();
        fast.add_column(counting_column(50, 1));
        let fast_ticks = fast.run(100_000).unwrap();

        let mut slow = Chip::new();
        slow.add_column(counting_column(50, 4));
        let slow_ticks = slow.run(100_000).unwrap();

        // The divider-4 column needs ~4× the reference ticks.
        let ratio = slow_ticks as f64 / fast_ticks as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn horizontal_bus_accounts_inter_column_traffic() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(1, 1));
        chip.add_column(counting_column(1, 1));
        chip.horizontal_transfer(0, &[1]).unwrap();
        chip.horizontal_transfer(1, &[0]).unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 2);
        let bus = chip.horizontal_stats().unwrap();
        assert_eq!(bus.word_transfers, 2);
        assert!(chip.horizontal_transfer(5, &[0]).is_err());
    }

    #[test]
    fn empty_chip_is_trivially_halted() {
        let mut chip = Chip::new();
        assert!(chip.all_halted());
        assert_eq!(chip.run(10).unwrap(), 0);
        assert_eq!(chip.columns(), 0);
        assert!(chip.horizontal_stats().is_none());
    }
}
