//! The whole chip: columns in rationally-related clock domains plus the
//! horizontal inter-column bus.

use crate::column::{Column, ColumnError, ColumnStats};
use synchro_bus::{BusStats, HorizontalBus};

/// Chip-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChipStats {
    /// Reference-clock ticks simulated.
    pub reference_cycles: u64,
    /// Sum of column clock cycles actually executed.
    pub column_cycles: u64,
    /// Horizontal bus traffic.
    pub horizontal_transfers: u64,
}

/// A Synchroscalar chip: a set of columns, each in its own clock (and
/// voltage) domain, connected by one horizontal bus.
#[derive(Debug, Default)]
pub struct Chip {
    columns: Vec<Column>,
    horizontal: Option<HorizontalBus>,
    stats: ChipStats,
    run_loop_iterations: u64,
}

impl Chip {
    /// An empty chip.
    pub fn new() -> Self {
        Chip::default()
    }

    /// Add a column; returns its index.  The horizontal bus grows to span
    /// the new column while keeping any traffic statistics it has already
    /// accumulated.
    pub fn add_column(&mut self, column: Column) -> usize {
        self.columns.push(column);
        let columns = self.columns.len();
        match &mut self.horizontal {
            Some(bus) => bus.resize(columns),
            None => self.horizontal = Some(HorizontalBus::new(columns)),
        }
        columns - 1
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Access a column.
    pub fn column(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// Mutable access to a column (e.g. to stage tile memories).
    pub fn column_mut(&mut self, index: usize) -> Option<&mut Column> {
        self.columns.get_mut(index)
    }

    /// Record one inter-column transfer on the horizontal bus (the DOUs of
    /// the producing and consuming columns coordinate the actual word
    /// movement; the chip model accounts the traffic for the power model).
    ///
    /// # Errors
    ///
    /// Returns an error if a column index is out of range — including any
    /// transfer on a chip with no columns at all.
    pub fn horizontal_transfer(
        &mut self,
        from: usize,
        to: &[usize],
    ) -> Result<(), synchro_bus::BusError> {
        self.horizontal_transfer_words(from, to, 1)
    }

    /// Record `words` back-to-back inter-column transfers in one call —
    /// statistics-equivalent to `words` [`Chip::horizontal_transfer`]
    /// calls, without the loop (bulk accounting for statically scheduled
    /// traffic).
    ///
    /// # Errors
    ///
    /// Returns an error if a column index is out of range — including any
    /// transfer on a chip with no columns at all.
    pub fn horizontal_transfer_words(
        &mut self,
        from: usize,
        to: &[usize],
        words: u64,
    ) -> Result<(), synchro_bus::BusError> {
        // `horizontal` is `Some` exactly when at least one column exists; a
        // zero-column chip has no bus to transfer on.
        let Some(bus) = self.horizontal.as_mut() else {
            return Err(synchro_bus::BusError::IndexOutOfRange {
                what: "column",
                index: from,
                limit: 0,
            });
        };
        bus.transfer_words(from, to, words)?;
        self.stats.horizontal_transfers += words;
        Ok(())
    }

    /// Horizontal bus statistics, if any column exists.
    pub fn horizontal_stats(&self) -> Option<BusStats> {
        self.horizontal.as_ref().map(HorizontalBus::stats)
    }

    /// True when every column has halted.
    pub fn all_halted(&self) -> bool {
        self.columns.iter().all(Column::is_halted)
    }

    /// Chip statistics so far.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// Per-column statistics.
    pub fn column_stats(&self) -> Vec<ColumnStats> {
        self.columns.iter().map(Column::stats).collect()
    }

    /// Advance the reference clock by one tick.  Each column steps only on
    /// ticks its clock divider selects, so a column with divider `d` runs
    /// at exactly `1/d` of the reference frequency.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn tick(&mut self) -> Result<(), ColumnError> {
        let tick_index = self.stats.reference_cycles;
        self.stats.reference_cycles += 1;
        for column in &mut self.columns {
            // `Column::new` guarantees `clock_divider >= 1`.
            let divider = u64::from(column.config().clock_divider);
            if tick_index.is_multiple_of(divider) && !column.is_halted() {
                let before = column.stats().cycles;
                column.step()?;
                // A step that only observes the HALT executes no cycle.
                self.stats.column_cycles += column.stats().cycles - before;
            }
        }
        Ok(())
    }

    /// Run the reference clock until every column halts or `max_ticks`
    /// elapse, skipping ahead over reference ticks on which no column's
    /// clock divider fires.  Returns the number of reference ticks
    /// consumed.
    ///
    /// This is an event-driven fast path: with large or co-prime dividers
    /// most reference ticks select no column at all, and walking them one
    /// by one costs O(ticks × columns).  The produced [`ChipStats`] are
    /// bit-identical to the naive loop ([`Chip::run_ticked`]), which is
    /// kept as the differential-testing reference.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn run(&mut self, max_ticks: u64) -> Result<u64, ColumnError> {
        let start = self.stats.reference_cycles;
        let end = start.saturating_add(max_ticks);
        while self.stats.reference_cycles < end {
            self.run_loop_iterations += 1;
            if self.all_halted() {
                break;
            }
            let now = self.stats.reference_cycles;
            // The earliest tick >= now at which a live column fires.
            let next_event = self
                .columns
                .iter()
                .filter(|c| !c.is_halted())
                .map(|c| {
                    let divider = u64::from(c.config().clock_divider);
                    now.div_ceil(divider) * divider
                })
                .min();
            match next_event {
                Some(at) if at < end => {
                    // Ticks in (now, at) select nobody; account them in bulk.
                    self.stats.reference_cycles = at;
                    self.tick()?;
                }
                // No live column fires inside the window: the remaining
                // ticks are all empty.
                _ => {
                    self.stats.reference_cycles = end;
                    break;
                }
            }
        }
        Ok(self.stats.reference_cycles - start)
    }

    /// The naive tick-by-tick equivalent of [`Chip::run`], kept as the
    /// differential-testing and benchmarking reference for the
    /// event-driven fast path.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn run_ticked(&mut self, max_ticks: u64) -> Result<u64, ColumnError> {
        let start = self.stats.reference_cycles;
        for _ in 0..max_ticks {
            self.run_loop_iterations += 1;
            if self.all_halted() {
                break;
            }
            self.tick()?;
        }
        Ok(self.stats.reference_cycles - start)
    }

    /// Total scheduler-loop iterations executed by [`Chip::run`] and
    /// [`Chip::run_ticked`] so far — the work metric the event-driven fast
    /// path reduces (it is *not* part of [`ChipStats`], which both paths
    /// produce identically).
    pub fn run_loop_iterations(&self) -> u64 {
        self.run_loop_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnConfig;
    use synchro_isa::{assemble, DataReg};

    fn counting_column(iterations: u32, divider: u32) -> Column {
        let src = format!("loop {iterations}, 2\nli r0, 1\nadd r1, r1, r0\nhalt\n");
        let program = assemble(&src).unwrap();
        Column::new(
            ColumnConfig::isca2004().with_divider(divider),
            program,
            None,
        )
    }

    #[test]
    fn clock_dividers_give_rationally_related_rates() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(10, 1));
        chip.add_column(counting_column(10, 2));
        chip.add_column(counting_column(10, 5));
        // Run a fixed window shorter than any program's completion.
        for _ in 0..10 {
            chip.tick().unwrap();
        }
        let stats = chip.column_stats();
        assert_eq!(stats[0].cycles, 10);
        assert_eq!(stats[1].cycles, 5);
        assert_eq!(stats[2].cycles, 2);
        assert_eq!(chip.stats().reference_cycles, 10);
        assert_eq!(chip.stats().column_cycles, 17);
    }

    #[test]
    fn run_stops_when_all_columns_halt() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(3, 1));
        chip.add_column(counting_column(3, 2));
        let ticks = chip.run(1000).unwrap();
        assert!(chip.all_halted());
        assert!(ticks < 1000);
        // Exact cycle accounting: 3 iterations × 2 instructions, and the
        // step that merely observes the HALT is not billed.
        let stats = chip.column_stats();
        assert_eq!(stats[0].cycles, 6);
        assert_eq!(stats[1].cycles, 6);
        assert_eq!(chip.stats().column_cycles, 12);
        // Both columns computed the same result despite different clocks.
        let r1 = chip
            .column(0)
            .unwrap()
            .tile(0)
            .unwrap()
            .reg(DataReg::new(1));
        let r2 = chip
            .column(1)
            .unwrap()
            .tile(0)
            .unwrap()
            .reg(DataReg::new(1));
        assert_eq!(r1, 3);
        assert_eq!(r1, r2);
    }

    #[test]
    fn slower_column_takes_proportionally_more_reference_ticks() {
        let mut fast = Chip::new();
        fast.add_column(counting_column(50, 1));
        let fast_ticks = fast.run(100_000).unwrap();

        let mut slow = Chip::new();
        slow.add_column(counting_column(50, 4));
        let slow_ticks = slow.run(100_000).unwrap();

        // The divider-4 column needs ~4× the reference ticks.
        let ratio = slow_ticks as f64 / fast_ticks as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn horizontal_bus_accounts_inter_column_traffic() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(1, 1));
        chip.add_column(counting_column(1, 1));
        chip.horizontal_transfer(0, &[1]).unwrap();
        chip.horizontal_transfer(1, &[0]).unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 2);
        let bus = chip.horizontal_stats().unwrap();
        assert_eq!(bus.word_transfers, 2);
        assert!(chip.horizontal_transfer(5, &[0]).is_err());
    }

    #[test]
    fn empty_chip_is_trivially_halted() {
        let mut chip = Chip::new();
        assert!(chip.all_halted());
        assert_eq!(chip.run(10).unwrap(), 0);
        assert_eq!(chip.columns(), 0);
        assert!(chip.horizontal_stats().is_none());
    }

    #[test]
    fn adding_a_column_preserves_horizontal_bus_stats() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(1, 1));
        chip.add_column(counting_column(1, 1));
        chip.horizontal_transfer(0, &[1]).unwrap();
        chip.horizontal_transfer(1, &[0]).unwrap();
        let before = chip.horizontal_stats().unwrap();
        assert_eq!(before.word_transfers, 2);

        // Adding a third column after traffic has occurred must keep the
        // accumulated statistics and span the newcomer.
        chip.add_column(counting_column(1, 1));
        let after = chip.horizontal_stats().unwrap();
        assert_eq!(after, before, "bus stats were discarded by add_column");
        chip.horizontal_transfer(2, &[0, 1]).unwrap();
        assert_eq!(chip.horizontal_stats().unwrap().word_transfers, 3);
        assert_eq!(chip.stats().horizontal_transfers, 3);
    }

    #[test]
    fn zero_column_chip_rejects_horizontal_transfers() {
        let mut chip = Chip::new();
        let err = chip.horizontal_transfer(0, &[]).unwrap_err();
        assert!(matches!(
            err,
            synchro_bus::BusError::IndexOutOfRange { limit: 0, .. }
        ));
        assert_eq!(chip.stats().horizontal_transfers, 0);
        assert!(chip.horizontal_stats().is_none());
    }

    #[test]
    fn event_driven_run_matches_ticked_run_bit_for_bit() {
        let build = || {
            let mut chip = Chip::new();
            chip.add_column(counting_column(40, 3));
            chip.add_column(counting_column(25, 7));
            chip.add_column(counting_column(10, 16));
            chip
        };
        let mut fast = build();
        let mut slow = build();
        let fast_ticks = fast.run(10_000).unwrap();
        let slow_ticks = slow.run_ticked(10_000).unwrap();
        assert_eq!(fast_ticks, slow_ticks);
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.column_stats(), slow.column_stats());
        assert!(fast.all_halted() && slow.all_halted());
        // The fast path touches far fewer scheduler iterations on a
        // divider-heavy mix.
        assert!(
            fast.run_loop_iterations() < slow.run_loop_iterations() / 2,
            "fast {} vs ticked {}",
            fast.run_loop_iterations(),
            slow.run_loop_iterations()
        );
    }

    #[test]
    fn event_driven_run_burns_empty_windows_exactly() {
        // A single divider-1000 column: a 500-tick window contains one
        // firing tick (tick 0) and 499 empty ticks, all of which must be
        // accounted in the reference-cycle counter.
        let mut chip = Chip::new();
        chip.add_column(counting_column(1000, 1000));
        assert_eq!(chip.run(500).unwrap(), 500);
        assert_eq!(chip.stats().reference_cycles, 500);
        assert_eq!(chip.column_stats()[0].cycles, 1);
        // A second window starts mid-period and fires at tick 1000.
        assert_eq!(chip.run(600).unwrap(), 600);
        assert_eq!(chip.column_stats()[0].cycles, 2);
    }
}
