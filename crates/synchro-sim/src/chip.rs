//! The whole chip: columns in rationally-related clock domains plus the
//! horizontal inter-column bus.

use crate::column::{Column, ColumnError, ColumnStats};
use synchro_bus::{BusStats, HorizontalBus};
use synchro_trace::{Trace, TraceEvent};

/// Chip-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChipStats {
    /// Reference-clock ticks simulated.
    pub reference_cycles: u64,
    /// Sum of column clock cycles actually executed.
    pub column_cycles: u64,
    /// Horizontal bus traffic.
    pub horizontal_transfers: u64,
}

/// One scheduled transfer of a [`BusProgram`]: `words` back-to-back words
/// from column `from` to columns `to`, issued when the reference clock
/// passes `tick` (an offset within the program's period).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusSlot {
    /// Reference-tick offset within the period at which the slot fires.
    pub tick: u64,
    /// Producing column.
    pub from: usize,
    /// Consuming columns.
    pub to: Vec<usize>,
    /// Words transferred back to back.
    pub words: u64,
}

/// A periodic, statically compiled horizontal-bus schedule: `slots` fire
/// every `period` reference ticks, `iterations` times in total.  This is
/// how a TDM route schedule drives the chip's [`HorizontalBus`]
/// cycle-by-cycle instead of having a driver bill aggregate words after
/// the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusProgram {
    period: u64,
    iterations: u64,
    /// TDM slots the schedule reserves per period (`splits × bus cycles`),
    /// accounted into [`BusStats::scheduled_slots`] as periods complete so
    /// the idle/occupied split survives for the power calibration.
    scheduled_slots_per_period: u64,
    slots: Vec<BusSlot>,
}

impl BusProgram {
    /// Build a program.  `slots` must be sorted by `tick` and lie inside
    /// `period`; `iterations` is the number of periods the program runs.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, slots are unsorted, or a slot's tick
    /// falls outside the period (all indicate a broken schedule compiler).
    pub fn new(
        period: u64,
        iterations: u64,
        scheduled_slots_per_period: u64,
        slots: Vec<BusSlot>,
    ) -> Self {
        assert!(period > 0, "a bus program needs a positive period");
        assert!(
            slots.windows(2).all(|w| w[0].tick <= w[1].tick),
            "bus program slots must be sorted by tick"
        );
        assert!(
            slots.iter().all(|s| s.tick < period),
            "bus program slots must fire within the period"
        );
        BusProgram {
            period,
            iterations,
            scheduled_slots_per_period,
            slots,
        }
    }

    /// Reference ticks per period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Periods the program runs.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The slots of one period.
    pub fn slots(&self) -> &[BusSlot] {
        &self.slots
    }

    /// Words the program transfers per period.
    pub fn words_per_period(&self) -> u64 {
        self.slots.iter().map(|s| s.words).sum()
    }
}

/// Progress of a loaded bus program: which period and which slot within
/// it fires next, relative to the reference tick the program was loaded
/// at.
#[derive(Debug)]
struct BusProgramState {
    program: BusProgram,
    origin: u64,
    iteration: u64,
    next_slot: usize,
}

/// A Synchroscalar chip: a set of columns, each in its own clock (and
/// voltage) domain, connected by one horizontal bus.
#[derive(Debug, Default)]
pub struct Chip {
    columns: Vec<Column>,
    horizontal: Option<HorizontalBus>,
    bus_program: Option<BusProgramState>,
    stats: ChipStats,
    run_loop_iterations: u64,
    trace: Trace,
    chip_id: u32,
}

impl Chip {
    /// An empty chip.
    pub fn new() -> Self {
        Chip::default()
    }

    /// Add a column; returns its index.  The horizontal bus grows to span
    /// the new column while keeping any traffic statistics it has already
    /// accumulated.
    pub fn add_column(&mut self, mut column: Column) -> usize {
        let index = self.columns.len();
        if self.trace.enabled() {
            column.set_trace(self.trace.clone(), self.chip_id, index as u32);
        }
        self.columns.push(column);
        let columns = self.columns.len();
        match &mut self.horizontal {
            Some(bus) => bus.resize(columns),
            None => self.horizontal = Some(HorizontalBus::new(columns)),
        }
        index
    }

    /// Install a trace sink on the chip and every column it holds (columns
    /// added later inherit it), stamping events with board chip index
    /// `chip_id`.
    pub fn set_trace(&mut self, trace: Trace, chip_id: u32) {
        self.trace = trace;
        self.chip_id = chip_id;
        for (index, column) in self.columns.iter_mut().enumerate() {
            column.set_trace(self.trace.clone(), chip_id, index as u32);
        }
    }

    /// The trace handle events flow through (disabled by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The board chip index stamped on this chip's events.
    pub fn chip_id(&self) -> u32 {
        self.chip_id
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Access a column.
    pub fn column(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// Mutable access to a column (e.g. to stage tile memories).
    pub fn column_mut(&mut self, index: usize) -> Option<&mut Column> {
        self.columns.get_mut(index)
    }

    /// Record one inter-column transfer on the horizontal bus (the DOUs of
    /// the producing and consuming columns coordinate the actual word
    /// movement; the chip model accounts the traffic for the power model).
    ///
    /// # Errors
    ///
    /// Returns an error if a column index is out of range — including any
    /// transfer on a chip with no columns at all.
    pub fn horizontal_transfer(
        &mut self,
        from: usize,
        to: &[usize],
    ) -> Result<(), synchro_bus::BusError> {
        self.horizontal_transfer_words(from, to, 1)
    }

    /// Record `words` back-to-back inter-column transfers in one call —
    /// statistics-equivalent to `words` [`Chip::horizontal_transfer`]
    /// calls, without the loop (bulk accounting for statically scheduled
    /// traffic).
    ///
    /// # Errors
    ///
    /// Returns an error if a column index is out of range — including any
    /// transfer on a chip with no columns at all.
    pub fn horizontal_transfer_words(
        &mut self,
        from: usize,
        to: &[usize],
        words: u64,
    ) -> Result<(), synchro_bus::BusError> {
        // `horizontal` is `Some` exactly when at least one column exists; a
        // zero-column chip has no bus to transfer on.
        let Some(bus) = self.horizontal.as_mut() else {
            return Err(synchro_bus::BusError::IndexOutOfRange {
                what: "column",
                index: from,
                limit: 0,
            });
        };
        bus.transfer_words(from, to, words)?;
        self.stats.horizontal_transfers += words;
        Ok(())
    }

    /// Horizontal bus statistics, if any column exists.
    pub fn horizontal_stats(&self) -> Option<BusStats> {
        self.horizontal.as_ref().map(HorizontalBus::stats)
    }

    /// Load a statically compiled bus schedule.  The program starts at the
    /// current reference tick; [`Chip::tick`] / [`Chip::run`] then drive
    /// the horizontal bus slot by slot as the reference clock passes each
    /// slot's time, replacing after-the-fact aggregate billing.
    ///
    /// # Errors
    ///
    /// Returns [`synchro_bus::BusError::IndexOutOfRange`] if a slot
    /// references a column the chip does not have.
    pub fn load_bus_program(&mut self, program: BusProgram) -> Result<(), synchro_bus::BusError> {
        let columns = self.columns.len();
        for slot in &program.slots {
            for &c in std::iter::once(&slot.from).chain(&slot.to) {
                if c >= columns {
                    return Err(synchro_bus::BusError::IndexOutOfRange {
                        what: "column",
                        index: c,
                        limit: columns,
                    });
                }
            }
        }
        self.bus_program = Some(BusProgramState {
            program,
            origin: self.stats.reference_cycles,
            iteration: 0,
            next_slot: 0,
        });
        Ok(())
    }

    /// Issue every bus-program slot whose absolute reference tick lies
    /// before `end`, and account each fully elapsed period's scheduled
    /// slots.  Both [`Chip::run`] and [`Chip::run_ticked`] advance the
    /// program purely by reference time, so the two paths stay
    /// bit-identical.
    fn drive_bus_through(&mut self, end: u64) -> Result<(), ColumnError> {
        let Some(state) = &self.bus_program else {
            return Ok(());
        };
        if state.iteration >= state.program.iterations {
            return Ok(());
        }
        loop {
            let Some(state) = &self.bus_program else {
                unreachable!("program checked above and never unloaded");
            };
            if state.iteration >= state.program.iterations {
                return Ok(());
            }
            let base = state
                .origin
                .saturating_add(state.iteration.saturating_mul(state.program.period));
            if state.next_slot < state.program.slots.len() {
                let slot = &state.program.slots[state.next_slot];
                if base.saturating_add(slot.tick) >= end {
                    return Ok(());
                }
                let at = base.saturating_add(slot.tick);
                let (from, to, words) = (slot.from, slot.to.clone(), slot.words);
                self.horizontal_transfer_words(from, &to, words)
                    .map_err(ColumnError::Bus)?;
                self.trace.emit(|| TraceEvent::BusSlot {
                    chip: self.chip_id,
                    tick: at,
                    from: from as u32,
                    to: to.iter().map(|&c| c as u32).collect(),
                    words,
                    count: 1,
                });
                let state = self.bus_program.as_mut().expect("still loaded");
                state.next_slot += 1;
            } else if base.saturating_add(state.program.period) <= end {
                // The period's window has fully elapsed: account its
                // scheduled (occupied + idle) TDM slots and roll over.
                let scheduled = state.program.scheduled_slots_per_period;
                if let Some(bus) = self.horizontal.as_mut() {
                    bus.account_scheduled_slots(scheduled);
                }
                let state = self.bus_program.as_mut().expect("still loaded");
                state.iteration += 1;
                state.next_slot = 0;
            } else {
                return Ok(());
            }
        }
    }

    /// Drive the loaded bus program to completion regardless of how far
    /// the reference clock has advanced — the drain step a chip driver
    /// calls once every column has halted, so the final iteration's slots
    /// (which may lie past the halting tick) are still accounted.
    ///
    /// Idempotent: a finished (or absent) program is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates bus faults, which indicate a broken schedule.
    pub fn finish_bus_program(&mut self) -> Result<(), ColumnError> {
        self.drive_bus_through(u64::MAX)
    }

    /// The batched equivalent of [`Chip::finish_bus_program`]: drain every
    /// remaining period of the loaded bus program in O(slots per period)
    /// work instead of O(remaining periods × slots).
    ///
    /// Exploits the linearity of [`HorizontalBus`] accounting — replaying
    /// a slot across `n` periods moves `n × words` words between the same
    /// endpoints, so one bulk transfer per distinct slot plus one bulk
    /// scheduled-slot charge per remaining period produces [`BusStats`]
    /// and [`ChipStats`] bit-identical to the per-period replay.  This is
    /// the `BusProgram` tail-drain the fast execution tier uses; the
    /// interpreted path keeps [`Chip::finish_bus_program`].
    ///
    /// Idempotent: a finished (or absent) program is a no-op, and a
    /// subsequent [`Chip::finish_bus_program`] sees a completed program.
    ///
    /// # Errors
    ///
    /// Propagates bus faults, which indicate a broken schedule.
    pub fn finish_bus_program_batched(&mut self) -> Result<(), ColumnError> {
        let Some(state) = self.bus_program.take() else {
            return Ok(());
        };
        let BusProgramState {
            program,
            origin,
            mut iteration,
            mut next_slot,
        } = state;
        if iteration < program.iterations {
            // Pending slots of the current (possibly partial) period.
            let base = origin.saturating_add(iteration.saturating_mul(program.period));
            for slot in &program.slots[next_slot..] {
                self.horizontal_transfer_words(slot.from, &slot.to, slot.words)
                    .map_err(ColumnError::Bus)?;
                self.trace.emit(|| TraceEvent::BusSlot {
                    chip: self.chip_id,
                    tick: base.saturating_add(slot.tick),
                    from: slot.from as u32,
                    to: slot.to.iter().map(|&c| c as u32).collect(),
                    words: slot.words,
                    count: 1,
                });
            }
            // All remaining full periods, one bulk transfer per slot — and
            // one *batched* trace event per slot, which normalizes to the
            // same stream the per-period replay emits one event at a time.
            let full = program.iterations - iteration - 1;
            if full > 0 {
                let last_base =
                    origin.saturating_add((program.iterations - 1).saturating_mul(program.period));
                for slot in &program.slots {
                    self.horizontal_transfer_words(slot.from, &slot.to, slot.words * full)
                        .map_err(ColumnError::Bus)?;
                    self.trace.emit(|| TraceEvent::BusSlot {
                        chip: self.chip_id,
                        tick: last_base.saturating_add(slot.tick),
                        from: slot.from as u32,
                        to: slot.to.iter().map(|&c| c as u32).collect(),
                        words: slot.words * full,
                        count: full,
                    });
                }
            }
            // Scheduled (occupied + idle) TDM slots for every period that
            // had not yet rolled over.
            if let Some(bus) = self.horizontal.as_mut() {
                bus.account_scheduled_slots(
                    program.scheduled_slots_per_period * (program.iterations - iteration),
                );
            }
            iteration = program.iterations;
            next_slot = 0;
        }
        self.bus_program = Some(BusProgramState {
            program,
            origin,
            iteration,
            next_slot,
        });
        Ok(())
    }

    /// True when every column has halted.
    ///
    /// A [failed](Chip::fail_column) column never halts, so a chip with a
    /// dead column can only be retired by a starvation watchdog.
    pub fn all_halted(&self) -> bool {
        self.columns.iter().all(Column::is_halted)
    }

    /// Kill column `column` at reference tick `tick`: it stops executing
    /// and billing cycles but never reports halted (dead, not done).
    /// Emits [`TraceEvent::FaultColumnKilled`] and returns `false` if the
    /// column does not exist.
    pub fn fail_column(&mut self, column: usize, tick: u64) -> bool {
        let Some(col) = self.columns.get_mut(column) else {
            return false;
        };
        col.fail();
        self.trace.emit(|| TraceEvent::FaultColumnKilled {
            chip: self.chip_id,
            column: column as u32,
            tick,
        });
        true
    }

    /// True when any column has been killed by a fault.
    pub fn any_failed(&self) -> bool {
        self.columns.iter().any(Column::is_failed)
    }

    /// Jump the reference clock forward to `to_tick` without stepping any
    /// column (the fast tier's closed-form replacement for the empty and
    /// already-accounted ticks of an interpreted run).  Never moves the
    /// clock backwards.
    pub(crate) fn fast_forward_reference(&mut self, to_tick: u64) {
        if to_tick > self.stats.reference_cycles {
            self.stats.reference_cycles = to_tick;
        }
    }

    /// Fold closed-form column work into the chip-level cycle counter
    /// (mirrors what [`Chip::tick`] accumulates per stepped column).
    pub(crate) fn add_column_cycles(&mut self, cycles: u64) {
        self.stats.column_cycles += cycles;
    }

    /// Chip statistics so far.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// Per-column statistics.
    pub fn column_stats(&self) -> Vec<ColumnStats> {
        self.columns.iter().map(Column::stats).collect()
    }

    /// Per-column segmented vertical-bus statistics, in column order.
    pub fn column_bus_stats(&self) -> Vec<BusStats> {
        self.columns.iter().map(Column::bus_stats).collect()
    }

    /// Advance the reference clock by one tick.  Each column steps only on
    /// ticks its clock divider selects, so a column with divider `d` runs
    /// at exactly `1/d` of the reference frequency.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn tick(&mut self) -> Result<(), ColumnError> {
        let tick_index = self.stats.reference_cycles;
        self.stats.reference_cycles += 1;
        // The statically scheduled bus fires first: every program slot due
        // up to and including this tick is issued before the columns step,
        // and catching up here keeps the event-driven fast path (which
        // jumps the reference clock over empty ticks) bit-identical to the
        // naive loop.
        self.drive_bus_through(tick_index + 1)?;
        for column in &mut self.columns {
            // `Column::new` guarantees `clock_divider >= 1`.
            let divider = u64::from(column.config().clock_divider);
            if tick_index.is_multiple_of(divider) && !column.is_halted() && !column.is_failed() {
                let before = column.stats().cycles;
                column.step()?;
                // A step that only observes the HALT executes no cycle.
                self.stats.column_cycles += column.stats().cycles - before;
            }
        }
        Ok(())
    }

    /// Run the reference clock until every column halts or `max_ticks`
    /// elapse, skipping ahead over reference ticks on which no column's
    /// clock divider fires.  Returns the number of reference ticks
    /// consumed.
    ///
    /// This is an event-driven fast path: with large or co-prime dividers
    /// most reference ticks select no column at all, and walking them one
    /// by one costs O(ticks × columns).  The produced [`ChipStats`] are
    /// bit-identical to the naive loop ([`Chip::run_ticked`]), which is
    /// kept as the differential-testing reference.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn run(&mut self, max_ticks: u64) -> Result<u64, ColumnError> {
        let start = self.stats.reference_cycles;
        let end = start.saturating_add(max_ticks);
        while self.stats.reference_cycles < end {
            self.run_loop_iterations += 1;
            if self.all_halted() {
                break;
            }
            let now = self.stats.reference_cycles;
            // The earliest tick >= now at which a live column fires.
            // Failed columns never fire (their steps are unbilled no-ops),
            // so skipping them keeps `run` and `run_ticked` bit-identical
            // while avoiding empty scheduler iterations.
            let next_event = self
                .columns
                .iter()
                .filter(|c| !c.is_halted() && !c.is_failed())
                .map(|c| {
                    let divider = u64::from(c.config().clock_divider);
                    now.div_ceil(divider) * divider
                })
                .min();
            match next_event {
                Some(at) if at < end => {
                    // Ticks in (now, at) select nobody; account them in bulk.
                    self.stats.reference_cycles = at;
                    self.tick()?;
                }
                // No live column fires inside the window: the remaining
                // ticks are all empty for the columns, but scheduled bus
                // slots inside them must still fire (as the naive loop
                // would have done tick by tick).
                _ => {
                    self.stats.reference_cycles = end;
                    self.drive_bus_through(end)?;
                    break;
                }
            }
        }
        Ok(self.stats.reference_cycles - start)
    }

    /// The naive tick-by-tick equivalent of [`Chip::run`], kept as the
    /// differential-testing and benchmarking reference for the
    /// event-driven fast path.
    ///
    /// # Errors
    ///
    /// Propagates the first column error encountered.
    pub fn run_ticked(&mut self, max_ticks: u64) -> Result<u64, ColumnError> {
        let start = self.stats.reference_cycles;
        for _ in 0..max_ticks {
            self.run_loop_iterations += 1;
            if self.all_halted() {
                break;
            }
            self.tick()?;
        }
        Ok(self.stats.reference_cycles - start)
    }

    /// Total scheduler-loop iterations executed by [`Chip::run`] and
    /// [`Chip::run_ticked`] so far — the work metric the event-driven fast
    /// path reduces (it is *not* part of [`ChipStats`], which both paths
    /// produce identically).
    pub fn run_loop_iterations(&self) -> u64 {
        self.run_loop_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnConfig;
    use synchro_isa::{assemble, DataReg};

    fn counting_column(iterations: u32, divider: u32) -> Column {
        let src = format!("loop {iterations}, 2\nli r0, 1\nadd r1, r1, r0\nhalt\n");
        let program = assemble(&src).unwrap();
        Column::new(
            ColumnConfig::isca2004().with_divider(divider),
            program,
            None,
        )
    }

    #[test]
    fn clock_dividers_give_rationally_related_rates() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(10, 1));
        chip.add_column(counting_column(10, 2));
        chip.add_column(counting_column(10, 5));
        // Run a fixed window shorter than any program's completion.
        for _ in 0..10 {
            chip.tick().unwrap();
        }
        let stats = chip.column_stats();
        assert_eq!(stats[0].cycles, 10);
        assert_eq!(stats[1].cycles, 5);
        assert_eq!(stats[2].cycles, 2);
        assert_eq!(chip.stats().reference_cycles, 10);
        assert_eq!(chip.stats().column_cycles, 17);
    }

    #[test]
    fn run_stops_when_all_columns_halt() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(3, 1));
        chip.add_column(counting_column(3, 2));
        let ticks = chip.run(1000).unwrap();
        assert!(chip.all_halted());
        assert!(ticks < 1000);
        // Exact cycle accounting: 3 iterations × 2 instructions, and the
        // step that merely observes the HALT is not billed.
        let stats = chip.column_stats();
        assert_eq!(stats[0].cycles, 6);
        assert_eq!(stats[1].cycles, 6);
        assert_eq!(chip.stats().column_cycles, 12);
        // Both columns computed the same result despite different clocks.
        let r1 = chip
            .column(0)
            .unwrap()
            .tile(0)
            .unwrap()
            .reg(DataReg::new(1));
        let r2 = chip
            .column(1)
            .unwrap()
            .tile(0)
            .unwrap()
            .reg(DataReg::new(1));
        assert_eq!(r1, 3);
        assert_eq!(r1, r2);
    }

    #[test]
    fn slower_column_takes_proportionally_more_reference_ticks() {
        let mut fast = Chip::new();
        fast.add_column(counting_column(50, 1));
        let fast_ticks = fast.run(100_000).unwrap();

        let mut slow = Chip::new();
        slow.add_column(counting_column(50, 4));
        let slow_ticks = slow.run(100_000).unwrap();

        // The divider-4 column needs ~4× the reference ticks.
        let ratio = slow_ticks as f64 / fast_ticks as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn horizontal_bus_accounts_inter_column_traffic() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(1, 1));
        chip.add_column(counting_column(1, 1));
        chip.horizontal_transfer(0, &[1]).unwrap();
        chip.horizontal_transfer(1, &[0]).unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 2);
        let bus = chip.horizontal_stats().unwrap();
        assert_eq!(bus.word_transfers, 2);
        assert!(chip.horizontal_transfer(5, &[0]).is_err());
    }

    #[test]
    fn empty_chip_is_trivially_halted() {
        let mut chip = Chip::new();
        assert!(chip.all_halted());
        assert_eq!(chip.run(10).unwrap(), 0);
        assert_eq!(chip.columns(), 0);
        assert!(chip.horizontal_stats().is_none());
    }

    #[test]
    fn adding_a_column_preserves_horizontal_bus_stats() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(1, 1));
        chip.add_column(counting_column(1, 1));
        chip.horizontal_transfer(0, &[1]).unwrap();
        chip.horizontal_transfer(1, &[0]).unwrap();
        let before = chip.horizontal_stats().unwrap();
        assert_eq!(before.word_transfers, 2);

        // Adding a third column after traffic has occurred must keep the
        // accumulated statistics and span the newcomer.
        chip.add_column(counting_column(1, 1));
        let after = chip.horizontal_stats().unwrap();
        assert_eq!(after, before, "bus stats were discarded by add_column");
        chip.horizontal_transfer(2, &[0, 1]).unwrap();
        assert_eq!(chip.horizontal_stats().unwrap().word_transfers, 3);
        assert_eq!(chip.stats().horizontal_transfers, 3);
    }

    #[test]
    fn zero_column_chip_rejects_horizontal_transfers() {
        let mut chip = Chip::new();
        let err = chip.horizontal_transfer(0, &[]).unwrap_err();
        assert!(matches!(
            err,
            synchro_bus::BusError::IndexOutOfRange { limit: 0, .. }
        ));
        assert_eq!(chip.stats().horizontal_transfers, 0);
        assert!(chip.horizontal_stats().is_none());
    }

    #[test]
    fn event_driven_run_matches_ticked_run_bit_for_bit() {
        let build = || {
            let mut chip = Chip::new();
            chip.add_column(counting_column(40, 3));
            chip.add_column(counting_column(25, 7));
            chip.add_column(counting_column(10, 16));
            chip
        };
        let mut fast = build();
        let mut slow = build();
        let fast_ticks = fast.run(10_000).unwrap();
        let slow_ticks = slow.run_ticked(10_000).unwrap();
        assert_eq!(fast_ticks, slow_ticks);
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.column_stats(), slow.column_stats());
        assert!(fast.all_halted() && slow.all_halted());
        // The fast path touches far fewer scheduler iterations on a
        // divider-heavy mix.
        assert!(
            fast.run_loop_iterations() < slow.run_loop_iterations() / 2,
            "fast {} vs ticked {}",
            fast.run_loop_iterations(),
            slow.run_loop_iterations()
        );
    }

    #[test]
    fn failed_column_starves_the_chip_but_keeps_tiers_bit_identical() {
        let build = || {
            let mut chip = Chip::new();
            chip.add_column(counting_column(40, 3));
            chip.add_column(counting_column(25, 7));
            chip
        };
        let mut fast = build();
        let mut slow = build();
        for chip in [&mut fast, &mut slow] {
            chip.run(50).unwrap();
            assert!(chip.fail_column(1, chip.stats().reference_cycles));
            assert!(!chip.fail_column(9, 0), "unknown column is rejected");
            assert!(chip.any_failed());
        }
        let fast_ticks = fast.run(10_000).unwrap();
        let slow_ticks = slow.run_ticked(10_000).unwrap();
        assert_eq!(fast_ticks, slow_ticks);
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.column_stats(), slow.column_stats());
        // The dead column billed nothing after the kill and never halts,
        // so the chip as a whole never reports halted: starvation.
        assert!(!fast.all_halted() && !slow.all_halted());
        assert!(fast.column(0).unwrap().is_halted());
        assert!(!fast.column(1).unwrap().is_halted());
        assert!(fast.column(1).unwrap().is_failed());
        // Both drivers consumed the full window instead of wedging inside.
        assert_eq!(fast_ticks, 10_000);
    }

    #[test]
    fn bus_program_drives_the_horizontal_bus_as_time_passes() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(100, 1));
        chip.add_column(counting_column(100, 1));
        // Two slots per 10-tick period, 3 periods, 4 scheduled slots/period.
        let program = BusProgram::new(
            10,
            3,
            4,
            vec![
                BusSlot {
                    tick: 2,
                    from: 0,
                    to: vec![1],
                    words: 2,
                },
                BusSlot {
                    tick: 7,
                    from: 1,
                    to: vec![0],
                    words: 1,
                },
            ],
        );
        assert_eq!(program.words_per_period(), 3);
        chip.load_bus_program(program).unwrap();
        chip.run(3).unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 2, "slot at tick 2 fired");
        chip.run(7).unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 3);
        // Period 0 has fully elapsed: its scheduled slots are accounted.
        assert_eq!(chip.horizontal_stats().unwrap().scheduled_slots, 4);
        chip.run(20).unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 9);
        chip.finish_bus_program().unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 9, "program already done");
        assert_eq!(chip.horizontal_stats().unwrap().scheduled_slots, 12);
        assert_eq!(chip.horizontal_stats().unwrap().occupied_slots, 9);
        assert_eq!(chip.horizontal_stats().unwrap().idle_slots(), 3);
    }

    #[test]
    fn finish_bus_program_drains_slots_past_the_halt() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(1, 1));
        chip.add_column(counting_column(1, 1));
        let program = BusProgram::new(
            1000,
            2,
            1000,
            vec![BusSlot {
                tick: 500,
                from: 0,
                to: vec![1],
                words: 5,
            }],
        );
        chip.load_bus_program(program).unwrap();
        // Both columns halt after a couple of ticks, far before tick 500.
        chip.run(10_000).unwrap();
        assert!(chip.all_halted());
        assert_eq!(chip.stats().horizontal_transfers, 0);
        chip.finish_bus_program().unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 10);
        assert_eq!(chip.horizontal_stats().unwrap().scheduled_slots, 2000);
        // Idempotent.
        chip.finish_bus_program().unwrap();
        assert_eq!(chip.stats().horizontal_transfers, 10);
    }

    #[test]
    fn batched_bus_drain_matches_interpreted_drain_bit_for_bit() {
        let build = || {
            let mut chip = Chip::new();
            chip.add_column(counting_column(100, 1));
            chip.add_column(counting_column(100, 1));
            let program = BusProgram::new(
                10,
                1000,
                7,
                vec![
                    BusSlot {
                        tick: 2,
                        from: 0,
                        to: vec![1],
                        words: 2,
                    },
                    BusSlot {
                        tick: 7,
                        from: 1,
                        to: vec![0],
                        words: 3,
                    },
                ],
            );
            chip.load_bus_program(program).unwrap();
            chip
        };
        // Drain from several mid-program positions, including mid-period
        // (tick 25 leaves period 2 half fired) and the untouched start.
        for pre_ticks in [0u64, 3, 25, 99] {
            let mut interpreted = build();
            let mut batched = build();
            interpreted.run(pre_ticks).unwrap();
            batched.run(pre_ticks).unwrap();
            interpreted.finish_bus_program().unwrap();
            batched.finish_bus_program_batched().unwrap();
            assert_eq!(interpreted.stats(), batched.stats(), "pre {pre_ticks}");
            assert_eq!(
                interpreted.horizontal_stats(),
                batched.horizontal_stats(),
                "pre {pre_ticks}"
            );
            // The batched drain completes the program: both drains are
            // no-ops afterwards.
            batched.finish_bus_program().unwrap();
            batched.finish_bus_program_batched().unwrap();
            assert_eq!(interpreted.stats(), batched.stats());
        }
        // A chip without a program is a no-op too.
        let mut bare = Chip::new();
        bare.finish_bus_program_batched().unwrap();
        assert_eq!(bare.stats().horizontal_transfers, 0);
    }

    #[test]
    fn bus_program_rejects_unknown_columns() {
        let mut chip = Chip::new();
        chip.add_column(counting_column(1, 1));
        let program = BusProgram::new(
            4,
            1,
            4,
            vec![BusSlot {
                tick: 0,
                from: 0,
                to: vec![3],
                words: 1,
            }],
        );
        assert!(matches!(
            chip.load_bus_program(program),
            Err(synchro_bus::BusError::IndexOutOfRange { index: 3, .. })
        ));
    }

    #[test]
    fn bus_program_keeps_run_and_run_ticked_bit_identical() {
        let build = || {
            let mut chip = Chip::new();
            chip.add_column(counting_column(40, 3));
            chip.add_column(counting_column(25, 7));
            let program = BusProgram::new(
                11,
                9,
                22,
                vec![
                    BusSlot {
                        tick: 0,
                        from: 0,
                        to: vec![1],
                        words: 1,
                    },
                    BusSlot {
                        tick: 6,
                        from: 1,
                        to: vec![0],
                        words: 2,
                    },
                ],
            );
            chip.load_bus_program(program).unwrap();
            chip
        };
        let mut fast = build();
        let mut slow = build();
        // Uneven windows so program periods straddle run boundaries.
        for window in [13u64, 1, 29, 7, 200] {
            assert_eq!(fast.run(window).unwrap(), slow.run_ticked(window).unwrap());
            assert_eq!(fast.stats(), slow.stats());
            assert_eq!(fast.horizontal_stats(), slow.horizontal_stats());
        }
        fast.finish_bus_program().unwrap();
        slow.finish_bus_program().unwrap();
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.horizontal_stats(), slow.horizontal_stats());
        assert_eq!(fast.stats().horizontal_transfers, 9 * 3);
    }

    #[test]
    fn event_driven_run_burns_empty_windows_exactly() {
        // A single divider-1000 column: a 500-tick window contains one
        // firing tick (tick 0) and 499 empty ticks, all of which must be
        // accounted in the reference-cycle counter.
        let mut chip = Chip::new();
        chip.add_column(counting_column(1000, 1000));
        assert_eq!(chip.run(500).unwrap(), 500);
        assert_eq!(chip.stats().reference_cycles, 500);
        assert_eq!(chip.column_stats()[0].cycles, 1);
        // A second window starts mid-period and fires at tick 1000.
        assert_eq!(chip.run(600).unwrap(), 600);
        assert_eq!(chip.column_stats()[0].cycles, 2);
    }
}
