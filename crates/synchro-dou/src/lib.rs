//! The Data Orchestration Unit (DOU) — Section 2.3 / Figure 3 of the paper.
//!
//! Each column has one DOU: a 128-state finite state machine clocked at the
//! bus frequency whose per-state outputs drive the column's bus segment
//! switches and the per-tile communication buffers, providing
//! *zero-overhead, statically-scheduled* inter-tile communication.  Four
//! pre-programmed 32-bit down-counters let the FSM encode up to four nested
//! loops: each state names the counter it tests (`CNTR`); if that counter
//! is zero the FSM takes `NXTSTATE0` and reloads the counter, otherwise it
//! decrements the counter and takes `NXTSTATE1`.
//!
//! [`ScheduleCompiler`] builds a DOU program from a periodic communication
//! pattern (a list of per-cycle bus operations repeated a given number of
//! times), which is how the application mappings in `synchro-apps` express
//! their communication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use synchro_bus::{BusOp, SegmentConfig};

/// Maximum number of states a DOU can hold (Figure 3: 128 states).
pub const MAX_STATES: usize = 128;
/// Number of nested-loop down-counters (Figure 3: four).
pub const NUM_COUNTERS: usize = 4;

/// Errors raised while building or running a DOU program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DouError {
    /// The program needs more than [`MAX_STATES`] states.
    TooManyStates {
        /// Number of states requested.
        requested: usize,
    },
    /// A state referenced a counter outside `0..NUM_COUNTERS`.
    BadCounter {
        /// The counter index used.
        counter: usize,
    },
    /// A next-state pointer referenced a state outside the program.
    BadNextState {
        /// The state holding the bad pointer.
        state: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// The compiler was given an empty communication pattern.
    EmptyPattern,
}

impl fmt::Display for DouError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DouError::TooManyStates { requested } => write!(
                f,
                "DOU program needs {requested} states but the hardware holds only {MAX_STATES}"
            ),
            DouError::BadCounter { counter } => {
                write!(
                    f,
                    "counter index {counter} out of range (0..{NUM_COUNTERS})"
                )
            }
            DouError::BadNextState { state, target } => {
                write!(f, "state {state} points to non-existent state {target}")
            }
            DouError::EmptyPattern => write!(f, "communication pattern must not be empty"),
        }
    }
}

impl Error for DouError {}

/// The outputs a DOU asserts during one bus cycle: the segment switch
/// configuration plus the set of word transfers to perform.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DouOutput {
    /// Segment switch configuration for this cycle (`None` leaves the
    /// previous configuration in place).
    pub segments: Option<SegmentConfig>,
    /// Word transfers to perform this cycle.
    pub ops: Vec<BusOp>,
}

/// One state of the DOU state machine (one row of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DouState {
    /// Which down-counter this state tests.
    pub counter: usize,
    /// Next state when the tested counter has reached zero (the counter is
    /// then reloaded with its initial value).
    pub next_if_zero: usize,
    /// Next state when the tested counter is non-zero (the counter is
    /// decremented).
    pub next_if_nonzero: usize,
    /// Outputs asserted while in this state.
    pub output: DouOutput,
}

/// A complete DOU program: the state table plus counter initial values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DouProgram {
    states: Vec<DouState>,
    counter_init: [u32; NUM_COUNTERS],
}

impl DouProgram {
    /// Build and validate a program.
    ///
    /// # Errors
    ///
    /// Returns a [`DouError`] if the program exceeds 128 states, uses a bad
    /// counter index, or contains a dangling next-state pointer.
    pub fn new(states: Vec<DouState>, counter_init: [u32; NUM_COUNTERS]) -> Result<Self, DouError> {
        if states.len() > MAX_STATES {
            return Err(DouError::TooManyStates {
                requested: states.len(),
            });
        }
        for (i, s) in states.iter().enumerate() {
            if s.counter >= NUM_COUNTERS {
                return Err(DouError::BadCounter { counter: s.counter });
            }
            for target in [s.next_if_zero, s.next_if_nonzero] {
                if target >= states.len() {
                    return Err(DouError::BadNextState { state: i, target });
                }
            }
        }
        Ok(DouProgram {
            states,
            counter_init,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the program has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state table.
    pub fn states(&self) -> &[DouState] {
        &self.states
    }

    /// The counter initial values.
    pub fn counter_init(&self) -> [u32; NUM_COUNTERS] {
        self.counter_init
    }
}

/// The DOU state machine itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dou {
    program: DouProgram,
    counters: [u32; NUM_COUNTERS],
    state: usize,
    cycles: u64,
    transfers: u64,
}

impl Dou {
    /// Load a program and reset to state 0 with counters at their initial
    /// values.
    pub fn new(program: DouProgram) -> Self {
        let counters = program.counter_init();
        Dou {
            program,
            counters,
            state: 0,
            cycles: 0,
            transfers: 0,
        }
    }

    /// The current state index.
    pub fn state(&self) -> usize {
        self.state
    }

    /// The current value of down-counter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_COUNTERS`.
    pub fn counter(&self, i: usize) -> u32 {
        self.counters[i]
    }

    /// Total bus cycles stepped.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total word transfers emitted.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Advance one bus cycle: emit the current state's outputs, then move
    /// to the next state according to the tested counter.
    pub fn step(&mut self) -> DouOutput {
        if self.program.is_empty() {
            return DouOutput::default();
        }
        self.cycles += 1;
        let s = &self.program.states()[self.state];
        let output = s.output.clone();
        self.transfers += output.ops.len() as u64;
        let c = s.counter;
        if self.counters[c] == 0 {
            self.counters[c] = self.program.counter_init()[c];
            self.state = s.next_if_zero;
        } else {
            self.counters[c] -= 1;
            self.state = s.next_if_nonzero;
        }
        output
    }
}

/// One cycle of a periodic communication pattern handed to the compiler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatternCycle {
    /// Segment configuration for the cycle, or `None` to keep the default
    /// all-closed configuration.
    pub segments: Option<SegmentConfig>,
    /// Transfers to perform.
    pub ops: Vec<BusOp>,
}

/// Compiles a periodic communication pattern into a DOU program.
///
/// The pattern is a sequence of [`PatternCycle`]s repeated `repetitions`
/// times (0 means forever), exactly the structure produced when an inner
/// loop of a mapped kernel is statically scheduled.
#[derive(Debug, Clone, Default)]
pub struct ScheduleCompiler {
    cycles: Vec<PatternCycle>,
}

impl ScheduleCompiler {
    /// Start an empty pattern.
    pub fn new() -> Self {
        ScheduleCompiler::default()
    }

    /// Append one cycle to the pattern.
    pub fn push(&mut self, cycle: PatternCycle) -> &mut Self {
        self.cycles.push(cycle);
        self
    }

    /// Append an idle (no-transfer) cycle.
    pub fn idle(&mut self) -> &mut Self {
        self.cycles.push(PatternCycle::default());
        self
    }

    /// Append `n` idle cycles.
    pub fn idle_for(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.idle();
        }
        self
    }

    /// Append a cycle performing a single transfer under the prevailing
    /// segment configuration — the common case when compiling a mapped
    /// actor's token-distribution schedule.
    pub fn push_op(&mut self, op: BusOp) -> &mut Self {
        self.cycles.push(PatternCycle {
            segments: None,
            ops: vec![op],
        });
        self
    }

    /// Number of cycles in the pattern so far.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True if the pattern is empty.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Compile the pattern into a [`DouProgram`] that repeats it
    /// `repetitions` times (`0` = repeat forever).
    ///
    /// The generated program uses counter 0 for the repetition count: each
    /// pattern cycle becomes one state whose `next_if_nonzero` continues
    /// the pattern and whose final state loops back via the counter test.
    ///
    /// # Errors
    ///
    /// Returns [`DouError::EmptyPattern`] for an empty pattern or
    /// [`DouError::TooManyStates`] if the pattern exceeds 128 cycles.
    pub fn compile(&self, repetitions: u32) -> Result<DouProgram, DouError> {
        if self.cycles.is_empty() {
            return Err(DouError::EmptyPattern);
        }
        let n = self.cycles.len();
        let mut states = Vec::with_capacity(n);
        for (i, c) in self.cycles.iter().enumerate() {
            let last = i == n - 1;
            let (next_if_zero, next_if_nonzero) = if last {
                // On the last pattern cycle, test counter 0: if exhausted,
                // stay parked on the last state (or wrap for infinite
                // repetition); otherwise wrap to the start.
                if repetitions == 0 {
                    (0, 0)
                } else {
                    (n - 1, 0)
                }
            } else {
                (i + 1, i + 1)
            };
            states.push(DouState {
                counter: if last { 0 } else { 1 },
                next_if_zero,
                next_if_nonzero,
                output: DouOutput {
                    segments: c.segments.clone(),
                    ops: c.ops.clone(),
                },
            });
        }
        let mut counter_init = [0u32; NUM_COUNTERS];
        // Counter 0 counts the remaining repetitions after the first pass.
        counter_init[0] = repetitions.saturating_sub(1);
        // Counter 1 is a dummy always-nonzero counter for intermediate
        // states (they ignore its value because both next pointers match).
        counter_init[1] = u32::MAX;
        DouProgram::new(states, counter_init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(split: usize, producer: usize, consumer: usize) -> BusOp {
        BusOp {
            split,
            producer,
            consumers: vec![consumer],
        }
    }

    #[test]
    fn program_validation_catches_errors() {
        let too_many: Vec<DouState> = (0..129)
            .map(|_| DouState {
                counter: 0,
                next_if_zero: 0,
                next_if_nonzero: 0,
                output: DouOutput::default(),
            })
            .collect();
        assert!(matches!(
            DouProgram::new(too_many, [0; 4]),
            Err(DouError::TooManyStates { requested: 129 })
        ));

        let bad_counter = vec![DouState {
            counter: 4,
            next_if_zero: 0,
            next_if_nonzero: 0,
            output: DouOutput::default(),
        }];
        assert!(matches!(
            DouProgram::new(bad_counter, [0; 4]),
            Err(DouError::BadCounter { counter: 4 })
        ));

        let dangling = vec![DouState {
            counter: 0,
            next_if_zero: 5,
            next_if_nonzero: 0,
            output: DouOutput::default(),
        }];
        assert!(matches!(
            DouProgram::new(dangling, [0; 4]),
            Err(DouError::BadNextState {
                state: 0,
                target: 5
            })
        ));
    }

    #[test]
    fn counter_semantics_match_figure_3() {
        // A single state testing counter 0 initialised to 3: the FSM should
        // decrement through 3,2,1 staying put (next_if_nonzero = 0), then
        // on reaching zero reload and take next_if_zero = 0.
        let program = DouProgram::new(
            vec![DouState {
                counter: 0,
                next_if_zero: 0,
                next_if_nonzero: 0,
                output: DouOutput::default(),
            }],
            [3, 0, 0, 0],
        )
        .unwrap();
        let mut dou = Dou::new(program);
        assert_eq!(dou.counter(0), 3);
        dou.step();
        assert_eq!(dou.counter(0), 2);
        dou.step();
        dou.step();
        assert_eq!(dou.counter(0), 0);
        dou.step();
        assert_eq!(dou.counter(0), 3, "counter reloads on zero");
        assert_eq!(dou.cycles(), 4);
    }

    #[test]
    fn push_op_and_idle_for_build_the_expected_pattern() {
        let mut compiler = ScheduleCompiler::new();
        compiler.idle_for(2).push_op(op(0, 0, 3)).idle_for(3);
        assert_eq!(compiler.len(), 6);
        let program = compiler.compile(0).unwrap();
        let mut dou = Dou::new(program);
        let counts: Vec<usize> = (0..6).map(|_| dou.step().ops.len()).collect();
        assert_eq!(counts, vec![0, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn compiled_pattern_repeats_in_order() {
        let mut compiler = ScheduleCompiler::new();
        compiler.push(PatternCycle {
            segments: None,
            ops: vec![op(0, 0, 1)],
        });
        compiler.push(PatternCycle {
            segments: None,
            ops: vec![op(1, 2, 3)],
        });
        compiler.idle();
        let program = compiler.compile(2).unwrap();
        let mut dou = Dou::new(program);

        let mut produced: Vec<usize> = Vec::new();
        for _ in 0..6 {
            let out = dou.step();
            produced.push(out.ops.len());
        }
        // Two repetitions of [1 op, 1 op, 0 ops].
        assert_eq!(produced, vec![1, 1, 0, 1, 1, 0]);
        assert_eq!(dou.transfers(), 4);
    }

    #[test]
    fn finite_repetition_parks_after_completion() {
        let mut compiler = ScheduleCompiler::new();
        compiler.push(PatternCycle {
            segments: None,
            ops: vec![op(0, 0, 1)],
        });
        let program = compiler.compile(1).unwrap();
        let mut dou = Dou::new(program);
        assert_eq!(dou.step().ops.len(), 1);
        // After the single repetition the FSM parks on the last state and
        // keeps emitting it; the column will have halted by then, but the
        // FSM must not wander to an invalid state.
        for _ in 0..3 {
            let _ = dou.step();
            assert!(dou.state() < 1 + 1);
        }
    }

    #[test]
    fn infinite_pattern_never_stops() {
        let mut compiler = ScheduleCompiler::new();
        compiler.push(PatternCycle {
            segments: None,
            ops: vec![op(0, 1, 0)],
        });
        compiler.idle();
        let program = compiler.compile(0).unwrap();
        let mut dou = Dou::new(program);
        let counts: Vec<usize> = (0..8).map(|_| dou.step().ops.len()).collect();
        assert_eq!(counts, vec![1, 0, 1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn empty_pattern_is_rejected() {
        assert!(matches!(
            ScheduleCompiler::new().compile(1),
            Err(DouError::EmptyPattern)
        ));
    }

    #[test]
    fn pattern_longer_than_128_cycles_is_rejected() {
        let mut compiler = ScheduleCompiler::new();
        for _ in 0..200 {
            compiler.idle();
        }
        assert!(matches!(
            compiler.compile(1),
            Err(DouError::TooManyStates { .. })
        ));
    }

    #[test]
    fn segment_configuration_is_carried_through() {
        let mut compiler = ScheduleCompiler::new();
        let mut cfg = SegmentConfig::all_closed(8, 4);
        cfg.set(0, 1, false);
        compiler.push(PatternCycle {
            segments: Some(cfg.clone()),
            ops: vec![op(0, 0, 1), op(0, 3, 2)],
        });
        let program = compiler.compile(0).unwrap();
        let mut dou = Dou::new(program);
        let out = dou.step();
        assert_eq!(out.segments, Some(cfg));
        assert_eq!(out.ops.len(), 2);
    }

    #[test]
    fn empty_program_steps_to_nothing() {
        let program = DouProgram::new(Vec::new(), [0; 4]).unwrap();
        let mut dou = Dou::new(program);
        let out = dou.step();
        assert!(out.ops.is_empty());
        assert!(out.segments.is_none());
    }

    #[test]
    fn error_display_mentions_limits() {
        assert!(DouError::TooManyStates { requested: 300 }
            .to_string()
            .contains("128"));
        assert!(DouError::BadCounter { counter: 9 }
            .to_string()
            .contains('9'));
    }
}
