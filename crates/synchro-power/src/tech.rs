//! Technology parameters (Table 1 of the paper).
//!
//! The paper targets a 130 nm process with a 0.7 V supply floor (from the
//! Blackfin DSP), an estimated 1.65 V maximum, a 0.332 V threshold voltage
//! from the Berkeley Predictive Technology Models, a 0.1 mW/MHz tile power
//! at 1 V, and semi-global wiring parameters taken from "The Future of
//! Wires" (387 fF/mm, 16 λ pitch).

use crate::error::PowerModelError;

/// The set of process / circuit parameters every model in this crate
/// consumes.  Construct with [`Technology::isca2004`] for the paper's
/// configuration, or build a custom instance for sensitivity studies.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Feature size in nanometres (the paper uses 130 nm).
    pub feature_nm: f64,
    /// Minimum supported supply voltage in volts (voltage floor, 0.7 V).
    pub min_voltage: f64,
    /// Maximum supported supply voltage in volts.  Table 1 estimates 1.65 V,
    /// but the published operating points (Table 3/4) reach 1.7 V for the
    /// Viterbi ACS column, so the operational ceiling is 1.7 V.
    pub max_voltage: f64,
    /// Device threshold voltage in volts (0.332 V from BPTM).
    pub threshold_voltage: f64,
    /// Junction temperature in degrees Celsius assumed for leakage (80 °C
    /// in the leakage analysis, 40 °C elsewhere; we keep the leakage figure).
    pub temperature_c: f64,
    /// Normalised tile power `U` in mW/MHz at the reference voltage.
    /// The paper derives 0.1 mW/MHz at a 1 V reference.
    pub tile_power_mw_per_mhz: f64,
    /// Reference voltage (volts) at which `tile_power_mw_per_mhz` holds.
    pub reference_voltage: f64,
    /// Tile area in mm² (1.82 mm² from the Table 2 synthesis).
    pub tile_area_mm2: f64,
    /// Semi-global wire capacitance in femto-farads per millimetre (387).
    pub wire_cap_ff_per_mm: f64,
    /// Bus width in bits (the chosen Synchroscalar configuration is 256).
    pub bus_width_bits: u32,
    /// Number of 32-bit splits the vertical bus is divided into (8).
    pub bus_splits: u32,
    /// Length of a column's vertical bus in millimetres.  Four tiles of
    /// 1.82 mm² are roughly 1.35 mm on a side, so a column bus spans about
    /// 5.4 mm.
    pub column_bus_length_mm: f64,
    /// Length of the horizontal inter-column bus in millimetres (the paper
    /// assumes a 10 mm die edge).
    pub chip_bus_length_mm: f64,
    /// Tiles per column (4 in the paper's organisation).
    pub tiles_per_column: u32,
    /// Leakage current per tile in milliamps (1.5 mA from the 830 pA /
    /// transistor × 1.8 M transistors estimate).
    pub leakage_ma_per_tile: f64,
    /// Transistors per tile (1.8 million).
    pub transistors_per_tile: f64,
    /// Frequency floor in MHz (the paper chooses 100 MHz as the design
    /// floor, although some mapped kernels run below it at the 0.7 V
    /// voltage floor).
    pub frequency_floor_mhz: f64,
    /// Maximum clock frequency in MHz the SPICEd 20-FO4 path reaches at the
    /// maximum voltage (600 MHz in Table 1).
    pub max_frequency_mhz: f64,
    /// Voltage quantisation step used when assigning column supplies (V).
    /// The paper supports "only a small set" of voltages; 0.1 V steps
    /// reproduce every published operating point.
    pub voltage_step: f64,
}

impl Technology {
    /// The 130 nm configuration of Table 1.
    pub fn isca2004() -> Self {
        Technology {
            feature_nm: 130.0,
            min_voltage: 0.7,
            max_voltage: 1.7,
            threshold_voltage: 0.332,
            temperature_c: 80.0,
            tile_power_mw_per_mhz: 0.1,
            reference_voltage: 1.0,
            tile_area_mm2: 1.82,
            wire_cap_ff_per_mm: 387.0,
            bus_width_bits: 256,
            bus_splits: 8,
            column_bus_length_mm: 5.4,
            chip_bus_length_mm: 10.0,
            tiles_per_column: 4,
            leakage_ma_per_tile: 1.5,
            transistors_per_tile: 1.8e6,
            frequency_floor_mhz: 100.0,
            max_frequency_mhz: 600.0,
            voltage_step: 0.1,
        }
    }

    /// Validate that every parameter is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::InvalidParameter`] naming the first
    /// offending field.
    pub fn validate(&self) -> Result<(), PowerModelError> {
        let checks: [(&'static str, f64); 10] = [
            ("feature_nm", self.feature_nm),
            ("min_voltage", self.min_voltage),
            ("max_voltage", self.max_voltage),
            ("threshold_voltage", self.threshold_voltage),
            ("tile_power_mw_per_mhz", self.tile_power_mw_per_mhz),
            ("reference_voltage", self.reference_voltage),
            ("tile_area_mm2", self.tile_area_mm2),
            ("wire_cap_ff_per_mm", self.wire_cap_ff_per_mm),
            ("leakage_ma_per_tile", self.leakage_ma_per_tile),
            ("voltage_step", self.voltage_step),
        ];
        for (name, value) in checks {
            if !value.is_finite() || value <= 0.0 {
                return Err(PowerModelError::InvalidParameter { name, value });
            }
        }
        if self.max_voltage <= self.min_voltage {
            return Err(PowerModelError::InvalidParameter {
                name: "max_voltage",
                value: self.max_voltage,
            });
        }
        if self.threshold_voltage >= self.min_voltage {
            return Err(PowerModelError::InvalidParameter {
                name: "threshold_voltage",
                value: self.threshold_voltage,
            });
        }
        Ok(())
    }

    /// Quantise a voltage up to the next supported supply step, clamped to
    /// the technology's `[min_voltage, max_voltage]` range.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::VoltageOutOfRange`] if the requested
    /// voltage exceeds the maximum even before quantisation.
    pub fn quantize_voltage(&self, voltage: f64) -> Result<f64, PowerModelError> {
        if voltage > self.max_voltage + 1e-9 {
            return Err(PowerModelError::VoltageOutOfRange {
                requested: voltage,
                min: self.min_voltage,
                max: self.max_voltage,
            });
        }
        let clamped = voltage.max(self.min_voltage);
        let steps = ((clamped - self.min_voltage) / self.voltage_step - 1e-9)
            .ceil()
            .max(0.0);
        let quantized = self.min_voltage + steps * self.voltage_step;
        Ok(quantized.min(self.max_voltage))
    }

    /// A builder-style override of the tile power parameter `U`, used by the
    /// Section 5.5 sensitivity analysis.
    #[must_use]
    pub fn with_tile_power(mut self, mw_per_mhz: f64) -> Self {
        self.tile_power_mw_per_mhz = mw_per_mhz;
        self
    }

    /// A builder-style override of the per-tile leakage current, used by the
    /// Figure 9/10 leakage sensitivity sweeps.
    #[must_use]
    pub fn with_leakage_ma_per_tile(mut self, ma: f64) -> Self {
        self.leakage_ma_per_tile = ma;
        self
    }

    /// A builder-style override of the bus width, used by the Figure 8 bus
    /// width exploration.
    #[must_use]
    pub fn with_bus_width(mut self, bits: u32) -> Self {
        self.bus_width_bits = bits;
        self.bus_splits = (bits / 32).max(1);
        self
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::isca2004()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca2004_matches_table1() {
        let t = Technology::isca2004();
        assert_eq!(t.feature_nm, 130.0);
        assert_eq!(t.min_voltage, 0.7);
        assert_eq!(t.max_voltage, 1.7);
        assert_eq!(t.threshold_voltage, 0.332);
        assert_eq!(t.tile_power_mw_per_mhz, 0.1);
        assert_eq!(t.tile_area_mm2, 1.82);
        assert_eq!(t.wire_cap_ff_per_mm, 387.0);
        assert_eq!(t.max_frequency_mhz, 600.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn default_is_isca2004() {
        assert_eq!(Technology::default(), Technology::isca2004());
    }

    #[test]
    fn validation_rejects_negative_tile_power() {
        let mut t = Technology::isca2004();
        t.tile_power_mw_per_mhz = -1.0;
        assert!(matches!(
            t.validate(),
            Err(PowerModelError::InvalidParameter {
                name: "tile_power_mw_per_mhz",
                ..
            })
        ));
    }

    #[test]
    fn validation_rejects_inverted_voltage_range() {
        let mut t = Technology::isca2004();
        t.max_voltage = 0.5;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_rejects_threshold_above_floor() {
        let mut t = Technology::isca2004();
        t.threshold_voltage = 0.9;
        assert!(t.validate().is_err());
    }

    #[test]
    fn quantize_rounds_up_to_steps() {
        let t = Technology::isca2004();
        assert!((t.quantize_voltage(0.71).unwrap() - 0.8).abs() < 1e-9);
        assert!((t.quantize_voltage(0.80).unwrap() - 0.8).abs() < 1e-9);
        assert!((t.quantize_voltage(1.21).unwrap() - 1.3).abs() < 1e-9);
    }

    #[test]
    fn quantize_clamps_to_floor() {
        let t = Technology::isca2004();
        assert!((t.quantize_voltage(0.4).unwrap() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn quantize_rejects_over_max() {
        let t = Technology::isca2004();
        assert!(t.quantize_voltage(2.0).is_err());
    }

    #[test]
    fn builders_override_parameters() {
        let t = Technology::isca2004()
            .with_tile_power(0.2)
            .with_leakage_ma_per_tile(14.8)
            .with_bus_width(512);
        assert_eq!(t.tile_power_mw_per_mhz, 0.2);
        assert_eq!(t.leakage_ma_per_tile, 14.8);
        assert_eq!(t.bus_width_bits, 512);
        assert_eq!(t.bus_splits, 16);
    }
}
