//! Analytical sub-threshold leakage model (Section 4.4).
//!
//! The paper computes per-transistor leakage with
//! `I_leak = I_on · W · e^(−V_th / (n·v_T))`, with `I_on ≈ 0.3 µA/µm`,
//! `v_T ≈ 26 mV` at room temperature, `n ≈ 1.3–1.5`, and `V_th = 0.332 V`,
//! arriving at ≈830 pA per minimum-sized transistor and ≈1.5 mA per
//! 1.8-million-transistor tile.  Idle (supply-gated) tiles leak nothing.
//! Figures 9 and 10 sweep the per-tile leakage from 1.5 mA up to 59.3 mA
//! (the all-low-Vt Intel 130 nm corner).

use crate::tech::Technology;

/// Sub-threshold leakage model for Synchroscalar tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageModel {
    /// Leakage current per active tile, in milliamps.
    pub ma_per_tile: f64,
    /// Transistors per tile (for per-transistor conversions).
    pub transistors_per_tile: f64,
}

impl LeakageModel {
    /// Build the model from the technology description (1.5 mA/tile).
    pub fn new(tech: &Technology) -> Self {
        LeakageModel {
            ma_per_tile: tech.leakage_ma_per_tile,
            transistors_per_tile: tech.transistors_per_tile,
        }
    }

    /// Build a model with an explicit per-tile leakage current (mA), as the
    /// Figure 9/10 sensitivity sweeps do.
    pub fn with_ma_per_tile(tech: &Technology, ma: f64) -> Self {
        LeakageModel {
            ma_per_tile: ma,
            transistors_per_tile: tech.transistors_per_tile,
        }
    }

    /// First-principles per-transistor leakage in amps:
    /// `I = I_on · W · e^(−V_th / (n·v_T))`.
    ///
    /// With the paper's constants this evaluates to roughly 0.8–0.9 nA,
    /// matching the quoted 830 pA figure.
    pub fn per_transistor_leakage_a(
        i_on_ua_per_um: f64,
        width_um: f64,
        threshold_voltage: f64,
        n: f64,
        thermal_voltage: f64,
    ) -> f64 {
        i_on_ua_per_um * 1e-6 * width_um * (-threshold_voltage / (n * thermal_voltage)).exp()
    }

    /// Leakage current of one tile in milliamps.
    pub fn tile_current_ma(&self) -> f64 {
        self.ma_per_tile
    }

    /// Equivalent per-transistor leakage in nanoamps.
    pub fn per_transistor_na(&self) -> f64 {
        self.ma_per_tile * 1e-3 / self.transistors_per_tile * 1e9
    }

    /// Leakage power in milliwatts for `active_tiles` tiles at supply
    /// `voltage`.  Idle tiles are supply gated and contribute nothing
    /// (paper assumption 4 in Section 4.4).
    pub fn power_mw(&self, active_tiles: u32, voltage: f64) -> f64 {
        self.ma_per_tile * voltage * f64::from(active_tiles)
    }

    /// The leakage sweep points (mA per tile) used by Figures 9 and 10.
    pub fn figure9_sweep_points() -> &'static [f64] {
        &[1.5, 7.4, 14.8, 22.2, 29.6, 37.0, 44.4, 51.8, 59.3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_principles_leakage_is_about_830_pa() {
        // I_on = 0.3 µA/µm, V_th = 0.332 V, n = 1.5, v_T ≈ 30.4 mV at the
        // 80 °C leakage-analysis temperature, and an average effective
        // transistor width of ~4 µm reproduce the paper's ≈830 pA per
        // transistor figure.
        let v_t_80c = 8.617e-5 * (273.15 + 80.0);
        let i = LeakageModel::per_transistor_leakage_a(0.3, 4.0, 0.332, 1.5, v_t_80c);
        assert!(i > 5e-10 && i < 1.2e-9, "per-transistor leakage {i} A");
    }

    #[test]
    fn default_tile_leakage_matches_paper() {
        let m = LeakageModel::new(&Technology::isca2004());
        assert!((m.tile_current_ma() - 1.5).abs() < 1e-9);
        // 1.5 mA over 1.8 M transistors ≈ 0.83 nA per transistor.
        assert!((m.per_transistor_na() - 0.833).abs() < 0.01);
    }

    #[test]
    fn leakage_power_scales_with_tiles_and_voltage() {
        let m = LeakageModel::new(&Technology::isca2004());
        // 16 tiles at 1.7 V: 1.5 mA × 1.7 V × 16 = 40.8 mW.
        assert!((m.power_mw(16, 1.7) - 40.8).abs() < 1e-9);
        assert_eq!(m.power_mw(0, 1.7), 0.0);
    }

    #[test]
    fn sweep_points_match_figures_9_and_10() {
        let pts = LeakageModel::figure9_sweep_points();
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0], 1.5);
        assert_eq!(pts[8], 59.3);
        assert!(pts.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn high_leakage_corner_dominates_low_frequency_columns() {
        // At the 59.3 mA/tile corner, leakage of a 16-tile kernel at 0.7 V
        // is ~664 mW — larger than many of the compute powers in Table 4,
        // which is exactly the effect Figures 9/10 explore.
        let m = LeakageModel::with_ma_per_tile(&Technology::isca2004(), 59.3);
        let p = m.power_mw(16, 0.7);
        assert!(p > 600.0 && p < 700.0);
    }
}
