//! Technology and power modelling substrate for the Synchroscalar
//! reproduction.
//!
//! This crate reproduces the empirical evaluation models of
//! *Synchroscalar: A Multiple Clock Domain, Power-Aware, Tile-Based
//! Embedded Processor* (ISCA 2004), Section 4:
//!
//! * [`tech`] — the 130 nm technology parameters of Table 1,
//! * [`vf`] — the frequency/voltage relationship of Figure 5 (the paper
//!   SPICEs a 20-FO4 critical path against the Berkeley Predictive
//!   Technology Models; we substitute a calibrated lookup table plus an
//!   alpha-power-law analytical model, see `DESIGN.md`),
//! * [`dynamic`] — the normalised tile power model (`U` in mW/MHz scaled by
//!   `V²/V_ref²`),
//! * [`interconnect`] — the wire-capacitance bus energy model ("The Future
//!   of Wires" semi-global wire parameters),
//! * [`leakage`] — the analytical sub-threshold leakage model,
//! * [`area`] — the synthesized component area estimates of Table 2,
//! * [`column`] — the per-column power roll-up used by every experiment.
//!
//! # Example
//!
//! ```
//! use synchro_power::{Technology, VfCurve, ColumnPower, ColumnActivity};
//!
//! let tech = Technology::isca2004();
//! let curve = VfCurve::fo4_20(&tech);
//! // DDC digital mixer: 8 tiles at 120 MHz.
//! let voltage = curve.voltage_for_frequency(120.0).unwrap();
//! let activity = ColumnActivity {
//!     tiles: 8,
//!     frequency_mhz: 120.0,
//!     voltage,
//!     bus_words_per_second: 1.3e8,
//!     bus_length_mm: tech.column_bus_length_mm,
//! };
//! let power = ColumnPower::estimate(&tech, &activity);
//! assert!(power.total_mw() > 60.0 && power.total_mw() < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod column;
pub mod dynamic;
pub mod error;
pub mod interconnect;
pub mod leakage;
pub mod tech;
pub mod vf;

pub use area::{AreaModel, ComponentArea, SimdDouArea, TileArea};
pub use column::{ColumnActivity, ColumnPower};
pub use dynamic::TilePowerModel;
pub use error::PowerModelError;
pub use interconnect::{BusGeometry, InterconnectModel, SlotActivity};
pub use leakage::LeakageModel;
pub use tech::Technology;
pub use vf::{AlphaPowerLaw, CriticalPath, VfCurve};
