//! Interconnect (segmented bus) energy model.
//!
//! Following Section 4.3 of the paper, the bus is modelled to first order by
//! its wire capacitance: a semi-global wire in 130 nm has ≈387 fF/mm, driver
//! and segmenter parasitics are negligible by comparison.  The energy of a
//! 32-bit word transfer is therefore `32 · c_wire · L · V²`, and bus power
//! is transfer rate × energy per transfer.

use crate::tech::Technology;

/// Physical description of one bus (a column's vertical bus or the
/// horizontal inter-column bus).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusGeometry {
    /// Total bus width in bits (256 for the chosen design).
    pub width_bits: u32,
    /// Number of independently switchable 32-bit splits (8).
    pub splits: u32,
    /// Wire length in millimetres.
    pub length_mm: f64,
}

impl BusGeometry {
    /// The vertical column bus of the paper's configuration.
    pub fn column(tech: &Technology) -> Self {
        BusGeometry {
            width_bits: tech.bus_width_bits,
            splits: tech.bus_splits,
            length_mm: tech.column_bus_length_mm,
        }
    }

    /// The horizontal inter-column bus, spanning the 10 mm die edge.
    pub fn horizontal(tech: &Technology) -> Self {
        BusGeometry {
            width_bits: tech.bus_width_bits,
            splits: tech.bus_splits,
            length_mm: tech.chip_bus_length_mm,
        }
    }

    /// Bits carried by one split of the bus.
    pub fn split_width_bits(&self) -> u32 {
        self.width_bits / self.splits.max(1)
    }
}

/// Slot-level activity of one statically scheduled TDM frame: how many
/// slots the schedule reserved and drove over a frame of wall-clock time.
/// Built from a compiled route schedule or from the simulator's
/// `BusStats` scheduled/occupied counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotActivity {
    /// Slots that carried a word.
    pub occupied_slots: u64,
    /// Scheduled-but-idle slots.
    pub idle_slots: u64,
    /// Wall-clock seconds the frame spans.
    pub frame_seconds: f64,
    /// Energy of an idle slot as a fraction of a word transfer's energy
    /// (0.0 = idle slots are free, the rate-model assumption).
    pub idle_fraction: f64,
}

impl SlotActivity {
    /// Activity of one schedule period at a given iteration rate, with
    /// free idle slots (the rate-model-compatible default).
    pub fn per_iteration(occupied_slots: u64, idle_slots: u64, iteration_rate_hz: f64) -> Self {
        SlotActivity {
            occupied_slots,
            idle_slots,
            frame_seconds: if iteration_rate_hz > 0.0 {
                1.0 / iteration_rate_hz
            } else {
                0.0
            },
            idle_fraction: 0.0,
        }
    }

    /// Override the idle-slot energy fraction.
    #[must_use]
    pub fn with_idle_fraction(mut self, idle_fraction: f64) -> Self {
        self.idle_fraction = idle_fraction.clamp(0.0, 1.0);
        self
    }
}

/// Wire-capacitance interconnect energy/power model.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectModel {
    /// Wire capacitance in femto-farads per millimetre.
    pub wire_cap_ff_per_mm: f64,
}

impl InterconnectModel {
    /// Build the model from the technology description.
    pub fn new(tech: &Technology) -> Self {
        InterconnectModel {
            wire_cap_ff_per_mm: tech.wire_cap_ff_per_mm,
        }
    }

    /// Capacitance, in farads, of a single bus wire of the given length.
    pub fn wire_capacitance_f(&self, length_mm: f64) -> f64 {
        self.wire_cap_ff_per_mm * 1e-15 * length_mm
    }

    /// Energy, in joules, of transferring one word across one split of the
    /// bus at supply `voltage` (all `split_width_bits` wires switch; this is
    /// the pessimistic 100 % switching-activity assumption).
    pub fn word_energy_j(&self, bus: &BusGeometry, voltage: f64) -> f64 {
        f64::from(bus.split_width_bits())
            * self.wire_capacitance_f(bus.length_mm)
            * voltage
            * voltage
    }

    /// Bus power in milliwatts given a word-transfer rate (words per
    /// second) at supply `voltage`.
    pub fn power_mw(&self, bus: &BusGeometry, words_per_second: f64, voltage: f64) -> f64 {
        self.word_energy_j(bus, voltage) * words_per_second * 1e3
    }

    /// Bus power in milliwatts from a static TDM schedule's slot counts —
    /// the calibration path for schedule-driven simulation, consuming
    /// exactly the scheduled/occupied split `synchro_bus::BusStats` now
    /// records.
    ///
    /// Each occupied slot switches one full split (`word_energy_j`); each
    /// scheduled-but-idle slot still toggles its drivers and clocked
    /// repeaters, modelled as `idle_fraction` of a word's energy
    /// (0.0 recovers the rate-based model exactly — see
    /// [`InterconnectModel::power_mw`] — which the calibration test pins).
    pub fn power_mw_slots(&self, bus: &BusGeometry, slots: &SlotActivity, voltage: f64) -> f64 {
        if slots.frame_seconds <= 0.0 {
            return 0.0;
        }
        let word = self.word_energy_j(bus, voltage);
        let energy_j = slots.occupied_slots as f64 * word
            + slots.idle_slots as f64 * word * slots.idle_fraction;
        energy_j / slots.frame_seconds * 1e3
    }

    /// Energy, in joules, of moving one word across a chip-to-chip bridge
    /// lane rated at `energy_pj_per_word` picojoules per word.  Bridges
    /// are off-die links, so unlike the on-chip buses their energy is a
    /// per-word rating of the lane rather than a wire-capacitance/voltage
    /// derivation.
    pub fn bridge_word_energy_j(&self, energy_pj_per_word: f64) -> f64 {
        energy_pj_per_word * 1e-12
    }

    /// Bridge power in milliwatts from a bridge schedule's slot counts —
    /// the board-level counterpart of [`InterconnectModel::power_mw_slots`].
    /// Each occupied bridge cycle moves up to one lane-width of words and
    /// is charged one word's rated energy; idle scheduled cycles cost
    /// `idle_fraction` of that.  With free idle slots this reduces to
    /// rated energy × word rate, the calibration the tests pin.
    pub fn power_mw_bridge_slots(&self, energy_pj_per_word: f64, slots: &SlotActivity) -> f64 {
        if slots.frame_seconds <= 0.0 {
            return 0.0;
        }
        let word = self.bridge_word_energy_j(energy_pj_per_word);
        let energy_j = slots.occupied_slots as f64 * word
            + slots.idle_slots as f64 * word * slots.idle_fraction;
        energy_j / slots.frame_seconds * 1e3
    }

    /// Bus power in milliwatts expressed the way the paper's equation does:
    /// `P = a · C_total · V² · f`, where `a` is the fraction of the full bus
    /// switching per cycle and `f` is the bus clock in MHz.
    pub fn power_mw_activity(
        &self,
        bus: &BusGeometry,
        activity: f64,
        voltage: f64,
        bus_frequency_mhz: f64,
    ) -> f64 {
        let c_total = f64::from(bus.width_bits) * self.wire_capacitance_f(bus.length_mm);
        activity * c_total * voltage * voltage * bus_frequency_mhz * 1e6 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::isca2004()
    }

    #[test]
    fn wire_capacitance_matches_future_of_wires() {
        // 387 fF/mm over a 10 mm bus ≈ 3.87 pF per wire (Section 4.3).
        let m = InterconnectModel::new(&tech());
        let c = m.wire_capacitance_f(10.0);
        assert!((c - 3.87e-12).abs() < 1e-15);
    }

    #[test]
    fn column_bus_geometry_defaults() {
        let b = BusGeometry::column(&tech());
        assert_eq!(b.width_bits, 256);
        assert_eq!(b.splits, 8);
        assert_eq!(b.split_width_bits(), 32);
    }

    #[test]
    fn word_energy_scales_with_voltage_squared() {
        let m = InterconnectModel::new(&tech());
        let b = BusGeometry::column(&tech());
        let e1 = m.word_energy_j(&b, 1.0);
        let e2 = m.word_energy_j(&b, 2.0);
        assert!((e2 - 4.0 * e1).abs() < 1e-18);
    }

    #[test]
    fn word_energy_magnitude_is_tens_of_picojoules() {
        // 32 wires × 387 fF/mm × 5.4 mm ≈ 67 pF → ~43 pJ at 0.8 V.
        let m = InterconnectModel::new(&tech());
        let b = BusGeometry::column(&tech());
        let e = m.word_energy_j(&b, 0.8);
        assert!(e > 30e-12 && e < 60e-12, "word energy {e} J out of range");
    }

    #[test]
    fn bus_power_is_small_relative_to_tiles_at_modest_rates() {
        // The paper argues bus power is small compared with running a tile
        // at higher frequency: a 64 MS/s stream moving two words per sample
        // costs only a few mW.
        let m = InterconnectModel::new(&tech());
        let b = BusGeometry::column(&tech());
        let p = m.power_mw(&b, 2.0 * 64e6, 0.8);
        assert!(p > 1.0 && p < 20.0, "bus power {p} mW out of expected band");
    }

    #[test]
    fn activity_form_matches_rate_form() {
        // a·C_total·V²·f with a = words/cycle × split/width must equal the
        // words-per-second formulation.
        let t = tech();
        let m = InterconnectModel::new(&t);
        let b = BusGeometry::column(&t);
        let f_mhz = 200.0;
        let words_per_cycle = 1.5;
        let words_per_second = words_per_cycle * f_mhz * 1e6;
        let by_rate = m.power_mw(&b, words_per_second, 1.0);
        let activity = words_per_cycle * f64::from(b.split_width_bits()) / f64::from(b.width_bits);
        let by_activity = m.power_mw_activity(&b, activity, 1.0, f_mhz);
        assert!((by_rate - by_activity).abs() < 1e-9);
    }

    #[test]
    fn slot_power_with_free_idle_slots_matches_the_rate_model() {
        // Calibration: a schedule moving `occupied` words per iteration at
        // rate R is the same traffic as `occupied × R` words per second,
        // so with idle slots costing nothing the two paths must agree.
        let t = tech();
        let m = InterconnectModel::new(&t);
        let b = BusGeometry::horizontal(&t);
        let rate = 16e6;
        let slots = SlotActivity::per_iteration(10, 15, rate);
        let by_slots = m.power_mw_slots(&b, &slots, 0.9);
        let by_rate = m.power_mw(&b, 10.0 * rate, 0.9);
        assert!(
            (by_slots - by_rate).abs() < 1e-12 * by_rate.max(1.0),
            "{by_slots} vs {by_rate}"
        );
    }

    #[test]
    fn idle_slots_add_energy_in_proportion_to_their_fraction() {
        let t = tech();
        let m = InterconnectModel::new(&t);
        let b = BusGeometry::horizontal(&t);
        let base = SlotActivity::per_iteration(10, 30, 16e6);
        let leaky = base.with_idle_fraction(0.1);
        let p0 = m.power_mw_slots(&b, &base, 0.9);
        let p1 = m.power_mw_slots(&b, &leaky, 0.9);
        // 30 idle slots at 10% of a word ≈ 3 extra word-equivalents on 10.
        assert!((p1 / p0 - 1.3).abs() < 1e-9, "ratio {}", p1 / p0);
        // Degenerate frames cost nothing instead of dividing by zero.
        let empty = SlotActivity::per_iteration(10, 0, 0.0);
        assert_eq!(m.power_mw_slots(&b, &empty, 0.9), 0.0);
    }

    #[test]
    fn bridge_slot_power_with_free_idle_slots_matches_the_rated_energy() {
        // Calibration: `occupied` bridge cycles per iteration at rate R,
        // each charged the lane's per-word rating, equals rated energy ×
        // cycle rate when idle cycles are free.
        let m = InterconnectModel::new(&tech());
        let rate = 16e6;
        let pj = 2.5;
        let slots = SlotActivity::per_iteration(4, 20, rate);
        let by_slots = m.power_mw_bridge_slots(pj, &slots);
        let by_rate = m.bridge_word_energy_j(pj) * 4.0 * rate * 1e3;
        assert!(
            (by_slots - by_rate).abs() < 1e-12 * by_rate.max(1.0),
            "{by_slots} vs {by_rate}"
        );
        // Idle cycles add energy in proportion to their fraction.
        let leaky = slots.with_idle_fraction(0.2);
        let p1 = m.power_mw_bridge_slots(pj, &leaky);
        assert!(
            (p1 / by_slots - 2.0).abs() < 1e-9,
            "ratio {}",
            p1 / by_slots
        );
        // Degenerate frames cost nothing instead of dividing by zero.
        let empty = SlotActivity::per_iteration(4, 0, 0.0);
        assert_eq!(m.power_mw_bridge_slots(pj, &empty), 0.0);
    }

    #[test]
    fn wider_bus_costs_more_per_full_width_transfer_but_same_per_word() {
        let t = tech().with_bus_width(512);
        let m = InterconnectModel::new(&t);
        let narrow = BusGeometry::column(&Technology::isca2004());
        let wide = BusGeometry::column(&t);
        assert_eq!(wide.split_width_bits(), narrow.split_width_bits());
        assert!((m.word_energy_j(&wide, 1.0) - m.word_energy_j(&narrow, 1.0)).abs() < 1e-18);
    }
}
