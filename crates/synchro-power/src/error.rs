//! Error type shared by the power-model crate.

use std::error::Error;
use std::fmt;

/// Errors returned by the technology / power models.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerModelError {
    /// The requested frequency exceeds what the technology supports even at
    /// the maximum supply voltage.
    FrequencyUnreachable {
        /// Requested operating frequency in MHz.
        requested_mhz: f64,
        /// Maximum frequency achievable at the technology's maximum voltage.
        max_mhz: f64,
    },
    /// A supply voltage outside the technology's supported range was given.
    VoltageOutOfRange {
        /// Requested supply voltage in volts.
        requested: f64,
        /// Minimum supported supply voltage in volts.
        min: f64,
        /// Maximum supported supply voltage in volts.
        max: f64,
    },
    /// A model parameter was not physically meaningful (negative, NaN, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value supplied.
        value: f64,
    },
}

impl fmt::Display for PowerModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerModelError::FrequencyUnreachable {
                requested_mhz,
                max_mhz,
            } => write!(
                f,
                "requested frequency {requested_mhz} MHz exceeds the {max_mhz} MHz \
                 achievable at maximum supply voltage"
            ),
            PowerModelError::VoltageOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "supply voltage {requested} V is outside the supported range [{min}, {max}] V"
            ),
            PowerModelError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
        }
    }
}

impl Error for PowerModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = PowerModelError::FrequencyUnreachable {
            requested_mhz: 900.0,
            max_mhz: 600.0,
        };
        let text = err.to_string();
        assert!(text.contains("900"));
        assert!(text.contains("600"));
    }

    #[test]
    fn voltage_out_of_range_display() {
        let err = PowerModelError::VoltageOutOfRange {
            requested: 2.5,
            min: 0.7,
            max: 1.65,
        };
        assert!(err.to_string().contains("2.5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<PowerModelError>();
    }
}
