//! Component area estimates (Table 2 of the paper).
//!
//! The tile, the SIMD controller and the DOU were synthesised for a 0.25 µm
//! ASIC library and scaled to 0.13 µm; memories, register file and
//! multipliers use technology-independent estimates.  The resulting tile is
//! 1.82 mm²; the per-column SIMD controller + DOU add ≈0.34 mm² shared by
//! four tiles.

/// One named block and its area in square micrometres (µm²), as listed in
/// Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentArea {
    /// Human-readable block name, matching Table 2 rows.
    pub name: &'static str,
    /// Area in µm².
    pub area_um2: f64,
}

/// Area breakdown of a single Synchroscalar tile (Table 2, upper half).
#[derive(Debug, Clone, PartialEq)]
pub struct TileArea {
    components: Vec<ComponentArea>,
}

impl TileArea {
    /// The published Table 2 tile breakdown.
    pub fn isca2004() -> Self {
        TileArea {
            components: vec![
                ComponentArea {
                    name: "2 40-bit ALUs",
                    area_um2: 48_000.0,
                },
                ComponentArea {
                    name: "1 40-bit Shifter",
                    area_um2: 500_000.0,
                },
                ComponentArea {
                    name: "2 40-bit Accumulators",
                    area_um2: 11_060.0,
                },
                ComponentArea {
                    name: "2 16x16 mult",
                    area_um2: 100_000.0,
                },
                ComponentArea {
                    name: "32 KB SRAM",
                    area_um2: 5_570_560.0,
                },
                ComponentArea {
                    name: "32x32 Regfile 4 read and 2 write ports",
                    area_um2: 650_000.0,
                },
                ComponentArea {
                    name: "Rest",
                    area_um2: 393_000.0,
                },
            ],
        }
    }

    /// The individual component rows.
    pub fn components(&self) -> &[ComponentArea] {
        &self.components
    }

    /// Total tile area in µm² (Table 2 totals this to ≈7.27 mm⁻⁶·10⁶ µm²).
    pub fn total_um2(&self) -> f64 {
        self.components.iter().map(|c| c.area_um2).sum()
    }

    /// Total tile area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }
}

/// Area breakdown of the per-column SIMD controller and DOU (Table 2,
/// lower half).
#[derive(Debug, Clone, PartialEq)]
pub struct SimdDouArea {
    components: Vec<ComponentArea>,
}

impl SimdDouArea {
    /// The published Table 2 SIMD controller + DOU breakdown.
    pub fn isca2004() -> Self {
        SimdDouArea {
            components: vec![
                ComponentArea {
                    name: "DOU",
                    area_um2: 350_000.0,
                },
                ComponentArea {
                    name: "2 KB Instruction SRAM",
                    area_um2: 350_000.0,
                },
                ComponentArea {
                    name: "Sequencer",
                    area_um2: 225_000.0,
                },
                ComponentArea {
                    name: "LBANK",
                    area_um2: 59_000.0,
                },
                ComponentArea {
                    name: "STACK32",
                    area_um2: 180_000.0,
                },
                ComponentArea {
                    name: "Rest",
                    area_um2: 140_000.0,
                },
            ],
        }
    }

    /// The individual component rows.
    pub fn components(&self) -> &[ComponentArea] {
        &self.components
    }

    /// Total SIMD controller + DOU area in µm².
    pub fn total_um2(&self) -> f64 {
        self.components.iter().map(|c| c.area_um2).sum()
    }

    /// Total in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }
}

/// Chip-level area model used for the Table 3 area column and the Figure 8
/// power/area trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Area of one tile in mm² (the paper rounds the Table 2 total to 1.82).
    pub tile_mm2: f64,
    /// Area of one column's SIMD controller in mm² (≈0.25).
    pub simd_controller_mm2: f64,
    /// Area of one column's DOU in mm² (≈0.0875).
    pub dou_mm2: f64,
    /// Tiles per column.
    pub tiles_per_column: u32,
    /// Per-column bus/wiring overhead in mm² added per 32-bit split
    /// (wide buses cost area; used for the Figure 8 bus-width sweep).
    pub bus_split_mm2: f64,
}

impl AreaModel {
    /// The paper's area model: 1.82 mm² tiles, 0.25 mm² SIMD controller,
    /// 0.0875 mm² DOU, four tiles per column.
    pub fn isca2004() -> Self {
        AreaModel {
            tile_mm2: 1.82,
            simd_controller_mm2: 0.25,
            dou_mm2: 0.0875,
            tiles_per_column: 4,
            bus_split_mm2: 0.05,
        }
    }

    /// Number of columns (of `tiles_per_column`) needed to host `tiles`
    /// tiles, rounding up — idle tiles still occupy area.
    pub fn columns_for(&self, tiles: u32) -> u32 {
        tiles.div_ceil(self.tiles_per_column.max(1))
    }

    /// Total silicon area in mm² for a configuration of `tiles` tiles and
    /// the default 256-bit (8-split) bus.
    pub fn chip_area_mm2(&self, tiles: u32) -> f64 {
        self.chip_area_with_bus_mm2(tiles, 8)
    }

    /// Total silicon area in mm² for `tiles` tiles with a bus of
    /// `bus_splits` 32-bit splits per column (Figure 8 sweeps this).
    pub fn chip_area_with_bus_mm2(&self, tiles: u32, bus_splits: u32) -> f64 {
        let columns = f64::from(self.columns_for(tiles));
        let allocated_tiles = columns * f64::from(self.tiles_per_column);
        allocated_tiles * self.tile_mm2
            + columns * (self.simd_controller_mm2 + self.dou_mm2)
            + columns * f64::from(bus_splits) * self.bus_split_mm2
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::isca2004()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_total_matches_table2() {
        let t = TileArea::isca2004();
        // Table 2 lists the total as 7,270,000 µm²; the itemised rows sum to
        // 7,272,620 µm² (the paper rounds).
        let total = t.total_um2();
        assert!((total - 7_272_620.0).abs() < 1.0, "total {total}");
        assert!((t.total_mm2() - 7.27).abs() < 0.01);
        assert_eq!(t.components().len(), 7);
    }

    #[test]
    fn simd_dou_total_matches_table2() {
        let s = SimdDouArea::isca2004();
        // Table 2 lists 650,000 µm² as the SIMD+DOU total excluding the DOU
        // row itself (the DOU is reported separately as 0.0875 mm² in the
        // text); the itemised rows sum to 1,304,000 µm².
        assert!((s.total_um2() - 1_304_000.0).abs() < 1.0);
        assert_eq!(s.components().len(), 6);
    }

    #[test]
    fn area_model_matches_paper_headline_numbers() {
        let a = AreaModel::isca2004();
        assert!((a.tile_mm2 - 1.82).abs() < 1e-9);
        assert!((a.simd_controller_mm2 - 0.25).abs() < 1e-9);
        assert!((a.dou_mm2 - 0.0875).abs() < 1e-9);
    }

    #[test]
    fn columns_round_up() {
        let a = AreaModel::isca2004();
        assert_eq!(a.columns_for(1), 1);
        assert_eq!(a.columns_for(4), 1);
        assert_eq!(a.columns_for(5), 2);
        assert_eq!(a.columns_for(16), 4);
        assert_eq!(a.columns_for(17), 5);
    }

    #[test]
    fn ddc_50_tile_area_is_near_table3() {
        // Table 3 reports 139.88 mm² for the 50-tile DDC configuration.
        let a = AreaModel::isca2004();
        let area = a.chip_area_mm2(50);
        assert!(
            area > 95.0 && area < 150.0,
            "50-tile area {area} mm² should be in the Table 3 neighbourhood"
        );
    }

    #[test]
    fn wider_bus_costs_more_area() {
        let a = AreaModel::isca2004();
        let narrow = a.chip_area_with_bus_mm2(16, 4);
        let wide = a.chip_area_with_bus_mm2(16, 32);
        assert!(wide > narrow);
    }
}
