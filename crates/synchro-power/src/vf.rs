//! The frequency ↔ supply-voltage relationship (Figure 5 of the paper).
//!
//! The paper SPICEs a 15- and a 20-FO4 critical path against the Berkeley
//! Predictive Technology Models for the 130 nm node and captures the
//! resulting curve as a look-up table used to pick a column's supply
//! voltage from its required operating frequency.
//!
//! We substitute two interchangeable models:
//!
//! * [`VfCurve`] — a monotone look-up table whose anchor points were
//!   calibrated so that `voltage_for_frequency` reproduces every published
//!   (frequency, voltage) operating point in Table 4 under the paper's
//!   0.1 V supply quantisation, and
//! * [`AlphaPowerLaw`] — the standard closed-form alpha-power-law delay
//!   model (`f ∝ (V − V_th)^α / V`) for analytical sweeps.

use crate::error::PowerModelError;
use crate::tech::Technology;

/// The critical-path length assumed for the pipeline, in fan-out-of-4
/// inverter delays.  The paper plots 15 and 20 FO4; the Synchroscalar tile
/// assumes the (pessimistic) 20 FO4 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CriticalPath {
    /// A 15-FO4 critical path (the faster curve in Figure 5).
    Fo4_15,
    /// A 20-FO4 critical path (the curve used for voltage assignment).
    Fo4_20,
}

impl CriticalPath {
    /// The frequency scale factor of this path relative to the 20-FO4
    /// reference: a 15-FO4 path is 20/15 ≈ 1.33× faster at equal voltage.
    pub fn speedup_vs_fo4_20(self) -> f64 {
        match self {
            CriticalPath::Fo4_15 => 20.0 / 15.0,
            CriticalPath::Fo4_20 => 1.0,
        }
    }
}

/// Anchor points (supply voltage in volts, maximum frequency in MHz) of the
/// 20-FO4 curve.  Calibrated against the published Table 4 operating points
/// (see `DESIGN.md` §2 and `EXPERIMENTS.md`).
const FO4_20_ANCHORS: &[(f64, f64)] = &[
    (0.60, 30.0),
    (0.65, 55.0),
    (0.70, 85.0),
    (0.80, 130.0),
    (0.90, 165.0),
    (1.00, 230.0),
    (1.10, 300.0),
    (1.20, 345.0),
    (1.30, 420.0),
    (1.40, 470.0),
    (1.50, 515.0),
    (1.60, 535.0),
    (1.70, 560.0),
    (1.80, 620.0),
    (1.90, 700.0),
    (2.00, 780.0),
    (2.10, 860.0),
];

/// A monotone look-up table mapping supply voltage to the maximum operating
/// frequency of the column's critical path (and back).
#[derive(Debug, Clone, PartialEq)]
pub struct VfCurve {
    anchors: Vec<(f64, f64)>,
    min_voltage: f64,
    max_voltage: f64,
    voltage_step: f64,
}

impl VfCurve {
    /// The 20-FO4 curve used for Synchroscalar voltage assignment, limited
    /// to the technology's supply range.
    pub fn fo4_20(tech: &Technology) -> Self {
        Self::with_critical_path(tech, CriticalPath::Fo4_20)
    }

    /// The 15-FO4 curve plotted alongside in Figure 5.
    pub fn fo4_15(tech: &Technology) -> Self {
        Self::with_critical_path(tech, CriticalPath::Fo4_15)
    }

    /// Build the curve for an arbitrary critical path.
    pub fn with_critical_path(tech: &Technology, path: CriticalPath) -> Self {
        let speedup = path.speedup_vs_fo4_20();
        let anchors = FO4_20_ANCHORS
            .iter()
            .map(|&(v, f)| (v, f * speedup))
            .collect();
        VfCurve {
            anchors,
            min_voltage: tech.min_voltage,
            max_voltage: tech.max_voltage,
            voltage_step: tech.voltage_step,
        }
    }

    /// Build a curve from explicit `(voltage, frequency)` anchor points.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::InvalidParameter`] if fewer than two
    /// anchors are given or the anchors are not strictly increasing in both
    /// coordinates.
    pub fn from_anchors(
        anchors: Vec<(f64, f64)>,
        tech: &Technology,
    ) -> Result<Self, PowerModelError> {
        if anchors.len() < 2 {
            return Err(PowerModelError::InvalidParameter {
                name: "anchors.len",
                value: anchors.len() as f64,
            });
        }
        for pair in anchors.windows(2) {
            if pair[1].0 <= pair[0].0 || pair[1].1 <= pair[0].1 {
                return Err(PowerModelError::InvalidParameter {
                    name: "anchors (must be strictly increasing)",
                    value: pair[1].0,
                });
            }
        }
        Ok(VfCurve {
            anchors,
            min_voltage: tech.min_voltage,
            max_voltage: tech.max_voltage,
            voltage_step: tech.voltage_step,
        })
    }

    /// Maximum operating frequency (MHz) at the given supply voltage, by
    /// linear interpolation between anchors.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::VoltageOutOfRange`] if the voltage lies
    /// outside the technology's supported supply range.
    pub fn max_frequency_at(&self, voltage: f64) -> Result<f64, PowerModelError> {
        if voltage < self.min_voltage - 1e-9 || voltage > self.max_voltage + 1e-9 {
            return Err(PowerModelError::VoltageOutOfRange {
                requested: voltage,
                min: self.min_voltage,
                max: self.max_voltage,
            });
        }
        Ok(self.interpolate(voltage))
    }

    /// Interpolate the curve at `voltage` without range-checking against the
    /// technology limits (used to plot the full Figure 5 sweep, which spans
    /// 0.62 V – 2.12 V).
    pub fn interpolate(&self, voltage: f64) -> f64 {
        let first = self.anchors[0];
        let last = *self.anchors.last().expect("curve has anchors");
        if voltage <= first.0 {
            return first.1 * (voltage / first.0).max(0.0);
        }
        if voltage >= last.0 {
            // Extrapolate with the final segment's slope.
            let prev = self.anchors[self.anchors.len() - 2];
            let slope = (last.1 - prev.1) / (last.0 - prev.0);
            return last.1 + slope * (voltage - last.0);
        }
        for pair in self.anchors.windows(2) {
            let (v0, f0) = pair[0];
            let (v1, f1) = pair[1];
            if voltage >= v0 && voltage <= v1 {
                let t = (voltage - v0) / (v1 - v0);
                return f0 + t * (f1 - f0);
            }
        }
        unreachable!("anchor scan covers the interior range");
    }

    /// The minimum quantised supply voltage able to sustain `frequency_mhz`,
    /// respecting the 0.7 V voltage floor and the supply quantisation step.
    ///
    /// This is the operation the paper performs when assigning a column's
    /// supply from its computed frequency requirement (methodology step 8).
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::FrequencyUnreachable`] if the frequency
    /// exceeds what the maximum supply voltage can sustain.
    pub fn voltage_for_frequency(&self, frequency_mhz: f64) -> Result<f64, PowerModelError> {
        let max_f = self.interpolate(self.max_voltage);
        if frequency_mhz > max_f {
            return Err(PowerModelError::FrequencyUnreachable {
                requested_mhz: frequency_mhz,
                max_mhz: max_f,
            });
        }
        let mut voltage = self.min_voltage;
        loop {
            if self.interpolate(voltage) + 1e-9 >= frequency_mhz {
                return Ok((voltage * 1e6).round() / 1e6);
            }
            voltage += self.voltage_step;
            if voltage > self.max_voltage + 1e-9 {
                return Ok(self.max_voltage);
            }
        }
    }

    /// Like [`VfCurve::voltage_for_frequency`] but allowed to extrapolate
    /// beyond the technology's maximum supply when the frequency is
    /// unreachable.  The parallelisation sweeps (Figure 7) evaluate
    /// under-provisioned mappings whose required frequency exceeds the
    /// supply envelope; the paper plots their (large) power rather than
    /// dropping the point, so we extrapolate the voltage and flag it via
    /// the boolean in the return value (`true` = within the envelope).
    pub fn voltage_for_frequency_extrapolated(&self, frequency_mhz: f64) -> (f64, bool) {
        match self.voltage_for_frequency(frequency_mhz) {
            Ok(v) => (v, true),
            Err(_) => {
                let mut voltage = self.max_voltage;
                while self.interpolate(voltage) < frequency_mhz && voltage < 5.0 {
                    voltage += self.voltage_step;
                }
                ((voltage * 1e6).round() / 1e6, false)
            }
        }
    }

    /// Sample the curve at evenly spaced voltages, producing the series
    /// plotted in Figure 5.
    pub fn sweep(&self, from_v: f64, to_v: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a sweep needs at least two points");
        (0..points)
            .map(|i| {
                let v = from_v + (to_v - from_v) * i as f64 / (points - 1) as f64;
                (v, self.interpolate(v))
            })
            .collect()
    }

    /// The curve's anchor points.
    pub fn anchors(&self) -> &[(f64, f64)] {
        &self.anchors
    }
}

/// The alpha-power-law MOSFET delay model: `f(V) = k · (V − V_th)^α / V`.
///
/// This is the textbook closed-form stand-in for the SPICE characterisation
/// the paper performed; we expose it for analytical sweeps and to sanity
/// check the calibrated [`VfCurve`] shape.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaPowerLaw {
    /// Velocity-saturation exponent α (≈1.3–2.0 for 130 nm).
    pub alpha: f64,
    /// Threshold voltage in volts.
    pub threshold_voltage: f64,
    /// Scale constant `k` in MHz chosen at calibration.
    pub scale_mhz: f64,
}

impl AlphaPowerLaw {
    /// Calibrate the law so it predicts `anchor_frequency_mhz` at
    /// `anchor_voltage`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerModelError::InvalidParameter`] if the anchor voltage
    /// does not exceed the threshold voltage.
    pub fn calibrated(
        tech: &Technology,
        alpha: f64,
        anchor_voltage: f64,
        anchor_frequency_mhz: f64,
    ) -> Result<Self, PowerModelError> {
        if anchor_voltage <= tech.threshold_voltage {
            return Err(PowerModelError::InvalidParameter {
                name: "anchor_voltage",
                value: anchor_voltage,
            });
        }
        let unscaled = (anchor_voltage - tech.threshold_voltage).powf(alpha) / anchor_voltage;
        Ok(AlphaPowerLaw {
            alpha,
            threshold_voltage: tech.threshold_voltage,
            scale_mhz: anchor_frequency_mhz / unscaled,
        })
    }

    /// Maximum frequency (MHz) the law predicts at `voltage`; zero at or
    /// below the threshold voltage.
    pub fn frequency_at(&self, voltage: f64) -> f64 {
        if voltage <= self.threshold_voltage {
            return 0.0;
        }
        self.scale_mhz * (voltage - self.threshold_voltage).powf(self.alpha) / voltage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> VfCurve {
        VfCurve::fo4_20(&Technology::isca2004())
    }

    /// Every (frequency, voltage) operating point published in Table 4 must
    /// be reproduced by the calibrated curve under 0.1 V quantisation.
    #[test]
    fn voltage_assignment_matches_table4() {
        let c = curve();
        let published = [
            (120.0, 0.8),
            (200.0, 1.0),
            (40.0, 0.7),
            (380.0, 1.3),
            (370.0, 1.3),
            (500.0, 1.5),
            (310.0, 1.2),
            (90.0, 0.8),
            (60.0, 0.7),
            (540.0, 1.7),
            (330.0, 1.2),
            (110.0, 0.8),
            (70.0, 0.7),
            (280.0, 1.1),
        ];
        for (f, v) in published {
            let got = c.voltage_for_frequency(f).unwrap();
            assert!(
                (got - v).abs() < 1e-6,
                "frequency {f} MHz: expected {v} V, got {got} V"
            );
        }
    }

    #[test]
    fn curve_is_monotone() {
        let c = curve();
        let sweep = c.sweep(0.62, 2.12, 151);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "curve must be non-decreasing");
        }
    }

    #[test]
    fn fo4_15_is_faster_than_fo4_20() {
        let tech = Technology::isca2004();
        let c20 = VfCurve::fo4_20(&tech);
        let c15 = VfCurve::fo4_15(&tech);
        for v in [0.7, 1.0, 1.3, 1.7] {
            assert!(c15.interpolate(v) > c20.interpolate(v));
        }
    }

    #[test]
    fn unreachable_frequency_is_an_error() {
        let c = curve();
        assert!(matches!(
            c.voltage_for_frequency(5000.0),
            Err(PowerModelError::FrequencyUnreachable { .. })
        ));
    }

    #[test]
    fn out_of_range_voltage_is_an_error() {
        let c = curve();
        assert!(c.max_frequency_at(2.5).is_err());
        assert!(c.max_frequency_at(0.3).is_err());
        assert!(c.max_frequency_at(1.0).is_ok());
    }

    #[test]
    fn from_anchors_rejects_non_monotone() {
        let tech = Technology::isca2004();
        let bad = vec![(0.7, 100.0), (0.8, 90.0)];
        assert!(VfCurve::from_anchors(bad, &tech).is_err());
        let short = vec![(0.7, 100.0)];
        assert!(VfCurve::from_anchors(short, &tech).is_err());
        let good = vec![(0.7, 100.0), (1.0, 300.0)];
        assert!(VfCurve::from_anchors(good, &tech).is_ok());
    }

    #[test]
    fn alpha_power_law_calibration_hits_anchor() {
        let tech = Technology::isca2004();
        let law = AlphaPowerLaw::calibrated(&tech, 1.6, 1.65, 600.0).unwrap();
        assert!((law.frequency_at(1.65) - 600.0).abs() < 1e-6);
        assert_eq!(law.frequency_at(0.3), 0.0);
        assert!(law.frequency_at(1.0) < law.frequency_at(1.2));
    }

    #[test]
    fn alpha_power_law_rejects_subthreshold_anchor() {
        let tech = Technology::isca2004();
        assert!(AlphaPowerLaw::calibrated(&tech, 1.6, 0.2, 100.0).is_err());
    }

    #[test]
    fn voltage_floor_applies_to_slow_kernels() {
        // MPEG-4 motion estimation at 70 MHz still gets the 0.7 V floor.
        let c = curve();
        assert!((c.voltage_for_frequency(10.0).unwrap() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn sweep_produces_requested_points() {
        let c = curve();
        let s = c.sweep(0.7, 1.7, 11);
        assert_eq!(s.len(), 11);
        assert!((s[0].0 - 0.7).abs() < 1e-9);
        assert!((s[10].0 - 1.7).abs() < 1e-9);
    }
}
