//! The normalised dynamic tile power model.
//!
//! The paper estimates a normalised tile power `U` (mW/MHz) from VHDL
//! synthesis: 0.03 mW/MHz for the datapath, 0.11 mW/MHz for the register
//! file, 1.75 mW/MHz for the 32 KB data memory, plus an amortised
//! 0.25 mW/MHz for the SIMD controller and DOU shared across a column of
//! four tiles, for 2.14 mW/MHz at the 2.5 V synthesis reference.  A 30 %
//! custom-logic reduction and scaling to a 1 V supply yield the headline
//! 0.1 mW/MHz figure (`U` in Table 1).  Dynamic power then scales as
//! `P = U · f · (V / V_ref)² · N` for `N` active tiles.

use crate::tech::Technology;

/// Breakdown of the tile's normalised power derivation at the synthesis
/// reference voltage, reproducing the arithmetic of Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilePowerBreakdown {
    /// Synthesised datapath contribution (mW/MHz at 2.5 V).
    pub datapath: f64,
    /// Register file contribution (mW/MHz at 2.5 V).
    pub register_file: f64,
    /// 32 KB data memory contribution (mW/MHz at 2.5 V).
    pub data_memory: f64,
    /// Amortised SIMD controller + DOU contribution per tile (mW/MHz).
    pub control_overhead: f64,
    /// Fractional reduction assumed for a custom-logic implementation.
    pub custom_logic_reduction: f64,
    /// Synthesis reference supply voltage (V).
    pub synthesis_voltage: f64,
    /// Target reference voltage (V) for the normalised figure.
    pub target_voltage: f64,
}

impl TilePowerBreakdown {
    /// The published derivation: 0.03 + 0.11 + 1.75 (+0.25 amortised) at
    /// 2.5 V, −30 % custom logic, rescaled to 1 V.
    pub fn isca2004() -> Self {
        TilePowerBreakdown {
            datapath: 0.03,
            register_file: 0.11,
            data_memory: 1.75,
            control_overhead: 0.25,
            custom_logic_reduction: 0.30,
            synthesis_voltage: 2.5,
            target_voltage: 1.0,
        }
    }

    /// Total normalised power of the tile datapath + memories at the
    /// synthesis voltage, before control overhead (1.89 mW/MHz).
    pub fn tile_only_mw_per_mhz(&self) -> f64 {
        self.datapath + self.register_file + self.data_memory
    }

    /// Total including the amortised SIMD controller and DOU share
    /// (2.14 mW/MHz).
    pub fn with_control_mw_per_mhz(&self) -> f64 {
        self.tile_only_mw_per_mhz() + self.control_overhead
    }

    /// After the custom-logic reduction, still at the synthesis voltage
    /// (≈0.642 mW/MHz — the paper applies the 30 % reduction and additional
    /// custom-implementation savings; see note below).
    ///
    /// The paper's text jumps from 2.14 mW/MHz to "approximately
    /// 0.642 mW/MHz" after assuming a custom implementation; the published
    /// end point (0.1 mW/MHz at 1 V) is what every downstream result uses,
    /// so we derive the implied overall reduction factor from those two
    /// published numbers rather than re-deriving the intermediate step.
    pub fn custom_implementation_mw_per_mhz(&self) -> f64 {
        0.642
    }

    /// The normalised power at the 1 V reference used throughout the
    /// evaluation (`U` = 0.1 mW/MHz).
    pub fn normalized_u_mw_per_mhz(&self) -> f64 {
        self.custom_implementation_mw_per_mhz()
            * (self.target_voltage / self.synthesis_voltage).powi(2)
    }
}

/// Dynamic power model for a group of tiles running at a common frequency
/// and voltage (i.e. one Synchroscalar column or a set of columns assigned
/// to the same kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct TilePowerModel {
    /// Normalised power in mW/MHz at `reference_voltage`.
    pub u_mw_per_mhz: f64,
    /// Reference voltage at which `u_mw_per_mhz` was characterised.
    pub reference_voltage: f64,
}

impl TilePowerModel {
    /// Build the model from a [`Technology`] description.
    pub fn new(tech: &Technology) -> Self {
        TilePowerModel {
            u_mw_per_mhz: tech.tile_power_mw_per_mhz,
            reference_voltage: tech.reference_voltage,
        }
    }

    /// Dynamic power in milliwatts for `tiles` tiles running at
    /// `frequency_mhz` and supply `voltage`:
    /// `P = U · f · (V / V_ref)² · N`.
    pub fn power_mw(&self, tiles: u32, frequency_mhz: f64, voltage: f64) -> f64 {
        let scale = (voltage / self.reference_voltage).powi(2);
        self.u_mw_per_mhz * frequency_mhz * scale * f64::from(tiles)
    }

    /// Energy per cycle in nanojoules for a single tile at `voltage`.
    pub fn energy_per_cycle_nj(&self, voltage: f64) -> f64 {
        // mW/MHz is numerically equal to nJ per cycle.
        self.u_mw_per_mhz * (voltage / self.reference_voltage).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_reproduces_section_4_2() {
        let b = TilePowerBreakdown::isca2004();
        assert!((b.tile_only_mw_per_mhz() - 1.89).abs() < 1e-9);
        assert!((b.with_control_mw_per_mhz() - 2.14).abs() < 1e-9);
        // 0.642 mW/MHz at 2.5 V becomes ~0.103 mW/MHz at 1 V, which the
        // paper rounds to the headline 0.1 mW/MHz.
        let u = b.normalized_u_mw_per_mhz();
        assert!((u - 0.1).abs() < 0.01, "expected ~0.1 mW/MHz, got {u}");
    }

    #[test]
    fn power_scales_linearly_with_tiles_and_frequency() {
        let model = TilePowerModel::new(&Technology::isca2004());
        let p1 = model.power_mw(1, 100.0, 1.0);
        let p2 = model.power_mw(2, 100.0, 1.0);
        let p4 = model.power_mw(1, 400.0, 1.0);
        assert!((p2 - 2.0 * p1).abs() < 1e-9);
        assert!((p4 - 4.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn power_scales_quadratically_with_voltage() {
        let model = TilePowerModel::new(&Technology::isca2004());
        let p1 = model.power_mw(1, 100.0, 1.0);
        let p2 = model.power_mw(1, 100.0, 2.0);
        assert!((p2 - 4.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn ddc_mixer_compute_power_matches_paper_scale() {
        // DDC digital mixer: 8 tiles, 120 MHz, 0.8 V → 0.1·120·0.64·8 =
        // 61.4 mW of compute power (the paper's 76.3 mW row adds bus and
        // leakage on top).
        let model = TilePowerModel::new(&Technology::isca2004());
        let p = model.power_mw(8, 120.0, 0.8);
        assert!((p - 61.44).abs() < 1e-6);
    }

    #[test]
    fn viterbi_acs_compute_power_matches_paper_scale() {
        // Viterbi ACS: 16 tiles, 540 MHz, 1.7 V → ~2496 mW of compute.
        let model = TilePowerModel::new(&Technology::isca2004());
        let p = model.power_mw(16, 540.0, 1.7);
        assert!((p - 0.1 * 540.0 * 1.7_f64.powi(2) * 16.0).abs() < 1e-6);
        assert!(p > 2400.0 && p < 2600.0);
    }

    #[test]
    fn energy_per_cycle_matches_power() {
        let model = TilePowerModel::new(&Technology::isca2004());
        // 0.1 mW/MHz == 0.1 nJ/cycle at the reference voltage.
        assert!((model.energy_per_cycle_nj(1.0) - 0.1).abs() < 1e-12);
    }
}
