//! Regenerates the Section 5.5 tile-power sensitivity analysis: total
//! application power as the normalised tile power U is varied.
use synchro_power::Technology;
use synchroscalar::experiments::tile_power_sensitivity;

fn main() {
    let tech = Technology::isca2004();
    println!("Section 5.5: sensitivity of application power to tile power U");
    println!(
        "{:>14} {:<16} {:>12}",
        "U (mW/MHz)", "Application", "Power (mW)"
    );
    for p in tile_power_sensitivity(&tech) {
        println!(
            "{:>14.2} {:<16} {:>12.1}",
            p.tile_power_mw_per_mhz, p.application, p.power_mw
        );
    }
}
