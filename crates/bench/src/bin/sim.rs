//! Fast-tier simulation throughput on the paper's reference applications.
//!
//! For the DDC and 802.11a receive chains this bench compiles the
//! reference mapping twice — once per execution tier — runs a
//! million-frame trace on each, asserts the two chips finish **bit
//! identical** (execution report, chip statistics, per-column statistics,
//! horizontal-bus counters), and records the wall-clock speedup of the
//! batched fast tier over the cycle-level interpreter in
//! `BENCH_sim.json`.  Pass `--quick` to shrink the trace to a thousand
//! frames so CI can smoke the path without timing noise; the committed
//! record is the full run, which must show at least a 100× speedup on
//! the million-frame 802.11a trace.

use std::time::Instant;

use bench::rule;
use synchroscalar::apps::{deep_pipeline, DEEP_PIPELINE_RATE_HZ};
use synchroscalar::mapper::{
    self, BoardConfig, BoardExecutionReport, CompiledBoard, CompiledChip, ExecutionReport,
    ExecutionTier, MapperOptions,
};
use synchroscalar::sdf::{ActorId, Mapping, SdfGraph};

/// Measurement repetitions per tier; the fastest run is recorded (least
/// scheduler interference).
const RUNS: usize = 3;

/// The acceptance floor: the fast tier must beat the interpreter by at
/// least this factor on the full million-frame 802.11a trace.
const REQUIRED_SPEEDUP: f64 = 100.0;

struct AppRow {
    application: &'static str,
    frames: u64,
    hyperperiod: u64,
    reference_ticks: u64,
    interpreted_seconds: f64,
    fast_seconds: f64,
    speedup: f64,
}

fn compile_tier(
    graph: &SdfGraph,
    mapping: &Mapping,
    rate: f64,
    frames: u64,
    tier: ExecutionTier,
) -> CompiledChip {
    let options = MapperOptions {
        iterations: frames,
        iteration_rate_hz: rate,
        tier,
        ..MapperOptions::default()
    };
    mapper::compile(graph, mapping, &options).expect("reference mapping compiles")
}

/// Time `execute` on a freshly compiled chip, best of [`RUNS`]; returns
/// the report of the fastest run and its wall-clock seconds.
fn measure(
    graph: &SdfGraph,
    mapping: &Mapping,
    rate: f64,
    frames: u64,
    tier: ExecutionTier,
) -> (ExecutionReport, CompiledChip, f64) {
    let mut best: Option<(ExecutionReport, CompiledChip, f64)> = None;
    for _ in 0..RUNS {
        let mut compiled = compile_tier(graph, mapping, rate, frames, tier);
        let start = Instant::now();
        let report = compiled.execute().expect("reference trace executes");
        let elapsed = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, _, b)| elapsed < *b) {
            best = Some((report, compiled, elapsed));
        }
    }
    best.expect("at least one run")
}

fn measure_app(
    application: &'static str,
    graph: &SdfGraph,
    mapping: &Mapping,
    rate: f64,
    frames: u64,
) -> AppRow {
    let (interpreted_report, interpreted, interpreted_seconds) =
        measure(graph, mapping, rate, frames, ExecutionTier::Interpreted);
    let (fast_report, fast, fast_seconds) =
        measure(graph, mapping, rate, frames, ExecutionTier::Fast);
    // The speedup only counts if the tiers are indistinguishable at the
    // measured scale.
    assert_eq!(
        interpreted_report, fast_report,
        "{application}: execution reports diverge between tiers"
    );
    assert_eq!(
        interpreted.chip().stats(),
        fast.chip().stats(),
        "{application}: chip statistics diverge between tiers"
    );
    assert_eq!(
        interpreted.chip().column_stats(),
        fast.chip().column_stats(),
        "{application}: column statistics diverge between tiers"
    );
    assert_eq!(
        interpreted.chip().horizontal_stats(),
        fast.chip().horizontal_stats(),
        "{application}: horizontal-bus counters diverge between tiers"
    );
    assert!(interpreted_report.firings_exact());
    AppRow {
        application,
        frames,
        hyperperiod: fast_report.hyperperiod,
        reference_ticks: fast_report.reference_ticks,
        interpreted_seconds,
        fast_seconds,
        speedup: interpreted_seconds / fast_seconds.max(1e-12),
    }
}

/// The 24-stage deep pipeline split 12/12 across a 2-chip board (the
/// single-chip mapping is communication-infeasible): times the board
/// driver's co-advance on both tiers.  The board frame is 960 reference
/// ticks, so the trace is shorter than the single-chip ones.
fn measure_board(frames: u64) -> AppRow {
    let graph = deep_pipeline();
    let mut mapping = Mapping::new();
    for (i, actor) in graph.actors().iter().enumerate() {
        mapping.place_on_chip(i / 12, ActorId(i), actor.max_parallel_tiles, 1.0);
    }
    let compile_on = |tier| -> CompiledBoard {
        let options = MapperOptions {
            iterations: frames,
            iteration_rate_hz: DEEP_PIPELINE_RATE_HZ,
            tier,
            ..MapperOptions::default()
        };
        mapper::compile_board(&graph, &mapping, &options, &BoardConfig::default())
            .expect("the 12/12 split compiles")
    };
    let measure_tier = |tier| -> (BoardExecutionReport, CompiledBoard, f64) {
        let mut best: Option<(BoardExecutionReport, CompiledBoard, f64)> = None;
        for _ in 0..RUNS {
            let mut compiled = compile_on(tier);
            let start = Instant::now();
            let report = compiled.execute().expect("board traces execute");
            let elapsed = start.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(_, _, b)| elapsed < *b) {
                best = Some((report, compiled, elapsed));
            }
        }
        best.expect("at least one run")
    };
    let (interpreted_report, interpreted, interpreted_seconds) =
        measure_tier(ExecutionTier::Interpreted);
    let (fast_report, fast, fast_seconds) = measure_tier(ExecutionTier::Fast);
    assert_eq!(
        interpreted_report, fast_report,
        "board: execution reports diverge between tiers"
    );
    for chip in 0..interpreted.chips() {
        assert_eq!(
            interpreted.board().chip(chip).unwrap().stats(),
            fast.board().chip(chip).unwrap().stats(),
            "board: chip {chip} statistics diverge between tiers"
        );
    }
    assert_eq!(
        interpreted.board().bridge_stats(),
        fast.board().bridge_stats(),
        "board: bridge counters diverge between tiers"
    );
    assert!(interpreted_report.firings_exact());
    AppRow {
        application: "board 2x12",
        frames,
        hyperperiod: fast_report.hyperperiod,
        reference_ticks: fast_report.reference_ticks,
        interpreted_seconds,
        fast_seconds,
        speedup: interpreted_seconds / fast_seconds.max(1e-12),
    }
}

fn row_json(row: &AppRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"application\": \"{}\",\n",
            "      \"frames\": {},\n",
            "      \"hyperperiod\": {},\n",
            "      \"reference_ticks\": {},\n",
            "      \"interpreted_seconds\": {:.6},\n",
            "      \"fast_seconds\": {:.9},\n",
            "      \"speedup\": {:.1},\n",
            "      \"bit_identical\": true\n",
            "    }}"
        ),
        row.application,
        row.frames,
        row.hyperperiod,
        row.reference_ticks,
        row.interpreted_seconds,
        row.fast_seconds,
        row.speedup,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let frames: u64 = if quick { 1_000 } else { 1_000_000 };

    let ddc = mapper::ddc_reference();
    let wifi = mapper::wifi_reference();
    let apps: [(&'static str, &SdfGraph, &Mapping, f64); 2] = [
        ("ddc", &ddc.0, &ddc.1, ddc.2),
        ("802.11a", &wifi.0, &wifi.1, wifi.2),
    ];

    println!(
        "Fast-tier simulation throughput ({} frames per application, best of {RUNS} runs):",
        frames
    );
    rule(92);
    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>14} {:>14}",
        "Application", "Frames", "Hyperperiod", "Interpreted s", "Fast s", "Speedup"
    );
    rule(92);
    let mut rows = Vec::new();
    for (application, graph, mapping, rate) in apps {
        let row = measure_app(application, graph, mapping, rate, frames);
        println!(
            "{:<12} {:>12} {:>14} {:>16.4} {:>14.6} {:>13.0}x",
            row.application,
            row.frames,
            row.hyperperiod,
            row.interpreted_seconds,
            row.fast_seconds,
            row.speedup
        );
        rows.push(row);
    }
    // The multi-chip board row: a 960-tick frame makes full traces far
    // heavier per frame than the single-chip apps, so it runs 1% of the
    // frames.
    let board_row = measure_board(frames / 100);
    println!(
        "{:<12} {:>12} {:>14} {:>16.4} {:>14.6} {:>13.0}x",
        board_row.application,
        board_row.frames,
        board_row.hyperperiod,
        board_row.interpreted_seconds,
        board_row.fast_seconds,
        board_row.speedup
    );
    rows.push(board_row);
    rule(92);

    if !quick {
        let wifi_row = rows
            .iter()
            .find(|r| r.application == "802.11a")
            .expect("802.11a row");
        assert!(
            wifi_row.speedup >= REQUIRED_SPEEDUP,
            "fast tier must be at least {REQUIRED_SPEEDUP}x faster on the million-frame \
             802.11a trace, measured {:.1}x",
            wifi_row.speedup
        );
    }

    let rows_json: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sim\",\n",
            "  \"quick\": {},\n",
            "  \"runs_per_tier\": {},\n",
            "  \"required_speedup\": {:.1},\n",
            "  \"applications\": [\n",
            "{}\n",
            "  ]\n",
            "}}\n"
        ),
        quick,
        RUNS,
        REQUIRED_SPEEDUP,
        rows_json.join(",\n"),
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("\nPerf record written to BENCH_sim.json");
}
