//! Fast-tier simulation throughput on the paper's reference applications.
//!
//! For the DDC and 802.11a receive chains this bench compiles the
//! reference mapping twice — once per execution tier — runs a
//! million-frame trace on each, asserts the two chips finish **bit
//! identical** (execution report, chip statistics, per-column statistics,
//! horizontal-bus counters), and records the wall-clock speedup of the
//! batched fast tier over the cycle-level interpreter in
//! `BENCH_sim.json`.  Pass `--quick` to shrink the trace to a thousand
//! frames so CI can smoke the path without timing noise; the committed
//! record is the full run, which must show at least a 100× speedup on
//! the million-frame 802.11a trace.
//!
//! The bench also guards the observability substrate: it times the
//! interpreted DDC with a [`NullSink`] installed against the default
//! disabled trace and requires the overhead below
//! [`MAX_TRACE_OVERHEAD_PCT`] (full runs only).  Pass `--trace <path>`
//! to additionally record a short traced DDC run and write its Chrome
//! `trace_event` timeline to `<path>` (load it in Perfetto or
//! `chrome://tracing`).
//!
//! The fault path is benched too (always on full runs, on quick runs
//! only with `--fault`): a fault-injected DDC — the CFIR column killed
//! mid-run — must reach the same structured [`SimFault`] stall
//! bit-identically on both tiers, and the degraded-mode summary
//! (`experiments::degraded_mode_summary`) is timed and its per-profile
//! recovery shape recorded under the `degraded` key.
//!
//! Trace analytics (always on full runs, on quick runs only with
//! `--analyze`): every traced event of all six reference profiles is
//! priced through the `synchro-power` models on both tiers
//! (`experiments::energy_attribution_summary`) and the event-priced
//! total must agree with the independent report-counter energy within
//! 0.1%; the binding resource and deadline headroom are recorded per
//! profile, and `experiments::explain_infeasibility` must blame the
//! router's `period_overflow` for the single-chip deep pipeline.  Pass
//! `--analyze <path>` to additionally write a Chrome trace of a short
//! DDC run with the attributed power appended as Perfetto counter
//! tracks.

use std::sync::Arc;
use std::time::Instant;

use bench::rule;
use synchroscalar::apps::{deep_pipeline, DEEP_PIPELINE_RATE_HZ};
use synchroscalar::experiments::{
    degraded_mode_summary, energy_attribution_summary, explain_infeasibility, EnergyAttributionRow,
    InfeasibilityExplanation,
};
use synchroscalar::mapper::{
    self, BoardConfig, BoardExecutionReport, CompiledBoard, CompiledChip, ExecutionReport,
    ExecutionTier, FaultedRun, MapperOptions,
};
use synchroscalar::power::Technology;
use synchroscalar::sdf::{ActorId, Mapping, SdfGraph};
use synchroscalar::sim::{FaultPlan, SimFault};
use synchroscalar::trace::analyze::power_timeline;
use synchroscalar::trace::chrome::{chrome_trace, chrome_trace_with_power};
use synchroscalar::trace::{NullSink, RingBufferSink, Trace};

/// Measurement repetitions per tier; the fastest run is recorded (least
/// scheduler interference).
const RUNS: usize = 3;

/// The acceptance floor: the fast tier must beat the interpreter by at
/// least this factor on the full million-frame 802.11a trace.
const REQUIRED_SPEEDUP: f64 = 100.0;

/// Largest tolerated throughput regression from an installed-but-disabled
/// trace sink, in percent of the interpreted DDC run time.
const MAX_TRACE_OVERHEAD_PCT: f64 = 2.0;

struct AppRow {
    application: &'static str,
    frames: u64,
    hyperperiod: u64,
    reference_ticks: u64,
    interpreted_seconds: f64,
    fast_seconds: f64,
    speedup: f64,
}

fn compile_tier(
    graph: &SdfGraph,
    mapping: &Mapping,
    rate: f64,
    frames: u64,
    tier: ExecutionTier,
) -> CompiledChip {
    let options = MapperOptions {
        iterations: frames,
        iteration_rate_hz: rate,
        tier,
        ..MapperOptions::default()
    };
    mapper::compile(graph, mapping, &options).expect("reference mapping compiles")
}

/// Time `execute` on a freshly compiled chip, best of [`RUNS`]; returns
/// the report of the fastest run and its wall-clock seconds.
fn measure(
    graph: &SdfGraph,
    mapping: &Mapping,
    rate: f64,
    frames: u64,
    tier: ExecutionTier,
) -> (ExecutionReport, CompiledChip, f64) {
    let mut best: Option<(ExecutionReport, CompiledChip, f64)> = None;
    for _ in 0..RUNS {
        let mut compiled = compile_tier(graph, mapping, rate, frames, tier);
        let start = Instant::now();
        let report = compiled.execute().expect("reference trace executes");
        let elapsed = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, _, b)| elapsed < *b) {
            best = Some((report, compiled, elapsed));
        }
    }
    best.expect("at least one run")
}

fn measure_app(
    application: &'static str,
    graph: &SdfGraph,
    mapping: &Mapping,
    rate: f64,
    frames: u64,
) -> AppRow {
    let (interpreted_report, interpreted, interpreted_seconds) =
        measure(graph, mapping, rate, frames, ExecutionTier::Interpreted);
    let (fast_report, fast, fast_seconds) =
        measure(graph, mapping, rate, frames, ExecutionTier::Fast);
    // The speedup only counts if the tiers are indistinguishable at the
    // measured scale.
    assert_eq!(
        interpreted_report, fast_report,
        "{application}: execution reports diverge between tiers"
    );
    assert_eq!(
        interpreted.chip().stats(),
        fast.chip().stats(),
        "{application}: chip statistics diverge between tiers"
    );
    assert_eq!(
        interpreted.chip().column_stats(),
        fast.chip().column_stats(),
        "{application}: column statistics diverge between tiers"
    );
    assert_eq!(
        interpreted.chip().horizontal_stats(),
        fast.chip().horizontal_stats(),
        "{application}: horizontal-bus counters diverge between tiers"
    );
    assert!(interpreted_report.firings_exact());
    AppRow {
        application,
        frames,
        hyperperiod: fast_report.hyperperiod,
        reference_ticks: fast_report.reference_ticks,
        interpreted_seconds,
        fast_seconds,
        speedup: interpreted_seconds / fast_seconds.max(1e-12),
    }
}

/// The 24-stage deep pipeline split 12/12 across a 2-chip board (the
/// single-chip mapping is communication-infeasible): times the board
/// driver's co-advance on both tiers.  The board frame is 960 reference
/// ticks, so the trace is shorter than the single-chip ones.
fn measure_board(frames: u64) -> AppRow {
    let graph = deep_pipeline();
    let mut mapping = Mapping::new();
    for (i, actor) in graph.actors().iter().enumerate() {
        mapping.place_on_chip(i / 12, ActorId(i), actor.max_parallel_tiles, 1.0);
    }
    let compile_on = |tier| -> CompiledBoard {
        let options = MapperOptions {
            iterations: frames,
            iteration_rate_hz: DEEP_PIPELINE_RATE_HZ,
            tier,
            ..MapperOptions::default()
        };
        mapper::compile_board(&graph, &mapping, &options, &BoardConfig::default())
            .expect("the 12/12 split compiles")
    };
    let measure_tier = |tier| -> (BoardExecutionReport, CompiledBoard, f64) {
        let mut best: Option<(BoardExecutionReport, CompiledBoard, f64)> = None;
        for _ in 0..RUNS {
            let mut compiled = compile_on(tier);
            let start = Instant::now();
            let report = compiled.execute().expect("board traces execute");
            let elapsed = start.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(_, _, b)| elapsed < *b) {
                best = Some((report, compiled, elapsed));
            }
        }
        best.expect("at least one run")
    };
    let (interpreted_report, interpreted, interpreted_seconds) =
        measure_tier(ExecutionTier::Interpreted);
    let (fast_report, fast, fast_seconds) = measure_tier(ExecutionTier::Fast);
    assert_eq!(
        interpreted_report, fast_report,
        "board: execution reports diverge between tiers"
    );
    for chip in 0..interpreted.chips() {
        assert_eq!(
            interpreted.board().chip(chip).unwrap().stats(),
            fast.board().chip(chip).unwrap().stats(),
            "board: chip {chip} statistics diverge between tiers"
        );
    }
    assert_eq!(
        interpreted.board().bridge_stats(),
        fast.board().bridge_stats(),
        "board: bridge counters diverge between tiers"
    );
    assert!(interpreted_report.firings_exact());
    AppRow {
        application: "board 2x12",
        frames,
        hyperperiod: fast_report.hyperperiod,
        reference_ticks: fast_report.reference_ticks,
        interpreted_seconds,
        fast_seconds,
        speedup: interpreted_seconds / fast_seconds.max(1e-12),
    }
}

struct FaultRow {
    frames: u64,
    killed_column: usize,
    kill_tick: u64,
    stall_tick: u64,
    watchdog_window: u64,
    interpreted_seconds: f64,
    fast_seconds: f64,
}

/// Kill the DDC's CFIR column two frames into a fault-injected run on
/// both tiers.  A killed column never halts, so the chip cannot drain:
/// both tiers must abandon the run with the same structured
/// [`SimFault::Stalled`] outcome, bit identical, and each tier's wall
/// clock is recorded.
fn measure_fault(graph: &SdfGraph, mapping: &Mapping, rate: f64, frames: u64) -> FaultRow {
    let killed_column = 3; // CFIR
    let measure_tier = |tier| -> (FaultedRun, f64) {
        let mut best: Option<(FaultedRun, f64)> = None;
        for _ in 0..RUNS {
            let mut compiled = compile_tier(graph, mapping, rate, frames, tier);
            let mut plan = FaultPlan::none();
            plan.kill_column(0, killed_column, compiled.hyperperiod() * 2);
            let start = Instant::now();
            let run = compiled
                .execute_faulted(&plan)
                .expect("faulted runs terminate with a structured outcome");
            let elapsed = start.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(_, b)| elapsed < *b) {
                best = Some((run, elapsed));
            }
        }
        best.expect("at least one run")
    };
    let (interpreted_run, interpreted_seconds) = measure_tier(ExecutionTier::Interpreted);
    let (fast_run, fast_seconds) = measure_tier(ExecutionTier::Fast);
    assert_eq!(
        interpreted_run, fast_run,
        "fault-injected runs diverge between tiers"
    );
    let SimFault::Stalled {
        reference_cycles,
        window,
    } = interpreted_run
        .fault
        .expect("a dead column starves the chip");
    FaultRow {
        frames,
        killed_column,
        kill_tick: interpreted_run.report.hyperperiod * 2,
        stall_tick: reference_cycles,
        watchdog_window: window,
        interpreted_seconds,
        fast_seconds,
    }
}

struct DegradedSummary {
    seconds: f64,
    rows_json: Vec<String>,
}

/// Time [`degraded_mode_summary`] — the full six-profile + board
/// degradation sweep — and render each row's recovery shape for the
/// perf record: how many single-column losses remap at full rate, the
/// worst rate any loss degrades to, and whether the static fault
/// rejection held.
fn measure_degraded() -> DegradedSummary {
    let start = Instant::now();
    let rows = degraded_mode_summary(&Technology::isca2004());
    let seconds = start.elapsed().as_secs_f64();
    let rows_json = rows
        .iter()
        .map(|row| {
            let full_rate = row.curve.points.iter().filter(|p| p.is_full_rate()).count();
            let worst = row
                .curve
                .points
                .iter()
                .min_by(|a, b| a.rate_hz.total_cmp(&b.rate_hz))
                .expect("curves are non-empty");
            assert!(
                row.curve.is_monotone(),
                "{}: curve not monotone",
                row.application
            );
            assert!(
                row.fault_rejected,
                "{}: static rejection failed",
                row.application
            );
            format!(
                concat!(
                    "      {{\n",
                    "        \"application\": \"{}\",\n",
                    "        \"losses\": {},\n",
                    "        \"full_rate_remaps\": {},\n",
                    "        \"worst_rate\": \"{}/{}\",\n",
                    "        \"infeasible_losses\": {},\n",
                    "        \"fault_rejected\": true\n",
                    "      }}"
                ),
                row.application,
                row.curve.points.len(),
                full_rate,
                worst.rate_num,
                worst.rate_den,
                row.curve.infeasible_losses().len(),
            )
        })
        .collect();
    DegradedSummary { seconds, rows_json }
}

struct AnalysisSection {
    seconds: f64,
    rows: Vec<EnergyAttributionRow>,
    explanation: InfeasibilityExplanation,
}

/// Price every traced event of the six reference profiles on both tiers
/// and gate the event-priced energy against the independent
/// report-counter energy (within 0.1%), then ask the rejection ledger
/// why the 24-stage deep pipeline refuses a single chip: the answer
/// must be the router's `period_overflow`.
fn measure_analysis() -> AnalysisSection {
    let start = Instant::now();
    let rows = energy_attribution_summary(&Technology::isca2004());
    for row in &rows {
        assert_eq!(
            row.unpriced_events, 0,
            "{} [{}]: events escaped the price spec",
            row.application, row.tier
        );
        assert!(
            row.relative_error <= 1e-3,
            "{} [{}]: attribution {:.4}% off the report counters",
            row.application,
            row.tier,
            row.relative_error * 100.0
        );
    }
    let explanation = explain_infeasibility(&deep_pipeline(), DEEP_PIPELINE_RATE_HZ, 64);
    assert!(!explanation.feasible, "the single-chip split must fail");
    assert_eq!(
        explanation.classes.first().map(|c| c.code.as_str()),
        Some("period_overflow"),
        "the dominant rejection must be the router's period overflow"
    );
    AnalysisSection {
        seconds: start.elapsed().as_secs_f64(),
        rows,
        explanation,
    }
}

/// Record a short traced interpreted DDC run and write a Chrome trace
/// with the attributed power appended as Perfetto counter tracks.
fn export_power_timeline(graph: &SdfGraph, mapping: &Mapping, rate: f64, path: &str) {
    let tech = Technology::isca2004();
    let ring = Arc::new(RingBufferSink::new(1 << 22));
    let options = MapperOptions {
        iterations: 8,
        iteration_rate_hz: rate,
        tier: ExecutionTier::Interpreted,
        trace: Trace::to(ring.clone()),
        ..MapperOptions::default()
    };
    let mut compiled =
        mapper::compile(graph, mapping, &options).expect("reference mapping compiles");
    let report = compiled.execute().expect("reference trace executes");
    assert_eq!(ring.dropped(), 0, "trace ring overflowed");
    let events = ring.events();
    let spec = compiled.price_spec(&tech);
    let power = power_timeline(&events, &spec, report.reference_ticks, 64);
    std::fs::write(path, chrome_trace_with_power(&events, &power)).expect("write power timeline");
    println!("Chrome trace with power counter tracks written to {path}");
}

/// Repetitions per arm for the NullSink overhead measurement.  The two
/// arms run identical code (see below), so the gate is pure
/// noise-rejection: more repetitions than the tier benchmarks, with the
/// arms interleaved so background load hits both equally, and min-of-N
/// so one clean repetition per arm suffices.
const OVERHEAD_RUNS: usize = 7;

/// Time the interpreted DDC twice — default disabled trace vs an
/// installed [`NullSink`] — and return `(off_seconds, null_seconds,
/// overhead_pct)`.  [`Trace::to`] collapses disabled sinks, so the two
/// arms must be indistinguishable; the gate catches any change that lets
/// a disabled sink reach the hot loops.
fn measure_trace_overhead(
    graph: &SdfGraph,
    mapping: &Mapping,
    rate: f64,
    frames: u64,
) -> (f64, f64, f64) {
    let time_once = |trace: &Trace| -> f64 {
        let options = MapperOptions {
            iterations: frames,
            iteration_rate_hz: rate,
            tier: ExecutionTier::Interpreted,
            trace: trace.clone(),
            ..MapperOptions::default()
        };
        let mut compiled =
            mapper::compile(graph, mapping, &options).expect("reference mapping compiles");
        let start = Instant::now();
        compiled.execute().expect("reference trace executes");
        start.elapsed().as_secs_f64()
    };
    let off_trace = Trace::off();
    let null_trace = Trace::to(Arc::new(NullSink));
    let (mut off, mut null) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..OVERHEAD_RUNS {
        off = off.min(time_once(&off_trace));
        null = null.min(time_once(&null_trace));
    }
    let overhead_pct = (null / off.max(1e-12) - 1.0) * 100.0;
    (off, null, overhead_pct)
}

/// Record a short traced interpreted DDC run and write its Chrome
/// `trace_event` timeline to `path`.
fn export_timeline(graph: &SdfGraph, mapping: &Mapping, rate: f64, path: &str) {
    let ring = Arc::new(RingBufferSink::new(1 << 22));
    let options = MapperOptions {
        iterations: 8,
        iteration_rate_hz: rate,
        tier: ExecutionTier::Interpreted,
        trace: Trace::to(ring.clone()),
        ..MapperOptions::default()
    };
    let mut compiled =
        mapper::compile(graph, mapping, &options).expect("reference mapping compiles");
    compiled.execute().expect("reference trace executes");
    assert_eq!(ring.dropped(), 0, "trace ring overflowed");
    std::fs::write(path, chrome_trace(&ring.events())).expect("write Chrome trace");
    println!("Chrome trace timeline written to {path}");
}

fn row_json(row: &AppRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"application\": \"{}\",\n",
            "      \"frames\": {},\n",
            "      \"hyperperiod\": {},\n",
            "      \"reference_ticks\": {},\n",
            "      \"interpreted_seconds\": {:.6},\n",
            "      \"fast_seconds\": {:.9},\n",
            "      \"speedup\": {:.1},\n",
            "      \"bit_identical\": true\n",
            "    }}"
        ),
        row.application,
        row.frames,
        row.hyperperiod,
        row.reference_ticks,
        row.interpreted_seconds,
        row.fast_seconds,
        row.speedup,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // The fault path always runs on full records; quick runs opt in.
    let fault = !quick || args.iter().any(|a| a == "--fault");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace requires a path").clone());
    // Trace analytics mirror the fault path: always on full records,
    // opt-in on quick runs.  The path operand is optional (`--analyze`
    // alone gates without exporting).
    let analyze_flag = args.iter().position(|a| a == "--analyze");
    let analyze = !quick || analyze_flag.is_some();
    let analyze_path = analyze_flag
        .and_then(|i| args.get(i + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned();
    let frames: u64 = if quick { 1_000 } else { 1_000_000 };

    let ddc = mapper::ddc_reference();
    let wifi = mapper::wifi_reference();
    let apps: [(&'static str, &SdfGraph, &Mapping, f64); 2] = [
        ("ddc", &ddc.0, &ddc.1, ddc.2),
        ("802.11a", &wifi.0, &wifi.1, wifi.2),
    ];

    println!(
        "Fast-tier simulation throughput ({} frames per application, best of {RUNS} runs):",
        frames
    );
    rule(92);
    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>14} {:>14}",
        "Application", "Frames", "Hyperperiod", "Interpreted s", "Fast s", "Speedup"
    );
    rule(92);
    let mut rows = Vec::new();
    for (application, graph, mapping, rate) in apps {
        let row = measure_app(application, graph, mapping, rate, frames);
        println!(
            "{:<12} {:>12} {:>14} {:>16.4} {:>14.6} {:>13.0}x",
            row.application,
            row.frames,
            row.hyperperiod,
            row.interpreted_seconds,
            row.fast_seconds,
            row.speedup
        );
        rows.push(row);
    }
    // The multi-chip board row: a 960-tick frame makes full traces far
    // heavier per frame than the single-chip apps, so it runs 1% of the
    // frames.
    let board_row = measure_board(frames / 100);
    println!(
        "{:<12} {:>12} {:>14} {:>16.4} {:>14.6} {:>13.0}x",
        board_row.application,
        board_row.frames,
        board_row.hyperperiod,
        board_row.interpreted_seconds,
        board_row.fast_seconds,
        board_row.speedup
    );
    rows.push(board_row);
    rule(92);

    // Disabled-path trace overhead: an installed NullSink must not slow
    // the interpreted DDC measurably.
    let overhead_frames = frames / 40;
    let (trace_off_seconds, trace_null_seconds, trace_overhead_pct) =
        measure_trace_overhead(&ddc.0, &ddc.1, ddc.2, overhead_frames);
    println!(
        "NullSink overhead (interpreted ddc, {} frames): off {:.4}s, null {:.4}s, {:+.2}%",
        overhead_frames, trace_off_seconds, trace_null_seconds, trace_overhead_pct
    );

    // The fault row (injected CFIR kill, both tiers) and the degraded-
    // mode sweep.  The faulted run executes nearly the whole trace
    // before the watchdog verdict, so it uses 1% of the frames.
    let fault_section = fault.then(|| {
        let row = measure_fault(&ddc.0, &ddc.1, ddc.2, frames / 100);
        println!(
            "Fault injection (ddc, {} frames, column {} killed at tick {}): stalled at tick {}, \
             interpreted {:.4}s, fast {:.4}s, bit identical",
            row.frames,
            row.killed_column,
            row.kill_tick,
            row.stall_tick,
            row.interpreted_seconds,
            row.fast_seconds
        );
        let degraded = measure_degraded();
        println!(
            "Degraded-mode sweep ({} profiles): {:.3}s",
            degraded.rows_json.len(),
            degraded.seconds
        );
        (row, degraded)
    });

    // Trace analytics: attribution-vs-counters agreement across all
    // profiles and tiers, plus the ranked infeasibility explanation.
    let analysis_section = analyze.then(|| {
        let section = measure_analysis();
        let worst = section
            .rows
            .iter()
            .map(|r| r.relative_error)
            .fold(0.0f64, f64::max);
        println!(
            "Energy attribution ({} profile/tier rows): worst disagreement {:.4}%, {:.3}s",
            section.rows.len(),
            worst * 100.0,
            section.seconds
        );
        for row in &section.rows {
            println!(
                "  {:<14} [{:<11}] {:>9.3} µJ  {:>8.1} mW  binding {} ({:.0}%, {} ticks headroom)",
                row.application,
                row.tier,
                row.attributed_j * 1e6,
                row.average_power_mw,
                row.binding,
                row.binding_utilization * 100.0,
                row.headroom_ticks
            );
        }
        let dominant = section.explanation.classes.first().expect("rejections");
        println!(
            "Explain infeasibility (deep pipeline, 1 chip): {} ×{} — {}",
            dominant.code, dominant.count, dominant.example
        );
        section
    });

    if let Some(path) = &trace_path {
        export_timeline(&ddc.0, &ddc.1, ddc.2, path);
    }
    if let Some(path) = &analyze_path {
        export_power_timeline(&ddc.0, &ddc.1, ddc.2, path);
    }

    if !quick {
        assert!(
            trace_overhead_pct < MAX_TRACE_OVERHEAD_PCT,
            "disabled trace sink must cost under {MAX_TRACE_OVERHEAD_PCT}% on the interpreted \
             DDC trace, measured {trace_overhead_pct:+.2}%"
        );
        let wifi_row = rows
            .iter()
            .find(|r| r.application == "802.11a")
            .expect("802.11a row");
        assert!(
            wifi_row.speedup >= REQUIRED_SPEEDUP,
            "fast tier must be at least {REQUIRED_SPEEDUP}x faster on the million-frame \
             802.11a trace, measured {:.1}x",
            wifi_row.speedup
        );
    }

    // The fault and degraded blocks are `null` when the fault path was
    // skipped (quick runs without `--fault`), so the schema is stable.
    let (fault_json, degraded_json) = match &fault_section {
        Some((row, degraded)) => (
            format!(
                concat!(
                    "{{\n",
                    "    \"application\": \"ddc\",\n",
                    "    \"frames\": {},\n",
                    "    \"killed_column\": {},\n",
                    "    \"kill_tick\": {},\n",
                    "    \"stall_tick\": {},\n",
                    "    \"watchdog_window\": {},\n",
                    "    \"interpreted_seconds\": {:.6},\n",
                    "    \"fast_seconds\": {:.6},\n",
                    "    \"bit_identical\": true\n",
                    "  }}"
                ),
                row.frames,
                row.killed_column,
                row.kill_tick,
                row.stall_tick,
                row.watchdog_window,
                row.interpreted_seconds,
                row.fast_seconds,
            ),
            format!(
                concat!(
                    "{{\n",
                    "    \"seconds\": {:.6},\n",
                    "    \"profiles\": [\n",
                    "{}\n",
                    "    ]\n",
                    "  }}"
                ),
                degraded.seconds,
                degraded.rows_json.join(",\n"),
            ),
        ),
        None => ("null".to_owned(), "null".to_owned()),
    };

    // The analysis block is `null` when analytics were skipped (quick
    // runs without `--analyze`), so the schema is stable.
    let analysis_json = match &analysis_section {
        Some(section) => {
            let profile_rows: Vec<String> = section
                .rows
                .iter()
                .map(|row| {
                    format!(
                        concat!(
                            "      {{\n",
                            "        \"application\": \"{}\",\n",
                            "        \"tier\": \"{}\",\n",
                            "        \"attributed_uj\": {:.6},\n",
                            "        \"report_uj\": {:.6},\n",
                            "        \"relative_error_pct\": {:.6},\n",
                            "        \"average_power_mw\": {:.3},\n",
                            "        \"binding\": \"{}\",\n",
                            "        \"binding_utilization\": {:.4},\n",
                            "        \"headroom_ticks\": {},\n",
                            "        \"unpriced_events\": 0\n",
                            "      }}"
                        ),
                        row.application,
                        row.tier,
                        row.attributed_j * 1e6,
                        row.report_j * 1e6,
                        row.relative_error * 100.0,
                        row.average_power_mw,
                        row.binding,
                        row.binding_utilization,
                        row.headroom_ticks,
                    )
                })
                .collect();
            let dominant = section.explanation.classes.first().expect("rejections");
            format!(
                concat!(
                    "{{\n",
                    "    \"seconds\": {:.6},\n",
                    "    \"infeasibility\": {{\n",
                    "      \"case\": \"deep_pipeline on 1 chip\",\n",
                    "      \"dominant_code\": \"{}\",\n",
                    "      \"dominant_count\": {},\n",
                    "      \"example\": \"{}\"\n",
                    "    }},\n",
                    "    \"profiles\": [\n",
                    "{}\n",
                    "    ]\n",
                    "  }}"
                ),
                section.seconds,
                dominant.code,
                dominant.count,
                dominant.example,
                profile_rows.join(",\n"),
            )
        }
        None => "null".to_owned(),
    };

    let rows_json: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sim\",\n",
            "  \"schema_version\": 4,\n",
            "  \"generated_at\": \"{}\",\n",
            "  \"quick\": {},\n",
            "  \"runs_per_tier\": {},\n",
            "  \"required_speedup\": {:.1},\n",
            "  \"trace_overhead\": {{\n",
            "    \"frames\": {},\n",
            "    \"off_seconds\": {:.6},\n",
            "    \"null_sink_seconds\": {:.6},\n",
            "    \"overhead_pct\": {:.3},\n",
            "    \"max_overhead_pct\": {:.1}\n",
            "  }},\n",
            "  \"fault\": {},\n",
            "  \"degraded\": {},\n",
            "  \"analysis\": {},\n",
            "  \"applications\": [\n",
            "{}\n",
            "  ]\n",
            "}}\n"
        ),
        synchroscalar::trace::iso8601_utc_now(),
        quick,
        RUNS,
        REQUIRED_SPEEDUP,
        overhead_frames,
        trace_off_seconds,
        trace_null_seconds,
        trace_overhead_pct,
        MAX_TRACE_OVERHEAD_PCT,
        fault_json,
        degraded_json,
        analysis_json,
        rows_json.join(",\n"),
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("\nPerf record written to BENCH_sim.json");
}
