//! Regenerates Table 3: power comparison of Synchroscalar with other
//! platforms, plus the headline ASIC/DSP efficiency ratios.
use synchro_apps::Application;
use synchro_power::Technology;
use synchroscalar::experiments::{efficiency_ratios, table3};

fn main() {
    let tech = Technology::isca2004();
    println!("Table 3: Power Comparison of Synchroscalar with other platforms");
    bench::rule(100);
    println!(
        "{:<14} {:<22} {:>10} {:>12}  Notes",
        "Application", "Platform", "Area mm^2", "Power mW"
    );
    bench::rule(100);
    for row in table3(&tech) {
        let area = row
            .area_mm2
            .map(|a| format!("{a:.2}"))
            .unwrap_or_else(|| "UNK".to_owned());
        println!(
            "{:<14} {:<22} {:>10} {:>12.2}  {}",
            row.application, row.platform, area, row.power_mw, row.notes
        );
    }
    bench::rule(100);
    println!("Headline efficiency ratios (rate-normalised):");
    for app in [
        Application::Ddc,
        Application::StereoVision,
        Application::Wifi80211a,
        Application::Mpeg4Qcif,
        Application::Mpeg4Cif,
    ] {
        if let Some(r) = efficiency_ratios(&tech, app) {
            println!(
                "  {:<14} {:>6.1}x of best ASIC, {:>7.1}x better than the Blackfin DSP",
                app.name(),
                r.vs_asic,
                r.vs_dsp
            );
        }
    }
}
