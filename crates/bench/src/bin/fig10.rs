//! Regenerates Figure 10: leakage sensitivity for the MPEG-4 and Stereo
//! Vision parallelisation variants (including the cross-over the paper
//! highlights near 14.8 mA/tile).
use synchro_power::Technology;
use synchroscalar::experiments::leakage_sensitivity;

fn main() {
    let tech = Technology::isca2004();
    println!("Figure 10: Leakage sensitivity for MPEG4 and Stereo Vision");
    println!(
        "{:<16} {:>6} {:>14} {:>12}",
        "Application", "Tiles", "Leak (mA/tile)", "Power (mW)"
    );
    for p in leakage_sensitivity(&tech) {
        if p.application.starts_with("MPEG4") || p.application == "Stereo Vision" {
            println!(
                "{:<16} {:>6} {:>14.1} {:>12.1}",
                p.application, p.tiles, p.leakage_ma_per_tile, p.power_mw
            );
        }
    }
}
