//! Regenerates Table 1: technology parameters.
use synchro_power::Technology;
use synchroscalar::experiments::table1;

fn main() {
    let tech = Technology::isca2004();
    println!("Table 1: Technology Parameters");
    bench::rule(72);
    println!("{:<22} {:<18} Source", "Parameter", "Value");
    bench::rule(72);
    for (name, value, source) in table1(&tech) {
        println!("{name:<22} {value:<18} {source}");
    }
}
