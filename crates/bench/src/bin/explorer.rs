//! Automatic mapping & design-space exploration cross-validation.
//!
//! Part 1 runs the full graph → auto-map → chip flow for every paper
//! application at its Table 4 tile budget and checks, end to end, that
//! the explorer rediscovers the published operating points and that the
//! winners execute and cross-validate on the cycle-accurate simulator.
//!
//! Part 2 measures search throughput (candidate mappings evaluated per
//! second) on a synthetic 10-stage pipeline, single- versus
//! multi-threaded, and records the numbers in `BENCH_explorer.json`.

use bench::rule;
use synchro_power::Technology;
use synchroscalar::experiments::auto_mapping_summary;
use synchroscalar::explorer::{explore, ExplorerConfig, SearchStrategy, TileCandidates};
use synchroscalar::sdf::SdfGraph;

/// A synthetic deep pipeline stressing the grouping × allocation space.
fn synthetic_pipeline(stages: usize) -> SdfGraph {
    let mut graph = SdfGraph::new();
    let mut prev = None;
    for i in 0..stages {
        // Varied costs and caps so no two stages are interchangeable.
        let cycles = 40 + 97 * (i as u64 % 5) + 13 * i as u64;
        let cap = [4u32, 8, 16, 32][i % 4];
        let actor = graph.add_actor(format!("stage{i}"), cycles, cap);
        if let Some(p) = prev {
            graph.add_edge(p, actor, 1, 1, 0).expect("valid edge");
        }
        prev = Some(actor);
    }
    graph
}

struct Throughput {
    threads: usize,
    mappings: u64,
    elapsed_seconds: f64,
    mappings_per_sec: f64,
}

fn measure(graph: &SdfGraph, threads: usize) -> Throughput {
    let config = ExplorerConfig::new(1e6, 64)
        .with_threads(threads)
        .with_candidates(TileCandidates::All)
        .with_strategy(SearchStrategy::Exhaustive);
    let exploration = explore(graph, &config).expect("synthetic pipeline explores");
    Throughput {
        threads: exploration.stats.threads_used,
        mappings: exploration.stats.mappings_evaluated,
        elapsed_seconds: exploration.stats.elapsed_seconds,
        mappings_per_sec: exploration.stats.mappings_evaluated as f64
            / exploration.stats.elapsed_seconds.max(1e-9),
    }
}

fn main() {
    // Part 1 — the whole suite through graph → auto-map → chip.
    let rows = auto_mapping_summary(&Technology::isca2004());
    println!("Automatic mapping at the Table 4 tile budgets:");
    rule(96);
    println!(
        "{:<14} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Application", "Tiles", "Auto mW", "Ref mW", "Fused mW", "dF max %", "Validated"
    );
    rule(96);
    for row in &rows {
        println!(
            "{:<14} {:>5} {:>12.1} {:>12.1} {:>12.1} {:>12.4} {:>12}",
            row.application,
            row.tiles,
            row.auto_power_mw,
            row.reference_power_mw,
            row.fused_power_mw,
            row.max_frequency_error * 100.0,
            row.cross_validated
        );
    }
    rule(96);
    assert!(
        rows.iter().all(|r| r.cross_validated),
        "every auto-mapped application must cross-validate"
    );
    assert!(
        rows.iter().all(|r| r.max_frequency_error < 1e-9),
        "auto-mapped frequencies must match Table 4"
    );
    assert!(
        rows.iter()
            .all(|r| r.auto_power_mw <= r.reference_power_mw + 1e-9),
        "auto mappings must not cost more than the hand-built references"
    );

    // Part 2 — search throughput, single- vs multi-threaded.
    let graph = synthetic_pipeline(10);
    let single = measure(&graph, 1);
    let multi = measure(&graph, 0);
    println!("\nSearch throughput (10-stage synthetic pipeline, 64-tile budget, all candidates):");
    println!(
        "  1 thread : {:>12.0} mappings/s ({} mappings in {:.3} s)",
        single.mappings_per_sec, single.mappings, single.elapsed_seconds
    );
    println!(
        "  {} threads: {:>12.0} mappings/s ({} mappings in {:.3} s, {:.2}x)",
        multi.threads,
        multi.mappings_per_sec,
        multi.mappings,
        multi.elapsed_seconds,
        multi.mappings_per_sec / single.mappings_per_sec.max(1e-9)
    );
    assert_eq!(
        single.mappings, multi.mappings,
        "thread count must not change the search space"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"explorer\",\n",
            "  \"workload\": {{\"stages\": 10, \"tile_budget\": 64, \"candidates\": \"all\", \"strategy\": \"exhaustive\"}},\n",
            "  \"mappings_evaluated\": {},\n",
            "  \"single_threaded\": {{\"threads\": 1, \"elapsed_seconds\": {:.6}, \"mappings_per_sec\": {:.0}}},\n",
            "  \"multi_threaded\": {{\"threads\": {}, \"elapsed_seconds\": {:.6}, \"mappings_per_sec\": {:.0}}},\n",
            "  \"speedup\": {:.3}\n",
            "}}\n"
        ),
        single.mappings,
        single.elapsed_seconds,
        single.mappings_per_sec,
        multi.threads,
        multi.elapsed_seconds,
        multi.mappings_per_sec,
        multi.mappings_per_sec / single.mappings_per_sec.max(1e-9),
    );
    std::fs::write("BENCH_explorer.json", &json).expect("write BENCH_explorer.json");
    println!("\nPerf record written to BENCH_explorer.json");
}
