//! Automatic mapping & design-space exploration cross-validation.
//!
//! Part 1 runs the full graph → auto-map → chip flow for every paper
//! application at its Table 4 tile budget and checks, end to end, that
//! the explorer rediscovers the published operating points and that the
//! winners execute and cross-validate on the cycle-accurate simulator.
//!
//! Part 2 measures search throughput (candidate mappings evaluated per
//! second) over a workload matrix — graph sizes × tile budgets, single-
//! versus multi-threaded — and records the full matrix in
//! `BENCH_explorer.json`.  Pass `--quick` to shrink the matrix to one
//! tiny workload so CI can smoke the JSON-emitting path without timing
//! noise.

use bench::{rule, synthetic_pipeline};
use synchro_power::Technology;
use synchroscalar::experiments::auto_mapping_summary;
use synchroscalar::explorer::{
    explore, explore_bus_widths, CommSpec, ExplorerConfig, ExplorerError, SearchStrategy,
    TileCandidates, VoltagePolicy, EXHAUSTIVE_ACTOR_LIMIT,
};
use synchroscalar::sdf::SdfGraph;

/// Measurement repetitions per cell; the fastest run is recorded (least
/// scheduler interference).
const RUNS: usize = 3;

/// What a capped-thread record says in place of a meaningless speedup
/// ratio.
const ONE_CORE_WARNING: &str =
    "threads capped to 1 core; multi-threaded rows duplicate the single-threaded measurement";

#[derive(Clone)]
struct Throughput {
    threads: usize,
    mappings: u64,
    elapsed_seconds: f64,
    mappings_per_sec: f64,
}

struct MatrixRow {
    stages: usize,
    budget: u32,
    strategy_name: &'static str,
    policy_name: &'static str,
    single: Throughput,
    multi: Throughput,
}

impl MatrixRow {
    /// Multi- over single-threaded throughput, or `None` on a one-core
    /// host where the ratio would be meaningless noise.
    fn speedup(&self, one_core: bool) -> Option<f64> {
        (!one_core).then(|| self.multi.mappings_per_sec / self.single.mappings_per_sec.max(1e-9))
    }
}

fn workload_config(stages: usize, budget: u32) -> (ExplorerConfig, &'static str) {
    // Graphs beyond the library's exhaustive limit use the (exact-width)
    // beam engine: the exhaustive engine enumerates 2^(stages−1)
    // groupings.
    let strategy = if stages <= EXHAUSTIVE_ACTOR_LIMIT {
        (SearchStrategy::Exhaustive, "exhaustive")
    } else {
        (
            SearchStrategy::Beam {
                width: budget as usize + 1,
            },
            "beam",
        )
    };
    (
        ExplorerConfig::new(1e6, budget)
            .with_candidates(TileCandidates::All)
            .with_strategy(strategy.0),
        strategy.1,
    )
}

fn measure(graph: &SdfGraph, config: &ExplorerConfig, threads: usize) -> Throughput {
    let config = config.clone().with_threads(threads);
    let mut best: Option<Throughput> = None;
    for _ in 0..RUNS {
        let exploration = explore(graph, &config).expect("synthetic pipeline explores");
        let run = Throughput {
            threads: exploration.stats.threads_used,
            mappings: exploration.stats.mappings_evaluated,
            elapsed_seconds: exploration.stats.elapsed_seconds,
            mappings_per_sec: exploration.stats.mappings_evaluated as f64
                / exploration.stats.elapsed_seconds.max(1e-9),
        };
        if best
            .as_ref()
            .is_none_or(|b| run.elapsed_seconds < b.elapsed_seconds)
        {
            best = Some(run);
        }
    }
    best.expect("at least one run")
}

fn policy_name(policy: VoltagePolicy) -> &'static str {
    match policy {
        VoltagePolicy::PerColumn => "per-column",
        VoltagePolicy::SingleVoltage => "single-voltage",
    }
}

fn measure_row(
    stages: usize,
    budget: u32,
    policy: VoltagePolicy,
    multi_threads: usize,
) -> MatrixRow {
    let graph = synthetic_pipeline(stages);
    let (config, strategy_name) = workload_config(stages, budget);
    let config = config.with_voltage_policy(policy);
    let single = measure(&graph, &config, 1);
    // On a one-core host the multi-threaded run is the same measurement;
    // don't burn RUNS extra explorations per cell repeating it.
    let multi = if multi_threads <= 1 {
        single.clone()
    } else {
        let multi = measure(&graph, &config, multi_threads);
        assert_eq!(
            single.mappings, multi.mappings,
            "thread count must not change the search space"
        );
        multi
    };
    MatrixRow {
        stages,
        budget,
        strategy_name,
        policy_name: policy_name(policy),
        single,
        multi,
    }
}

/// One row of the bus-width sweep: re-explore a synthetic pipeline with
/// the communication-feasibility prune at each width, so narrow frames
/// reject the single-actor space and wider ones readmit it.
struct SweepRow {
    splits: u32,
    capacity: u64,
    feasible: bool,
    pruned: u64,
    best_power_mw: Option<f64>,
}

fn bus_width_sweep() -> Vec<SweepRow> {
    // 6 stages with 1:1 edges: the all-singleton grouping crosses 5
    // boundaries (5 words/iteration).  With a 3-cycle period, width 1
    // offers 3 slots (infeasible), width 2 offers 6 (feasible).
    let graph = synthetic_pipeline(6);
    let config = ExplorerConfig::new(1e6, 16)
        .with_candidates(TileCandidates::All)
        .single_actor_columns();
    explore_bus_widths(&graph, &config, CommSpec::new(1, 3), &[1, 2, 4])
        .into_iter()
        .map(|point| match point.outcome {
            Ok(exploration) => SweepRow {
                splits: point.comm.splits,
                capacity: point.comm.capacity(),
                feasible: true,
                pruned: exploration.stats.groupings_comm_pruned,
                best_power_mw: Some(exploration.best.power_mw),
            },
            Err(ExplorerError::CommInfeasible { pruned, .. }) => SweepRow {
                splits: point.comm.splits,
                capacity: point.comm.capacity(),
                feasible: false,
                pruned,
                best_power_mw: None,
            },
            Err(other) => panic!("unexpected sweep failure: {other}"),
        })
        .collect()
}

fn row_json(row: &MatrixRow, one_core: bool) -> String {
    // On a capped host the record carries an explicit explanation, not a
    // bare null a reader has to reverse-engineer.
    let speedup = match row.speedup(one_core) {
        None => format!("\"{ONE_CORE_WARNING}\""),
        Some(s) => format!("{s:.3}"),
    };
    format!(
        concat!(
            "    {{\n",
            "      \"workload\": {{\"stages\": {}, \"tile_budget\": {}, \"candidates\": \"all\", \"strategy\": \"{}\", \"voltage_policy\": \"{}\"}},\n",
            "      \"mappings_evaluated\": {},\n",
            "      \"single_threaded\": {{\"threads\": 1, \"elapsed_seconds\": {:.6}, \"mappings_per_sec\": {:.0}}},\n",
            "      \"multi_threaded\": {{\"threads\": {}, \"elapsed_seconds\": {:.6}, \"mappings_per_sec\": {:.0}}},\n",
            "      \"speedup\": {}\n",
            "    }}"
        ),
        row.stages,
        row.budget,
        row.strategy_name,
        row.policy_name,
        row.single.mappings,
        row.single.elapsed_seconds,
        row.single.mappings_per_sec,
        row.multi.threads,
        row.multi.elapsed_seconds,
        row.multi.mappings_per_sec,
        speedup,
    )
}

fn sweep_json(row: &SweepRow) -> String {
    format!(
        "    {{\"splits\": {}, \"capacity\": {}, \"feasible\": {}, \"groupings_comm_pruned\": {}, \"best_power_mw\": {}}}",
        row.splits,
        row.capacity,
        row.feasible,
        row.pruned,
        row.best_power_mw
            .map_or("null".to_string(), |p| format!("{p:.3}")),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // Part 1 — the whole suite through graph → auto-map → chip.
    let rows = auto_mapping_summary(&Technology::isca2004());
    println!("Automatic mapping at the Table 4 tile budgets:");
    rule(96);
    println!(
        "{:<14} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Application", "Tiles", "Auto mW", "Ref mW", "Fused mW", "dF max %", "Validated"
    );
    rule(96);
    for row in &rows {
        println!(
            "{:<14} {:>5} {:>12.1} {:>12.1} {:>12.1} {:>12.4} {:>12}",
            row.application,
            row.tiles,
            row.auto_power_mw,
            row.reference_power_mw,
            row.fused_power_mw,
            row.max_frequency_error * 100.0,
            row.cross_validated
        );
    }
    rule(96);
    assert!(
        rows.iter().all(|r| r.cross_validated),
        "every auto-mapped application must cross-validate"
    );
    assert!(
        rows.iter().all(|r| r.max_frequency_error < 1e-9),
        "auto-mapped frequencies must match Table 4"
    );
    assert!(
        rows.iter()
            .all(|r| r.auto_power_mw <= r.reference_power_mw + 1e-9),
        "auto mappings must not cost more than the hand-built references"
    );

    // Part 2 — search throughput over the workload matrix.  Resolve the
    // multi-thread count *before* measuring so the record reports the
    // count that actually ran, not the `0 = auto` placeholder.
    let multi_threads = ExplorerConfig::new(1e6, 64).resolved_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let one_core = multi_threads <= 1;
    if one_core {
        println!("\nwarning: {ONE_CORE_WARNING}");
    }
    // Each cell carries its voltage policy: the cost mode is a per-row
    // strategy, with one single-voltage row in both matrix sizes.
    let matrix: Vec<(usize, u32, VoltagePolicy)> = if quick {
        vec![
            (6, 16, VoltagePolicy::PerColumn),
            (6, 16, VoltagePolicy::SingleVoltage),
        ]
    } else {
        let mut cells = Vec::new();
        for &stages in &[10usize, 16, 24] {
            for &budget in &[64u32, 128, 256] {
                cells.push((stages, budget, VoltagePolicy::PerColumn));
            }
        }
        cells.push((10, 64, VoltagePolicy::SingleVoltage));
        cells
    };

    println!(
        "\nSearch throughput matrix ({} matrix, all tile candidates, best of {RUNS} runs):",
        if quick { "quick" } else { "full" }
    );
    rule(115);
    println!(
        "{:>6} {:>7} {:>11} {:>15} {:>14} {:>16} {:>16} {:>9}",
        "Stages",
        "Budget",
        "Strategy",
        "Policy",
        "Mappings",
        "1-thread M/s",
        "N-thread M/s",
        "Speedup"
    );
    rule(115);
    let mut measured = Vec::new();
    for (stages, budget, policy) in matrix {
        let row = measure_row(stages, budget, policy, multi_threads);
        let speedup = match row.speedup(one_core) {
            None => "n/a".to_string(),
            Some(s) => format!("{s:.2}x"),
        };
        println!(
            "{:>6} {:>7} {:>11} {:>15} {:>14} {:>16.1} {:>16.1} {:>9}",
            row.stages,
            row.budget,
            row.strategy_name,
            row.policy_name,
            row.single.mappings,
            row.single.mappings_per_sec / 1e6,
            row.multi.mappings_per_sec / 1e6,
            speedup
        );
        measured.push(row);
    }
    rule(115);

    // Part 3 — the bus-width sweep: the communication-feasibility prune
    // exercised across horizontal-bus widths (words per cycle).
    let sweep = bus_width_sweep();
    println!("\nBus-width sweep (6-stage pipeline, 3-cycle TDM period, single-actor columns):");
    rule(72);
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>14}",
        "Width", "Capacity", "Feasible", "Pruned", "Best mW"
    );
    rule(72);
    for row in &sweep {
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>14}",
            row.splits,
            row.capacity,
            row.feasible,
            row.pruned,
            row.best_power_mw
                .map_or("n/a".to_string(), |p| format!("{p:.1}")),
        );
    }
    rule(72);
    assert!(
        !sweep[0].feasible && sweep[0].pruned > 0,
        "the narrowest bus must exercise the feasibility prune"
    );
    assert!(
        sweep[1..].iter().all(|r| r.feasible),
        "wider buses must readmit the mapping"
    );

    let rows_json: Vec<String> = measured.iter().map(|r| row_json(r, one_core)).collect();
    let sweep_json_rows: Vec<String> = sweep.iter().map(sweep_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"explorer\",\n",
            "  \"schema_version\": 2,\n",
            "  \"generated_at\": \"{}\",\n",
            "  \"quick\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"threads_resolved\": {},\n",
            "  \"runs_per_cell\": {},\n",
            "  \"workloads\": [\n",
            "{}\n",
            "  ],\n",
            "  \"bus_width_sweep\": [\n",
            "{}\n",
            "  ]\n",
            "}}\n"
        ),
        synchroscalar::trace::iso8601_utc_now(),
        quick,
        cores,
        multi_threads,
        RUNS,
        rows_json.join(",\n"),
        sweep_json_rows.join(",\n"),
    );
    std::fs::write("BENCH_explorer.json", &json).expect("write BENCH_explorer.json");
    println!("\nPerf record written to BENCH_explorer.json");
}
