//! Regenerates Table 4: per-algorithm tiles, frequency, voltage and power
//! with and without per-column voltage scaling.
use synchro_power::Technology;
use synchroscalar::experiments::table4;

fn main() {
    let tech = Technology::isca2004();
    println!("Table 4: Power Results Summary on the Synchroscalar Processor");
    bench::rule(100);
    println!(
        "{:<14} {:<24} {:>5} {:>8} {:>6} {:>10} {:>12} {:>9}",
        "Application", "Algorithm", "Tiles", "MHz", "V", "Power mW", "1-Volt mW", "Savings"
    );
    bench::rule(100);
    for row in table4(&tech) {
        if row.algorithm == "TOTAL" {
            println!(
                "{:<14} {:<24} {:>5} {:>8} {:>6} {:>10.2} {:>12.2} {:>8.0}%",
                row.application,
                row.algorithm,
                row.tiles,
                "",
                "",
                row.power_mw,
                row.single_voltage_mw,
                row.savings_percent()
            );
            bench::rule(100);
        } else {
            println!(
                "{:<14} {:<24} {:>5} {:>8.0} {:>6.1} {:>10.2} {:>12.2} {:>8.0}%",
                row.application,
                row.algorithm,
                row.tiles,
                row.frequency_mhz,
                row.voltage,
                row.power_mw,
                row.single_voltage_mw,
                row.savings_percent()
            );
        }
    }
}
