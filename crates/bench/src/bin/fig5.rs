//! Regenerates Figure 5: the voltage/frequency curves for 15- and 20-FO4
//! critical paths in the 130 nm process.
use synchro_power::Technology;
use synchroscalar::experiments::figure5;

fn main() {
    let tech = Technology::isca2004();
    println!("Figure 5: Voltage-Frequency curve for a pipelined processor");
    println!("{:>8} {:>14} {:>14}", "V", "20 FO4 (MHz)", "15 FO4 (MHz)");
    for p in figure5(&tech, 31) {
        println!(
            "{:>8.2} {:>14.1} {:>14.1}",
            p.voltage, p.frequency_fo4_20, p.frequency_fo4_15
        );
    }
}
