//! Regenerates Figure 7: application power at different parallelisation
//! levels, split into compute and interconnect + leakage.
use synchro_power::Technology;
use synchroscalar::experiments::figure7;

fn main() {
    let tech = Technology::isca2004();
    println!("Figure 7: Power Consumption with varying parallelization");
    println!(
        "{:<16} {:>6} {:>14} {:>20} {:>12} {:>9}",
        "Application", "Tiles", "Compute (mW)", "Intercon+Leak (mW)", "Total (mW)", "Feasible"
    );
    for bar in figure7(&tech) {
        println!(
            "{:<16} {:>6} {:>14.1} {:>20.1} {:>12.1} {:>9}",
            bar.application,
            bar.tiles,
            bar.compute_mw,
            bar.overhead_mw,
            bar.total_mw(),
            if bar.feasible { "yes" } else { "no" }
        );
    }
}
