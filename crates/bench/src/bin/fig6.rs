//! Regenerates Figure 6: application power with and without per-column
//! voltage scaling.
use synchro_power::Technology;
use synchroscalar::experiments::figure6;

fn main() {
    let tech = Technology::isca2004();
    println!("Figure 6: Power Consumption by Application");
    println!(
        "{:<16} {:>16} {:>22} {:>10}",
        "Application", "Scaled (mW)", "Extra w/o scaling (mW)", "Savings"
    );
    for bar in figure6(&tech) {
        println!(
            "{:<16} {:>16.1} {:>22.1} {:>9.0}%",
            bar.application, bar.scaled_mw, bar.additional_unscaled_mw, bar.savings_percent
        );
    }
}
