//! SDF → chip mapping/execution cross-validation — the Section 4.1 flow
//! (steps 1–9) run end to end for the DDC and the 802.11a receiver, with
//! the measured simulation compared against the analytic model.

use bench::rule;
use synchro_apps::{Application, ApplicationProfile};
use synchro_power::Technology;
use synchroscalar::mapper::{self, CompiledChip, ExecutionReport, MapperOptions};
use synchroscalar::pipeline::{evaluate_application, EvaluationOptions};

fn run_application(
    name: &str,
    application: Application,
    reference: (
        synchroscalar::sdf::SdfGraph,
        synchroscalar::sdf::Mapping,
        f64,
    ),
) -> (CompiledChip, ExecutionReport) {
    let (graph, mapping, rate) = reference;
    let options = MapperOptions {
        iterations: 8,
        iteration_rate_hz: rate,
        ..MapperOptions::default()
    };
    let mut compiled = mapper::compile(&graph, &mapping, &options).expect("compile");
    let execution = compiled.execute().expect("execute");

    let tech = Technology::isca2004();
    let profile = ApplicationProfile::of(application);
    let report = evaluate_application(&profile, &tech, &EvaluationOptions::default());
    let validation = mapper::cross_validate(&compiled, &execution, &report);

    println!(
        "{name}: {} columns, hyperperiod {} ticks",
        compiled.chip().columns(),
        compiled.hyperperiod()
    );
    rule(72);
    println!(
        "{:<22} {:>6} {:>8} {:>10} {:>10} {:>8}",
        "Column", "Div", "MHz", "Fired", "Expected", "dF %"
    );
    for (i, (plan, block)) in compiled.plans().iter().zip(&validation.blocks).enumerate() {
        println!(
            "{:<22} {:>6} {:>8.0} {:>10} {:>10} {:>8.2}",
            plan.name,
            plan.clock_divider,
            plan.required_frequency_mhz,
            execution.firing_counts[i],
            execution.expected_firings[i],
            block.frequency_error * 100.0
        );
    }
    rule(72);
    println!(
        "bus words: {} simulated vs {} predicted ({:.2}% off); firings exact: {}; agree within 10%: {}\n",
        execution.simulated_horizontal_words,
        execution.predicted_horizontal_words,
        validation.bus_traffic_error * 100.0,
        validation.firings_exact,
        validation.agrees_within(0.10)
    );
    (compiled, execution)
}

fn main() {
    let (ddc, ddc_exec) =
        run_application("DDC @ 64 MS/s", Application::Ddc, mapper::ddc_reference());
    let (_, wifi_exec) = run_application(
        "802.11a @ 54 Mbps",
        Application::Wifi80211a,
        mapper::wifi_reference(),
    );

    println!(
        "Event-driven scheduler: DDC ran {} reference ticks in {} scheduler iterations \
         (naive loop would take {})",
        ddc_exec.reference_ticks,
        ddc.chip().run_loop_iterations(),
        ddc_exec.reference_ticks
    );
    assert!(ddc_exec.firings_exact() && wifi_exec.firings_exact());
}
