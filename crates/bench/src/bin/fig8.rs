//! Regenerates Figure 8: Viterbi ACS power vs area for 8/16/32 tiles across
//! bus widths of 32..1024 bits.
use synchro_power::Technology;
use synchroscalar::experiments::figure8;

fn main() {
    let tech = Technology::isca2004();
    println!("Figure 8: Power Consumption of Viterbi ACS with varying bus widths");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "Tiles", "Bus bits", "Area (mm^2)", "Power (mW)"
    );
    for p in figure8(&tech) {
        println!(
            "{:>6} {:>10} {:>12.2} {:>12.1}",
            p.tiles, p.bus_width_bits, p.area_mm2, p.power_mw
        );
    }
}
