//! Regenerates Table 2: tile and SIMD controller / DOU area estimation.
use synchroscalar::experiments::table2;

fn main() {
    let (tile, ctrl) = table2();
    println!("Table 2: Tile and DOU and SIMD Control Area Estimation");
    bench::rule(60);
    println!("{:<45} {:>12}", "TILE COMPONENT", "Area (um^2)");
    bench::rule(60);
    let mut total = 0.0;
    for (name, area) in &tile {
        println!("{name:<45} {area:>12.0}");
        total += area;
    }
    println!("{:<45} {total:>12.0}", "Total");
    bench::rule(60);
    println!("{:<45} {:>12}", "SIMD CONTROLLER and DOU", "Area (um^2)");
    bench::rule(60);
    let mut total = 0.0;
    for (name, area) in &ctrl {
        println!("{name:<45} {area:>12.0}");
        total += area;
    }
    println!("{:<45} {total:>12.0}", "Total");
}
