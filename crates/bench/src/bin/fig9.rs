//! Regenerates Figure 9: leakage sensitivity for the DDC and 802.11a
//! parallelisation variants.
use synchro_power::Technology;
use synchroscalar::experiments::leakage_sensitivity;

fn main() {
    let tech = Technology::isca2004();
    println!("Figure 9: Leakage sensitivity for DDC and 802.11a");
    println!(
        "{:<16} {:>6} {:>14} {:>12}",
        "Application", "Tiles", "Leak (mA/tile)", "Power (mW)"
    );
    for p in leakage_sensitivity(&tech) {
        if p.application == "DDC" || p.application == "802.11a" {
            println!(
                "{:<16} {:>6} {:>14.1} {:>12.1}",
                p.application, p.tiles, p.leakage_ma_per_tile, p.power_mw
            );
        }
    }
}
