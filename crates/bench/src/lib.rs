//! Experiment harness for the Synchroscalar reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section and prints it in the same row/series structure:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — technology parameters |
//! | `table2` | Table 2 — tile / SIMD+DOU area breakdown |
//! | `table3` | Table 3 — power comparison with other platforms |
//! | `table4` | Table 4 — per-algorithm mapping and power |
//! | `fig5`   | Figure 5 — voltage/frequency curves |
//! | `fig6`   | Figure 6 — power with vs without voltage scaling |
//! | `fig7`   | Figure 7 — power vs parallelisation |
//! | `fig8`   | Figure 8 — Viterbi ACS power/area vs bus width |
//! | `fig9`   | Figure 9 — leakage sensitivity (DDC, 802.11a) |
//! | `fig10`  | Figure 10 — leakage sensitivity (MPEG-4, SV) |
//! | `sensitivity` | Section 5.5 — tile-power sensitivity |
//! | `explorer` | Automatic mapping of the suite + search throughput (`BENCH_explorer.json`) |
//! | `sim` | Fast-tier vs interpreter wall-clock on million-frame traces (`BENCH_sim.json`) |
//!
//! The Criterion benches in `benches/` measure the substrate itself (kernel
//! and simulator throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use synchroscalar::sdf::SdfGraph;

/// The synthetic deep pipeline the explorer perf record and the search-core
/// criterion benches share: varied per-stage costs and parallelism caps so
/// no two stages are interchangeable and the grouping × allocation space
/// has no symmetric shortcuts.  The committed `BENCH_explorer.json` numbers
/// are pinned to this exact workload.
pub fn synthetic_pipeline(stages: usize) -> SdfGraph {
    let mut graph = SdfGraph::new();
    let mut prev = None;
    for i in 0..stages {
        let cycles = 40 + 97 * (i as u64 % 5) + 13 * i as u64;
        let cap = [4u32, 8, 16, 32][i % 4];
        let actor = graph.add_actor(format!("stage{i}"), cycles, cap);
        if let Some(p) = prev {
            graph.add_edge(p, actor, 1, 1, 0).expect("valid edge");
        }
        prev = Some(actor);
    }
    graph
}

/// Format a floating point value with a fixed width for table output.
pub fn fmt_f(value: f64, width: usize, decimals: usize) -> String {
    format!("{value:>width$.decimals$}")
}

/// Print a separator line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers_behave() {
        assert_eq!(fmt_f(3.75159, 8, 2), "    3.75");
        rule(3);
    }
}
