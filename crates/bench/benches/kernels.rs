//! Criterion micro-benchmarks of the application kernels the evaluation is
//! built on: the 64-point FFT, the K=7 Viterbi decoder, the 8x8 DCT, AES
//! and the CIC/FIR chain.  These measure the golden Rust implementations
//! (the substrate), not the modelled Synchroscalar hardware.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synchro_apps::aes::{cbc_mac, encrypt_block, KeySchedule};
use synchro_apps::ddc::{CicFilter, FirFilter};
use synchro_apps::mpeg4::{dct8x8, idct8x8};
use synchro_apps::wifi::{convolutional_encode, fft, Complex, ViterbiDecoder};

fn bench_fft(c: &mut Criterion) {
    let data: Vec<Complex> = (0..64)
        .map(|k| Complex::new((k * 523) % 8192 - 4096, (k * 131) % 8192 - 4096))
        .collect();
    c.bench_function("fft_64pt", |b| {
        b.iter(|| {
            let mut d = data.clone();
            fft(black_box(&mut d));
            d
        })
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let info: Vec<u8> = (0..512).map(|i| ((i * 37 + 11) % 2) as u8).collect();
    let coded = convolutional_encode(&info);
    c.bench_function("viterbi_k7_512bits", |b| {
        b.iter(|| ViterbiDecoder::decode(black_box(&coded)))
    });
}

fn bench_dct(c: &mut Criterion) {
    let mut block = [0i32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = ((i as i32 * 31) % 255) - 128;
    }
    c.bench_function("dct8x8_plus_idct", |b| {
        b.iter(|| idct8x8(&dct8x8(black_box(&block))))
    });
}

fn bench_aes(c: &mut Criterion) {
    let key = [0x5Au8; 16];
    let keys = KeySchedule::new(&key);
    let block = [0x33u8; 16];
    c.bench_function("aes128_block", |b| {
        b.iter(|| encrypt_block(black_box(&block), &keys))
    });
    let message = vec![0xA7u8; 1024];
    c.bench_function("aes128_cbc_mac_1k", |b| {
        b.iter(|| cbc_mac(black_box(&message), &key))
    });
}

fn bench_ddc_filters(c: &mut Criterion) {
    let samples: Vec<i32> = (0..1024).map(|k| ((k * 97) % 4001) - 2000).collect();
    c.bench_function("cic_4stage_dec16_1k", |b| {
        b.iter(|| {
            let mut cic = CicFilter::new(4, 16);
            cic.filter_block(black_box(&samples))
        })
    });
    c.bench_function("pfir_63tap_1k", |b| {
        b.iter(|| {
            let mut fir = FirFilter::pfir();
            fir.filter_block(black_box(&samples))
        })
    });
}

criterion_group!(
    kernels,
    bench_fft,
    bench_viterbi,
    bench_dct,
    bench_aes,
    bench_ddc_filters
);
criterion_main!(kernels);
