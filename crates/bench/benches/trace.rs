//! Criterion benchmarks of the tracing substrate's hot-path cost: the
//! interpreted column loop with no trace handle touched, with a disabled
//! [`NullSink`] (which [`Trace::to`] collapses to the zero-cost off
//! state), and with a live [`MetricsSink`] absorbing every event.  The
//! first two must be indistinguishable — that is the zero-cost-when-
//! disabled contract `bench --bin sim` gates end to end.
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synchro_isa::assemble;
use synchro_sim::{Column, ColumnConfig};
use synchro_simd::RateMatcher;
use synchro_trace::{MetricsSink, NullSink, Trace};

/// A ZORM-throttled column: every step crosses the rate-matcher window
/// logic, the densest instrumentation point in `Column::step`.
fn build_column(trace: Trace) -> Column {
    let program = assemble("loop 500, 2\nli r0, 1\nadd r1, r1, r0\nhalt\n").unwrap();
    let mut config = ColumnConfig::isca2004().with_divider(3);
    config.rate_matcher = Some(RateMatcher {
        period: 7,
        stalls: 2,
    });
    let mut column = Column::new(config, program, None);
    column.set_trace(trace, 0, 0);
    column
}

fn bench_column_step(c: &mut Criterion) {
    c.bench_function("column_run_untraced", |b| {
        b.iter(|| {
            let mut column = build_column(Trace::off());
            black_box(column.run(10_000).unwrap())
        })
    });
    c.bench_function("column_run_null_sink", |b| {
        b.iter(|| {
            let mut column = build_column(Trace::to(Arc::new(NullSink)));
            black_box(column.run(10_000).unwrap())
        })
    });
    c.bench_function("column_run_metrics_sink", |b| {
        let sink = Arc::new(MetricsSink::default());
        b.iter(|| {
            let mut column = build_column(Trace::to(sink.clone()));
            black_box(column.run(10_000).unwrap())
        })
    });
}

criterion_group!(trace, bench_column_step);
criterion_main!(trace);
