//! Criterion benchmarks of the evaluation pipeline and the cycle-accurate
//! column simulator: how fast a full table/figure regeneration runs.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synchro_apps::{Application, ApplicationProfile};
use synchro_isa::assemble;
use synchro_power::Technology;
use synchro_sim::{Column, ColumnConfig};
use synchroscalar::experiments::{figure8, leakage_sensitivity, table4};
use synchroscalar::pipeline::{evaluate_application, EvaluationOptions};

fn bench_power_pipeline(c: &mut Criterion) {
    let tech = Technology::isca2004();
    let profile = ApplicationProfile::of(Application::Wifi80211a);
    c.bench_function("evaluate_802_11a", |b| {
        b.iter(|| evaluate_application(black_box(&profile), &tech, &EvaluationOptions::default()))
    });
    c.bench_function("table4_full", |b| b.iter(|| table4(black_box(&tech))));
    c.bench_function("figure8_bus_sweep", |b| {
        b.iter(|| figure8(black_box(&tech)))
    });
    c.bench_function("leakage_sensitivity_full", |b| {
        b.iter(|| leakage_sensitivity(black_box(&tech)))
    });
}

fn bench_column_simulator(c: &mut Criterion) {
    let program = assemble(
        "setp p0, 0\nsetp p1, 256\nclracc a0\nloop 64, 5\nld r0, p0, 0\nld r1, p1, 0\nmac a0, r0, r1\naddp p0, 1\naddp p1, 1\nmovacc r2, a0\nhalt\n",
    )
    .unwrap();
    c.bench_function("column_dot_product_64", |b| {
        b.iter(|| {
            let mut col = Column::new(ColumnConfig::isca2004(), program.clone(), None);
            col.run(10_000).unwrap()
        })
    });
}

criterion_group!(pipeline, bench_power_pipeline, bench_column_simulator);
criterion_main!(pipeline);
