//! Criterion benchmarks of the evaluation pipeline and the cycle-accurate
//! column simulator: how fast a full table/figure regeneration runs.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synchro_apps::{Application, ApplicationProfile};
use synchro_isa::assemble;
use synchro_power::Technology;
use synchro_sim::{Chip, Column, ColumnConfig};
use synchroscalar::experiments::{figure8, leakage_sensitivity, table4};
use synchroscalar::pipeline::{evaluate_application, EvaluationOptions};

fn bench_power_pipeline(c: &mut Criterion) {
    let tech = Technology::isca2004();
    let profile = ApplicationProfile::of(Application::Wifi80211a);
    c.bench_function("evaluate_802_11a", |b| {
        b.iter(|| evaluate_application(black_box(&profile), &tech, &EvaluationOptions::default()))
    });
    c.bench_function("table4_full", |b| b.iter(|| table4(black_box(&tech))));
    c.bench_function("figure8_bus_sweep", |b| {
        b.iter(|| figure8(black_box(&tech)))
    });
    c.bench_function("leakage_sensitivity_full", |b| {
        b.iter(|| leakage_sensitivity(black_box(&tech)))
    });
}

fn bench_column_simulator(c: &mut Criterion) {
    let program = assemble(
        "setp p0, 0\nsetp p1, 256\nclracc a0\nloop 64, 5\nld r0, p0, 0\nld r1, p1, 0\nmac a0, r0, r1\naddp p0, 1\naddp p1, 1\nmovacc r2, a0\nhalt\n",
    )
    .unwrap();
    c.bench_function("column_dot_product_64", |b| {
        b.iter(|| {
            let mut col = Column::new(ColumnConfig::isca2004(), program.clone(), None);
            col.run(10_000).unwrap()
        })
    });
}

/// The event-driven `Chip::run` against the naive tick loop on a
/// divider-heavy mix (co-prime dividers leave ~98 % of reference ticks
/// empty, which the fast path skips in bulk).
fn bench_chip_run(c: &mut Criterion) {
    let build = || {
        let mut chip = Chip::new();
        for divider in [97u32, 193, 389] {
            chip.add_column(Column::new(
                ColumnConfig::isca2004().with_divider(divider),
                assemble("loop 200, 2\nli r0, 1\nadd r1, r1, r0\nhalt\n").unwrap(),
                None,
            ));
        }
        chip
    };
    c.bench_function("chip_run_event_driven", |b| {
        b.iter(|| {
            let mut chip = build();
            chip.run(200_000).unwrap()
        })
    });
    c.bench_function("chip_run_ticked", |b| {
        b.iter(|| {
            let mut chip = build();
            chip.run_ticked(200_000).unwrap()
        })
    });
    // The two paths must agree bit-for-bit on everything they count.
    let (mut fast, mut slow) = (build(), build());
    fast.run(200_000).unwrap();
    slow.run_ticked(200_000).unwrap();
    assert_eq!(fast.stats(), slow.stats());
    assert_eq!(fast.column_stats(), slow.column_stats());
}

/// End-to-end mapper compile + execute for the DDC reference graph.
fn bench_mapper(c: &mut Criterion) {
    use synchroscalar::mapper::{self, MapperOptions};
    let (graph, mapping, rate) = mapper::ddc_reference();
    let options = MapperOptions {
        iterations: 4,
        iteration_rate_hz: rate,
        ..MapperOptions::default()
    };
    c.bench_function("mapper_ddc_compile_execute", |b| {
        b.iter(|| {
            let mut compiled = mapper::compile(&graph, &mapping, &options).unwrap();
            compiled.execute().unwrap()
        })
    });
}

criterion_group!(
    pipeline,
    bench_power_pipeline,
    bench_column_simulator,
    bench_chip_run,
    bench_mapper
);
criterion_main!(pipeline);
