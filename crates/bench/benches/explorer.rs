//! Criterion benchmarks of the explorer's search core, staged so future
//! PRs see *per-stage* regressions instead of only end-to-end numbers:
//! interval-arena build (graph analysis + memoized VF/power evaluation of
//! every contiguous interval), a single-grouping backpointer DP pass (the
//! per-transition hot loop), and a full `explore` on the DDC reference
//! graph (arena + grouping enumeration + merge + realization).
use bench::synthetic_pipeline;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synchro_apps::{reference_graph, Application};
use synchroscalar::explorer::perf::PreparedSearch;
use synchroscalar::explorer::{explore, ExplorerConfig, SearchStrategy, TileCandidates};

fn bench_interval_arena(c: &mut Criterion) {
    let graph = synthetic_pipeline(16);
    let config = ExplorerConfig::new(1e6, 128).with_candidates(TileCandidates::All);
    c.bench_function("explorer_interval_arena_build_16", |b| {
        b.iter(|| {
            PreparedSearch::new(black_box(&graph), &config)
                .expect("pipeline analyses")
                .option_count()
        })
    });
}

fn bench_single_grouping_dp(c: &mut Criterion) {
    let graph = synthetic_pipeline(16);
    let config = ExplorerConfig::new(1e6, 128).with_candidates(TileCandidates::All);
    let mut prepared = PreparedSearch::new(&graph, &config).expect("pipeline analyses");
    c.bench_function("explorer_singleton_dp_16_128", |b| {
        b.iter(|| black_box(&mut prepared).singleton_dp())
    });
}

fn bench_full_explore(c: &mut Criterion) {
    let reference = reference_graph(Application::Ddc);
    let config = ExplorerConfig::new(reference.iteration_rate_hz, 50)
        .with_strategy(SearchStrategy::Exhaustive)
        .with_threads(1);
    c.bench_function("explorer_explore_ddc_full", |b| {
        b.iter(|| explore(black_box(&reference.graph), &config).expect("ddc explores"))
    });
}

criterion_group!(
    benches,
    bench_interval_arena,
    bench_single_grouping_dp,
    bench_full_explore
);
criterion_main!(benches);
