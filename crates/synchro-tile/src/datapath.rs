//! The tile datapath: registers, accumulators and single-cycle execution.

use crate::memory::{LocalMemory, MemoryFault};
use std::error::Error;
use std::fmt;
use synchro_isa::{AluOp, DataReg, Instruction, PtrReg};

/// Events a tile reports back to its column after executing one instruction.
/// The SIMD controller and DOU use these to drive condition codes and bus
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileEvent {
    /// Nothing of interest happened.
    None,
    /// The tile copied `R7` into its bus write buffer (`CommSend`).
    Sent(i32),
    /// The tile asked for its bus read buffer (`CommRecv`); the value it
    /// consumed is carried for tracing.
    Received(i32),
    /// The tile requested that its value become the column condition
    /// register (`SetCond`).
    Condition(i32),
}

/// Errors produced by tile execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A control instruction reached the datapath; the SIMD controller
    /// should have consumed it.
    ControlReachedTile(Instruction),
    /// A local memory access faulted.
    Memory(MemoryFault),
    /// An accumulator index other than 0/1 was used.
    BadAccumulator(u8),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ControlReachedTile(i) => {
                write!(f, "control instruction `{i}` must not reach a tile")
            }
            ExecError::Memory(m) => write!(f, "local memory fault: {m}"),
            ExecError::BadAccumulator(a) => write!(f, "accumulator index {a} out of range"),
        }
    }
}

impl Error for ExecError {}

impl From<MemoryFault> for ExecError {
    fn from(value: MemoryFault) -> Self {
        ExecError::Memory(value)
    }
}

/// Per-tile execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileStats {
    /// Instructions executed (including NOPs broadcast to the tile).
    pub instructions: u64,
    /// NOPs among them (idle or rate-matching cycles).
    pub nops: u64,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Local memory accesses (loads + stores).
    pub memory_ops: u64,
    /// Communication operations (sends + receives).
    pub comm_ops: u64,
}

/// One Synchroscalar tile.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    regs: [i32; 8],
    ptrs: [u32; 6],
    accs: [i64; 2],
    memory: LocalMemory,
    write_buffer: Option<i32>,
    read_buffer: Option<i32>,
    enabled: bool,
    stats: TileStats,
}

impl Tile {
    /// A new tile with the default 32 KB local memory, enabled.
    pub fn new() -> Self {
        Tile {
            regs: [0; 8],
            ptrs: [0; 6],
            accs: [0; 2],
            memory: LocalMemory::new(),
            write_buffer: None,
            read_buffer: None,
            enabled: true,
            stats: TileStats::default(),
        }
    }

    /// Enable or disable the tile.  Disabled (idle) tiles are supply gated:
    /// they execute nothing and consume no energy (Section 2.2).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Is the tile enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Read a data register.
    pub fn reg(&self, r: DataReg) -> i32 {
        self.regs[r.index()]
    }

    /// Write a data register.
    pub fn set_reg(&mut self, r: DataReg, value: i32) {
        self.regs[r.index()] = value;
    }

    /// Read a pointer register.
    pub fn ptr(&self, p: PtrReg) -> u32 {
        self.ptrs[p.index()]
    }

    /// Read an accumulator (full 64-bit internal precision, modelling the
    /// 40-bit hardware with headroom).
    pub fn acc(&self, index: u8) -> i64 {
        self.accs[usize::from(index.min(1))]
    }

    /// Mutable access to the tile-local memory (used to stage kernel data).
    pub fn memory_mut(&mut self) -> &mut LocalMemory {
        &mut self.memory
    }

    /// Shared access to the tile-local memory.
    pub fn memory(&self) -> &LocalMemory {
        &self.memory
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> TileStats {
        self.stats
    }

    /// Deliver a value into the tile's bus read buffer (performed by the
    /// DOU at a statically scheduled cycle).
    pub fn deliver(&mut self, value: i32) {
        self.read_buffer = Some(value);
    }

    /// Take the value most recently placed in the write buffer, if any
    /// (performed by the DOU when it schedules this tile as a producer).
    pub fn take_outgoing(&mut self) -> Option<i32> {
        self.write_buffer.take()
    }

    /// Peek the outgoing write-buffer value without consuming it (the bus
    /// can broadcast the same producer value to several consumers).
    pub fn peek_outgoing(&self) -> Option<i32> {
        self.write_buffer
    }

    /// Execute one broadcast instruction.  Control instructions are
    /// rejected — they belong to the SIMD controller.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on control instructions reaching the tile,
    /// memory faults, or bad accumulator indices.
    pub fn execute(&mut self, inst: Instruction) -> Result<TileEvent, ExecError> {
        if !self.enabled {
            return Ok(TileEvent::None);
        }
        if inst.is_control() {
            return Err(ExecError::ControlReachedTile(inst));
        }
        self.stats.instructions += 1;
        let event = match inst {
            Instruction::Nop => {
                self.stats.nops += 1;
                TileEvent::None
            }
            Instruction::Alu { op, dst, a, b } => {
                let va = self.reg(a);
                let vb = self.reg(b);
                let result = alu(op, va, vb);
                self.set_reg(dst, result);
                TileEvent::None
            }
            Instruction::LoadImm { dst, imm } => {
                self.set_reg(dst, imm);
                TileEvent::None
            }
            Instruction::Mac { acc, a, b } => {
                if acc > 1 {
                    return Err(ExecError::BadAccumulator(acc));
                }
                self.stats.macs += 1;
                let product = i64::from(self.reg(a)) * i64::from(self.reg(b));
                self.accs[usize::from(acc)] = self.accs[usize::from(acc)].wrapping_add(product);
                TileEvent::None
            }
            Instruction::ClearAcc { acc } => {
                if acc > 1 {
                    return Err(ExecError::BadAccumulator(acc));
                }
                self.accs[usize::from(acc)] = 0;
                TileEvent::None
            }
            Instruction::MoveAcc { dst, acc } => {
                if acc > 1 {
                    return Err(ExecError::BadAccumulator(acc));
                }
                let v = self.accs[usize::from(acc)];
                let clamped = v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
                self.set_reg(dst, clamped);
                TileEvent::None
            }
            Instruction::Load { dst, ptr, offset } => {
                self.stats.memory_ops += 1;
                let addr = i64::from(self.ptr(ptr)) + i64::from(offset);
                let v = self.memory.read(addr)?;
                self.set_reg(dst, v);
                TileEvent::None
            }
            Instruction::Store { src, ptr, offset } => {
                self.stats.memory_ops += 1;
                let addr = i64::from(self.ptr(ptr)) + i64::from(offset);
                let v = self.reg(src);
                self.memory.write(addr, v)?;
                TileEvent::None
            }
            Instruction::SetPtr { ptr, addr } => {
                self.ptrs[ptr.index()] = addr;
                TileEvent::None
            }
            Instruction::AddPtr { ptr, offset } => {
                let cur = i64::from(self.ptrs[ptr.index()]) + i64::from(offset);
                self.ptrs[ptr.index()] = cur.max(0) as u32;
                TileEvent::None
            }
            Instruction::CommSend => {
                self.stats.comm_ops += 1;
                let v = self.reg(DataReg::COMM);
                self.write_buffer = Some(v);
                TileEvent::Sent(v)
            }
            Instruction::CommRecv { dst } => {
                self.stats.comm_ops += 1;
                let v = self.read_buffer.take().unwrap_or(0);
                self.set_reg(dst, v);
                TileEvent::Received(v)
            }
            Instruction::SetCond { src } => TileEvent::Condition(self.reg(src)),
            // Control instructions were rejected above.
            Instruction::LoopBegin { .. }
            | Instruction::Jump { .. }
            | Instruction::Branch { .. }
            | Instruction::Halt => unreachable!("control instructions rejected earlier"),
        };
        Ok(event)
    }
}

impl Default for Tile {
    fn default() -> Self {
        Tile::new()
    }
}

fn alu(op: AluOp, a: i32, b: i32) -> i32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
        AluOp::Shr => ((a as u32) >> (b as u32 & 31)) as i32,
        AluOp::Asr => a >> (b as u32 & 31),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::Abs => a.wrapping_abs(),
        AluOp::CmpEq => i32::from(a == b),
        AluOp::CmpLt => i32::from(a < b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> DataReg {
        DataReg::new(n)
    }

    #[test]
    fn alu_operations_match_semantics() {
        assert_eq!(alu(AluOp::Add, 2, 3), 5);
        assert_eq!(alu(AluOp::Sub, 2, 3), -1);
        assert_eq!(alu(AluOp::Mul, -4, 3), -12);
        assert_eq!(alu(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(alu(AluOp::Shl, 1, 4), 16);
        assert_eq!(alu(AluOp::Shr, -1, 28), 0xF);
        assert_eq!(alu(AluOp::Asr, -16, 2), -4);
        assert_eq!(alu(AluOp::Min, -5, 3), -5);
        assert_eq!(alu(AluOp::Max, -5, 3), 3);
        assert_eq!(alu(AluOp::Abs, -5, 0), 5);
        assert_eq!(alu(AluOp::CmpEq, 7, 7), 1);
        assert_eq!(alu(AluOp::CmpLt, 3, 7), 1);
        assert_eq!(alu(AluOp::CmpLt, 7, 3), 0);
    }

    #[test]
    fn add_wraps_like_hardware() {
        assert_eq!(alu(AluOp::Add, i32::MAX, 1), i32::MIN);
    }

    #[test]
    fn load_imm_and_alu_through_execute() {
        let mut t = Tile::new();
        t.execute(Instruction::LoadImm { dst: r(0), imm: 21 })
            .unwrap();
        t.execute(Instruction::LoadImm { dst: r(1), imm: 2 })
            .unwrap();
        t.execute(Instruction::Alu {
            op: AluOp::Mul,
            dst: r(2),
            a: r(0),
            b: r(1),
        })
        .unwrap();
        assert_eq!(t.reg(r(2)), 42);
        assert_eq!(t.stats().instructions, 3);
    }

    #[test]
    fn mac_accumulates_and_saturates_on_move() {
        let mut t = Tile::new();
        t.set_reg(r(0), 1 << 20);
        t.set_reg(r(1), 1 << 20);
        for _ in 0..8 {
            t.execute(Instruction::Mac {
                acc: 0,
                a: r(0),
                b: r(1),
            })
            .unwrap();
        }
        assert_eq!(t.acc(0), 8i64 << 40);
        t.execute(Instruction::MoveAcc { dst: r(2), acc: 0 })
            .unwrap();
        assert_eq!(t.reg(r(2)), i32::MAX, "move saturates to 32 bits");
        t.execute(Instruction::ClearAcc { acc: 0 }).unwrap();
        assert_eq!(t.acc(0), 0);
        assert_eq!(t.stats().macs, 8);
    }

    #[test]
    fn bad_accumulator_is_rejected() {
        let mut t = Tile::new();
        assert!(matches!(
            t.execute(Instruction::Mac {
                acc: 2,
                a: r(0),
                b: r(1)
            }),
            Err(ExecError::BadAccumulator(2))
        ));
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let mut t = Tile::new();
        t.execute(Instruction::SetPtr {
            ptr: PtrReg::new(0),
            addr: 100,
        })
        .unwrap();
        t.execute(Instruction::LoadImm { dst: r(3), imm: -7 })
            .unwrap();
        t.execute(Instruction::Store {
            src: r(3),
            ptr: PtrReg::new(0),
            offset: 5,
        })
        .unwrap();
        t.execute(Instruction::Load {
            dst: r(4),
            ptr: PtrReg::new(0),
            offset: 5,
        })
        .unwrap();
        assert_eq!(t.reg(r(4)), -7);
        assert_eq!(t.stats().memory_ops, 2);
    }

    #[test]
    fn pointer_arithmetic() {
        let mut t = Tile::new();
        t.execute(Instruction::SetPtr {
            ptr: PtrReg::new(1),
            addr: 10,
        })
        .unwrap();
        t.execute(Instruction::AddPtr {
            ptr: PtrReg::new(1),
            offset: -4,
        })
        .unwrap();
        assert_eq!(t.ptr(PtrReg::new(1)), 6);
        t.execute(Instruction::AddPtr {
            ptr: PtrReg::new(1),
            offset: -100,
        })
        .unwrap();
        assert_eq!(t.ptr(PtrReg::new(1)), 0, "pointer clamps at zero");
    }

    #[test]
    fn memory_fault_propagates() {
        let mut t = Tile::new();
        t.execute(Instruction::SetPtr {
            ptr: PtrReg::new(0),
            addr: 9000,
        })
        .unwrap();
        assert!(matches!(
            t.execute(Instruction::Load {
                dst: r(0),
                ptr: PtrReg::new(0),
                offset: 0
            }),
            Err(ExecError::Memory(_))
        ));
    }

    #[test]
    fn communication_send_and_receive() {
        let mut t = Tile::new();
        t.set_reg(DataReg::COMM, 99);
        let ev = t.execute(Instruction::CommSend).unwrap();
        assert_eq!(ev, TileEvent::Sent(99));
        assert_eq!(t.peek_outgoing(), Some(99));
        assert_eq!(t.take_outgoing(), Some(99));
        assert_eq!(t.take_outgoing(), None);

        t.deliver(123);
        let ev = t.execute(Instruction::CommRecv { dst: r(5) }).unwrap();
        assert_eq!(ev, TileEvent::Received(123));
        assert_eq!(t.reg(r(5)), 123);
        // A second receive without a delivery yields zero.
        let ev = t.execute(Instruction::CommRecv { dst: r(5) }).unwrap();
        assert_eq!(ev, TileEvent::Received(0));
        assert_eq!(t.stats().comm_ops, 3);
    }

    #[test]
    fn set_cond_reports_register_value() {
        let mut t = Tile::new();
        t.set_reg(r(2), 17);
        let ev = t.execute(Instruction::SetCond { src: r(2) }).unwrap();
        assert_eq!(ev, TileEvent::Condition(17));
    }

    #[test]
    fn control_instructions_are_rejected() {
        let mut t = Tile::new();
        assert!(matches!(
            t.execute(Instruction::Halt),
            Err(ExecError::ControlReachedTile(Instruction::Halt))
        ));
    }

    #[test]
    fn disabled_tile_is_inert() {
        let mut t = Tile::new();
        t.set_enabled(false);
        assert!(!t.is_enabled());
        let ev = t
            .execute(Instruction::LoadImm { dst: r(0), imm: 5 })
            .unwrap();
        assert_eq!(ev, TileEvent::None);
        assert_eq!(t.reg(r(0)), 0);
        assert_eq!(t.stats().instructions, 0);
    }

    #[test]
    fn nop_counts_in_stats() {
        let mut t = Tile::new();
        t.execute(Instruction::Nop).unwrap();
        t.execute(Instruction::Nop).unwrap();
        assert_eq!(t.stats().nops, 2);
        assert_eq!(t.stats().instructions, 2);
    }
}
