//! Cycle-accurate model of one Synchroscalar processor tile.
//!
//! A tile contains the Blackfin-like datapath of Section 4.2: eight 32-bit
//! data registers (with `R7` designated as the communication register), two
//! 40-bit accumulators fed by the MAC unit, six pointer registers, a 32 KB
//! word-addressed local data SRAM, and the read/write bus buffers through
//! which the column's DOU moves data.  All control flow lives in the SIMD
//! controller (crate `synchro-simd`); a tile only ever executes the compute
//! instruction broadcast to it each cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datapath;
pub mod memory;

pub use datapath::{ExecError, Tile, TileEvent, TileStats};
pub use memory::LocalMemory;
