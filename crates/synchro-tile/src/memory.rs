//! Tile-local data SRAM.
//!
//! Each tile has 32 KB of data memory (8192 32-bit words).  Code and data
//! are resident in local memories when cycle counts are taken (methodology
//! step 6), so there is no cache model — every access is a single cycle.

use std::error::Error;
use std::fmt;

/// Error raised on an out-of-range SRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFault {
    /// The offending word address.
    pub address: i64,
    /// The memory size in words.
    pub size_words: usize,
}

impl fmt::Display for MemoryFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "address {} outside local memory of {} words",
            self.address, self.size_words
        )
    }
}

impl Error for MemoryFault {}

/// A word-addressed tile-local SRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalMemory {
    words: Vec<i32>,
}

impl LocalMemory {
    /// Number of 32-bit words in the paper's 32 KB tile memory.
    pub const DEFAULT_WORDS: usize = 8192;

    /// Create a zero-initialised memory of the default 32 KB size.
    pub fn new() -> Self {
        Self::with_words(Self::DEFAULT_WORDS)
    }

    /// Create a zero-initialised memory of `words` 32-bit words.
    pub fn with_words(words: usize) -> Self {
        LocalMemory {
            words: vec![0; words],
        }
    }

    /// Memory capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read the word at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault`] if the address is negative or beyond the end
    /// of the memory.
    pub fn read(&self, address: i64) -> Result<i32, MemoryFault> {
        self.check(address)?;
        Ok(self.words[address as usize])
    }

    /// Write `value` to the word at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault`] if the address is negative or beyond the end
    /// of the memory.
    pub fn write(&mut self, address: i64, value: i32) -> Result<(), MemoryFault> {
        self.check(address)?;
        self.words[address as usize] = value;
        Ok(())
    }

    /// Bulk-load `values` starting at word `base` (used to stage input
    /// samples and coefficients before a kernel runs).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault`] if the block does not fit.
    pub fn load_block(&mut self, base: usize, values: &[i32]) -> Result<(), MemoryFault> {
        let end = base + values.len();
        if end > self.words.len() {
            return Err(MemoryFault {
                address: end as i64 - 1,
                size_words: self.words.len(),
            });
        }
        self.words[base..end].copy_from_slice(values);
        Ok(())
    }

    /// Copy out `count` words starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault`] if the range does not fit.
    pub fn read_block(&self, base: usize, count: usize) -> Result<Vec<i32>, MemoryFault> {
        let end = base + count;
        if end > self.words.len() {
            return Err(MemoryFault {
                address: end as i64 - 1,
                size_words: self.words.len(),
            });
        }
        Ok(self.words[base..end].to_vec())
    }

    fn check(&self, address: i64) -> Result<(), MemoryFault> {
        if address < 0 || address as usize >= self.words.len() {
            Err(MemoryFault {
                address,
                size_words: self.words.len(),
            })
        } else {
            Ok(())
        }
    }
}

impl Default for LocalMemory {
    fn default() -> Self {
        LocalMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_is_32_kb() {
        let m = LocalMemory::new();
        assert_eq!(m.len(), 8192);
        assert!(!m.is_empty());
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = LocalMemory::with_words(16);
        m.write(3, -42).unwrap();
        assert_eq!(m.read(3).unwrap(), -42);
        assert_eq!(m.read(4).unwrap(), 0);
    }

    #[test]
    fn out_of_range_accesses_fault() {
        let mut m = LocalMemory::with_words(4);
        assert!(m.read(4).is_err());
        assert!(m.read(-1).is_err());
        assert!(m.write(100, 1).is_err());
        let fault = m.read(9).unwrap_err();
        assert_eq!(fault.size_words, 4);
        assert!(fault.to_string().contains('9'));
    }

    #[test]
    fn block_operations() {
        let mut m = LocalMemory::with_words(8);
        m.load_block(2, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_block(2, 3).unwrap(), vec![1, 2, 3]);
        assert!(m.load_block(6, &[1, 2, 3]).is_err());
        assert!(m.read_block(7, 5).is_err());
    }
}
