//! The search engines: exhaustive enumeration of contiguous groupings
//! (each solved exactly by a per-tile-count dynamic program) for small
//! graphs, and a dominance-pruned beam search over grouping prefixes for
//! large ones.  Both fan their work across a `std::thread` worker pool.
//!
//! The hot path is allocation-free: interval options live in one
//! contiguous [`IntervalArena`], the per-grouping dynamic program keeps
//! backpointer-indexed states in a reusable [`DpScratch`] (winning
//! allocations are reconstructed only when a grouping actually improves a
//! worker's incumbent), and the exhaustive engine load-balances skewed
//! groupings by work-stealing chunks off an atomic cursor.  A clone-based
//! reference implementation of the grouping DP is retained under
//! `#[cfg(test)]` and property-tested for exact agreement.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::model::{EvalCache, Evaluator, GraphContext};
use crate::space::{grouping_from_mask_into, mask_respects_group_size, Grouping, TileCandidates};
use crate::CommSpec;

/// Counters describing one search run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Candidate (partial) mappings examined: one per dynamic-program or
    /// beam transition, i.e. one per tile-allocation decision evaluated.
    pub mappings_evaluated: u64,
    /// Actor→column groupings examined.
    pub groupings_examined: u64,
    /// Partial solutions discarded by dominance pruning or the beam cap
    /// (zero for the exhaustive engine, which prunes nothing).
    pub states_pruned: u64,
    /// Groupings rejected by the communication-feasibility prune (their
    /// cross-column traffic cannot fit the configured TDM frame).
    pub groupings_comm_pruned: u64,
    /// Worker threads the search fanned out across.
    pub threads_used: usize,
    /// Wall-clock search time in seconds.
    pub elapsed_seconds: f64,
}

/// One search result: a grouping plus a tile allocation and its evaluated
/// cost.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub groups: Grouping,
    pub allocation: Vec<u32>,
    pub power_mw: f64,
    pub feasible: bool,
}

/// The raw outcome of a search: for each reachable exact tile count, the
/// best candidate found (the exhaustive engine covers every reachable
/// count; the beam engine only retains non-dominated counts).
pub(crate) struct SearchOutcome {
    pub curve: Vec<Candidate>,
    pub stats: SearchStats,
}

/// One pre-evaluated tile option of a contiguous interval.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntervalOption {
    /// Candidate tile count.
    pub tiles: u32,
    /// Whether the operating point fits the supply envelope.
    pub feasible: bool,
    /// Total column power at this tile count (mW).
    pub power: f64,
}

/// Pre-evaluated options of every contiguous interval the search may use
/// as one column group, stored as one contiguous arena with a parallel
/// offsets array indexed by `(start, end)`.
///
/// Interval costs are independent of the surrounding grouping, so the
/// arena is computed once and shared (read-only) by every worker; the
/// flat layout keeps the DP's option scans on sequential cache lines
/// instead of chasing `Vec<Vec<Option<Vec<_>>>>` indirections.
pub(crate) struct IntervalArena {
    /// Row stride of the offsets table (`n + 1` end slots per start).
    stride: usize,
    /// `offsets[start * stride + end] .. offsets[start * stride + end + 1]`
    /// bounds the options of interval `start..end` (empty for intervals
    /// the search never uses).
    offsets: Vec<u32>,
    /// All interval options, grouped by interval, tiles ascending.
    options: Vec<IntervalOption>,
}

impl IntervalArena {
    /// Evaluate every usable interval of `ctx` once.  Candidate tile
    /// counts are produced into one reusable scratch buffer and the
    /// VF/power model lookups are memoized across intervals sharing the
    /// same `(work, cap, tokens, tiles)` key.
    pub fn build(
        ctx: &GraphContext,
        evaluator: &Evaluator,
        candidates: TileCandidates,
        budget: u32,
        max_group_size: usize,
    ) -> Self {
        let mut cache = EvalCache::default();
        Self::build_with_cache(
            ctx,
            evaluator,
            candidates,
            budget,
            max_group_size,
            &mut cache,
        )
    }

    /// [`IntervalArena::build`] with an externally owned memo cache, so
    /// sweeps that rebuild the arena under a different tile budget (the
    /// budget changes which tile counts each interval offers, not what
    /// any `(work, cap, tokens, tiles)` point costs) reuse every power
    /// evaluation from earlier builds.  The caller must keep one cache
    /// per `(graph, technology, rate, efficiency)` combination — the key
    /// does not cover those.
    pub fn build_with_cache(
        ctx: &GraphContext,
        evaluator: &Evaluator,
        candidates: TileCandidates,
        budget: u32,
        max_group_size: usize,
        cache: &mut EvalCache,
    ) -> Self {
        let n = ctx.n;
        let stride = n + 1;
        let mut offsets = Vec::with_capacity(n * stride + 1);
        let mut options = Vec::new();
        let mut tile_scratch = Vec::new();
        offsets.push(0u32);
        for start in 0..n {
            let end_limit = (start + max_group_size).min(n);
            for end in 0..stride {
                if end > start && end <= end_limit {
                    let work = ctx.group_work(start, end);
                    let cap = ctx.group_cap(start, end);
                    let tokens = ctx.boundary_tokens(start, end);
                    candidates.for_group_into(cap, budget, &mut tile_scratch);
                    for &tiles in &tile_scratch {
                        let (power, feasible) = cache.power_of(evaluator, work, cap, tokens, tiles);
                        options.push(IntervalOption {
                            tiles,
                            feasible,
                            power,
                        });
                    }
                }
                offsets.push(options.len() as u32);
            }
        }
        IntervalArena {
            stride,
            offsets,
            options,
        }
    }

    /// The options of interval `start..end`, tiles ascending.
    #[inline]
    pub fn options(&self, start: usize, end: usize) -> &[IntervalOption] {
        let idx = start * self.stride + end;
        &self.options[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// Total options stored across all intervals.
    pub fn option_count(&self) -> usize {
        self.options.len()
    }
}

fn better(power: f64, feasible: bool, than_power: f64, than_feasible: bool) -> bool {
    // Feasible solutions always beat infeasible ones at the same tile
    // count; otherwise strictly lower power wins (ties keep the
    // incumbent, which makes the merge order-deterministic).
    match (feasible, than_feasible) {
        (true, false) => true,
        (false, true) => false,
        _ => power < than_power,
    }
}

/// Reusable dynamic-program state for one worker: two tile-count layers
/// (current and next) plus the per-layer winning tile choices that let a
/// finished curve reconstruct its allocation without per-transition
/// clones.  `power == f64::INFINITY` marks an unreachable cell.
pub(crate) struct DpScratch {
    power: Vec<f64>,
    feasible: Vec<bool>,
    next_power: Vec<f64>,
    next_feasible: Vec<bool>,
    /// `choices[layer * (budget + 1) + total]` = tiles the winner of that
    /// cell assigned to group `layer`; walking layers backwards from a
    /// final cell reconstructs its allocation.
    choices: Vec<u32>,
    /// Largest reachable total of the final layer (0 when even the empty
    /// prefix is gone, i.e. the grouping cannot fit the budget).
    reach_max: usize,
}

impl DpScratch {
    pub fn new(budget: u32, max_groups: usize) -> Self {
        let cells = budget as usize + 1;
        DpScratch {
            power: vec![f64::INFINITY; cells],
            feasible: vec![false; cells],
            next_power: vec![f64::INFINITY; cells],
            next_feasible: vec![false; cells],
            choices: vec![0; cells * max_groups.max(1)],
            reach_max: 0,
        }
    }

    /// The `(power, feasible)` of the final layer's cell at `total`
    /// tiles, if reachable.
    fn cell(&self, total: usize) -> Option<(f64, bool)> {
        if self.power[total].is_finite() {
            Some((self.power[total], self.feasible[total]))
        } else {
            None
        }
    }

    /// Walk the recorded choices backwards to reconstruct the allocation
    /// of the final-layer cell at `total` tiles (one tile count per
    /// group, pipeline order).
    fn reconstruct(&self, groups: usize, cells: usize, total: usize) -> Vec<u32> {
        let mut allocation = vec![0u32; groups];
        let mut remaining = total;
        for (layer, slot) in allocation.iter_mut().enumerate().rev() {
            let tiles = self.choices[layer * cells + remaining];
            *slot = tiles;
            remaining -= tiles as usize;
        }
        debug_assert_eq!(remaining, 0, "choice chain must end at zero tiles");
        allocation
    }
}

/// Solve one grouping exactly: a knapsack-style dynamic program over the
/// groups that records, for every exact total tile count, the cheapest
/// cost and a backpointer (the tiles assigned to the last group), leaving
/// the full curve in `scratch`.  Returns the transitions examined.
pub(crate) fn grouping_dp(
    groups: &[(usize, usize)],
    arena: &IntervalArena,
    budget: u32,
    scratch: &mut DpScratch,
) -> u64 {
    let cells = budget as usize + 1;
    scratch.power[..cells].fill(f64::INFINITY);
    scratch.feasible[..cells].fill(false);
    scratch.power[0] = 0.0;
    scratch.feasible[0] = true;
    let mut reach_max = 0usize;
    let mut transitions = 0u64;
    for (layer, &(start, end)) in groups.iter().enumerate() {
        let options = arena.options(start, end);
        scratch.next_power[..cells].fill(f64::INFINITY);
        scratch.next_feasible[..cells].fill(false);
        let choice_row = &mut scratch.choices[layer * cells..(layer + 1) * cells];
        let mut next_max = 0usize;
        for used in 0..=reach_max {
            let base_power = scratch.power[used];
            if !base_power.is_finite() {
                continue;
            }
            let base_feasible = scratch.feasible[used];
            let headroom = budget as usize - used;
            for opt in options {
                let tiles = opt.tiles as usize;
                if tiles > headroom {
                    break;
                }
                transitions += 1;
                let total = used + tiles;
                let new_power = base_power + opt.power;
                let new_feasible = base_feasible && opt.feasible;
                if better(
                    new_power,
                    new_feasible,
                    scratch.next_power[total],
                    scratch.next_feasible[total],
                ) {
                    // The first touch of a cell always lands here (the
                    // incumbent is infinite), so `next_max` tracks every
                    // reachable total.
                    scratch.next_power[total] = new_power;
                    scratch.next_feasible[total] = new_feasible;
                    choice_row[total] = opt.tiles;
                    if total > next_max {
                        next_max = total;
                    }
                }
            }
        }
        std::mem::swap(&mut scratch.power, &mut scratch.next_power);
        std::mem::swap(&mut scratch.feasible, &mut scratch.next_feasible);
        reach_max = next_max;
    }
    scratch.reach_max = reach_max;
    transitions
}

/// A worker's incumbent for one exact tile count: cost plus the grouping
/// job index (for deterministic, enumeration-order tie-breaks) and the
/// allocation reconstructed when the incumbent was set.
struct LocalBest {
    power: f64,
    feasible: bool,
    job: usize,
    allocation: Vec<u32>,
}

/// The grouping jobs of one exhaustive run: either the single
/// all-singleton grouping (any graph size) or partition bitmasks.
enum GroupingJobs {
    Singleton,
    Masks(Vec<u64>),
}

impl GroupingJobs {
    fn len(&self) -> usize {
        match self {
            GroupingJobs::Singleton => 1,
            GroupingJobs::Masks(masks) => masks.len(),
        }
    }

    /// Decode job `index` into `out`.
    fn decode(&self, n: usize, index: usize, out: &mut Grouping) {
        match self {
            GroupingJobs::Singleton => {
                out.clear();
                out.extend((0..n).map(|i| (i, i + 1)));
            }
            GroupingJobs::Masks(masks) => grouping_from_mask_into(n, masks[index], out),
        }
    }
}

/// Exhaustively enumerate every contiguous grouping (up to
/// `max_group_size` actors per group) and solve each exactly, fanning the
/// groupings across `threads` workers that steal fixed-size chunks off a
/// shared atomic cursor (so a skewed grouping cannot idle the pool the
/// way a static split can).  The merged curve holds, for every reachable
/// exact tile count, the globally cheapest candidate; exact-cost ties go
/// to the earliest-enumerated grouping, independent of thread count.
///
/// `arena` must have been built for `ctx` with the same `budget` and
/// `max_group_size` (see [`IntervalArena::build`]); callers running
/// several searches over one graph build it once and share it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exhaustive(
    ctx: &GraphContext,
    arena: &IntervalArena,
    budget: u32,
    max_group_size: usize,
    threads: usize,
    comm: Option<CommSpec>,
) -> SearchOutcome {
    let started = Instant::now();
    let n = ctx.n;

    // Every grouping to solve.  The all-singleton grouping (one actor per
    // column, the structure of every Table 4 mapping) is built directly;
    // larger group sizes enumerate partition bitmasks.
    let jobs = if max_group_size <= 1 {
        GroupingJobs::Singleton
    } else {
        let all = 1u64 << (n - 1);
        GroupingJobs::Masks(
            (0..all)
                .filter(|&m| mask_respects_group_size(n, m, max_group_size))
                .collect(),
        )
    };
    let job_count = jobs.len();

    let cells = budget as usize + 1;
    let workers = threads.max(1).min(job_count.max(1));
    // Chunks small enough to balance skew, large enough that the atomic
    // cursor stays cold.
    let steal_chunk = job_count.div_ceil(workers * 8).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let results: Vec<(Vec<Option<LocalBest>>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let jobs = &jobs;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut scratch = DpScratch::new(budget, n);
                    let mut groups: Grouping = Vec::with_capacity(n);
                    let mut local: Vec<Option<LocalBest>> = (0..cells).map(|_| None).collect();
                    let mut evaluated = 0u64;
                    let mut comm_pruned = 0u64;
                    loop {
                        let first = cursor.fetch_add(steal_chunk, Ordering::Relaxed);
                        if first >= job_count {
                            break;
                        }
                        for job in first..(first + steal_chunk).min(job_count) {
                            jobs.decode(n, job, &mut groups);
                            // Communication prune: a grouping whose
                            // cross-column traffic cannot fit the TDM
                            // frame is unschedulable under any tile
                            // allocation — skip its DP entirely.
                            if let Some(comm) = comm {
                                if ctx.grouping_cross_words(&groups) > comm.capacity() {
                                    comm_pruned += 1;
                                    continue;
                                }
                            }
                            evaluated += grouping_dp(&groups, arena, budget, &mut scratch);
                            for (tiles, slot) in local
                                .iter_mut()
                                .enumerate()
                                .take(scratch.reach_max + 1)
                                .skip(1)
                            {
                                let Some((power, feasible)) = scratch.cell(tiles) else {
                                    continue;
                                };
                                // Jobs are stolen in ascending order, so
                                // keep-incumbent-on-tie equals
                                // lowest-job-wins within a worker.
                                let improves = match slot {
                                    Some(c) => better(power, feasible, c.power, c.feasible),
                                    None => true,
                                };
                                if improves {
                                    *slot = Some(LocalBest {
                                        power,
                                        feasible,
                                        job,
                                        allocation: scratch.reconstruct(groups.len(), cells, tiles),
                                    });
                                }
                            }
                        }
                    }
                    (local, evaluated, comm_pruned)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut merged: Vec<Option<LocalBest>> = (0..cells).map(|_| None).collect();
    let mut evaluated = 0u64;
    let mut comm_pruned = 0u64;
    for (local, count, pruned) in results {
        evaluated += count;
        comm_pruned += pruned;
        for (slot, candidate) in merged.iter_mut().zip(local) {
            let Some(candidate) = candidate else { continue };
            let improves = match slot {
                Some(c) => {
                    if better(candidate.power, candidate.feasible, c.power, c.feasible) {
                        true
                    } else if better(c.power, c.feasible, candidate.power, candidate.feasible) {
                        false
                    } else {
                        // Exact-cost tie: the earliest-enumerated grouping
                        // wins, matching a sequential merge.
                        candidate.job < c.job
                    }
                }
                None => true,
            };
            if improves {
                *slot = Some(candidate);
            }
        }
    }

    let mut decode_scratch: Grouping = Vec::with_capacity(n);
    let curve = merged
        .into_iter()
        .flatten()
        .map(|best| {
            jobs.decode(n, best.job, &mut decode_scratch);
            Candidate {
                groups: decode_scratch.clone(),
                allocation: best.allocation,
                power_mw: best.power,
                feasible: best.feasible,
            }
        })
        .collect();

    SearchOutcome {
        curve,
        stats: SearchStats {
            mappings_evaluated: evaluated,
            groupings_examined: job_count as u64,
            states_pruned: 0,
            groupings_comm_pruned: comm_pruned,
            threads_used: workers,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        },
    }
}

/// Sentinel for "no arena node" (the root of a backpointer chain).
const NO_NODE: u32 = u32::MAX;

/// Sentinel start marking the root partial, which has no group of its
/// own.
const NO_GROUP: u32 = u32::MAX;

/// One materialized link of a beam partial's backpointer chain: the group
/// `start..end` placed on `tiles` tiles, extending `parent`.
#[derive(Debug, Clone, Copy)]
struct BeamNode {
    parent: u32,
    start: u32,
    end: u32,
    tiles: u32,
}

/// One partial solution of the beam search: the first `boundary` actors
/// grouped and allocated.  Instead of carrying its grouping and
/// allocation as vectors (cloned on every transition), a partial holds a
/// backpointer into the node arena plus its own last group; the chain is
/// materialized one node per *surviving* partial and full vectors are
/// reconstructed only for the final layer.
#[derive(Debug, Clone, Copy)]
struct Partial {
    tiles: u32,
    power: f64,
    feasible: bool,
    /// Cross-column words per iteration already committed by the prefix's
    /// completed groups (always 0 when the search has no `CommSpec`; the
    /// increment per new group is [`GraphContext::group_cross_out`], which
    /// depends only on the group itself, so the total is exact for any
    /// completion).
    cross: u64,
    /// Arena node of the already-materialized prefix (`NO_NODE` = root).
    parent: u32,
    /// This partial's own group (`start == NO_GROUP` for the root).
    start: u32,
    end: u32,
    choice: u32,
}

/// The beam engine's communication prune: the TDM frame capacity plus a
/// per-interval table of [`GraphContext::group_cross_out`] increments, so
/// expansions extend a partial's committed cross words in O(1) and drop
/// any prefix that already overflows the frame (cross words only grow).
struct CommPrune {
    capacity: u64,
    stride: usize,
    /// `delta[start * stride + end]` = cross words gained by appending the
    /// group `start..end`.
    delta: Vec<u64>,
}

impl CommPrune {
    fn new(ctx: &GraphContext, max_group_size: usize, capacity: u64) -> Self {
        let n = ctx.n;
        let stride = n + 1;
        let mut delta = vec![0u64; n * stride];
        for start in 0..n {
            for end in start + 1..=(start + max_group_size).min(n) {
                delta[start * stride + end] = ctx.group_cross_out(start, end);
            }
        }
        CommPrune {
            capacity,
            stride,
            delta,
        }
    }

    #[inline]
    fn delta(&self, start: usize, end: usize) -> u64 {
        self.delta[start * self.stride + end]
    }
}

/// Dominance-prune a layer: keep, per exact tile count, the cheapest
/// partial, then drop any partial dominated by a cheaper-or-equal partial
/// with fewer tiles.  Pruning across tile counts is sound for the best
/// solution and the Pareto frontier because a prefix with fewer tiles and
/// less power can absorb any completion its competitor can.
///
/// Two staircases survive: partials improving on every earlier partial
/// overall, and feasible partials improving on every earlier *feasible*
/// partial (so the cheapest feasible prefix is never shadowed by a
/// cheaper infeasible one).  Each staircase is capped at `width` entries
/// independently — a staircase holds at most one partial per tile count,
/// so `width ≥ budget + 1` never drops anything and the beam stays exact.
///
/// With `comm_aware` set, a partial's committed cross words join the
/// dominance check: each staircase becomes a Pareto front over
/// `(power, cross)`, because a completion's cross increment is
/// independent of the prefix — a pricier prefix with fewer committed
/// cross words may be the only one whose completions fit the TDM frame.
/// A front may then hold several partials per tile count, so exactness
/// needs `width` at least the largest per-layer front (the agreement
/// property test sizes it generously); the cap discards the
/// highest-power entries first.
///
/// Returns the number of partials discarded.
fn prune_layer(layer: &mut Vec<Partial>, width: usize, comm_aware: bool) -> u64 {
    layer.sort_by(|a, b| {
        a.tiles
            .cmp(&b.tiles)
            .then(a.power.partial_cmp(&b.power).expect("finite power"))
            .then(a.cross.cmp(&b.cross))
    });
    let before = layer.len();
    let mut any_staircase: Vec<Partial> = Vec::new();
    let mut feasible_staircase: Vec<Partial> = Vec::new();
    if comm_aware {
        // Pareto fronts over (power, cross).  Entries are processed in
        // (tiles, power, cross) order, so every kept entry has no more
        // tiles than the candidate it is tested against; power and cross
        // must be checked explicitly.
        let mut any_front: Vec<(f64, u64)> = Vec::new();
        let mut feasible_front: Vec<(f64, u64)> = Vec::new();
        let dominated = |front: &[(f64, u64)], p: &Partial| {
            front
                .iter()
                .any(|&(power, cross)| power <= p.power && cross <= p.cross)
        };
        for partial in layer.drain(..) {
            let improves_any = !dominated(&any_front, &partial);
            let improves_feasible = partial.feasible && !dominated(&feasible_front, &partial);
            if improves_any {
                any_front.push((partial.power, partial.cross));
            }
            if improves_feasible {
                feasible_front.push((partial.power, partial.cross));
            }
            if improves_feasible {
                feasible_staircase.push(partial);
            } else if improves_any {
                any_staircase.push(partial);
            }
        }
        // Cap each front by discarding the highest-power entries (the
        // final sort below restores (tiles, power, cross) order).
        for staircase in [&mut any_staircase, &mut feasible_staircase] {
            if staircase.len() > width {
                staircase.sort_by(|a, b| {
                    b.power
                        .partial_cmp(&a.power)
                        .expect("finite power")
                        .then(a.tiles.cmp(&b.tiles))
                        .then(a.cross.cmp(&b.cross))
                });
                staircase.drain(..staircase.len() - width);
            }
        }
    } else {
        let mut best_any = f64::INFINITY;
        let mut best_feasible = f64::INFINITY;
        for partial in layer.drain(..) {
            let improves_any = partial.power < best_any;
            let improves_feasible = partial.feasible && partial.power < best_feasible;
            if improves_any {
                best_any = partial.power;
            }
            if improves_feasible {
                best_feasible = partial.power;
            }
            // A feasible partial on both staircases is stored once, on the
            // feasible one (it survives the same cap either way: both
            // staircases are strictly power-descending in tile order).
            if improves_feasible {
                feasible_staircase.push(partial);
            } else if improves_any {
                any_staircase.push(partial);
            }
        }
        // Powers are strictly descending along each staircase; keep the
        // lowest-power tail of each.
        for staircase in [&mut any_staircase, &mut feasible_staircase] {
            if staircase.len() > width {
                staircase.drain(..staircase.len() - width);
            }
        }
    }
    let mut kept = any_staircase;
    kept.append(&mut feasible_staircase);
    kept.sort_by(|a, b| {
        a.tiles
            .cmp(&b.tiles)
            .then(a.power.partial_cmp(&b.power).expect("finite power"))
            .then(a.cross.cmp(&b.cross))
    });
    let pruned = (before - kept.len()) as u64;
    *layer = kept;
    pruned
}

/// A materialized expansion source: one surviving partial of the previous
/// layer, reduced to the fields its extensions need.
#[derive(Debug, Clone, Copy)]
struct Source {
    node: u32,
    tiles: u32,
    power: f64,
    feasible: bool,
    cross: u64,
}

/// Materialize the surviving partials of a layer as arena nodes, so their
/// extensions can reference them by index instead of cloning vectors.
/// Returns the expansion sources in layer order.
fn materialize_layer(layer: &[Partial], nodes: &mut Vec<BeamNode>) -> Vec<Source> {
    layer
        .iter()
        .map(|p| {
            let node = if p.start == NO_GROUP {
                NO_NODE
            } else {
                nodes.push(BeamNode {
                    parent: p.parent,
                    start: p.start,
                    end: p.end,
                    tiles: p.choice,
                });
                (nodes.len() - 1) as u32
            };
            Source {
                node,
                tiles: p.tiles,
                power: p.power,
                feasible: p.feasible,
                cross: p.cross,
            }
        })
        .collect()
}

/// Walk a final partial's backpointer chain into explicit grouping and
/// allocation vectors (pipeline order).
fn reconstruct_partial(nodes: &[BeamNode], partial: &Partial) -> (Grouping, Vec<u32>) {
    let mut groups: Grouping = Vec::new();
    let mut allocation: Vec<u32> = Vec::new();
    if partial.start != NO_GROUP {
        groups.push((partial.start as usize, partial.end as usize));
        allocation.push(partial.choice);
    }
    let mut cursor = partial.parent;
    while cursor != NO_NODE {
        let node = nodes[cursor as usize];
        groups.push((node.start as usize, node.end as usize));
        allocation.push(node.tiles);
        cursor = node.parent;
    }
    groups.reverse();
    allocation.reverse();
    (groups, allocation)
}

/// One layer's expansion work, published to the persistent worker pool:
/// extend every source partial of `layer` with every group ending at one
/// of `ends`.
struct LayerTask {
    layer: usize,
    ends: Vec<usize>,
    sources: Vec<Source>,
}

/// Shared state of the beam engine's persistent worker pool: one task at
/// a time, ends stolen one by one off `next_end`.  Each result carries
/// `(end, partials, transitions examined, comm-overflow skips)`.
struct BeamPoolState {
    shutdown: bool,
    task: Option<Arc<LayerTask>>,
    next_end: usize,
    remaining: usize,
    results: Vec<(usize, Vec<Partial>, u64, u64)>,
}

struct BeamPool {
    state: Mutex<BeamPoolState>,
    work_ready: Condvar,
    layer_done: Condvar,
}

impl BeamPool {
    fn new() -> Self {
        BeamPool {
            state: Mutex::new(BeamPoolState {
                shutdown: false,
                task: None,
                next_end: 0,
                remaining: 0,
                results: Vec::new(),
            }),
            work_ready: Condvar::new(),
            layer_done: Condvar::new(),
        }
    }

    /// Publish a layer task, block until every end is expanded, and
    /// return the results sorted by end (so the merge order — and with it
    /// the search result — is independent of worker scheduling).
    fn run_layer(&self, task: LayerTask) -> Vec<(usize, Vec<Partial>, u64, u64)> {
        let ends = task.ends.len();
        {
            let mut state = self.state.lock().expect("pool lock");
            state.task = Some(Arc::new(task));
            state.next_end = 0;
            state.remaining = ends;
            self.work_ready.notify_all();
        }
        let mut results = {
            let mut state = self.state.lock().expect("pool lock");
            while state.remaining > 0 {
                state = self.layer_done.wait(state).expect("pool lock");
            }
            std::mem::take(&mut state.results)
        };
        results.sort_by_key(|&(end, _, _, _)| end);
        results
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().expect("pool lock");
        state.shutdown = true;
        self.work_ready.notify_all();
    }
}

/// Extend every source partial with every tile option of the group
/// `layer..end`.  Returns the new partials, the transitions examined, and
/// the extensions skipped because their committed cross words already
/// overflow the TDM frame (cross words only grow, so such a prefix can
/// never complete feasibly).
fn expand_layer_end(
    arena: &IntervalArena,
    budget: u32,
    comm: Option<&CommPrune>,
    layer: usize,
    end: usize,
    sources: &[Source],
) -> (Vec<Partial>, u64, u64) {
    let options = arena.options(layer, end);
    let mut next = Vec::new();
    let mut count = 0u64;
    let mut comm_skipped = 0u64;
    for &source in sources {
        let cross = match comm {
            Some(prune) => {
                let cross = source.cross + prune.delta(layer, end);
                if cross > prune.capacity {
                    comm_skipped += options
                        .iter()
                        .take_while(|opt| source.tiles + opt.tiles <= budget)
                        .count() as u64;
                    continue;
                }
                cross
            }
            None => 0,
        };
        for opt in options {
            let total = source.tiles + opt.tiles;
            if total > budget {
                break;
            }
            count += 1;
            next.push(Partial {
                tiles: total,
                power: source.power + opt.power,
                feasible: source.feasible && opt.feasible,
                cross,
                parent: source.node,
                start: layer as u32,
                end: end as u32,
                choice: opt.tiles,
            });
        }
    }
    (next, count, comm_skipped)
}

/// The loop each persistent worker runs: steal one end of the current
/// layer task, expand it, deposit the result, and wake the coordinator
/// when the layer is complete.
fn beam_worker(pool: &BeamPool, arena: &IntervalArena, budget: u32, comm: Option<&CommPrune>) {
    loop {
        let (task, index) = {
            let mut state = pool.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(task) = &state.task {
                    if state.next_end < task.ends.len() {
                        break;
                    }
                }
                state = pool.work_ready.wait(state).expect("pool lock");
            }
            let task = Arc::clone(state.task.as_ref().expect("checked above"));
            let index = state.next_end;
            state.next_end += 1;
            (task, index)
        };
        let end = task.ends[index];
        let (partials, count, skipped) =
            expand_layer_end(arena, budget, comm, task.layer, end, &task.sources);
        let mut state = pool.state.lock().expect("pool lock");
        state.results.push((end, partials, count, skipped));
        state.remaining -= 1;
        if state.remaining == 0 {
            state.task = None;
            pool.layer_done.notify_all();
        }
    }
}

/// Beam search over grouping prefixes with dominance pruning: layer `i`
/// holds partial solutions covering actors `0..i`; each step extends a
/// layer with every possible next group, pruning each target layer to at
/// most `width` non-dominated partials.  With `width ≥ budget + 1` the
/// engine is exact for the best solution and the frontier.
///
/// Under a `comm` spec every partial tracks the cross-column words its
/// completed groups have already committed: extensions that overflow the
/// TDM frame are dropped as they form, and the dominance prune keeps the
/// `(power, cross)` Pareto front per staircase instead of power alone —
/// so a schedulable-but-pricier prefix is never shadowed by a cheaper
/// prefix whose completions cannot fit the frame.  The comm prune is
/// exact (property-tested against the exhaustive engine); width caps
/// under comm need head-room beyond `budget + 1` since a front may hold
/// several partials per tile count.
///
/// Layer expansions fan out across a *persistent* work-stealing pool (the
/// structure the exhaustive engine uses): `threads` workers are spawned
/// once for the whole search and steal `(layer, end)` expansions off a
/// shared cursor, instead of the seed's per-layer `thread::spawn` burst
/// that re-created the pool on every one of a deep graph's layers.
/// Results merge in end order, so the outcome is bit-identical at any
/// thread count (property-tested at 1 and 8).
///
/// `arena` must have been built for `ctx` with the same `budget` and
/// `max_group_size` (see [`IntervalArena::build`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn beam(
    ctx: &GraphContext,
    arena: &IntervalArena,
    budget: u32,
    max_group_size: usize,
    width: usize,
    threads: usize,
    comm: Option<CommSpec>,
) -> SearchOutcome {
    let started = Instant::now();
    let n = ctx.n;
    let width = width.max(1);
    let comm_prune = comm.map(|spec| CommPrune::new(ctx, max_group_size, spec.capacity()));
    let comm_prune = comm_prune.as_ref();

    let mut layers: Vec<Vec<Partial>> = vec![Vec::new(); n + 1];
    layers[0].push(Partial {
        tiles: 0,
        power: 0.0,
        feasible: true,
        cross: 0,
        parent: NO_NODE,
        start: NO_GROUP,
        end: 0,
        choice: 0,
    });
    let mut nodes: Vec<BeamNode> = Vec::new();
    let mut evaluated = 0u64;
    let mut groupings = 0u64;
    let mut pruned = 0u64;
    let mut comm_pruned = 0u64;
    let workers = threads.max(1);

    let pool = BeamPool::new();
    std::thread::scope(|scope| {
        // Spawn the persistent pool once; a single-threaded search skips
        // it and expands inline (same merge order, so same result).
        if workers > 1 {
            for _ in 0..workers {
                let pool = &pool;
                scope.spawn(move || beam_worker(pool, arena, budget, comm_prune));
            }
        }

        for i in 0..n {
            if i > 0 {
                pruned += prune_layer(&mut layers[i], width, comm_prune.is_some());
            }
            if layers[i].is_empty() {
                continue;
            }
            let ends: Vec<usize> = (i + 1..=(i + max_group_size).min(n)).collect();
            let survivors = std::mem::take(&mut layers[i]);
            let sources = materialize_layer(&survivors, &mut nodes);
            let expansions: Vec<(usize, Vec<Partial>, u64, u64)> = if workers > 1 {
                pool.run_layer(LayerTask {
                    layer: i,
                    ends,
                    sources,
                })
            } else {
                ends.into_iter()
                    .map(|end| {
                        let (partials, count, skipped) =
                            expand_layer_end(arena, budget, comm_prune, i, end, &sources);
                        (end, partials, count, skipped)
                    })
                    .collect()
            };
            for (end, partials, count, skipped) in expansions {
                evaluated += count;
                comm_pruned += skipped;
                if end == n {
                    groupings += partials.len() as u64;
                }
                layers[end].extend(partials);
            }
        }
        pool.shutdown();
    });

    pruned += prune_layer(&mut layers[n], width, comm_prune.is_some());
    let curve = layers[n]
        .iter()
        .map(|p| {
            let (groups, allocation) = reconstruct_partial(&nodes, p);
            Candidate {
                groups,
                allocation,
                power_mw: p.power,
                feasible: p.feasible,
            }
        })
        .collect();
    SearchOutcome {
        curve,
        stats: SearchStats {
            mappings_evaluated: evaluated,
            groupings_examined: groupings,
            states_pruned: pruned,
            groupings_comm_pruned: comm_pruned,
            threads_used: workers,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        },
    }
}

/// The clone-based reference engine the optimized core is property-tested
/// against: the seed implementation of the interval table and the
/// per-grouping dynamic program, kept verbatim (allocations and all).
#[cfg(test)]
pub(crate) mod reference {
    use super::*;
    use crate::space::grouping_from_mask;

    /// Per-interval candidate options: `(tiles, power, feasible)`.
    pub type IntervalOptions = Vec<(u32, f64, bool)>;

    /// The seed's nested interval table.
    pub fn interval_table(
        ctx: &GraphContext,
        evaluator: &Evaluator,
        candidates: TileCandidates,
        budget: u32,
        max_group_size: usize,
    ) -> Vec<Vec<Option<IntervalOptions>>> {
        let n = ctx.n;
        let mut table: Vec<Vec<Option<IntervalOptions>>> = vec![vec![None; n + 1]; n];
        for (start, row) in table.iter_mut().enumerate() {
            let end_limit = (start + max_group_size).min(n);
            for (end, slot) in row
                .iter_mut()
                .enumerate()
                .take(end_limit + 1)
                .skip(start + 1)
            {
                let work = ctx.group_work(start, end);
                let cap = ctx.group_cap(start, end);
                let tokens = ctx.boundary_tokens(start, end);
                let options = candidates
                    .for_group(cap, budget)
                    .into_iter()
                    .map(|tiles| {
                        let col = evaluator.evaluate_column(work, cap, tokens, tiles);
                        (tiles, col.power.total_mw(), col.within_envelope)
                    })
                    .collect();
                *slot = Some(options);
            }
        }
        table
    }

    /// The seed's clone-based grouping DP: returns
    /// `dp[tiles] = (power, feasible, allocation)`.
    pub fn grouping_curve(
        groups: &Grouping,
        table: &[Vec<Option<IntervalOptions>>],
        budget: u32,
        evaluated: &mut u64,
    ) -> Vec<Option<(f64, bool, Vec<u32>)>> {
        let mut dp: Vec<Option<(f64, bool, Vec<u32>)>> = vec![None; budget as usize + 1];
        dp[0] = Some((0.0, true, Vec::new()));
        for &(start, end) in groups {
            let options = table[start][end].as_ref().expect("interval inside table");
            let mut next: Vec<Option<(f64, bool, Vec<u32>)>> = vec![None; budget as usize + 1];
            for (used, cell) in dp.iter().enumerate() {
                let Some((power, feasible, allocation)) = cell else {
                    continue;
                };
                for &(tiles, column_power, column_feasible) in options {
                    let total = used + tiles as usize;
                    if total > budget as usize {
                        break;
                    }
                    *evaluated += 1;
                    let new_power = power + column_power;
                    let new_feasible = *feasible && column_feasible;
                    let slot = &mut next[total];
                    let improves = match slot {
                        Some((p, f, _)) => better(new_power, new_feasible, *p, *f),
                        None => true,
                    };
                    if improves {
                        let mut alloc = allocation.clone();
                        alloc.push(tiles);
                        *slot = Some((new_power, new_feasible, alloc));
                    }
                }
            }
            dp = next;
        }
        dp
    }

    /// The seed's sequential exhaustive merge: enumerate every grouping,
    /// solve each with [`grouping_curve`], and keep the cheapest candidate
    /// per exact tile count (earliest grouping wins exact-cost ties).
    pub fn exhaustive(
        ctx: &GraphContext,
        evaluator: &Evaluator,
        candidates: TileCandidates,
        budget: u32,
        max_group_size: usize,
    ) -> (Vec<Candidate>, u64) {
        let n = ctx.n;
        let table = interval_table(ctx, evaluator, candidates, budget, max_group_size);
        let groupings: Vec<Grouping> = if max_group_size <= 1 {
            vec![(0..n).map(|i| (i, i + 1)).collect()]
        } else {
            let all = 1u64 << (n - 1);
            (0..all)
                .filter(|&m| mask_respects_group_size(n, m, max_group_size))
                .map(|m| grouping_from_mask(n, m))
                .collect()
        };
        let mut merged: Vec<Option<Candidate>> = vec![None; budget as usize + 1];
        let mut evaluated = 0u64;
        for groups in &groupings {
            let dp = grouping_curve(groups, &table, budget, &mut evaluated);
            for (tiles, cell) in dp.iter().enumerate().skip(1) {
                let Some((power, feasible, allocation)) = cell else {
                    continue;
                };
                let slot = &mut merged[tiles];
                let improves = match slot {
                    Some(c) => better(*power, *feasible, c.power_mw, c.feasible),
                    None => true,
                };
                if improves {
                    *slot = Some(Candidate {
                        groups: groups.clone(),
                        allocation: allocation.clone(),
                        power_mw: *power,
                        feasible: *feasible,
                    });
                }
            }
        }
        (merged.into_iter().flatten().collect(), evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::grouping_from_mask;
    use proptest::prelude::*;
    use synchro_sdf::SdfGraph;

    fn chain(cycles: &[u64], caps: &[u32]) -> SdfGraph {
        let mut graph = SdfGraph::new();
        let mut prev = None;
        for (i, (&c, &cap)) in cycles.iter().zip(caps).enumerate() {
            let actor = graph.add_actor(format!("a{i}"), c, cap);
            if let Some(p) = prev {
                graph.add_edge(p, actor, 1, 1, 0).unwrap();
            }
            prev = Some(actor);
        }
        graph
    }

    fn context_and_evaluator(graph: &SdfGraph) -> (GraphContext, Evaluator) {
        let ctx = GraphContext::new(graph).unwrap();
        let evaluator = Evaluator::new(&synchro_power::Technology::isca2004(), 1e6, 1.0);
        (ctx, evaluator)
    }

    const CAP_CHOICES: [u32; 6] = [1, 2, 4, 8, 16, 32];

    #[test]
    fn arena_matches_the_reference_table_bit_for_bit() {
        let graph = chain(&[60, 100, 5, 380], &[16, 16, 4, 32]);
        let (ctx, evaluator) = context_and_evaluator(&graph);
        for candidates in [TileCandidates::PowersOfTwo, TileCandidates::All] {
            for max_group in [1usize, 2, 4] {
                let arena = IntervalArena::build(&ctx, &evaluator, candidates, 24, max_group);
                let table = reference::interval_table(&ctx, &evaluator, candidates, 24, max_group);
                for (start, row) in table.iter().enumerate() {
                    for (end, slot) in row.iter().enumerate() {
                        let flat = arena.options(start, end);
                        match slot {
                            None => assert!(flat.is_empty(), "{start}..{end} should be unused"),
                            Some(options) => {
                                assert_eq!(flat.len(), options.len());
                                for (a, &(tiles, power, feasible)) in flat.iter().zip(options) {
                                    assert_eq!(a.tiles, tiles);
                                    assert_eq!(a.power.to_bits(), power.to_bits());
                                    assert_eq!(a.feasible, feasible);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// One cell of the reference curve shape: `(power, feasible,
    /// allocation)` when the tile count is reachable.
    type CurveCell = Option<(f64, bool, Vec<u32>)>;

    /// Expand the backpointer DP's final layer into the reference curve
    /// shape for comparison.
    fn dp_full_curve(
        groups: &Grouping,
        arena: &IntervalArena,
        budget: u32,
        scratch: &mut DpScratch,
    ) -> (Vec<CurveCell>, u64) {
        let transitions = grouping_dp(groups, arena, budget, scratch);
        let cells = budget as usize + 1;
        let curve = (0..cells)
            .map(|tiles| {
                scratch.cell(tiles).map(|(power, feasible)| {
                    (
                        power,
                        feasible,
                        scratch.reconstruct(groups.len(), cells, tiles),
                    )
                })
            })
            .collect();
        (curve, transitions)
    }

    proptest! {
        /// The backpointer DP reconstructs exactly the same
        /// `(power, feasible, allocation)` curve as the retained
        /// clone-based reference, for random chains, groupings and
        /// budgets.
        #[test]
        fn backpointer_dp_matches_clone_based_reference(
            cycles in prop::collection::vec(1u64..2_000, 2..8),
            cap_picks in prop::collection::vec(0usize..6, 2..8),
            budget in 2u32..40,
            mask in 0u64..128,
        ) {
            let n = cycles.len().min(cap_picks.len());
            let caps: Vec<u32> = cap_picks[..n].iter().map(|&i| CAP_CHOICES[i]).collect();
            let graph = chain(&cycles[..n], &caps);
            let (ctx, evaluator) = context_and_evaluator(&graph);
            let groups = grouping_from_mask(n, mask);
            for candidates in [TileCandidates::PowersOfTwo, TileCandidates::All] {
                let arena = IntervalArena::build(&ctx, &evaluator, candidates, budget, n);
                let table =
                    reference::interval_table(&ctx, &evaluator, candidates, budget, n);
                let mut scratch = DpScratch::new(budget, n);
                let (fast, fast_count) = dp_full_curve(&groups, &arena, budget, &mut scratch);
                let mut slow_count = 0u64;
                let slow = reference::grouping_curve(&groups, &table, budget, &mut slow_count);
                prop_assert_eq!(fast_count, slow_count);
                for (tiles, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    match (a, b) {
                        (None, None) => {}
                        (Some((pa, fa, alloc_a)), Some((pb, fb, alloc_b))) => {
                            prop_assert_eq!(pa.to_bits(), pb.to_bits(), "power at {}", tiles);
                            prop_assert_eq!(fa, fb, "feasibility at {}", tiles);
                            prop_assert_eq!(alloc_a, alloc_b, "allocation at {}", tiles);
                        }
                        _ => prop_assert!(false, "reachability differs at {} tiles", tiles),
                    }
                }
            }
        }

        /// The persistent-pool beam engine returns bit-identical curves
        /// at 1 and 8 threads: same groupings, same allocations, same
        /// power bits, same counters.
        #[test]
        fn beam_is_bit_identical_across_thread_counts(
            cycles in prop::collection::vec(1u64..2_000, 2..8),
            cap_picks in prop::collection::vec(0usize..6, 2..8),
            budget in 2u32..32,
            width in 1usize..40,
        ) {
            let n = cycles.len().min(cap_picks.len());
            let caps: Vec<u32> = cap_picks[..n].iter().map(|&i| CAP_CHOICES[i]).collect();
            let graph = chain(&cycles[..n], &caps);
            let (ctx, evaluator) = context_and_evaluator(&graph);
            let candidates = TileCandidates::PowersOfTwo;
            let arena = IntervalArena::build(&ctx, &evaluator, candidates, budget, n);
            let one = beam(&ctx, &arena, budget, n, width, 1, None);
            let eight = beam(&ctx, &arena, budget, n, width, 8, None);
            prop_assert_eq!(one.stats.mappings_evaluated, eight.stats.mappings_evaluated);
            prop_assert_eq!(one.stats.groupings_examined, eight.stats.groupings_examined);
            prop_assert_eq!(one.stats.states_pruned, eight.stats.states_pruned);
            prop_assert_eq!(one.curve.len(), eight.curve.len());
            for (a, b) in one.curve.iter().zip(&eight.curve) {
                prop_assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
                prop_assert_eq!(a.feasible, b.feasible);
                prop_assert_eq!(&a.groups, &b.groups);
                prop_assert_eq!(&a.allocation, &b.allocation);
            }
        }

        /// The work-stealing exhaustive engine returns bit-identical
        /// curves to the sequential clone-based reference, across 1 and
        /// 8 threads.
        #[test]
        fn exhaustive_matches_reference_across_thread_counts(
            cycles in prop::collection::vec(1u64..2_000, 2..6),
            cap_picks in prop::collection::vec(0usize..6, 2..6),
            budget in 2u32..32,
        ) {
            let n = cycles.len().min(cap_picks.len());
            let caps: Vec<u32> = cap_picks[..n].iter().map(|&i| CAP_CHOICES[i]).collect();
            let graph = chain(&cycles[..n], &caps);
            let (ctx, evaluator) = context_and_evaluator(&graph);
            let candidates = TileCandidates::PowersOfTwo;
            let (slow_curve, slow_count) =
                reference::exhaustive(&ctx, &evaluator, candidates, budget, n);
            let arena = IntervalArena::build(&ctx, &evaluator, candidates, budget, n);
            for threads in [1usize, 8] {
                let fast = exhaustive(&ctx, &arena, budget, n, threads, None);
                prop_assert_eq!(fast.stats.mappings_evaluated, slow_count);
                prop_assert_eq!(fast.curve.len(), slow_curve.len());
                for (a, b) in fast.curve.iter().zip(&slow_curve) {
                    prop_assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
                    prop_assert_eq!(a.feasible, b.feasible);
                    prop_assert_eq!(&a.groups, &b.groups);
                    prop_assert_eq!(&a.allocation, &b.allocation);
                }
            }
        }

        /// Under a `CommSpec` the comm-aware beam agrees with the
        /// exhaustive engine: same best feasible power (bit-for-bit),
        /// same overall minimum power, and emptiness only when every
        /// grouping overflows the frame.  This pins the exactness of the
        /// cross-word dominance dimension — the old final-layer-only
        /// filter could lose the only schedulable prefix to a cheaper
        /// unschedulable one.
        #[test]
        fn beam_comm_prune_agrees_with_exhaustive(
            cycles in prop::collection::vec(1u64..2_000, 2..7),
            cap_picks in prop::collection::vec(0usize..6, 2..7),
            budget in 2u32..24,
            capacity in 0u64..7,
        ) {
            let n = cycles.len().min(cap_picks.len());
            let caps: Vec<u32> = cap_picks[..n].iter().map(|&i| CAP_CHOICES[i]).collect();
            let graph = chain(&cycles[..n], &caps);
            let (ctx, evaluator) = context_and_evaluator(&graph);
            let candidates = TileCandidates::PowersOfTwo;
            let comm = Some(CommSpec::new(1, capacity));
            let arena = IntervalArena::build(&ctx, &evaluator, candidates, budget, n);
            let full = exhaustive(&ctx, &arena, budget, n, 2, comm);
            // Width generous enough that the (power, cross) fronts are
            // never capped: a chain of ≤ 6 unit-token edges has at most
            // 6 distinct cross values per tile count.
            let beamed = beam(&ctx, &arena, budget, n, 256, 2, comm);
            for c in &beamed.curve {
                prop_assert!(
                    ctx.grouping_cross_words(&c.groups) <= capacity,
                    "beam kept an unschedulable grouping {:?}",
                    c.groups
                );
            }
            prop_assert_eq!(full.curve.is_empty(), beamed.curve.is_empty());
            let best_feasible = |curve: &[Candidate]| {
                curve
                    .iter()
                    .filter(|c| c.feasible)
                    .map(|c| c.power_mw)
                    .fold(f64::INFINITY, f64::min)
            };
            let best_any = |curve: &[Candidate]| {
                curve
                    .iter()
                    .map(|c| c.power_mw)
                    .fold(f64::INFINITY, f64::min)
            };
            prop_assert_eq!(
                best_feasible(&full.curve).to_bits(),
                best_feasible(&beamed.curve).to_bits()
            );
            prop_assert_eq!(
                best_any(&full.curve).to_bits(),
                best_any(&beamed.curve).to_bits()
            );
        }
    }

    #[test]
    fn identical_stages_tie_break_to_the_earliest_grouping() {
        // Every stage identical → huge numbers of exact-cost ties; the
        // merged winner must match the sequential reference exactly,
        // regardless of thread count.
        let graph = chain(&[100, 100, 100, 100], &[8, 8, 8, 8]);
        let (ctx, evaluator) = context_and_evaluator(&graph);
        let (reference_curve, _) =
            reference::exhaustive(&ctx, &evaluator, TileCandidates::All, 16, 4);
        let arena = IntervalArena::build(&ctx, &evaluator, TileCandidates::All, 16, 4);
        for threads in [1usize, 3, 8] {
            let fast = exhaustive(&ctx, &arena, 16, 4, threads, None);
            assert_eq!(fast.curve.len(), reference_curve.len());
            for (a, b) in fast.curve.iter().zip(&reference_curve) {
                assert_eq!(a.groups, b.groups, "tie-break grouping differs");
                assert_eq!(a.allocation, b.allocation);
                assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
            }
        }
    }

    #[test]
    fn beam_reconstruction_matches_exhaustive_candidates() {
        let graph = chain(&[60, 100, 5, 380, 370], &[16, 16, 4, 32, 32]);
        let (ctx, evaluator) = context_and_evaluator(&graph);
        let budget = 20u32;
        let wide = budget as usize + 1;
        let arena = IntervalArena::build(&ctx, &evaluator, TileCandidates::PowersOfTwo, budget, 5);
        let full = exhaustive(&ctx, &arena, budget, 5, 2, None);
        let beamed = beam(&ctx, &arena, budget, 5, wide, 2, None);
        // Every beam candidate must be a well-formed contiguous grouping
        // whose allocation sums to its tile count, and the best costs
        // must agree with the exhaustive engine.
        for c in &beamed.curve {
            let mut covered = 0usize;
            for &(start, end) in &c.groups {
                assert_eq!(start, covered, "groups must tile 0..n contiguously");
                covered = end;
            }
            assert_eq!(covered, ctx.n);
            assert_eq!(c.allocation.len(), c.groups.len());
            assert!(c.allocation.iter().sum::<u32>() <= budget);
        }
        let best = |curve: &[Candidate]| {
            curve
                .iter()
                .filter(|c| c.feasible)
                .map(|c| c.power_mw)
                .fold(f64::INFINITY, f64::min)
        };
        assert_eq!(best(&full.curve).to_bits(), best(&beamed.curve).to_bits());
    }

    #[test]
    fn comm_prune_drops_unschedulable_groupings_in_both_engines() {
        // A 4-stage chain with 1-token edges: the all-singleton grouping
        // crosses 3 boundaries (3 words/iteration), a 2+2 fusion crosses
        // one (1 word).  A 2-slot frame must reject every grouping with
        // more than 2 cross words but keep the fused ones.
        let graph = chain(&[60, 100, 5, 380], &[16, 16, 4, 32]);
        let (ctx, evaluator) = context_and_evaluator(&graph);
        let comm = Some(CommSpec::new(1, 2));
        let arena = IntervalArena::build(&ctx, &evaluator, TileCandidates::PowersOfTwo, 24, 4);
        let full = exhaustive(&ctx, &arena, 24, 4, 2, comm);
        assert!(full.stats.groupings_comm_pruned > 0);
        for c in &full.curve {
            assert!(ctx.grouping_cross_words(&c.groups) <= 2, "{:?}", c.groups);
        }
        let beamed = beam(&ctx, &arena, 24, 4, 25, 2, comm);
        // The beam tracks committed cross words per partial, so every
        // surviving candidate fits the frame.  (It need not report comm
        // prunes here: a dominated overflowing prefix can fall to the
        // (power, cross) front before its extensions are ever attempted.)
        for c in &beamed.curve {
            assert!(ctx.grouping_cross_words(&c.groups) <= 2, "{:?}", c.groups);
        }
        // The surviving best costs agree between the engines.
        let best = |curve: &[Candidate]| {
            curve
                .iter()
                .filter(|c| c.feasible)
                .map(|c| c.power_mw)
                .fold(f64::INFINITY, f64::min)
        };
        assert_eq!(best(&full.curve).to_bits(), best(&beamed.curve).to_bits());
        // A frame with no capacity prunes everything once fusion cannot
        // hide all the traffic (groups of at most 2 leave ≥1 cross word).
        let arena2 = IntervalArena::build(&ctx, &evaluator, TileCandidates::PowersOfTwo, 24, 2);
        let none = exhaustive(&ctx, &arena2, 24, 2, 2, Some(CommSpec::new(1, 0)));
        assert!(none.curve.is_empty());
        assert!(none.stats.groupings_comm_pruned > 0);
        let none_beam = beam(&ctx, &arena2, 24, 2, 25, 2, Some(CommSpec::new(1, 0)));
        assert!(none_beam.curve.is_empty());
        assert!(none_beam.stats.groupings_comm_pruned > 0);
    }

    #[test]
    fn shared_eval_cache_serves_repeat_arena_builds() {
        let graph = chain(&[60, 100, 5, 380], &[16, 16, 4, 32]);
        let (ctx, evaluator) = context_and_evaluator(&graph);
        let mut cache = EvalCache::default();
        let first = IntervalArena::build_with_cache(
            &ctx,
            &evaluator,
            TileCandidates::PowersOfTwo,
            24,
            4,
            &mut cache,
        );
        let hits_after_first = cache.hits();
        let keys_after_first = cache.distinct_keys();
        let second = IntervalArena::build_with_cache(
            &ctx,
            &evaluator,
            TileCandidates::PowersOfTwo,
            24,
            4,
            &mut cache,
        );
        // A rebuild answers every option from the cache and evaluates
        // nothing new.
        assert_eq!(
            cache.hits(),
            hits_after_first + second.option_count() as u64
        );
        assert_eq!(cache.distinct_keys(), keys_after_first);
        for start in 0..ctx.n {
            for end in 0..=ctx.n {
                let a = first.options(start, end);
                let b = second.options(start, end);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.tiles, y.tiles);
                    assert_eq!(x.power.to_bits(), y.power.to_bits());
                    assert_eq!(x.feasible, y.feasible);
                }
            }
        }
        // A power-of-two budget offers fewer tile counts per interval but
        // every one of them is a key the cache already holds.
        let before = cache.hits();
        let smaller = IntervalArena::build_with_cache(
            &ctx,
            &evaluator,
            TileCandidates::PowersOfTwo,
            8,
            4,
            &mut cache,
        );
        assert_eq!(cache.hits(), before + smaller.option_count() as u64);
        assert_eq!(cache.distinct_keys(), keys_after_first);
    }

    #[test]
    fn dead_groupings_contribute_nothing() {
        // 3 singleton groups but a budget of 2: no grouping fits, except
        // via fusion.
        let graph = chain(&[10, 10, 10], &[4, 4, 4]);
        let (ctx, evaluator) = context_and_evaluator(&graph);
        let arena = IntervalArena::build(&ctx, &evaluator, TileCandidates::All, 2, 1);
        let mut scratch = DpScratch::new(2, 3);
        let groups: Grouping = vec![(0, 1), (1, 2), (2, 3)];
        let transitions = grouping_dp(&groups, &arena, 2, &mut scratch);
        assert!(transitions > 0, "partial prefixes are still explored");
        assert_eq!(scratch.reach_max, 0, "no complete assignment fits");
        assert!(scratch.cell(1).is_none());
        assert!(scratch.cell(2).is_none());
    }
}
