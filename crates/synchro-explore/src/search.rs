//! The search engines: exhaustive enumeration of contiguous groupings
//! (each solved exactly by a per-tile-count dynamic program) for small
//! graphs, and a dominance-pruned beam search over grouping prefixes for
//! large ones.  Both fan their work across a `std::thread` worker pool.

use std::time::Instant;

use crate::model::{Evaluator, GraphContext};
use crate::space::{grouping_from_mask, mask_respects_group_size, Grouping, TileCandidates};

/// Counters describing one search run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Candidate (partial) mappings examined: one per dynamic-program or
    /// beam transition, i.e. one per tile-allocation decision evaluated.
    pub mappings_evaluated: u64,
    /// Actor→column groupings examined.
    pub groupings_examined: u64,
    /// Partial solutions discarded by dominance pruning or the beam cap
    /// (zero for the exhaustive engine, which prunes nothing).
    pub states_pruned: u64,
    /// Worker threads the search fanned out across.
    pub threads_used: usize,
    /// Wall-clock search time in seconds.
    pub elapsed_seconds: f64,
}

/// One search result: a grouping plus a tile allocation and its evaluated
/// cost.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub groups: Grouping,
    pub allocation: Vec<u32>,
    pub power_mw: f64,
    pub feasible: bool,
}

/// The raw outcome of a search: for each reachable exact tile count, the
/// best candidate found (the exhaustive engine covers every reachable
/// count; the beam engine only retains non-dominated counts).
pub(crate) struct SearchOutcome {
    pub curve: Vec<Candidate>,
    pub stats: SearchStats,
}

/// Per-interval candidate options: `(tiles, power, feasible)` for every
/// candidate tile count of the contiguous actor group `start..end`.
type IntervalOptions = Vec<(u32, f64, bool)>;

/// Pre-evaluate every contiguous interval the search may use as one
/// column group.  Interval costs are independent of the surrounding
/// grouping, so this table is computed once and shared by every engine.
fn interval_table(
    ctx: &GraphContext,
    evaluator: &Evaluator,
    candidates: TileCandidates,
    budget: u32,
    max_group_size: usize,
) -> Vec<Vec<Option<IntervalOptions>>> {
    let n = ctx.n;
    let mut table: Vec<Vec<Option<IntervalOptions>>> = vec![vec![None; n + 1]; n];
    for (start, row) in table.iter_mut().enumerate() {
        let end_limit = (start + max_group_size).min(n);
        for (end, slot) in row
            .iter_mut()
            .enumerate()
            .take(end_limit + 1)
            .skip(start + 1)
        {
            let work = ctx.group_work(start, end);
            let cap = ctx.group_cap(start, end);
            let tokens = ctx.boundary_tokens(start, end);
            let options = candidates
                .for_group(cap, budget)
                .into_iter()
                .map(|tiles| {
                    let col = evaluator.evaluate_column(work, cap, tokens, tiles);
                    (tiles, col.power.total_mw(), col.within_envelope)
                })
                .collect();
            *slot = Some(options);
        }
    }
    table
}

fn better(power: f64, feasible: bool, than_power: f64, than_feasible: bool) -> bool {
    // Feasible solutions always beat infeasible ones at the same tile
    // count; otherwise strictly lower power wins (ties keep the
    // incumbent, which makes the merge order-deterministic).
    match (feasible, than_feasible) {
        (true, false) => true,
        (false, true) => false,
        _ => power < than_power,
    }
}

/// Solve one grouping exactly: a knapsack-style dynamic program over the
/// groups that records, for every exact total tile count, the cheapest
/// allocation.  Returns `dp[tiles] = (power, feasible, allocation)`.
fn grouping_curve(
    groups: &Grouping,
    table: &[Vec<Option<IntervalOptions>>],
    budget: u32,
    evaluated: &mut u64,
) -> Vec<Option<(f64, bool, Vec<u32>)>> {
    let mut dp: Vec<Option<(f64, bool, Vec<u32>)>> = vec![None; budget as usize + 1];
    dp[0] = Some((0.0, true, Vec::new()));
    for &(start, end) in groups {
        let options = table[start][end].as_ref().expect("interval inside table");
        let mut next: Vec<Option<(f64, bool, Vec<u32>)>> = vec![None; budget as usize + 1];
        for (used, cell) in dp.iter().enumerate() {
            let Some((power, feasible, allocation)) = cell else {
                continue;
            };
            for &(tiles, column_power, column_feasible) in options {
                let total = used + tiles as usize;
                if total > budget as usize {
                    break;
                }
                *evaluated += 1;
                let new_power = power + column_power;
                let new_feasible = *feasible && column_feasible;
                let slot = &mut next[total];
                let improves = match slot {
                    Some((p, f, _)) => better(new_power, new_feasible, *p, *f),
                    None => true,
                };
                if improves {
                    let mut alloc = allocation.clone();
                    alloc.push(tiles);
                    *slot = Some((new_power, new_feasible, alloc));
                }
            }
        }
        dp = next;
    }
    dp
}

/// Exhaustively enumerate every contiguous grouping (up to
/// `max_group_size` actors per group) and solve each exactly, fanning the
/// groupings across `threads` workers.  The merged curve holds, for every
/// reachable exact tile count, the globally cheapest candidate.
pub(crate) fn exhaustive(
    ctx: &GraphContext,
    evaluator: &Evaluator,
    candidates: TileCandidates,
    budget: u32,
    max_group_size: usize,
    threads: usize,
) -> SearchOutcome {
    let started = Instant::now();
    let n = ctx.n;
    let table = interval_table(ctx, evaluator, candidates, budget, max_group_size);

    // Every grouping to solve.  The all-singleton grouping (one actor per
    // column, the structure of every Table 4 mapping) is built directly;
    // larger group sizes enumerate partition bitmasks.
    let groupings: Vec<Grouping> = if max_group_size <= 1 {
        vec![(0..n).map(|i| (i, i + 1)).collect()]
    } else {
        let all = 1u64 << (n - 1);
        (0..all)
            .filter(|&m| mask_respects_group_size(n, m, max_group_size))
            .map(|m| grouping_from_mask(n, m))
            .collect()
    };

    let workers = threads.max(1).min(groupings.len().max(1));
    let chunk_size = groupings.len().div_ceil(workers);
    let results: Vec<(Vec<Option<Candidate>>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = groupings
            .chunks(chunk_size.max(1))
            .map(|chunk| {
                let table = &table;
                scope.spawn(move || {
                    let mut local: Vec<Option<Candidate>> = vec![None; budget as usize + 1];
                    let mut evaluated = 0u64;
                    for groups in chunk {
                        let dp = grouping_curve(groups, table, budget, &mut evaluated);
                        for (tiles, cell) in dp.iter().enumerate().skip(1) {
                            let Some((power, feasible, allocation)) = cell else {
                                continue;
                            };
                            let slot = &mut local[tiles];
                            let improves = match slot {
                                Some(c) => better(*power, *feasible, c.power_mw, c.feasible),
                                None => true,
                            };
                            if improves {
                                *slot = Some(Candidate {
                                    groups: groups.clone(),
                                    allocation: allocation.clone(),
                                    power_mw: *power,
                                    feasible: *feasible,
                                });
                            }
                        }
                    }
                    (local, evaluated)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut merged: Vec<Option<Candidate>> = vec![None; budget as usize + 1];
    let mut evaluated = 0u64;
    for (local, count) in results {
        evaluated += count;
        for (slot, candidate) in merged.iter_mut().zip(local) {
            let Some(candidate) = candidate else { continue };
            let improves = match slot {
                Some(c) => better(
                    candidate.power_mw,
                    candidate.feasible,
                    c.power_mw,
                    c.feasible,
                ),
                None => true,
            };
            if improves {
                *slot = Some(candidate);
            }
        }
    }

    SearchOutcome {
        curve: merged.into_iter().flatten().collect(),
        stats: SearchStats {
            mappings_evaluated: evaluated,
            groupings_examined: groupings.len() as u64,
            states_pruned: 0,
            threads_used: workers,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        },
    }
}

/// One partial solution of the beam search: the first `boundary` actors
/// grouped and allocated.
#[derive(Debug, Clone)]
struct Partial {
    tiles: u32,
    power: f64,
    feasible: bool,
    groups: Grouping,
    allocation: Vec<u32>,
}

/// Dominance-prune a layer: keep, per exact tile count, the cheapest
/// partial, then drop any partial dominated by a cheaper-or-equal partial
/// with fewer tiles.  Pruning across tile counts is sound for the best
/// solution and the Pareto frontier because a prefix with fewer tiles and
/// less power can absorb any completion its competitor can.
///
/// Two staircases survive: partials improving on every earlier partial
/// overall, and feasible partials improving on every earlier *feasible*
/// partial (so the cheapest feasible prefix is never shadowed by a
/// cheaper infeasible one).  Each staircase is capped at `width` entries
/// independently — a staircase holds at most one partial per tile count,
/// so `width ≥ budget + 1` never drops anything and the beam stays exact.
fn prune_layer(layer: &mut Vec<Partial>, width: usize, pruned: &mut u64) {
    layer.sort_by(|a, b| {
        a.tiles
            .cmp(&b.tiles)
            .then(a.power.partial_cmp(&b.power).expect("finite power"))
    });
    let before = layer.len();
    let mut any_staircase: Vec<Partial> = Vec::new();
    let mut feasible_staircase: Vec<Partial> = Vec::new();
    let mut best_any = f64::INFINITY;
    let mut best_feasible = f64::INFINITY;
    for partial in layer.drain(..) {
        let improves_any = partial.power < best_any;
        let improves_feasible = partial.feasible && partial.power < best_feasible;
        if improves_any {
            best_any = partial.power;
        }
        if improves_feasible {
            best_feasible = partial.power;
        }
        // A feasible partial on both staircases is stored once, on the
        // feasible one (it survives the same cap either way: both
        // staircases are strictly power-descending in tile order).
        if improves_feasible {
            feasible_staircase.push(partial);
        } else if improves_any {
            any_staircase.push(partial);
        }
    }
    // Powers are strictly descending along each staircase; keep the
    // lowest-power tail of each.
    for staircase in [&mut any_staircase, &mut feasible_staircase] {
        if staircase.len() > width {
            staircase.drain(..staircase.len() - width);
        }
    }
    let mut kept = any_staircase;
    kept.append(&mut feasible_staircase);
    kept.sort_by(|a, b| {
        a.tiles
            .cmp(&b.tiles)
            .then(a.power.partial_cmp(&b.power).expect("finite power"))
    });
    *pruned += (before - kept.len()) as u64;
    *layer = kept;
}

/// Beam search over grouping prefixes with dominance pruning: layer `i`
/// holds partial solutions covering actors `0..i`; each step extends a
/// layer with every possible next group, pruning each target layer to at
/// most `width` non-dominated partials.  With `width ≥ budget + 1` the
/// engine is exact for the best solution and the frontier.  Group-option
/// evaluation fans out across `threads` workers per layer.
pub(crate) fn beam(
    ctx: &GraphContext,
    evaluator: &Evaluator,
    candidates: TileCandidates,
    budget: u32,
    max_group_size: usize,
    width: usize,
    threads: usize,
) -> SearchOutcome {
    let started = Instant::now();
    let n = ctx.n;
    let width = width.max(1);
    let table = interval_table(ctx, evaluator, candidates, budget, max_group_size);

    let mut layers: Vec<Vec<Partial>> = vec![Vec::new(); n + 1];
    layers[0].push(Partial {
        tiles: 0,
        power: 0.0,
        feasible: true,
        groups: Vec::new(),
        allocation: Vec::new(),
    });
    let mut evaluated = 0u64;
    let mut groupings = 0u64;
    let mut pruned = 0u64;
    let workers = threads.max(1);

    for i in 0..n {
        if i > 0 {
            prune_layer(&mut layers[i], width, &mut pruned);
        }
        if layers[i].is_empty() {
            continue;
        }
        let ends: Vec<usize> = (i + 1..=(i + max_group_size).min(n)).collect();
        let source = std::mem::take(&mut layers[i]);
        // Fan the (end, partial) expansions across the worker pool.
        let chunk_size = ends.len().div_ceil(workers).max(1);
        let expansions: Vec<(usize, Vec<Partial>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = ends
                .chunks(chunk_size)
                .map(|chunk| {
                    let source = &source;
                    let table = &table;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for &end in chunk {
                            let options = table[i][end].as_ref().expect("interval inside table");
                            let mut next = Vec::new();
                            let mut count = 0u64;
                            for partial in source {
                                for &(tiles, power, feasible) in options {
                                    let total = partial.tiles + tiles;
                                    if total > budget {
                                        break;
                                    }
                                    count += 1;
                                    let mut groups = partial.groups.clone();
                                    groups.push((i, end));
                                    let mut allocation = partial.allocation.clone();
                                    allocation.push(tiles);
                                    next.push(Partial {
                                        tiles: total,
                                        power: partial.power + power,
                                        feasible: partial.feasible && feasible,
                                        groups,
                                        allocation,
                                    });
                                }
                            }
                            out.push((end, next, count));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for (end, partials, count) in expansions {
            evaluated += count;
            if end == n {
                groupings += partials.len() as u64;
            }
            layers[end].extend(partials);
        }
    }

    prune_layer(&mut layers[n], width, &mut pruned);
    let curve = layers[n]
        .iter()
        .map(|p| Candidate {
            groups: p.groups.clone(),
            allocation: p.allocation.clone(),
            power_mw: p.power,
            feasible: p.feasible,
        })
        .collect();
    SearchOutcome {
        curve,
        stats: SearchStats {
            mappings_evaluated: evaluated,
            groupings_examined: groupings,
            states_pruned: pruned,
            threads_used: workers,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        },
    }
}
