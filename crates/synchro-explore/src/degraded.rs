//! Degraded-mode remapping: re-search the design space with failed
//! resources excluded, walking the iteration rate down a rational
//! ladder until a feasible mapping exists.
//!
//! Synchroscalar's static schedules have no runtime recovery path — a
//! dead column or severed bridge lane stalls the run (see
//! `synchroscalar::mapper`).  Recovery is therefore a *recompilation*
//! problem: shrink the resource envelope by what was lost and re-run
//! the explorer.  When the full iteration rate no longer fits, the
//! application degrades gracefully instead of failing outright: the
//! rate walks down [`RATE_LADDER`] — small rational fractions of the
//! full rate, so every re-rated column clock stays rationally related
//! to the reference clock and the chip's divider lattice (the paper's
//! rationally-related-clocks invariant survives degradation) — until a
//! feasible mapping appears.
//!
//! [`explore_degraded`] produces one [`DegradationCurve`] over a list
//! of [`ResourceLoss`]es for a single chip; [`explore_degraded_board`]
//! is the board-level analogue (per-chip tile losses and bridge
//! capacity losses, falling back to fewer chips when the partitioner
//! can).  Because the ladder is walked from the top, a full-rate remap
//! is found whenever one exists.

use crate::model::{EvalCache, Evaluator, GraphContext};
use crate::{
    explore_board, plan_search, run_search, search, BoardSearch, CommSpec, ExplorerConfig,
    ExplorerError,
};
use synchro_sdf::SdfGraph;

/// The rational rate ladder degraded-mode re-exploration walks, from
/// full rate down.  Each entry is `(numerator, denominator)` of the
/// fraction of the original iteration rate attempted; small rationals
/// keep the re-rated clocks gcd-consistent with the reference clock's
/// divider lattice.
pub const RATE_LADDER: [(u64, u64); 9] = [
    (1, 1),
    (7, 8),
    (3, 4),
    (2, 3),
    (1, 2),
    (1, 3),
    (1, 4),
    (1, 6),
    (1, 8),
];

/// One unit of failed hardware to re-explore without: tiles (a dead
/// column's allocation), horizontal-bus splits (a dead bus wire), or —
/// on a board — bridge capacity (a severed or degraded lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceLoss {
    /// Human-readable description of the failure (e.g. `"column 3
    /// failed (16 tiles)"`) — carried into the curve point verbatim.
    pub label: String,
    /// Tiles removed from the budget (a failed column removes its whole
    /// allocation; on a board this shrinks *every* chip's budget, the
    /// conservative single-budget model [`explore_board`] searches
    /// under).
    pub tiles_lost: u32,
    /// Horizontal-bus splits removed from the communication frame
    /// (ignored when the configuration has no comm prune to enforce
    /// it against).
    pub splits_lost: u32,
    /// Board only: overriding cap on inter-chip words per iteration
    /// (`Some(0)` = bridge direction severed).  Ignored by the
    /// single-chip [`explore_degraded`].
    pub bridge_capacity: Option<u64>,
}

impl ResourceLoss {
    /// A failed column taking `tiles` tiles with it.
    pub fn column(label: impl Into<String>, tiles: u32) -> Self {
        ResourceLoss {
            label: label.into(),
            tiles_lost: tiles,
            splits_lost: 0,
            bridge_capacity: None,
        }
    }

    /// `splits` horizontal-bus splits lost.
    pub fn bus_splits(label: impl Into<String>, splits: u32) -> Self {
        ResourceLoss {
            label: label.into(),
            tiles_lost: 0,
            splits_lost: splits,
            bridge_capacity: None,
        }
    }

    /// Bridge capacity reduced to `remaining_words` words per iteration
    /// (0 = severed).
    pub fn bridge(label: impl Into<String>, remaining_words: u64) -> Self {
        ResourceLoss {
            label: label.into(),
            tiles_lost: 0,
            splits_lost: 0,
            bridge_capacity: Some(remaining_words),
        }
    }

    /// Add a tile loss to this loss (compound failures).
    #[must_use]
    pub fn with_tiles_lost(mut self, tiles: u32) -> Self {
        self.tiles_lost = tiles;
        self
    }

    /// Add a split loss to this loss (compound failures).
    #[must_use]
    pub fn with_splits_lost(mut self, splits: u32) -> Self {
        self.splits_lost = splits;
        self
    }
}

/// The outcome of re-exploring under one [`ResourceLoss`]: the highest
/// ladder rate at which a feasible mapping exists, and its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPoint {
    /// The loss's label, verbatim.
    pub label: String,
    /// Tiles the loss removed from the budget.
    pub tiles_lost: u32,
    /// Bus splits the loss removed from the frame.
    pub splits_lost: u32,
    /// Numerator of the achieved rate fraction (0 when infeasible at
    /// every ladder rate).
    pub rate_num: u64,
    /// Denominator of the achieved rate fraction (1 when infeasible).
    pub rate_den: u64,
    /// The achieved iteration rate (Hz); 0.0 when infeasible at every
    /// ladder rate.
    pub rate_hz: f64,
    /// Total power of the degraded mapping (mW); 0.0 when infeasible.
    pub power_mw: f64,
    /// Tiles the degraded mapping uses; 0 when infeasible.
    pub tiles_used: u32,
    /// Whether any ladder rate produced a feasible mapping.
    pub feasible: bool,
}

impl DegradationPoint {
    /// Is this a full-rate remap (no throughput lost)?
    pub fn is_full_rate(&self) -> bool {
        self.feasible && self.rate_num == self.rate_den
    }

    fn infeasible(loss: &ResourceLoss) -> Self {
        DegradationPoint {
            label: loss.label.clone(),
            tiles_lost: loss.tiles_lost,
            splits_lost: loss.splits_lost,
            rate_num: 0,
            rate_den: 1,
            rate_hz: 0.0,
            power_mw: 0.0,
            tiles_used: 0,
            feasible: false,
        }
    }
}

/// A degraded-mode curve: one [`DegradationPoint`] per attempted loss,
/// in the order the losses were passed.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationCurve {
    /// The undegraded target rate every point's fraction refers to.
    pub full_rate_hz: f64,
    /// One point per loss, in input order.
    pub points: Vec<DegradationPoint>,
}

impl DegradationCurve {
    /// Is the achieved rate non-increasing across the points in order?
    /// Callers passing losses sorted by increasing severity get a
    /// sanity check that more damage never buys more throughput
    /// (infeasible points count as rate 0).
    pub fn is_monotone(&self) -> bool {
        self.points.windows(2).all(|w| w[1].rate_hz <= w[0].rate_hz)
    }

    /// The points that found no feasible rate at all.
    pub fn infeasible_losses(&self) -> Vec<&DegradationPoint> {
        self.points.iter().filter(|p| !p.feasible).collect()
    }
}

/// `config` shrunk by `loss` and re-rated to `num/den` of the full
/// rate.  The comm frame loses `splits_lost` splits (floor 0 — a frame
/// with no splits left prunes every grouping with cross-column
/// traffic), and its period scales by `den/num`: the bus clock is
/// unchanged, so a slower iteration earns proportionally more bus
/// cycles per iteration.  Board bounds are handled by the board
/// walker, not here.
fn degraded_config(
    config: &ExplorerConfig,
    loss: &ResourceLoss,
    (num, den): (u64, u64),
) -> ExplorerConfig {
    let comm = config.comm.map(|c| CommSpec {
        splits: c.splits.saturating_sub(loss.splits_lost),
        period: c.period.saturating_mul(den) / num.max(1),
        ..c
    });
    ExplorerConfig {
        iteration_rate_hz: config.iteration_rate_hz * num as f64 / den as f64,
        tile_budget: config.tile_budget.saturating_sub(loss.tiles_lost),
        comm,
        ..config.clone()
    }
}

fn point_for(
    loss: &ResourceLoss,
    (num, den): (u64, u64),
    rate_hz: f64,
    power_mw: f64,
    tiles_used: u32,
) -> DegradationPoint {
    DegradationPoint {
        label: loss.label.clone(),
        tiles_lost: loss.tiles_lost,
        splits_lost: loss.splits_lost,
        rate_num: num,
        rate_den: den,
        rate_hz,
        power_mw,
        tiles_used,
        feasible: true,
    }
}

/// Re-explore `graph` under each loss in `losses`, walking
/// [`RATE_LADDER`] from full rate down until a feasible mapping exists
/// (so a full-rate remap is found whenever one exists), and return the
/// per-loss [`DegradationCurve`].
///
/// The graph is analysed once; per ladder rate one [`Evaluator`] and
/// one shared `EvalCache` price operating points across every loss
/// still unresolved at that rate (the cache is rate-dependent, so it
/// cannot be shared across rungs).  Losses that stay infeasible at
/// every rung produce `feasible: false` points with rate 0 rather than
/// an error.
///
/// # Errors
///
/// Structural errors (unanalysable graphs, invalid configurations)
/// propagate; resource-exhaustion errors
/// ([`ExplorerError::is_resource_exhaustion`]) are what the ladder
/// walks through and never escape.
pub fn explore_degraded(
    graph: &SdfGraph,
    config: &ExplorerConfig,
    losses: &[ResourceLoss],
) -> Result<DegradationCurve, ExplorerError> {
    let ctx = GraphContext::new(graph)?;
    let mut points: Vec<Option<DegradationPoint>> = vec![None; losses.len()];
    for &(num, den) in RATE_LADDER.iter() {
        if points.iter().all(Option::is_some) {
            break;
        }
        let rate_hz = config.iteration_rate_hz * num as f64 / den as f64;
        let evaluator = Evaluator::new(&config.tech, rate_hz, config.efficiency);
        let mut cache = EvalCache::default();
        for (slot, loss) in points.iter_mut().zip(losses) {
            if slot.is_some() {
                continue;
            }
            let swept = degraded_config(config, loss, (num, den));
            let outcome = plan_search(graph, &ctx, &swept).and_then(|plan| {
                let arena = search::IntervalArena::build_with_cache(
                    &ctx,
                    &evaluator,
                    swept.candidates,
                    swept.tile_budget,
                    plan.max_group_size,
                    &mut cache,
                );
                run_search(graph, &swept, &ctx, &evaluator, &arena, &plan, swept.comm)
            });
            match outcome {
                Ok(exploration) if exploration.best.feasible => {
                    *slot = Some(point_for(
                        loss,
                        (num, den),
                        rate_hz,
                        exploration.best.power_mw,
                        exploration.best.total_tiles,
                    ));
                }
                // An infeasible best (envelope violated everywhere) is
                // exhaustion in kind: keep walking the ladder.
                Ok(_) => {}
                Err(e) if e.is_resource_exhaustion() => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(DegradationCurve {
        full_rate_hz: config.iteration_rate_hz,
        points: points
            .into_iter()
            .zip(losses)
            .map(|(p, loss)| p.unwrap_or_else(|| DegradationPoint::infeasible(loss)))
            .collect(),
    })
}

/// Board-level [`explore_degraded`]: each loss shrinks every chip's
/// tile budget by `tiles_lost`, the comm frame by `splits_lost`, and —
/// when [`ResourceLoss::bridge_capacity`] is set — caps the
/// partitioner's inter-chip words per iteration, then re-runs
/// [`explore_board`] down the rate ladder.  A severed bridge
/// (`bridge_capacity: Some(0)`) prunes every multi-chip split, so
/// recovery — if any — comes from squeezing onto fewer chips at a
/// reduced rate.
///
/// # Errors
///
/// As for [`explore_degraded`]; [`ExplorerError::BoardInfeasible`] is
/// exhaustion and is walked through, not returned.
pub fn explore_degraded_board(
    graph: &SdfGraph,
    config: &ExplorerConfig,
    losses: &[ResourceLoss],
) -> Result<DegradationCurve, ExplorerError> {
    let mut points: Vec<Option<DegradationPoint>> = vec![None; losses.len()];
    for &(num, den) in RATE_LADDER.iter() {
        if points.iter().all(Option::is_some) {
            break;
        }
        let rate_hz = config.iteration_rate_hz * num as f64 / den as f64;
        for (slot, loss) in points.iter_mut().zip(losses) {
            if slot.is_some() {
                continue;
            }
            let mut swept = degraded_config(config, loss, (num, den));
            if let Some(cap) = loss.bridge_capacity {
                let board = swept.board.unwrap_or_default();
                let capacity = Some(board.bridge_capacity.map_or(cap, |have| have.min(cap)));
                swept.board = Some(BoardSearch {
                    bridge_capacity: capacity,
                    ..board
                });
            }
            match explore_board(graph, &swept) {
                // `explore_board` only returns partitions feasible on
                // every chip, so a success is a feasible point.
                Ok(exploration) => {
                    *slot = Some(point_for(
                        loss,
                        (num, den),
                        rate_hz,
                        exploration.total_power_mw(),
                        exploration.total_tiles(),
                    ));
                }
                Err(e) if e.is_resource_exhaustion() => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(DegradationCurve {
        full_rate_hz: config.iteration_rate_hz,
        points: points
            .into_iter()
            .zip(losses)
            .map(|(p, loss)| p.unwrap_or_else(|| DegradationPoint::infeasible(loss)))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore;

    /// One actor whose per-tile frequency is `1000 / tiles` MHz at the
    /// full 1 M iterations/s rate (the FO4-20 envelope tops out at
    /// 560 MHz @ the ISCA-2004 1.7 V ceiling, so 2 tiles are needed at
    /// full rate).
    fn hungry_actor() -> SdfGraph {
        let mut g = SdfGraph::new();
        g.add_actor("dsp", 1000, 8);
        g
    }

    /// Two stages with cross traffic, each comfortable at full rate.
    fn chatty_pair() -> SdfGraph {
        let mut g = SdfGraph::new();
        let a = g.add_actor("front", 100, 4);
        let b = g.add_actor("back", 100, 4);
        g.add_edge(a, b, 1, 1, 0).unwrap();
        g
    }

    #[test]
    fn ladder_descends_from_full_rate() {
        assert_eq!(RATE_LADDER[0], (1, 1));
        for w in RATE_LADDER.windows(2) {
            let (an, ad) = w[0];
            let (bn, bd) = w[1];
            assert!(
                an * bd > bn * ad,
                "ladder must be strictly descending: {w:?}"
            );
        }
    }

    #[test]
    fn full_rate_remap_is_found_when_slack_exists() {
        // Budget 8, the mapping needs 2: losing 4 tiles still fits at
        // full rate, and the remap must say so.
        let g = hungry_actor();
        let config = ExplorerConfig::new(1e6, 8).with_threads(1);
        let curve = explore_degraded(&g, &config, &[ResourceLoss::column("4 tiles down", 4)])
            .expect("structural success");
        assert_eq!(curve.points.len(), 1);
        let p = &curve.points[0];
        assert!(p.is_full_rate(), "expected a full-rate remap, got {p:?}");
        assert_eq!(p.rate_hz, 1e6);
        assert!(p.tiles_used >= 2 && p.tiles_used <= 4);
        assert!(p.power_mw > 0.0);
    }

    #[test]
    fn rate_walks_down_when_the_budget_no_longer_reaches_full_rate() {
        // Losing 7 of 8 tiles leaves 1: 1000 MHz at full rate is out of
        // envelope; the ladder lands exactly on (1, 2) → 500 MHz.
        let g = hungry_actor();
        let config = ExplorerConfig::new(1e6, 8).with_threads(1);
        let losses = [
            ResourceLoss::column("1 tile down", 1),
            ResourceLoss::column("7 tiles down", 7),
        ];
        let curve = explore_degraded(&g, &config, &losses).unwrap();
        assert!(curve.points[0].is_full_rate());
        let degraded = &curve.points[1];
        assert!(degraded.feasible);
        assert_eq!((degraded.rate_num, degraded.rate_den), (1, 2));
        assert_eq!(degraded.rate_hz, 5e5);
        assert!(curve.is_monotone());
    }

    #[test]
    fn exhausted_splits_yield_an_honest_infeasible_point() {
        // Two single-actor columns must talk; the only split is gone,
        // so no rate helps — the point must say infeasible, not error.
        let g = chatty_pair();
        let config = ExplorerConfig::new(1e6, 8)
            .single_actor_columns()
            .with_comm(CommSpec::new(1, 8))
            .with_threads(1);
        let curve =
            explore_degraded(&g, &config, &[ResourceLoss::bus_splits("split 0 dead", 1)]).unwrap();
        let p = &curve.points[0];
        assert!(!p.feasible);
        assert_eq!(p.rate_hz, 0.0);
        assert_eq!((p.rate_num, p.rate_den), (0, 1));
        assert!(curve.infeasible_losses().len() == 1);
    }

    #[test]
    fn structural_errors_propagate_instead_of_masquerading_as_points() {
        let empty = SdfGraph::new();
        let config = ExplorerConfig::new(1e6, 8).with_threads(1);
        let err = explore_degraded(&empty, &config, &[ResourceLoss::column("any", 1)])
            .expect_err("empty graph is structural");
        assert!(!err.is_resource_exhaustion(), "got {err:?}");
    }

    #[test]
    fn degraded_points_match_a_direct_exploration_at_the_same_rung() {
        // The walker must be bit-identical to calling `explore` by hand
        // with the shrunk budget at the achieved rate.
        let g = hungry_actor();
        let config = ExplorerConfig::new(1e6, 8).with_threads(1);
        let loss = ResourceLoss::column("6 tiles down", 6);
        let curve = explore_degraded(&g, &config, std::slice::from_ref(&loss)).unwrap();
        let p = &curve.points[0];
        let direct = explore(
            &g,
            &ExplorerConfig {
                iteration_rate_hz: p.rate_hz,
                tile_budget: 2,
                ..config
            },
        )
        .unwrap();
        assert!(direct.best.feasible);
        assert_eq!(direct.best.power_mw.to_bits(), p.power_mw.to_bits());
        assert_eq!(direct.best.total_tiles, p.tiles_used);
    }

    /// Two hungry stages that cannot share one 4-tile chip at full
    /// rate: each needs 4 tiles (500 MHz per tile), so the partitioner
    /// must split them across two chips.
    fn board_pair() -> SdfGraph {
        let mut g = SdfGraph::new();
        let a = g.add_actor("front", 2000, 4);
        let b = g.add_actor("back", 2000, 4);
        g.add_edge(a, b, 1, 1, 0).unwrap();
        g
    }

    fn board_config() -> ExplorerConfig {
        ExplorerConfig::new(1e6, 4)
            .single_actor_columns()
            .with_board(BoardSearch::new(2))
            .with_threads(1)
    }

    #[test]
    fn board_tile_losses_walk_the_rate_down_per_chip() {
        let g = board_pair();
        let curve = explore_degraded_board(
            &g,
            &board_config(),
            &[ResourceLoss::column("2 tiles down on every chip", 2)],
        )
        .unwrap();
        // 2 tiles per chip sustain 600 MHz per tile only at half rate.
        let p = &curve.points[0];
        assert!(p.feasible);
        assert_eq!((p.rate_num, p.rate_den), (1, 2));
    }

    #[test]
    fn severed_bridges_fall_back_to_fewer_chips_at_reduced_rate() {
        let g = board_pair();
        let curve = explore_degraded_board(
            &g,
            &board_config(),
            &[ResourceLoss::bridge("bridge 0→1 severed", 0)],
        )
        .unwrap();
        // With the bridge gone every 2-chip split is pruned; both
        // actors squeeze onto one 4-tile chip at half rate.
        let p = &curve.points[0];
        assert!(p.feasible, "got {p:?}");
        assert_eq!((p.rate_num, p.rate_den), (1, 2));
        assert_eq!(p.tiles_used, 4);
        assert!(curve.is_monotone());
    }
}
