//! The explorer's analytic cost model: graph-derived work and traffic per
//! candidate column group, and the frequency → voltage → power evaluation
//! of one group at one tile count.
//!
//! The model mirrors the paper's methodology steps 6–9 exactly as the
//! hand-built pipeline applies them: the repetition vector fixes each
//! group's cycles per graph iteration, the tile count divides that work
//! into a per-tile frequency, the Figure 5 VF curve picks the minimum
//! quantised supply able to sustain it, and the `synchro-power` models
//! roll dynamic tile power, column-bus interconnect power and leakage
//! into a per-column total.

use std::collections::HashMap;

use synchro_power::{
    ColumnActivity, ColumnPower, InterconnectModel, LeakageModel, Technology, TilePowerModel,
    VfCurve,
};
use synchro_sdf::{SdfError, SdfGraph};

/// Static per-graph analysis shared by every candidate evaluation: the
/// repetition vector, per-actor work, parallelism caps, and per-edge
/// token traffic.
#[derive(Debug, Clone)]
pub(crate) struct GraphContext {
    /// Actors in the graph.
    pub n: usize,
    /// Prefix sums of per-actor work (cycles per graph iteration), so any
    /// contiguous group's work is one subtraction.
    work_prefix: Vec<u64>,
    /// Per-actor parallelism caps.
    caps: Vec<u32>,
    /// Edge endpoints (actor indices).
    edges: Vec<(usize, usize)>,
    /// Tokens crossing each edge per graph iteration.
    tokens: Vec<u64>,
}

impl GraphContext {
    /// Analyse `graph`; fails on inconsistent or deadlocking graphs (the
    /// schedule check guarantees any mapping the explorer returns is
    /// actually executable).
    pub fn new(graph: &SdfGraph) -> Result<Self, SdfError> {
        let reps = graph.repetition_vector()?;
        graph.schedule()?;
        let tokens = graph.tokens_per_iteration()?;
        let mut work_prefix = Vec::with_capacity(graph.actors().len() + 1);
        work_prefix.push(0u64);
        for (actor, &rep) in graph.actors().iter().zip(&reps) {
            let w = actor.cycles_per_firing.saturating_mul(rep);
            work_prefix.push(work_prefix.last().unwrap().saturating_add(w));
        }
        Ok(GraphContext {
            n: graph.actors().len(),
            work_prefix,
            caps: graph
                .actors()
                .iter()
                .map(|a| a.max_parallel_tiles)
                .collect(),
            edges: graph.edges().iter().map(|e| (e.from.0, e.to.0)).collect(),
            tokens,
        })
    }

    /// Cycles per graph iteration of the contiguous actor group
    /// `start..end`.
    pub fn group_work(&self, start: usize, end: usize) -> u64 {
        self.work_prefix[end] - self.work_prefix[start]
    }

    /// The parallelism cap of a group: the smallest member cap, since a
    /// fused SIMD column time-multiplexes every member across the same
    /// tiles.
    pub fn group_cap(&self, start: usize, end: usize) -> u32 {
        self.caps[start..end].iter().copied().min().unwrap_or(1)
    }

    /// Tokens per graph iteration crossing the group's boundary (edges
    /// with exactly one endpoint inside `start..end`) — the traffic the
    /// group's column bus must stage and distribute.
    pub fn boundary_tokens(&self, start: usize, end: usize) -> u64 {
        let inside = |a: usize| a >= start && a < end;
        self.edges
            .iter()
            .zip(&self.tokens)
            .filter(|((from, to), _)| inside(*from) != inside(*to))
            .map(|(_, &t)| t)
            .sum()
    }

    /// Total words per graph iteration crossing *any* column boundary of
    /// a complete contiguous grouping — the demand the horizontal bus's
    /// TDM frame must absorb.  `groups` must tile `0..n` in order, so
    /// membership is a binary search over group starts.
    pub fn grouping_cross_words(&self, groups: &[(usize, usize)]) -> u64 {
        let group_of = |actor: usize| groups.partition_point(|&(start, _)| start <= actor) - 1;
        self.edges
            .iter()
            .zip(&self.tokens)
            .filter(|((from, to), _)| group_of(*from) != group_of(*to))
            .map(|(_, &t)| t)
            .sum()
    }

    /// The cross-word contribution a contiguous grouping *gains* when the
    /// group `start..end` is appended: the tokens of every edge whose
    /// lower endpoint lands in the group while its upper endpoint lies
    /// beyond it.  Each crossing edge of a complete grouping is counted
    /// exactly once — at the group containing its lower endpoint — so
    /// summing this over a grouping's groups equals
    /// [`GraphContext::grouping_cross_words`].  The beam engine tracks
    /// cross words per partial with it (the increment depends only on the
    /// new group, never on how the prefix was grouped).
    pub fn group_cross_out(&self, start: usize, end: usize) -> u64 {
        self.edges
            .iter()
            .zip(&self.tokens)
            .filter(|((from, to), _)| {
                let lo = (*from).min(*to);
                let hi = (*from).max(*to);
                lo >= start && lo < end && hi >= end
            })
            .map(|(_, &t)| t)
            .sum()
    }
}

/// The operating point and power of one candidate column group at one
/// tile count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnEval {
    /// Tiles assigned to the group.
    pub tiles: u32,
    /// Required per-tile frequency (MHz).
    pub frequency_mhz: f64,
    /// Minimum quantised supply voltage for that frequency (extrapolated
    /// beyond the envelope when the frequency is unreachable).
    pub voltage: f64,
    /// Whether the operating point fits the technology's supply envelope.
    pub within_envelope: bool,
    /// Power breakdown at the operating point.
    pub power: ColumnPower,
}

/// Evaluates candidate column groups under one technology and iteration
/// rate.
#[derive(Debug, Clone)]
pub(crate) struct Evaluator {
    tech: Technology,
    curve: VfCurve,
    tile_model: TilePowerModel,
    bus_model: InterconnectModel,
    leakage_model: LeakageModel,
    rate_hz: f64,
    efficiency: f64,
}

impl Evaluator {
    pub fn new(tech: &Technology, rate_hz: f64, efficiency: f64) -> Self {
        Evaluator {
            curve: VfCurve::fo4_20(tech),
            tile_model: TilePowerModel::new(tech),
            bus_model: InterconnectModel::new(tech),
            leakage_model: LeakageModel::new(tech),
            tech: tech.clone(),
            rate_hz,
            efficiency: efficiency.clamp(0.01, 1.0),
        }
    }

    /// Evaluate a group with `work` cycles per iteration, parallelism cap
    /// `cap` and `boundary_tokens` words of boundary traffic per
    /// iteration, placed on `tiles` tiles.
    ///
    /// Tiles beyond the cap sit idle: they stop reducing the frequency
    /// and stop receiving token distributions, but keep leaking — exactly
    /// the diminishing-returns shape of the paper's Figure 7.  Boundary
    /// tokens are staged across the group's active tiles, so bus traffic
    /// grows with the parallel width (the communication overhead the
    /// paper identifies).
    pub fn evaluate_column(
        &self,
        work: u64,
        cap: u32,
        boundary_tokens: u64,
        tiles: u32,
    ) -> ColumnEval {
        let active = tiles.clamp(1, cap);
        let effective = f64::from(active) * self.efficiency;
        let frequency_mhz = work as f64 * self.rate_hz / effective / 1e6;
        let (voltage, within_envelope) =
            self.curve.voltage_for_frequency_extrapolated(frequency_mhz);
        self.finish_eval(
            cap,
            boundary_tokens,
            tiles,
            frequency_mhz,
            voltage,
            within_envelope,
        )
    }

    /// Re-price an already-evaluated group at an externally imposed
    /// supply voltage (the single-voltage policy: every column runs at
    /// the chip-wide maximum required voltage).  The frequency
    /// requirement is unchanged; only the power scales with the higher
    /// supply.  `within_envelope` keeps the group's own reachability
    /// verdict — a shared voltage can only be at least the group's
    /// minimum, which `voltage.max(..)` also enforces.
    pub fn reprice_at_voltage(
        &self,
        base: &ColumnEval,
        cap: u32,
        boundary_tokens: u64,
        voltage: f64,
    ) -> ColumnEval {
        self.finish_eval(
            cap,
            boundary_tokens,
            base.tiles,
            base.frequency_mhz,
            voltage.max(base.voltage),
            base.within_envelope,
        )
    }

    fn finish_eval(
        &self,
        cap: u32,
        boundary_tokens: u64,
        tiles: u32,
        frequency_mhz: f64,
        voltage: f64,
        within_envelope: bool,
    ) -> ColumnEval {
        let active = tiles.clamp(1, cap);
        let bus_words_per_second = boundary_tokens as f64 * self.rate_hz * f64::from(active);
        let activity = ColumnActivity {
            tiles,
            frequency_mhz,
            voltage,
            bus_words_per_second,
            bus_length_mm: self.tech.column_bus_length_mm,
        };
        let power = ColumnPower::estimate_with(
            &self.tile_model,
            &self.bus_model,
            &self.leakage_model,
            &self.tech,
            &activity,
        );
        ColumnEval {
            tiles,
            frequency_mhz,
            voltage,
            within_envelope,
            power,
        }
    }

    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }
}

/// Memoizes the `(total power, within envelope)` outcome of
/// [`Evaluator::evaluate_column`] per `(work, cap, tokens, tiles)` key.
///
/// Distinct intervals of one graph frequently share a key (repeated
/// actors, symmetric caps, zero-traffic boundaries), and the VF lookup
/// plus the three power models dominate the interval-table build; one
/// hash probe replaces them for every repeat.
#[derive(Debug, Default)]
pub(crate) struct EvalCache {
    map: HashMap<(u64, u32, u64, u32), (f64, bool)>,
    hits: u64,
}

impl EvalCache {
    /// The `(total power mW, within envelope)` of one candidate column,
    /// evaluating at most once per distinct key.
    pub fn power_of(
        &mut self,
        evaluator: &Evaluator,
        work: u64,
        cap: u32,
        tokens: u64,
        tiles: u32,
    ) -> (f64, bool) {
        match self.map.entry((work, cap, tokens, tiles)) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.hits += 1;
                *slot.get()
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                let col = evaluator.evaluate_column(work, cap, tokens, tiles);
                *slot.insert((col.power.total_mw(), col.within_envelope))
            }
        }
    }

    /// Lookups answered from the cache instead of the power models.
    #[cfg(test)]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct `(work, cap, tokens, tiles)` keys evaluated so far.
    #[cfg(test)]
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchro_sdf::SdfGraph;

    fn ddc_like() -> SdfGraph {
        let mut g = SdfGraph::new();
        let mixer = g.add_actor("mixer", 15, 16);
        let integ = g.add_actor("integ", 25, 16);
        let comb = g.add_actor("comb", 5, 4);
        g.add_edge(mixer, integ, 1, 1, 0).unwrap();
        g.add_edge(integ, comb, 1, 4, 0).unwrap();
        g
    }

    #[test]
    fn context_work_and_caps_follow_the_repetition_vector() {
        let ctx = GraphContext::new(&ddc_like()).unwrap();
        // reps = (4, 4, 1) → work = (60, 100, 5).
        assert_eq!(ctx.group_work(0, 1), 60);
        assert_eq!(ctx.group_work(1, 2), 100);
        assert_eq!(ctx.group_work(0, 3), 165);
        assert_eq!(ctx.group_cap(0, 2), 16);
        assert_eq!(ctx.group_cap(0, 3), 4);
    }

    #[test]
    fn boundary_tokens_exclude_internal_edges() {
        let ctx = GraphContext::new(&ddc_like()).unwrap();
        // Both edges carry 4 tokens per iteration.
        assert_eq!(ctx.boundary_tokens(0, 1), 4);
        assert_eq!(ctx.boundary_tokens(1, 2), 8);
        assert_eq!(ctx.boundary_tokens(0, 2), 4, "mixer→integ is internal");
        assert_eq!(ctx.boundary_tokens(0, 3), 0, "whole graph has no boundary");
    }

    #[test]
    fn column_eval_reproduces_a_table4_operating_point() {
        // DDC digital mixer: 60 cycles/iter × 16 MHz / 8 tiles = 120 MHz
        // at 0.8 V.
        let eval = Evaluator::new(&Technology::isca2004(), 16e6, 1.0);
        let col = eval.evaluate_column(60, 16, 4, 8);
        assert!((col.frequency_mhz - 120.0).abs() < 1e-9);
        assert!((col.voltage - 0.8).abs() < 1e-9);
        assert!(col.within_envelope);
        assert!(col.power.total_mw() > 0.0);
    }

    #[test]
    fn idle_tiles_beyond_the_cap_leak_but_do_not_speed_up() {
        let eval = Evaluator::new(&Technology::isca2004(), 1e6, 1.0);
        let at_cap = eval.evaluate_column(4000, 4, 10, 4);
        let beyond = eval.evaluate_column(4000, 4, 10, 8);
        assert!((at_cap.frequency_mhz - beyond.frequency_mhz).abs() < 1e-9);
        assert!(beyond.power.leakage_mw > at_cap.power.leakage_mw);
        assert!(beyond.power.total_mw() > at_cap.power.total_mw());
    }

    #[test]
    fn unreachable_frequencies_are_flagged_infeasible() {
        let eval = Evaluator::new(&Technology::isca2004(), 1e6, 1.0);
        let col = eval.evaluate_column(5_000, 1, 0, 1);
        assert!(!col.within_envelope);
        assert!(col.voltage > 1.7);
    }

    #[test]
    fn group_cross_out_deltas_sum_to_grouping_cross_words() {
        let ctx = GraphContext::new(&ddc_like()).unwrap();
        for groups in [
            vec![(0usize, 1usize), (1, 2), (2, 3)],
            vec![(0, 1), (1, 3)],
            vec![(0, 2), (2, 3)],
            vec![(0, 3)],
        ] {
            let total: u64 = groups
                .iter()
                .map(|&(start, end)| ctx.group_cross_out(start, end))
                .sum();
            assert_eq!(
                total,
                ctx.grouping_cross_words(&groups),
                "delta sum must equal the whole-grouping cross words for {groups:?}"
            );
        }
    }

    #[test]
    fn eval_cache_is_bit_identical_to_direct_evaluation() {
        let eval = Evaluator::new(&Technology::isca2004(), 16e6, 1.0);
        let mut cache = EvalCache::default();
        for (work, cap, tokens, tiles) in
            [(60u64, 16u32, 4u64, 8u32), (100, 16, 8, 8), (60, 16, 4, 8)]
        {
            let direct = eval.evaluate_column(work, cap, tokens, tiles);
            let (power, feasible) = cache.power_of(&eval, work, cap, tokens, tiles);
            assert_eq!(power.to_bits(), direct.power.total_mw().to_bits());
            assert_eq!(feasible, direct.within_envelope);
        }
    }
}
