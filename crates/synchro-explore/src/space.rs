//! The search space: candidate tile counts per column group, contiguous
//! actor→column groupings, and SDF clustering (fusing a group of actors
//! into one composite actor so a grouped solution remains a plain
//! `SdfGraph` + `Mapping` that the downstream compiler understands).

use synchro_sdf::{ActorId, Mapping, SdfError, SdfGraph};

/// Which tile counts the explorer considers for a column group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileCandidates {
    /// Powers of two up to (and including) the group's parallelism cap —
    /// the SIMD work-splitting discipline every hand mapping in the paper
    /// follows (all Table 4 tile counts are powers of two).
    #[default]
    PowersOfTwo,
    /// Every tile count from 1 to the parallelism cap.  A larger space
    /// that admits unbalanced splits; mainly useful with the beam engine.
    All,
}

impl TileCandidates {
    /// The tile counts to try for a group with parallelism cap `cap`
    /// under a total budget of `budget` tiles, in ascending order.
    pub fn for_group(self, cap: u32, budget: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_group_into(cap, budget, &mut out);
        out
    }

    /// Like [`TileCandidates::for_group`], but yields into a reusable
    /// scratch buffer (cleared first) so the interval-table build does
    /// not allocate one `Vec` per interval.
    pub fn for_group_into(self, cap: u32, budget: u32, out: &mut Vec<u32>) {
        out.clear();
        let limit = cap.min(budget).max(1);
        match self {
            TileCandidates::All => out.extend(1..=limit),
            TileCandidates::PowersOfTwo => {
                let mut t = 1u32;
                while t <= limit {
                    out.push(t);
                    t = t.saturating_mul(2);
                }
                if !limit.is_power_of_two() {
                    out.push(limit);
                }
            }
        }
    }
}

/// A contiguous actor→column grouping: ranges `start..end` covering
/// `0..n` without gaps.
pub(crate) type Grouping = Vec<(usize, usize)>;

/// Decode a partition bitmask into group ranges.  Bit `k` set means a
/// column boundary after actor `k`.  (The engines decode into scratch
/// buffers via [`grouping_from_mask_into`]; this allocating wrapper
/// remains for tests and the clone-based reference engine.)
#[cfg(test)]
pub(crate) fn grouping_from_mask(n: usize, mask: u64) -> Grouping {
    let mut groups = Vec::new();
    grouping_from_mask_into(n, mask, &mut groups);
    groups
}

/// Like [`grouping_from_mask`], but decodes into a reusable scratch
/// buffer (cleared first) so workers do not allocate per grouping.
pub(crate) fn grouping_from_mask_into(n: usize, mask: u64, groups: &mut Grouping) {
    groups.clear();
    let mut start = 0usize;
    for k in 0..n {
        let boundary = k + 1 == n || mask & (1u64 << k) != 0;
        if boundary {
            groups.push((start, k + 1));
            start = k + 1;
        }
    }
}

/// Does any group of the mask exceed `max_group_size` actors?
pub(crate) fn mask_respects_group_size(n: usize, mask: u64, max_group_size: usize) -> bool {
    let mut run = 0usize;
    for k in 0..n {
        run += 1;
        if run > max_group_size {
            return false;
        }
        let boundary = k + 1 == n || mask & (1u64 << k) != 0;
        if boundary {
            run = 0;
        }
    }
    true
}

/// Fuse each group of a contiguous grouping into one composite actor,
/// producing the clustered graph a grouped solution executes as.
///
/// Each composite actor fires once per graph iteration and carries the
/// group's total cycles per iteration; cross-group edges are re-rated to
/// whole-iteration token batches (initial tokens preserved), and
/// intra-group edges disappear into tile-local memory.  The composite
/// parallelism cap is the smallest member cap, since one SIMD column
/// time-multiplexes every member across the same tiles.
///
/// # Errors
///
/// Propagates rate-consistency errors from the source graph.
pub fn cluster(graph: &SdfGraph, groups: &[(usize, usize)]) -> Result<SdfGraph, SdfError> {
    let reps = graph.repetition_vector()?;
    let mut group_of = vec![usize::MAX; graph.actors().len()];
    for (gi, &(start, end)) in groups.iter().enumerate() {
        for slot in group_of.iter_mut().take(end).skip(start) {
            *slot = gi;
        }
    }
    let mut clustered = SdfGraph::new();
    let ids: Vec<ActorId> = groups
        .iter()
        .map(|&(start, end)| {
            let members = &graph.actors()[start..end];
            let name = members
                .iter()
                .map(|a| a.name.as_str())
                .collect::<Vec<_>>()
                .join("+");
            let cycles: u64 = members
                .iter()
                .zip(&reps[start..end])
                .map(|(a, &r)| a.cycles_per_firing * r)
                .sum();
            let cap = members
                .iter()
                .map(|a| a.max_parallel_tiles)
                .min()
                .unwrap_or(1);
            clustered.add_actor(name, cycles.max(1), cap)
        })
        .collect();
    for edge in graph.edges() {
        let from = group_of[edge.from.0];
        let to = group_of[edge.to.0];
        if from != to {
            let tokens = reps[edge.from.0] * edge.produce;
            clustered.add_edge(ids[from], ids[to], tokens, tokens, edge.initial_tokens)?;
        }
    }
    Ok(clustered)
}

/// Build the `Mapping` that places each group of `groups` (over `graph`,
/// in order) on the corresponding tile count of `allocation`.  For the
/// all-singleton grouping the mapping targets the original graph; for
/// fused groups it targets [`cluster`]'s output.
pub(crate) fn mapping_for(
    groups: &[(usize, usize)],
    allocation: &[u32],
    efficiency: f64,
    singleton: bool,
) -> Mapping {
    let mut mapping = Mapping::new();
    for (gi, (&(start, _end), &tiles)) in groups.iter().zip(allocation).enumerate() {
        let actor = if singleton {
            ActorId(start)
        } else {
            ActorId(gi)
        };
        mapping.place(actor, tiles, efficiency);
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_candidates_respect_cap_and_budget() {
        assert_eq!(
            TileCandidates::PowersOfTwo.for_group(16, 64),
            vec![1, 2, 4, 8, 16]
        );
        assert_eq!(
            TileCandidates::PowersOfTwo.for_group(16, 6),
            vec![1, 2, 4, 6]
        );
        assert_eq!(
            TileCandidates::PowersOfTwo.for_group(12, 64),
            vec![1, 2, 4, 8, 12]
        );
        assert_eq!(TileCandidates::All.for_group(3, 64), vec![1, 2, 3]);
        assert_eq!(TileCandidates::PowersOfTwo.for_group(0, 4), vec![1]);
    }

    #[test]
    fn masks_decode_to_contiguous_groupings() {
        assert_eq!(grouping_from_mask(3, 0b11), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(grouping_from_mask(3, 0b00), vec![(0, 3)]);
        assert_eq!(grouping_from_mask(3, 0b10), vec![(0, 2), (2, 3)]);
        assert!(mask_respects_group_size(3, 0b10, 2));
        assert!(!mask_respects_group_size(3, 0b10, 1));
        assert!(mask_respects_group_size(3, 0b11, 1));
    }

    #[test]
    fn clustering_fuses_work_and_rescales_edges() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 15, 16);
        let b = g.add_actor("b", 25, 16);
        let c = g.add_actor("c", 5, 4);
        g.add_edge(a, b, 1, 1, 0).unwrap();
        g.add_edge(b, c, 1, 4, 0).unwrap();
        // reps = (4, 4, 1); fuse a+b.
        let clustered = cluster(&g, &[(0, 2), (2, 3)]).unwrap();
        assert_eq!(clustered.actors().len(), 2);
        assert_eq!(clustered.actors()[0].name, "a+b");
        assert_eq!(clustered.actors()[0].cycles_per_firing, 4 * 15 + 4 * 25);
        assert_eq!(clustered.actors()[0].max_parallel_tiles, 16);
        assert_eq!(clustered.edges().len(), 1, "internal edge disappears");
        assert_eq!(clustered.edges()[0].produce, 4);
        assert_eq!(clustered.edges()[0].consume, 4);
        assert_eq!(clustered.repetition_vector().unwrap(), vec![1, 1]);
        assert!(clustered.schedule().is_ok());
    }

    #[test]
    fn clustering_preserves_total_work_per_iteration() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 3, 4);
        let b = g.add_actor("b", 7, 8);
        let c = g.add_actor("c", 11, 2);
        g.add_edge(a, b, 2, 3, 0).unwrap();
        g.add_edge(b, c, 5, 4, 0).unwrap();
        let original = g.cycles_per_iteration().unwrap();
        for groups in [
            vec![(0usize, 1usize), (1, 2), (2, 3)],
            vec![(0, 2), (2, 3)],
            vec![(0, 1), (1, 3)],
            vec![(0, 3)],
        ] {
            let clustered = cluster(&g, &groups).unwrap();
            assert_eq!(clustered.cycles_per_iteration().unwrap(), original);
        }
    }
}
