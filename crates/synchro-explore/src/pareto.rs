//! Pareto-frontier utilities over the (tiles, power) trade-off the
//! paper's Figure 8 explores.

/// Does `(tiles_a, power_a)` dominate `(tiles_b, power_b)` — no worse in
/// both objectives and strictly better in at least one?
pub fn dominates(tiles_a: u32, power_a: f64, tiles_b: u32, power_b: f64) -> bool {
    (tiles_a <= tiles_b && power_a <= power_b) && (tiles_a < tiles_b || power_a < power_b)
}

/// Indices of the non-dominated entries of a curve already sorted by
/// tiles ascending (with at most one entry per tile count): the classic
/// staircase of strictly decreasing power.
pub(crate) fn frontier_indices(curve: &[(u32, f64)]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut best = f64::INFINITY;
    for (i, &(_tiles, power)) in curve.iter().enumerate() {
        if power < best {
            out.push(i);
            best = power;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        assert!(dominates(4, 10.0, 5, 10.0));
        assert!(dominates(4, 9.0, 4, 10.0));
        assert!(!dominates(4, 10.0, 4, 10.0));
        assert!(!dominates(5, 9.0, 4, 10.0), "trade-offs do not dominate");
    }

    #[test]
    fn frontier_is_the_strictly_decreasing_staircase() {
        let curve = [(2, 50.0), (3, 40.0), (4, 45.0), (5, 40.0), (6, 35.0)];
        assert_eq!(frontier_indices(&curve), vec![0, 1, 4]);
    }
}
