//! Automatic mapping and design-space exploration for Synchroscalar
//! (re-exported as `synchroscalar::explorer`).
//!
//! The paper's central claim is that statically scheduled SDF
//! applications let Synchroscalar *derive* per-column frequencies and
//! voltages that minimise power at a fixed rate.  This crate closes that
//! loop: given an [`SdfGraph`], a target iteration rate, a tile budget
//! and a [`Technology`], [`explore`] searches tile allocations and
//! actor→column groupings, computes each column's frequency from the
//! repetition vector, its voltage from the Figure 5 VF curve and its
//! power from the `synchro-power` models, and returns
//!
//! * the minimum-power feasible mapping,
//! * the full power-vs-tiles curve (one entry per reachable tile count),
//! * the Pareto frontier of that curve (the Figure 8-style trade-off).
//!
//! Small graphs are solved by exhaustive enumeration of contiguous
//! groupings (each grouping solved exactly by a per-tile-count dynamic
//! program); large graphs fall back to a dominance-pruned beam search
//! over grouping prefixes.  Both engines fan out across a `std::thread`
//! worker pool and run an allocation-free hot path: interval costs live
//! in one flat arena, DP states carry backpointers instead of cloned
//! allocation vectors, and the exhaustive engine work-steals grouping
//! chunks off an atomic cursor so skewed groupings cannot idle workers
//! (see the README's "Performance" section).
//!
//! A solution [`realize`](ExplorerSolution::realize)s back into a plain
//! `(SdfGraph, Mapping)` pair — the original graph for single-actor
//! columns, or a [`cluster`]ed graph when the search fused adjacent
//! actors into one column — so winners compile through
//! `synchroscalar::mapper::compile` unchanged.
//!
//! ```
//! use synchro_explore::{explore, ExplorerConfig};
//! use synchro_sdf::SdfGraph;
//!
//! // A two-stage filter at 1 M iterations/s under a 12-tile budget.
//! let mut graph = SdfGraph::new();
//! let head = graph.add_actor("head", 200, 8);
//! let tail = graph.add_actor("tail", 120, 8);
//! graph.add_edge(head, tail, 1, 1, 0).unwrap();
//! let exploration = explore(&graph, &ExplorerConfig::new(1e6, 12)).unwrap();
//! assert!(exploration.best.feasible);
//! assert!(exploration.best.total_tiles <= 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use synchro_power::{AreaModel, Technology};
use synchro_sdf::{ActorId, Mapping, MappingViolation, SdfError, SdfGraph};
use synchro_trace::{Trace, TraceEvent};

mod degraded;
mod model;
mod pareto;
mod search;
mod space;

pub use degraded::{
    explore_degraded, explore_degraded_board, DegradationCurve, DegradationPoint, ResourceLoss,
    RATE_LADDER,
};
pub use model::ColumnEval;
pub use pareto::dominates;
pub use search::SearchStats;
pub use space::{cluster, TileCandidates};

use model::{Evaluator, GraphContext};

/// Errors raised by the explorer.
#[derive(Debug)]
pub enum ExplorerError {
    /// Graph analysis failed (inconsistent rates, deadlock, empty graph).
    Sdf(SdfError),
    /// The tile budget cannot host even one tile per column group.
    BudgetTooSmall {
        /// Minimum number of column groups any grouping produces.
        min_groups: usize,
        /// The configured budget.
        budget: u32,
    },
    /// The graph is too large for the exhaustive engine; use
    /// [`SearchStrategy::Beam`] (or [`SearchStrategy::Auto`]).
    TooManyActorsForExhaustive {
        /// Actors in the graph.
        actors: usize,
    },
    /// The search space contained no candidate at all.
    NoSolutions,
    /// A hand-built mapping failed [`Mapping::validate`].
    InvalidMapping {
        /// The reported violations.
        violations: Vec<MappingViolation>,
    },
    /// A hand-built mapping does not place every actor exactly once.
    IncompleteMapping {
        /// An actor without a placement (or placed more than once).
        actor: ActorId,
    },
    /// Every candidate grouping was rejected by the communication
    /// feasibility prune: no mapping's cross-column traffic fits the
    /// configured TDM frame.
    CommInfeasible {
        /// The configured frame capacity in slots per iteration.
        capacity: u64,
        /// Groupings the prune rejected.
        pruned: u64,
    },
    /// No contiguous partition of the graph across the permitted chip
    /// count produced a feasible per-chip exploration (see
    /// [`explore_board`]).
    BoardInfeasible {
        /// Most chips the partitioner was allowed to use.
        max_chips: usize,
        /// Candidate splits whose per-chip explorations were attempted.
        splits_tried: usize,
    },
}

impl fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorerError::Sdf(e) => write!(f, "graph analysis: {e}"),
            ExplorerError::BudgetTooSmall { min_groups, budget } => write!(
                f,
                "tile budget {budget} cannot host {min_groups} column groups"
            ),
            ExplorerError::TooManyActorsForExhaustive { actors } => write!(
                f,
                "{actors} actors is too many for exhaustive grouping enumeration"
            ),
            ExplorerError::NoSolutions => write!(f, "search space contained no candidates"),
            ExplorerError::InvalidMapping { violations } => {
                write!(f, "mapping has {} violation(s)", violations.len())?;
                for v in violations {
                    write!(f, "; {v}")?;
                }
                Ok(())
            }
            ExplorerError::IncompleteMapping { actor } => {
                write!(f, "actor {} is not placed exactly once", actor.0)
            }
            ExplorerError::CommInfeasible { capacity, pruned } => write!(
                f,
                "no grouping's cross-column traffic fits the {capacity}-slot TDM frame \
                 ({pruned} groupings rejected)"
            ),
            ExplorerError::BoardInfeasible {
                max_chips,
                splits_tried,
            } => write!(
                f,
                "no contiguous partition across up to {max_chips} chip(s) was feasible \
                 ({splits_tried} splits tried)"
            ),
        }
    }
}

impl ExplorerError {
    /// Is this a resource-exhaustion failure — the search was well-posed
    /// but the hardware budget (tiles, TDM slots, bridge capacity, chip
    /// count) could not host any solution?  Exhaustion errors are the
    /// retryable class degraded-mode remapping walks the rate ladder on;
    /// the rest are malformed inputs that no amount of extra hardware or
    /// rate slack fixes.
    pub fn is_resource_exhaustion(&self) -> bool {
        matches!(
            self,
            ExplorerError::BudgetTooSmall { .. }
                | ExplorerError::NoSolutions
                | ExplorerError::CommInfeasible { .. }
                | ExplorerError::BoardInfeasible { .. }
        )
    }

    /// A stable machine-readable code naming the rejection class, the
    /// explorer-side counterpart of `RouteError::code` — used by the
    /// trace `RejectionLedger` to aggregate why candidate mappings died.
    pub fn code(&self) -> &'static str {
        match self {
            ExplorerError::Sdf(_) => "sdf",
            ExplorerError::BudgetTooSmall { .. } => "budget_too_small",
            ExplorerError::TooManyActorsForExhaustive { .. } => "too_many_actors",
            ExplorerError::NoSolutions => "no_solutions",
            ExplorerError::InvalidMapping { .. } => "invalid_mapping",
            ExplorerError::IncompleteMapping { .. } => "incomplete_mapping",
            ExplorerError::CommInfeasible { .. } => "comm_infeasible",
            ExplorerError::BoardInfeasible { .. } => "board_infeasible",
        }
    }
}

impl Error for ExplorerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExplorerError::Sdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for ExplorerError {
    fn from(value: SdfError) -> Self {
        ExplorerError::Sdf(value)
    }
}

/// Which search engine [`explore`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Exhaustive for small graphs, beam search for large ones.
    #[default]
    Auto,
    /// Enumerate every contiguous grouping and solve each exactly.
    Exhaustive,
    /// Dominance-pruned beam search over grouping prefixes, keeping at
    /// most `width` partial solutions per prefix length.  Exact for the
    /// best solution and the frontier when `width ≥ budget + 1`.
    Beam {
        /// Maximum partial solutions retained per prefix length.
        width: usize,
    },
}

/// Which supply-voltage policy the explorer's cost model reports under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VoltagePolicy {
    /// Each column gets the minimum quantised voltage its own frequency
    /// requires — the paper's headline per-column voltage scaling.
    #[default]
    PerColumn,
    /// Every column shares one chip-wide supply: the maximum voltage any
    /// column requires.  The search still ranks candidates by the
    /// per-column relaxation (the mapping that minimises per-column power
    /// is the one Table 4 re-costs under a single supply); the reported
    /// costs, voltages and best/frontier selection are then computed at
    /// the shared voltage.
    SingleVoltage,
}

/// The communication capacity the explorer prunes against: one TDM frame
/// of the horizontal bus per graph iteration, described by its width in
/// words per cycle and its period in bus cycles.
///
/// The prune is an optimistic upper bound — a grouping is rejected only
/// when its total cross-column words per iteration exceed the whole
/// frame (`splits × period × segment_groups` slots), which no schedule
/// could ever fit.  Survivors still go through the exact
/// `synchro-route` compiler, which also enforces reachability under the
/// concrete segment topology.
///
/// The exhaustive engine applies the prune per grouping before its DP,
/// so its results are exact under the constraint.  The beam engine
/// tracks the cross-column words each prefix has already committed and
/// makes its dominance check Pareto over `(power, cross words)`, so a
/// schedulable-but-pricier prefix is never shadowed by a cheaper
/// unschedulable one; prefixes whose committed traffic already
/// overflows the frame are dropped as they form.  Both engines are
/// exact under the constraint (property-tested against each other),
/// though the beam's width cap needs head-room beyond `budget + 1` when
/// `comm` is set, since a layer may keep several partials per tile
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommSpec {
    /// Bus width in words per cycle (independent splits).
    pub splits: u32,
    /// Bus cycles per graph iteration.
    pub period: u64,
    /// Electrically separate column groups each split's segment switches
    /// create (1 = broadcast).  Capacity multiplier for the optimistic
    /// bound: disjoint groups can reuse a split in the same cycle.
    pub segment_groups: u32,
}

impl CommSpec {
    /// A broadcast frame of `splits` words per cycle over `period` cycles.
    pub fn new(splits: u32, period: u64) -> Self {
        CommSpec {
            splits: splits.max(1),
            period,
            segment_groups: 1,
        }
    }

    /// Derive the period from a bus clock and the iteration rate (whole
    /// bus cycles per graph iteration).
    pub fn from_clock(splits: u32, bus_frequency_hz: f64, iteration_rate_hz: f64) -> Self {
        let period = if bus_frequency_hz > 0.0 && iteration_rate_hz > 0.0 {
            (bus_frequency_hz / iteration_rate_hz).floor() as u64
        } else {
            0
        };
        CommSpec::new(splits, period)
    }

    /// Override the segment-group count (the "segment count" search
    /// dimension).
    #[must_use]
    pub fn with_segment_groups(mut self, segment_groups: u32) -> Self {
        self.segment_groups = segment_groups.max(1);
        self
    }

    /// Slots per iteration the frame offers at most.
    pub fn capacity(&self) -> u64 {
        u64::from(self.splits)
            .saturating_mul(self.period)
            .saturating_mul(u64::from(self.segment_groups))
    }
}

/// The board-partitioning stage searched when [`ExplorerConfig::board`]
/// is set: [`explore_board`] shards the graph across up to `max_chips`
/// chips by a min-cut-flavoured contiguous split, running one per-chip
/// exploration (with the per-chip comm prune) for each candidate split
/// until every chip is feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardSearch {
    /// Most chips a partition may use (1 tries the single-chip path
    /// first; the partitioner always prefers fewer chips).
    pub max_chips: usize,
    /// Candidate splits attempted per chip count, in ranked order
    /// (fewest cut words first, then best work balance).
    pub splits_per_chip_count: usize,
    /// Optional cap on inter-chip words per iteration: splits whose cut
    /// exceeds it are pruned before any per-chip search runs, mirroring
    /// the intra-chip comm prune at the bridge level.
    pub bridge_capacity: Option<u64>,
}

impl Default for BoardSearch {
    fn default() -> Self {
        BoardSearch {
            max_chips: 4,
            splits_per_chip_count: 8,
            bridge_capacity: None,
        }
    }
}

impl BoardSearch {
    /// A board of up to `max_chips` chips with default split ranking.
    pub fn new(max_chips: usize) -> Self {
        BoardSearch {
            max_chips: max_chips.max(1),
            ..Default::default()
        }
    }

    /// Cap the inter-chip words per iteration the partitioner accepts.
    #[must_use]
    pub fn with_bridge_capacity(mut self, words: u64) -> Self {
        self.bridge_capacity = Some(words);
        self
    }

    /// Override how many ranked splits are attempted per chip count.
    #[must_use]
    pub fn with_splits_per_chip_count(mut self, splits: usize) -> Self {
        self.splits_per_chip_count = splits.max(1);
        self
    }
}

/// Above this actor count [`SearchStrategy::Auto`] switches from
/// exhaustive grouping enumeration (2^(n−1) groupings) to beam search,
/// and [`SearchStrategy::Exhaustive`] is rejected outright (public so
/// harnesses picking a strategy per workload stay in sync).
pub const EXHAUSTIVE_ACTOR_LIMIT: usize = 16;

/// Configuration of one exploration.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Target graph-iteration rate (iterations per second).
    pub iteration_rate_hz: f64,
    /// Maximum total tiles any solution may use.
    pub tile_budget: u32,
    /// Technology the cost model evaluates under.
    pub tech: Technology,
    /// Candidate tile counts per column group.
    pub candidates: TileCandidates,
    /// Search engine selection.
    pub strategy: SearchStrategy,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Largest number of adjacent actors the search may fuse into one
    /// column group.  `1` restricts the space to the paper's structure of
    /// one algorithm block per column group (what Table 4 publishes);
    /// larger values let the explorer trade fusion against parallelism.
    /// Fusion requires actor insertion order to be topological (every
    /// edge running from a lower to a higher actor id); graphs with
    /// backward edges are searched with single-actor columns only.
    pub max_group_size: usize,
    /// Parallel efficiency assumed when splitting work across tiles
    /// (1.0 = perfect speedup, matching the reference mappings).
    pub efficiency: f64,
    /// Optional communication-feasibility prune: groupings whose
    /// cross-column traffic cannot fit the TDM frame are rejected before
    /// their tile allocations are searched.  `None` (the default) keeps
    /// the unconstrained behaviour.
    pub comm: Option<CommSpec>,
    /// Supply-voltage policy the reported costs are computed under.
    pub voltage_policy: VoltagePolicy,
    /// Optional board-partitioning stage: when set, [`explore_board`]
    /// shards the graph across up to `max_chips` chips (each chip budgeted
    /// and comm-pruned independently with this configuration).  [`explore`]
    /// itself ignores the field — single-chip exploration is the board
    /// path's size-1 special case.
    pub board: Option<BoardSearch>,
    /// Trace handle the search reports into: phase spans
    /// (`explore.plan` / `explore.arena` / `explore.search`) and
    /// engine-qualified registry counters mirroring [`SearchStats`].
    /// Disabled by default — the search pays nothing for it.
    pub trace: Trace,
}

impl ExplorerConfig {
    /// A default configuration: ISCA 2004 technology, power-of-two tile
    /// candidates, automatic engine choice, all cores, grouping enabled.
    pub fn new(iteration_rate_hz: f64, tile_budget: u32) -> Self {
        ExplorerConfig {
            iteration_rate_hz,
            tile_budget,
            tech: Technology::isca2004(),
            candidates: TileCandidates::PowersOfTwo,
            strategy: SearchStrategy::Auto,
            threads: 0,
            max_group_size: usize::MAX,
            efficiency: 1.0,
            comm: None,
            voltage_policy: VoltagePolicy::PerColumn,
            board: None,
            trace: Trace::off(),
        }
    }

    /// Restrict the search to one actor per column group — the structure
    /// of every hand-built Table 4 mapping.
    #[must_use]
    pub fn single_actor_columns(mut self) -> Self {
        self.max_group_size = 1;
        self
    }

    /// Override the search strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the worker-thread count (0 = one per available core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the candidate tile counts.
    #[must_use]
    pub fn with_candidates(mut self, candidates: TileCandidates) -> Self {
        self.candidates = candidates;
        self
    }

    /// Override the technology.
    #[must_use]
    pub fn with_tech(mut self, tech: Technology) -> Self {
        self.tech = tech;
        self
    }

    /// Enable the communication-feasibility prune against one TDM frame.
    #[must_use]
    pub fn with_comm(mut self, comm: CommSpec) -> Self {
        self.comm = Some(comm);
        self
    }

    /// Override the voltage policy the costs are reported under.
    #[must_use]
    pub fn with_voltage_policy(mut self, policy: VoltagePolicy) -> Self {
        self.voltage_policy = policy;
        self
    }

    /// Enable the board-partitioning stage (see [`explore_board`]).
    #[must_use]
    pub fn with_board(mut self, board: BoardSearch) -> Self {
        self.board = Some(board);
        self
    }

    /// Install a trace handle: search spans, prune counters and — on
    /// failure — a structured `RouteReject` naming the
    /// [`ExplorerError::code`] are emitted into it (feed a
    /// `RejectionLedger` to aggregate why candidates died).
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The worker-thread count this configuration actually runs with:
    /// `threads` when non-zero, otherwise one per available core.  Public
    /// so benchmarks can resolve the count *before* measuring and report
    /// it honestly (a `threads: 0` row in a perf record is meaningless).
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One column group of a solution: the actors it hosts and its evaluated
/// operating point.
#[derive(Debug, Clone)]
pub struct ColumnSolution {
    /// The actors fused into this column group (one entry for
    /// single-actor columns).
    pub actors: Vec<ActorId>,
    /// Human-readable name (member names joined with `+`).
    pub name: String,
    /// Tiles assigned.
    pub tiles: u32,
    /// Required per-tile frequency (MHz).
    pub frequency_mhz: f64,
    /// Assigned supply voltage (V).
    pub voltage: f64,
    /// Whether the operating point fits the supply envelope.
    pub within_envelope: bool,
    /// Power breakdown.
    pub power: synchro_power::ColumnPower,
}

/// One point of the design space: a complete mapping with its cost.
#[derive(Debug, Clone)]
pub struct ExplorerSolution {
    /// Column groups in pipeline order.
    pub columns: Vec<ColumnSolution>,
    /// Total tiles used.
    pub total_tiles: u32,
    /// Total power (mW) under the explorer's cost model.
    pub power_mw: f64,
    /// Whether every column fits the supply envelope.
    pub feasible: bool,
    efficiency: f64,
}

impl ExplorerSolution {
    /// Is every column group a single actor (directly expressible as a
    /// `Mapping` over the original graph)?
    pub fn is_single_actor_columns(&self) -> bool {
        self.columns.iter().all(|c| c.actors.len() == 1)
    }

    /// Per-column frequencies in pipeline order.
    pub fn frequencies_mhz(&self) -> Vec<f64> {
        self.columns.iter().map(|c| c.frequency_mhz).collect()
    }

    /// Per-column tile counts in pipeline order.
    pub fn allocation(&self) -> Vec<u32> {
        self.columns.iter().map(|c| c.tiles).collect()
    }

    /// Chip area of the solution (tiles rounded up to whole columns).
    pub fn area_mm2(&self) -> f64 {
        AreaModel::isca2004().chip_area_mm2(self.total_tiles)
    }

    /// Turn the solution back into a `(graph, mapping)` pair ready for
    /// `synchroscalar::mapper::compile`: the original graph with a
    /// multi-actor mapping when every column hosts one actor, or the
    /// [`cluster`]ed graph with a one-actor-per-column mapping when the
    /// search fused adjacent actors.
    ///
    /// # Errors
    ///
    /// Propagates rate-consistency errors from clustering.
    pub fn realize(&self, graph: &SdfGraph) -> Result<(SdfGraph, Mapping), ExplorerError> {
        let groups: Vec<(usize, usize)> = self
            .columns
            .iter()
            .map(|c| {
                let start = c.actors.first().expect("column has actors").0;
                (start, start + c.actors.len())
            })
            .collect();
        let allocation = self.allocation();
        if self.is_single_actor_columns() {
            let mapping = space::mapping_for(&groups, &allocation, self.efficiency, true);
            Ok((graph.clone(), mapping))
        } else {
            let clustered = space::cluster(graph, &groups)?;
            let mapping = space::mapping_for(&groups, &allocation, self.efficiency, false);
            Ok((clustered, mapping))
        }
    }
}

/// The result of one [`explore`] run.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The minimum-power feasible solution (or the minimum-power solution
    /// overall when nothing fits the envelope — check
    /// [`ExplorerSolution::feasible`]).
    pub best: ExplorerSolution,
    /// The cheapest solution at every reachable exact tile count, sorted
    /// by tiles ascending.  Complete for the exhaustive engine; the beam
    /// engine only retains non-dominated counts.
    pub curve: Vec<ExplorerSolution>,
    /// The non-dominated (tiles, power) subset of `curve` — the Figure
    /// 8-style Pareto frontier.
    pub frontier: Vec<ExplorerSolution>,
    /// Search counters.
    pub stats: SearchStats,
}

impl Exploration {
    /// The curve entry using exactly `tiles` tiles, if that count was
    /// reachable.
    pub fn solution_for_tiles(&self, tiles: u32) -> Option<&ExplorerSolution> {
        self.curve.iter().find(|s| s.total_tiles == tiles)
    }
}

/// Search tile allocations and actor→column groupings of `graph` for the
/// minimum-power mapping sustaining `config.iteration_rate_hz` within
/// `config.tile_budget` tiles.
///
/// # Errors
///
/// Returns [`ExplorerError`] for unanalyzable graphs, impossible budgets,
/// or an exhausted search space.
pub fn explore(graph: &SdfGraph, config: &ExplorerConfig) -> Result<Exploration, ExplorerError> {
    let result = explore_impl(graph, config);
    reject_on_err(&config.trace, &result);
    result
}

/// Emit a structured rejection event for a failed exploration, mirroring
/// the router's convention so one `RejectionLedger` aggregates both.
fn reject_on_err<T>(trace: &Trace, result: &Result<T, ExplorerError>) {
    if let Err(err) = result {
        trace.emit(|| TraceEvent::RouteReject {
            code: err.code(),
            detail: err.to_string(),
        });
    }
}

fn explore_impl(graph: &SdfGraph, config: &ExplorerConfig) -> Result<Exploration, ExplorerError> {
    let trace = &config.trace;
    let (ctx, plan, evaluator) = {
        let _span = trace.span("explore.plan");
        let ctx = GraphContext::new(graph)?;
        let plan = plan_search(graph, &ctx, config)?;
        let evaluator = Evaluator::new(&config.tech, config.iteration_rate_hz, config.efficiency);
        (ctx, plan, evaluator)
    };
    let arena = {
        let _span = trace.span("explore.arena");
        search::IntervalArena::build(
            &ctx,
            &evaluator,
            config.candidates,
            config.tile_budget,
            plan.max_group_size,
        )
    };
    let result = {
        let _span = trace.span("explore.search");
        run_search(graph, config, &ctx, &evaluator, &arena, &plan, config.comm)
    };
    if let Ok(exploration) = &result {
        // Unify the ad-hoc SearchStats counters into the metrics registry,
        // qualified by the engine that produced them.
        let s = &exploration.stats;
        let keys = if plan.use_beam.is_some() {
            [
                ("explore.beam.mappings_evaluated", s.mappings_evaluated),
                ("explore.beam.groupings_examined", s.groupings_examined),
                ("explore.beam.states_pruned", s.states_pruned),
                (
                    "explore.beam.groupings_comm_pruned",
                    s.groupings_comm_pruned,
                ),
            ]
        } else {
            [
                (
                    "explore.exhaustive.mappings_evaluated",
                    s.mappings_evaluated,
                ),
                (
                    "explore.exhaustive.groupings_examined",
                    s.groupings_examined,
                ),
                ("explore.exhaustive.states_pruned", s.states_pruned),
                (
                    "explore.exhaustive.groupings_comm_pruned",
                    s.groupings_comm_pruned,
                ),
            ]
        };
        for (name, delta) in keys {
            trace.counter(name, delta);
        }
    }
    result
}

/// The resolved engine choice of one exploration: how large groups may
/// get, which engine runs, and across how many workers.
struct SearchPlan {
    max_group_size: usize,
    /// `Some(width)` = beam search, `None` = exhaustive enumeration.
    use_beam: Option<usize>,
    threads: usize,
}

/// Validate `config` against the analysed graph and resolve the engine
/// choice.  Split out of [`explore`] so sweeps sharing one
/// [`search::IntervalArena`] across invocations plan once per point
/// without re-running the search tail.
fn plan_search(
    graph: &SdfGraph,
    ctx: &GraphContext,
    config: &ExplorerConfig,
) -> Result<SearchPlan, ExplorerError> {
    let n = ctx.n;
    // Fusing is only sound when actor order is a topological order with
    // strictly forward edges: contiguous groups of a forward-edged chain
    // cluster to an acyclic graph, whereas a backward edge (a feedback
    // loop carried by initial tokens) could deadlock the clustered graph.
    // Self-loops stay internal to any group and are harmless.
    let forward_edges = graph.edges().iter().all(|e| e.from.0 <= e.to.0);
    let fusion_limit = if forward_edges {
        config.max_group_size
    } else {
        1
    };
    let max_group_size = fusion_limit.clamp(1, n.max(1));
    let min_groups = n.div_ceil(max_group_size);
    if (config.tile_budget as usize) < min_groups {
        return Err(ExplorerError::BudgetTooSmall {
            min_groups,
            budget: config.tile_budget,
        });
    }
    let default_width = (config.tile_budget as usize + 1).max(64);
    let use_beam = match config.strategy {
        SearchStrategy::Exhaustive if max_group_size > 1 && n > EXHAUSTIVE_ACTOR_LIMIT => {
            return Err(ExplorerError::TooManyActorsForExhaustive { actors: n });
        }
        SearchStrategy::Exhaustive => None,
        SearchStrategy::Beam { width } => Some(width),
        SearchStrategy::Auto => {
            if max_group_size == 1 || n <= EXHAUSTIVE_ACTOR_LIMIT {
                None
            } else {
                Some(default_width)
            }
        }
    };
    Ok(SearchPlan {
        max_group_size,
        use_beam,
        threads: config.resolved_threads(),
    })
}

/// Run the planned engine over a prebuilt arena and package the outcome.
/// `comm` is explicit (rather than read from `config`) so comm sweeps
/// reuse one arena — interval costs do not depend on the frame.
fn run_search(
    graph: &SdfGraph,
    config: &ExplorerConfig,
    ctx: &GraphContext,
    evaluator: &Evaluator,
    arena: &search::IntervalArena,
    plan: &SearchPlan,
    comm: Option<CommSpec>,
) -> Result<Exploration, ExplorerError> {
    let use_beam = plan.use_beam;
    let outcome = match use_beam {
        None => search::exhaustive(
            ctx,
            arena,
            config.tile_budget,
            plan.max_group_size,
            plan.threads,
            comm,
        ),
        Some(width) => search::beam(
            ctx,
            arena,
            config.tile_budget,
            plan.max_group_size,
            width,
            plan.threads,
            comm,
        ),
    };
    if outcome.curve.is_empty() {
        // Blame communication only when the prune certainly rejected
        // *every* grouping: the exhaustive engine examines each one, so
        // pruned == examined is a proof.  The beam engine's comm counter
        // tallies pruned prefix *extensions*, which cannot distinguish
        // comm-starved from budget-starved searches, so the beam reports
        // the honest NoSolutions instead.
        if use_beam.is_none()
            && outcome.stats.groupings_comm_pruned > 0
            && outcome.stats.groupings_comm_pruned >= outcome.stats.groupings_examined
        {
            return Err(ExplorerError::CommInfeasible {
                capacity: comm.map(|c| c.capacity()).unwrap_or(0),
                pruned: outcome.stats.groupings_comm_pruned,
            });
        }
        return Err(ExplorerError::NoSolutions);
    }

    let mut curve: Vec<ExplorerSolution> = outcome
        .curve
        .iter()
        .map(|c| {
            let solution = realize_candidate(
                graph,
                ctx,
                evaluator,
                &c.groups,
                &c.allocation,
                config.voltage_policy,
            );
            // The search engines accumulate cost layer by layer in the
            // same order realization sums it, so the backpointer DP's
            // totals must agree bit-for-bit with the re-evaluation.  Under
            // the single-voltage policy the realized cost is deliberately
            // re-priced at the shared supply, so the identity only holds
            // for the per-column relaxation the search ran on.
            if config.voltage_policy == VoltagePolicy::PerColumn {
                debug_assert_eq!(
                    solution.power_mw.to_bits(),
                    c.power_mw.to_bits(),
                    "search cost diverged from realized cost"
                );
                debug_assert_eq!(solution.feasible, c.feasible);
            }
            solution
        })
        .collect();
    // One entry per tile count: feasible beats infeasible, then lower
    // power wins (the beam engine can surface both a cheap infeasible and
    // a pricier feasible solution at the same count).
    curve.sort_by(|a, b| {
        a.total_tiles
            .cmp(&b.total_tiles)
            .then(b.feasible.cmp(&a.feasible))
            .then(a.power_mw.partial_cmp(&b.power_mw).expect("finite power"))
    });
    curve.dedup_by_key(|s| s.total_tiles);

    // The Pareto frontier covers achievable (feasible) designs; only when
    // nothing fits the envelope does it fall back to the whole curve.
    let frontier_pool: Vec<&ExplorerSolution> = {
        let feasible: Vec<&ExplorerSolution> = curve.iter().filter(|s| s.feasible).collect();
        if feasible.is_empty() {
            curve.iter().collect()
        } else {
            feasible
        }
    };
    let points: Vec<(u32, f64)> = frontier_pool
        .iter()
        .map(|s| (s.total_tiles, s.power_mw))
        .collect();
    let frontier: Vec<ExplorerSolution> = pareto::frontier_indices(&points)
        .into_iter()
        .map(|i| frontier_pool[i].clone())
        .collect();
    let min_power = |solutions: &mut dyn Iterator<Item = &ExplorerSolution>| {
        solutions
            .min_by(|a, b| a.power_mw.partial_cmp(&b.power_mw).expect("finite power"))
            .cloned()
    };
    let best = min_power(&mut curve.iter().filter(|s| s.feasible))
        .or_else(|| min_power(&mut curve.iter()))
        .expect("curve is non-empty");
    Ok(Exploration {
        best,
        curve,
        frontier,
        stats: outcome.stats,
    })
}

/// Evaluate a hand-built mapping (one actor per placement, every actor
/// placed exactly once) under the explorer's cost model, so automatic and
/// reference mappings are compared on equal footing.
///
/// # Errors
///
/// Returns [`ExplorerError::InvalidMapping`] /
/// [`ExplorerError::IncompleteMapping`] for ill-formed mappings and
/// propagates graph-analysis failures.
pub fn evaluate_mapping(
    graph: &SdfGraph,
    mapping: &Mapping,
    config: &ExplorerConfig,
) -> Result<ExplorerSolution, ExplorerError> {
    let violations = mapping.validate(graph);
    if !violations.is_empty() {
        return Err(ExplorerError::InvalidMapping { violations });
    }
    let mut placed = vec![false; graph.actors().len()];
    for p in mapping.placements() {
        if placed[p.actor.0] {
            return Err(ExplorerError::IncompleteMapping { actor: p.actor });
        }
        placed[p.actor.0] = true;
    }
    if let Some(missing) = placed.iter().position(|&p| !p) {
        return Err(ExplorerError::IncompleteMapping {
            actor: ActorId(missing),
        });
    }
    let ctx = GraphContext::new(graph)?;
    let evaluator = Evaluator::new(&config.tech, config.iteration_rate_hz, config.efficiency);
    let groups: Vec<(usize, usize)> = mapping
        .placements()
        .iter()
        .map(|p| (p.actor.0, p.actor.0 + 1))
        .collect();
    let allocation: Vec<u32> = mapping.placements().iter().map(|p| p.tiles).collect();
    Ok(realize_candidate(
        graph,
        &ctx,
        &evaluator,
        &groups,
        &allocation,
        config.voltage_policy,
    ))
}

/// One point of a bus-width sweep: the communication constraint the
/// exploration ran under and its outcome.
#[derive(Debug)]
pub struct BusWidthPoint {
    /// The frame the prune used (splits = the swept width).
    pub comm: CommSpec,
    /// The exploration at that width, or the structured infeasibility
    /// (typically [`ExplorerError::CommInfeasible`] for widths too narrow
    /// for any grouping).
    pub outcome: Result<Exploration, ExplorerError>,
}

/// Sweep the horizontal-bus width (words per cycle) as a search
/// dimension: re-explore `graph` under `config` with the
/// communication-feasibility prune set to each width in `widths`,
/// keeping `base`'s period and segment-group count.
///
/// Interval costs do not depend on the frame, so the sweep analyses the
/// graph and builds the [`search::IntervalArena`] once and reruns only
/// the engine per width — each point is bit-identical to an independent
/// [`explore`] call at that width.
pub fn explore_bus_widths(
    graph: &SdfGraph,
    config: &ExplorerConfig,
    base: CommSpec,
    widths: &[u32],
) -> Vec<BusWidthPoint> {
    let comm_of = |splits: u32| CommSpec {
        splits: splits.max(1),
        ..base
    };
    let shared = (|| {
        let ctx = GraphContext::new(graph).ok()?;
        let plan = plan_search(graph, &ctx, config).ok()?;
        let evaluator = Evaluator::new(&config.tech, config.iteration_rate_hz, config.efficiency);
        let arena = search::IntervalArena::build(
            &ctx,
            &evaluator,
            config.candidates,
            config.tile_budget,
            plan.max_group_size,
        );
        Some((ctx, plan, evaluator, arena))
    })();
    widths
        .iter()
        .map(|&splits| {
            let comm = comm_of(splits);
            let outcome = match &shared {
                Some((ctx, plan, evaluator, arena)) => {
                    run_search(graph, config, ctx, evaluator, arena, plan, Some(comm))
                }
                // Analysis or planning failed: fall back to the plain
                // path so every point reports the structured error.
                None => explore(graph, &config.clone().with_comm(comm)),
            };
            BusWidthPoint { comm, outcome }
        })
        .collect()
}

/// One point of a tile-budget sweep: the budget the exploration ran
/// under and its outcome.
#[derive(Debug)]
pub struct BudgetPoint {
    /// The tile budget of this point.
    pub budget: u32,
    /// The exploration at that budget, or its structured failure
    /// (typically [`ExplorerError::BudgetTooSmall`] for budgets below the
    /// minimum group count).
    pub outcome: Result<Exploration, ExplorerError>,
}

/// Sweep the tile budget as a search dimension: re-explore `graph` under
/// `config` at each budget in `budgets`.
///
/// The budget changes which tile counts each interval offers, so the
/// arena is rebuilt per point — but the `(work, cap, tokens, tiles)`
/// power evaluations behind it are shared through one `EvalCache`, so
/// repeated operating points across budgets are priced once.  Each point
/// is bit-identical to an independent [`explore`] call at that budget.
pub fn explore_budget_sweep(
    graph: &SdfGraph,
    config: &ExplorerConfig,
    budgets: &[u32],
) -> Vec<BudgetPoint> {
    let at_budget = |budget: u32| ExplorerConfig {
        tile_budget: budget,
        ..config.clone()
    };
    let Ok(ctx) = GraphContext::new(graph) else {
        // Unanalysable graph: every point reports the structured error.
        return budgets
            .iter()
            .map(|&budget| BudgetPoint {
                budget,
                outcome: explore(graph, &at_budget(budget)),
            })
            .collect();
    };
    let evaluator = Evaluator::new(&config.tech, config.iteration_rate_hz, config.efficiency);
    let mut cache = model::EvalCache::default();
    budgets
        .iter()
        .map(|&budget| {
            let swept = at_budget(budget);
            let outcome = plan_search(graph, &ctx, &swept).and_then(|plan| {
                let arena = search::IntervalArena::build_with_cache(
                    &ctx,
                    &evaluator,
                    swept.candidates,
                    budget,
                    plan.max_group_size,
                    &mut cache,
                );
                run_search(graph, &swept, &ctx, &evaluator, &arena, &plan, swept.comm)
            });
            BudgetPoint { budget, outcome }
        })
        .collect()
}

/// One chip of a board exploration: the contiguous actor range it hosts
/// and its winning per-chip solution.
#[derive(Debug, Clone)]
pub struct ChipExploration {
    /// First actor (inclusive) of the chip's range in the original graph.
    pub start: usize,
    /// One past the last actor of the chip's range.
    pub end: usize,
    /// The chip-local winner: single-actor columns over the chip's
    /// subgraph, actor ids local to the range (add `start` to recover
    /// the original ids).
    pub solution: ExplorerSolution,
}

/// The result of one [`explore_board`] run: a contiguous partition of
/// the graph across chips, one feasible exploration per chip, and the
/// inter-chip traffic the partition commits to the bridges.
#[derive(Debug, Clone)]
pub struct BoardExploration {
    /// Per-chip ranges and solutions, in pipeline order.
    pub chips: Vec<ChipExploration>,
    /// Words per graph iteration crossing chip boundaries (the demand
    /// the chip-to-chip bridge lanes must carry).
    pub bridge_words_per_iteration: u64,
    /// Candidate splits whose per-chip explorations were attempted
    /// before (and including) the winner.
    pub splits_tried: usize,
    /// Search counters summed over the winning split's per-chip runs.
    pub stats: SearchStats,
}

impl BoardExploration {
    /// Chips in the winning partition.
    pub fn chip_count(&self) -> usize {
        self.chips.len()
    }

    /// Total tiles across every chip.
    pub fn total_tiles(&self) -> u32 {
        self.chips.iter().map(|c| c.solution.total_tiles).sum()
    }

    /// Total compute power across every chip (mW, excluding bridge
    /// transfer energy — that is priced by `synchro-power` from the
    /// simulated bridge slot activity).
    pub fn total_power_mw(&self) -> f64 {
        self.chips.iter().map(|c| c.solution.power_mw).sum()
    }

    /// The chip-qualified mapping over the *original* graph, ready for
    /// board compilation: chip `c`'s columns become
    /// `place_on_chip(c, ..)` placements in pipeline order.
    pub fn mapping(&self) -> Mapping {
        let mut mapping = Mapping::new();
        for (chip, ce) in self.chips.iter().enumerate() {
            for col in &ce.solution.columns {
                let local = col.actors.first().expect("column has actors").0;
                mapping.place_on_chip(
                    chip,
                    ActorId(ce.start + local),
                    col.tiles,
                    ce.solution.efficiency,
                );
            }
        }
        mapping
    }
}

/// Shard `graph` across up to [`BoardSearch::max_chips`] chips: try chip
/// counts ascending (a feasible single chip needs no board), and per
/// count rank every contiguous split min-cut first (fewest cut words,
/// then best work balance), attempting per-chip explorations — each chip
/// budgeted at `config.tile_budget` and pruned by `config.comm` — until
/// one split is feasible on every chip.
///
/// Each chip's subgraph keeps its actors' global firing rates: a range
/// whose repetition counts share a factor `g` iterates `g` times faster
/// than the whole graph, so its exploration runs at
/// `iteration_rate_hz × g`.  Board exploration is restricted to
/// single-actor columns so the winning mapping stays expressible over
/// the original graph (fusion-aware partitioning is a recorded
/// follow-up).
///
/// Reads the partition bounds from [`ExplorerConfig::board`]
/// (defaulting to [`BoardSearch::default`] when unset).
///
/// # Errors
///
/// [`ExplorerError::BoardInfeasible`] when no attempted split is
/// feasible on every chip; analysis errors propagate as in [`explore`].
pub fn explore_board(
    graph: &SdfGraph,
    config: &ExplorerConfig,
) -> Result<BoardExploration, ExplorerError> {
    let result = explore_board_impl(graph, config);
    reject_on_err(&config.trace, &result);
    result
}

fn explore_board_impl(
    graph: &SdfGraph,
    config: &ExplorerConfig,
) -> Result<BoardExploration, ExplorerError> {
    let board = config.board.unwrap_or_default();
    let ctx = GraphContext::new(graph)?;
    let reps = graph.repetition_vector()?;
    let n = ctx.n;
    let max_chips = board.max_chips.clamp(1, n.max(1));
    let mut splits_tried = 0usize;
    // A split ranked by (bridge cut words, work imbalance, lexicographic).
    type RankedSplit = (u64, u64, Vec<(usize, usize)>);
    for chips in 1..=max_chips {
        let mut candidates: Vec<RankedSplit> = contiguous_splits(n, chips)
            .into_iter()
            .map(|split| {
                let cut = ctx.grouping_cross_words(&split);
                let works: Vec<u64> = split
                    .iter()
                    .map(|&(start, end)| ctx.group_work(start, end))
                    .collect();
                let imbalance = works.iter().max().unwrap_or(&0) - works.iter().min().unwrap_or(&0);
                (cut, imbalance, split)
            })
            .collect();
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        for (cut, _, split) in candidates
            .into_iter()
            .take(board.splits_per_chip_count.max(1))
        {
            // Bridge-capacity prune: the board-level analogue of the
            // per-chip comm prune — a split whose cut traffic cannot fit
            // the bridges is unschedulable under any per-chip mapping.
            if board.bridge_capacity.is_some_and(|cap| cut > cap) {
                continue;
            }
            splits_tried += 1;
            if let Some((chips, stats)) = explore_split(graph, config, &reps, &split) {
                return Ok(BoardExploration {
                    chips,
                    bridge_words_per_iteration: cut,
                    splits_tried,
                    stats,
                });
            }
        }
    }
    Err(ExplorerError::BoardInfeasible {
        max_chips,
        splits_tried,
    })
}

/// Every way to split `0..n` into `chips` non-empty contiguous ranges.
fn contiguous_splits(n: usize, chips: usize) -> Vec<Vec<(usize, usize)>> {
    fn recurse(
        n: usize,
        chips: usize,
        cuts: &mut Vec<usize>,
        result: &mut Vec<Vec<(usize, usize)>>,
    ) {
        let placed = cuts.len();
        if placed == chips - 1 {
            let mut split = Vec::with_capacity(chips);
            let mut start = 0usize;
            for &cut in cuts.iter() {
                split.push((start, cut));
                start = cut;
            }
            split.push((start, n));
            result.push(split);
            return;
        }
        let lower = cuts.last().map_or(1, |&c| c + 1);
        // Leave room for the remaining boundaries (strictly increasing,
        // all below n).
        let upper = n - (chips - 1 - placed - 1) - 1;
        for cut in lower..=upper {
            cuts.push(cut);
            recurse(n, chips, cuts, result);
            cuts.pop();
        }
    }
    if chips == 0 || chips > n {
        return Vec::new();
    }
    let mut result = Vec::new();
    let mut cuts = Vec::with_capacity(chips.saturating_sub(1));
    recurse(n, chips, &mut cuts, &mut result);
    result
}

/// Attempt one split: explore every chip's subgraph independently and
/// accept only when every chip's winner is feasible.  Any per-chip
/// failure (budget, comm, infeasible envelope, inconsistent subgraph)
/// rejects the split.
fn explore_split(
    graph: &SdfGraph,
    config: &ExplorerConfig,
    reps: &[u64],
    split: &[(usize, usize)],
) -> Option<(Vec<ChipExploration>, SearchStats)> {
    let mut chips = Vec::with_capacity(split.len());
    let mut stats = SearchStats::default();
    for &(start, end) in split {
        let (sub, rate_factor) = chip_subgraph(graph, reps, start, end)?;
        let sub_config = ExplorerConfig {
            iteration_rate_hz: config.iteration_rate_hz * rate_factor as f64,
            max_group_size: 1,
            board: None,
            ..config.clone()
        };
        let exploration = explore(&sub, &sub_config).ok()?;
        if !exploration.best.feasible {
            return None;
        }
        stats.mappings_evaluated += exploration.stats.mappings_evaluated;
        stats.groupings_examined += exploration.stats.groupings_examined;
        stats.states_pruned += exploration.stats.states_pruned;
        stats.groupings_comm_pruned += exploration.stats.groupings_comm_pruned;
        stats.threads_used = stats.threads_used.max(exploration.stats.threads_used);
        stats.elapsed_seconds += exploration.stats.elapsed_seconds;
        chips.push(ChipExploration {
            start,
            end,
            solution: exploration.best,
        });
    }
    Some((chips, stats))
}

/// Extract the contiguous actor range `start..end` as a standalone graph
/// with its internal edges, returning it with the range's iteration-rate
/// factor: the gcd `g` of the range's repetition counts (the subgraph's
/// own repetition vector is the range's counts divided by `g`, so it
/// iterates `g` times per whole-graph iteration).  Returns `None` when
/// the extracted range does not normalise that way (e.g. a disconnected
/// range whose components renormalise independently) — such a split
/// cannot preserve per-actor firing rates and is rejected.
fn chip_subgraph(
    graph: &SdfGraph,
    reps: &[u64],
    start: usize,
    end: usize,
) -> Option<(SdfGraph, u64)> {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let rate_factor = reps[start..end].iter().copied().fold(0u64, gcd);
    if rate_factor == 0 {
        return None;
    }
    let mut sub = SdfGraph::new();
    for actor in &graph.actors()[start..end] {
        sub.add_actor(
            actor.name.clone(),
            actor.cycles_per_firing,
            actor.max_parallel_tiles,
        );
    }
    for edge in graph.edges() {
        if (start..end).contains(&edge.from.0) && (start..end).contains(&edge.to.0) {
            sub.add_edge(
                ActorId(edge.from.0 - start),
                ActorId(edge.to.0 - start),
                edge.produce,
                edge.consume,
                edge.initial_tokens,
            )
            .ok()?;
        }
    }
    let expected: Vec<u64> = reps[start..end].iter().map(|&r| r / rate_factor).collect();
    if sub.repetition_vector().ok()? != expected {
        return None;
    }
    Some((sub, rate_factor))
}

/// Stable hooks for the repo's criterion benches, exposing the search
/// core's internal stages (interval-arena build, single-grouping DP) so
/// per-stage regressions are visible without making the internals part of
/// the supported API.  Not for downstream use.
#[doc(hidden)]
pub mod perf {
    use crate::model::{Evaluator, GraphContext};
    use crate::search::{grouping_dp, DpScratch, IntervalArena};
    use crate::{ExplorerConfig, ExplorerError};
    use synchro_sdf::SdfGraph;

    /// A graph analysed and interval-evaluated once, ready to run DP
    /// passes without rebuilding the arena.
    pub struct PreparedSearch {
        arena: IntervalArena,
        scratch: DpScratch,
        singleton: Vec<(usize, usize)>,
        budget: u32,
    }

    impl PreparedSearch {
        /// Analyse `graph` and build the interval arena under `config`.
        ///
        /// # Errors
        ///
        /// Propagates graph-analysis failures.
        pub fn new(graph: &SdfGraph, config: &ExplorerConfig) -> Result<Self, ExplorerError> {
            let ctx = GraphContext::new(graph)?;
            let evaluator =
                Evaluator::new(&config.tech, config.iteration_rate_hz, config.efficiency);
            let max_group_size = config.max_group_size.clamp(1, ctx.n.max(1));
            let arena = IntervalArena::build(
                &ctx,
                &evaluator,
                config.candidates,
                config.tile_budget,
                max_group_size,
            );
            let singleton = (0..ctx.n).map(|i| (i, i + 1)).collect();
            Ok(PreparedSearch {
                arena,
                scratch: DpScratch::new(config.tile_budget, ctx.n),
                singleton,
                budget: config.tile_budget,
            })
        }

        /// Total interval options evaluated into the arena.
        pub fn option_count(&self) -> usize {
            self.arena.option_count()
        }

        /// Run the backpointer DP over the all-singleton grouping and
        /// return the transitions examined (the unit `mappings/s`
        /// counts).
        pub fn singleton_dp(&mut self) -> u64 {
            grouping_dp(&self.singleton, &self.arena, self.budget, &mut self.scratch)
        }
    }
}

/// Re-evaluate a candidate's columns in full detail and package it as a
/// public solution.  Under [`VoltagePolicy::SingleVoltage`] every column
/// is re-priced at the chip-wide maximum required voltage (the same
/// semantics the analytic pipeline's single-voltage comparison uses).
fn realize_candidate(
    graph: &SdfGraph,
    ctx: &GraphContext,
    evaluator: &Evaluator,
    groups: &[(usize, usize)],
    allocation: &[u32],
    policy: VoltagePolicy,
) -> ExplorerSolution {
    let mut evals = Vec::with_capacity(groups.len());
    for (&(start, end), &tiles) in groups.iter().zip(allocation) {
        evals.push(evaluator.evaluate_column(
            ctx.group_work(start, end),
            ctx.group_cap(start, end),
            ctx.boundary_tokens(start, end),
            tiles,
        ));
    }
    if policy == VoltagePolicy::SingleVoltage {
        let shared = evals.iter().map(|e| e.voltage).fold(0.0, f64::max);
        evals = groups
            .iter()
            .zip(&evals)
            .map(|(&(start, end), base)| {
                evaluator.reprice_at_voltage(
                    base,
                    ctx.group_cap(start, end),
                    ctx.boundary_tokens(start, end),
                    shared,
                )
            })
            .collect();
    }
    let mut columns = Vec::with_capacity(groups.len());
    let mut power_mw = 0.0;
    let mut feasible = true;
    for (&(start, end), eval) in groups.iter().zip(&evals) {
        power_mw += eval.power.total_mw();
        feasible &= eval.within_envelope;
        let members = &graph.actors()[start..end];
        columns.push(ColumnSolution {
            actors: (start..end).map(ActorId).collect(),
            name: members
                .iter()
                .map(|a| a.name.as_str())
                .collect::<Vec<_>>()
                .join("+"),
            tiles: eval.tiles,
            frequency_mhz: eval.frequency_mhz,
            voltage: eval.voltage,
            within_envelope: eval.within_envelope,
            power: eval.power,
        });
    }
    ExplorerSolution {
        columns,
        total_tiles: allocation.iter().sum(),
        power_mw,
        feasible,
        efficiency: evaluator.efficiency(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DDC front end (Table 4 cycle counts) at 16 M iterations/s.
    fn ddc() -> SdfGraph {
        let mut g = SdfGraph::new();
        let mixer = g.add_actor("Digital Mixer", 15, 16);
        let integ = g.add_actor("CIC Integrator", 25, 16);
        let comb = g.add_actor("CIC Comb", 5, 4);
        let cfir = g.add_actor("CFIR", 380, 32);
        let pfir = g.add_actor("PFIR", 370, 32);
        g.add_edge(mixer, integ, 1, 1, 0).unwrap();
        g.add_edge(integ, comb, 1, 4, 0).unwrap();
        g.add_edge(comb, cfir, 1, 1, 0).unwrap();
        g.add_edge(cfir, pfir, 1, 1, 0).unwrap();
        g
    }

    fn ddc_reference_mapping(g: &SdfGraph) -> Mapping {
        let mut m = Mapping::new();
        for (i, tiles) in [8u32, 8, 2, 16, 16].into_iter().enumerate() {
            m.place(ActorId(i), tiles, 1.0);
        }
        let _ = g;
        m
    }

    #[test]
    fn single_actor_search_rediscovers_the_table4_ddc_mapping() {
        let g = ddc();
        let config = ExplorerConfig::new(16e6, 50).single_actor_columns();
        let exploration = explore(&g, &config).unwrap();
        let at_budget = exploration.solution_for_tiles(50).expect("50 reachable");
        assert_eq!(at_budget.allocation(), vec![8, 8, 2, 16, 16]);
        let freqs = at_budget.frequencies_mhz();
        for (got, want) in freqs.iter().zip([120.0, 200.0, 40.0, 380.0, 370.0]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        assert!(at_budget.feasible);
        // The overall winner is at least as cheap as the hand mapping.
        let reference = evaluate_mapping(&g, &ddc_reference_mapping(&g), &config).unwrap();
        assert!(exploration.best.power_mw <= reference.power_mw + 1e-9);
    }

    #[test]
    fn grouping_search_beats_the_hand_built_ddc_mapping() {
        let g = ddc();
        let config = ExplorerConfig::new(16e6, 50);
        let grouped = explore(&g, &config).unwrap();
        let reference = evaluate_mapping(&g, &ddc_reference_mapping(&g), &config).unwrap();
        assert!(
            grouped.best.power_mw < reference.power_mw,
            "fusion should beat the reference: {} vs {}",
            grouped.best.power_mw,
            reference.power_mw
        );
        assert!(grouped.best.feasible);
    }

    #[test]
    fn engines_agree_on_best_and_frontier() {
        let g = ddc();
        let base = ExplorerConfig::new(16e6, 40);
        let exhaustive =
            explore(&g, &base.clone().with_strategy(SearchStrategy::Exhaustive)).unwrap();
        let beam = explore(&g, &base.with_strategy(SearchStrategy::Beam { width: 64 })).unwrap();
        assert!((exhaustive.best.power_mw - beam.best.power_mw).abs() < 1e-6);
        let ef: Vec<(u32, u64)> = exhaustive
            .frontier
            .iter()
            .map(|s| (s.total_tiles, s.power_mw.to_bits()))
            .collect();
        let bf: Vec<(u32, u64)> = beam
            .frontier
            .iter()
            .map(|s| (s.total_tiles, s.power_mw.to_bits()))
            .collect();
        assert_eq!(ef, bf);
    }

    #[test]
    fn frontier_is_non_dominated_and_curve_respects_budget() {
        let g = ddc();
        let exploration = explore(&g, &ExplorerConfig::new(16e6, 50)).unwrap();
        assert!(!exploration.frontier.is_empty());
        for s in &exploration.curve {
            assert!(s.total_tiles <= 50);
            assert!(s.power_mw > 0.0);
        }
        for pair in exploration.frontier.windows(2) {
            assert!(pair[0].total_tiles < pair[1].total_tiles);
            assert!(pair[0].power_mw > pair[1].power_mw);
        }
        // The frontier covers feasible designs; no feasible curve point
        // may dominate a frontier point.
        for a in &exploration.frontier {
            for b in exploration.curve.iter().filter(|s| s.feasible) {
                assert!(
                    !(dominates(b.total_tiles, b.power_mw, a.total_tiles, a.power_mw)),
                    "frontier point dominated by a feasible curve point"
                );
            }
        }
    }

    #[test]
    fn realized_solutions_round_trip_through_requirements() {
        let g = ddc();
        let exploration = explore(&g, &ExplorerConfig::new(16e6, 50)).unwrap();
        for solution in exploration.frontier.iter().chain([&exploration.best]) {
            let (graph, mapping) = solution.realize(&g).unwrap();
            assert!(mapping.validate(&graph).is_empty());
            let requirements = mapping.requirements(&graph, 16e6).unwrap();
            for (req, col) in requirements.iter().zip(&solution.columns) {
                assert!(
                    (req.frequency_mhz - col.frequency_mhz).abs()
                        < 1e-6 * col.frequency_mhz.max(1.0),
                    "{}: {} vs {}",
                    col.name,
                    req.frequency_mhz,
                    col.frequency_mhz
                );
            }
        }
    }

    #[test]
    fn budget_too_small_is_reported() {
        let g = ddc();
        let err = explore(&g, &ExplorerConfig::new(16e6, 3).single_actor_columns()).unwrap_err();
        assert!(matches!(
            err,
            ExplorerError::BudgetTooSmall {
                min_groups: 5,
                budget: 3
            }
        ));
        assert!(err.to_string().contains('5'));
    }

    #[test]
    fn failed_explorations_emit_structured_rejections() {
        use std::sync::Arc;
        use synchro_trace::RingBufferSink;

        let g = ddc();
        let ring = Arc::new(RingBufferSink::new(64));
        let config = ExplorerConfig::new(16e6, 3)
            .single_actor_columns()
            .with_trace(Trace::to(ring.clone()));
        let err = explore(&g, &config).unwrap_err();
        assert_eq!(err.code(), "budget_too_small");
        let rejects: Vec<(&'static str, String)> = ring
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RouteReject { code, detail } => Some((*code, detail.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(rejects.len(), 1);
        assert_eq!(rejects[0].0, "budget_too_small");
        assert!(rejects[0].1.contains("tile budget 3"));
    }

    #[test]
    fn evaluate_mapping_rejects_malformed_mappings() {
        let g = ddc();
        let config = ExplorerConfig::new(16e6, 50);
        let mut over = Mapping::new();
        for (i, tiles) in [8u32, 8, 9, 16, 16].into_iter().enumerate() {
            over.place(ActorId(i), tiles, 1.0); // comb cap is 4
        }
        assert!(matches!(
            evaluate_mapping(&g, &over, &config),
            Err(ExplorerError::InvalidMapping { .. })
        ));
        let mut partial = Mapping::new();
        partial.place(ActorId(0), 8, 1.0);
        assert!(matches!(
            evaluate_mapping(&g, &partial, &config),
            Err(ExplorerError::IncompleteMapping { .. })
        ));
    }

    #[test]
    fn threads_do_not_change_the_result() {
        let g = ddc();
        let one = explore(&g, &ExplorerConfig::new(16e6, 50).with_threads(1)).unwrap();
        let many = explore(&g, &ExplorerConfig::new(16e6, 50).with_threads(8)).unwrap();
        assert_eq!(one.best.allocation(), many.best.allocation());
        assert_eq!(one.best.power_mw.to_bits(), many.best.power_mw.to_bits());
        assert_eq!(one.curve.len(), many.curve.len());
        assert_eq!(one.stats.mappings_evaluated, many.stats.mappings_evaluated);
    }

    #[test]
    fn backward_edges_disable_fusion_so_winners_stay_realizable() {
        // A valid DAG whose actor-id order is not topological: a0 → a2 → a1.
        // Fusing the index-adjacent (but dataflow-non-adjacent) a0+a1
        // would cluster into a deadlocked cycle, so the search must fall
        // back to single-actor columns.
        let mut g = SdfGraph::new();
        let a0 = g.add_actor("a0", 100, 8);
        let a1 = g.add_actor("a1", 150, 8);
        let a2 = g.add_actor("a2", 120, 8);
        g.add_edge(a0, a2, 1, 1, 0).unwrap();
        g.add_edge(a2, a1, 1, 1, 0).unwrap();
        let exploration = explore(&g, &ExplorerConfig::new(1e6, 12)).unwrap();
        for solution in exploration.curve.iter().chain([&exploration.best]) {
            assert!(solution.is_single_actor_columns());
            let (graph, mapping) = solution.realize(&g).unwrap();
            assert!(graph.schedule().is_ok());
            assert!(mapping.validate(&graph).is_empty());
        }
    }

    #[test]
    fn infeasible_budgets_return_flagged_solutions() {
        // One serial actor that needs far more than the envelope allows.
        let mut g = SdfGraph::new();
        g.add_actor("serial", 5_000, 1);
        let exploration = explore(&g, &ExplorerConfig::new(1e6, 4)).unwrap();
        assert!(!exploration.best.feasible);
        assert!(exploration.best.columns[0].voltage > 1.7);
    }

    #[test]
    fn single_voltage_policy_costs_at_least_per_column() {
        let g = ddc();
        let per_column = ExplorerConfig::new(16e6, 50).single_actor_columns();
        let single = per_column
            .clone()
            .with_voltage_policy(VoltagePolicy::SingleVoltage);
        let pc = explore(&g, &per_column).unwrap();
        let sv = explore(&g, &single).unwrap();
        // Same mapping structure at the reference budget, higher cost.
        let pc50 = pc.solution_for_tiles(50).unwrap();
        let sv50 = sv.solution_for_tiles(50).unwrap();
        assert_eq!(pc50.allocation(), sv50.allocation());
        assert!(sv50.power_mw > pc50.power_mw);
        // Every column runs at the chip-wide maximum required voltage.
        let shared = pc50.columns.iter().map(|c| c.voltage).fold(0.0, f64::max);
        for col in &sv50.columns {
            assert!((col.voltage - shared).abs() < 1e-12, "{}", col.name);
        }
        // Frequencies are unchanged — only the supply moved.
        assert_eq!(pc50.frequencies_mhz(), sv50.frequencies_mhz());
        // evaluate_mapping prices the reference mapping identically.
        let reference = evaluate_mapping(&g, &ddc_reference_mapping(&g), &single).unwrap();
        assert!((reference.power_mw - sv50.power_mw).abs() < 1e-9);
    }

    #[test]
    fn reference_comm_configuration_keeps_table4_points_schedulable() {
        // The DDC moves 10 words per iteration; the reference bus (one
        // split at 400 MHz over 16 M iterations/s → 25 slots) must keep
        // the Table 4 operating point intact.
        let g = ddc();
        let comm = CommSpec::from_clock(1, 400e6, 16e6);
        assert_eq!(comm.period, 25);
        let config = ExplorerConfig::new(16e6, 50)
            .single_actor_columns()
            .with_comm(comm);
        let exploration = explore(&g, &config).unwrap();
        assert_eq!(exploration.stats.groupings_comm_pruned, 0);
        let at_budget = exploration.solution_for_tiles(50).expect("50 reachable");
        assert_eq!(at_budget.allocation(), vec![8, 8, 2, 16, 16]);
        // A frame too small for the 10 words rejects the whole
        // single-actor space as communication-infeasible.
        let narrow = ExplorerConfig::new(16e6, 50)
            .single_actor_columns()
            .with_comm(CommSpec::new(1, 6));
        assert!(matches!(
            explore(&g, &narrow),
            Err(ExplorerError::CommInfeasible {
                capacity: 6,
                pruned: 1
            })
        ));
        // With fusion allowed, the search routes around the narrow bus by
        // fusing the rate-changing front end.
        let fused = explore(
            &g,
            &ExplorerConfig::new(16e6, 50).with_comm(CommSpec::new(1, 6)),
        )
        .unwrap();
        assert!(fused.stats.groupings_comm_pruned > 0);
        assert!(!fused.best.is_single_actor_columns());
    }

    #[test]
    fn bus_width_sweep_exposes_the_feasibility_knee() {
        let g = ddc();
        let config = ExplorerConfig::new(16e6, 50).single_actor_columns();
        // Period 6: a single split (6 slots) cannot carry the 10 words,
        // two splits (12 slots) can.
        let points = explore_bus_widths(&g, &config, CommSpec::new(1, 6), &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        assert!(matches!(
            points[0].outcome,
            Err(ExplorerError::CommInfeasible { .. })
        ));
        for point in &points[1..] {
            let exploration = point.outcome.as_ref().expect("wide enough");
            assert!(exploration.best.feasible);
        }
        assert_eq!(points[2].comm.splits, 4);
        // Segment groups widen the optimistic capacity the same way.
        assert_eq!(CommSpec::new(1, 6).with_segment_groups(2).capacity(), 12);
    }

    #[test]
    fn stats_count_work_and_record_threads() {
        let g = ddc();
        let exploration = explore(&g, &ExplorerConfig::new(16e6, 50).with_threads(2)).unwrap();
        assert!(exploration.stats.mappings_evaluated > 0);
        assert!(exploration.stats.groupings_examined >= 1);
        assert_eq!(exploration.stats.threads_used, 2);
        assert!(exploration.stats.elapsed_seconds >= 0.0);
    }

    #[test]
    fn budget_sweep_matches_fresh_explores_bit_for_bit() {
        let g = ddc();
        let config = ExplorerConfig::new(16e6, 50).single_actor_columns();
        let budgets = [50u32, 40, 24, 3];
        let points = explore_budget_sweep(&g, &config, &budgets);
        assert_eq!(points.len(), budgets.len());
        for (point, &budget) in points.iter().zip(&budgets) {
            assert_eq!(point.budget, budget);
            let fresh = explore(
                &g,
                &ExplorerConfig {
                    tile_budget: budget,
                    ..config.clone()
                },
            );
            match (&point.outcome, &fresh) {
                (Ok(swept), Ok(full)) => {
                    assert_eq!(
                        swept.best.power_mw.to_bits(),
                        full.best.power_mw.to_bits(),
                        "budget {budget}"
                    );
                    assert_eq!(swept.best.allocation(), full.best.allocation());
                    let curve = |e: &Exploration| {
                        e.curve
                            .iter()
                            .map(|s| (s.total_tiles, s.power_mw.to_bits()))
                            .collect::<Vec<_>>()
                    };
                    assert_eq!(curve(swept), curve(full));
                }
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                (a, b) => panic!("budget {budget}: sweep {a:?} vs fresh {b:?}"),
            }
        }
        assert!(matches!(
            points[3].outcome,
            Err(ExplorerError::BudgetTooSmall { .. })
        ));
    }

    #[test]
    fn board_of_one_matches_the_single_chip_explorer() {
        let g = ddc();
        let config = ExplorerConfig::new(16e6, 50).with_board(BoardSearch::new(1));
        let board = explore_board(&g, &config).unwrap();
        assert_eq!(board.chip_count(), 1);
        assert_eq!(board.bridge_words_per_iteration, 0);
        assert_eq!((board.chips[0].start, board.chips[0].end), (0, 5));
        // A one-chip board degenerates to the single-chip single-actor
        // search, bit for bit.
        let single = explore(&g, &ExplorerConfig::new(16e6, 50).single_actor_columns()).unwrap();
        assert_eq!(
            board.chips[0].solution.power_mw.to_bits(),
            single.best.power_mw.to_bits()
        );
        assert_eq!(
            board.chips[0].solution.allocation(),
            single.best.allocation()
        );
        let mapping = board.mapping();
        assert_eq!(mapping.chips(), 1);
        assert!(mapping.validate_on_board(&g, 1).is_empty());
    }

    #[test]
    fn board_splits_a_comm_starved_graph_across_two_chips() {
        // The single-actor DDC needs 10 cross words per iteration; a
        // 6-slot frame rejects every single-chip mapping (see
        // `reference_comm_configuration_keeps_table4_points_schedulable`)
        // but a 2-chip split routes the worst boundary over a bridge.
        let comm = CommSpec::new(1, 6);
        let config = ExplorerConfig::new(16e6, 50)
            .single_actor_columns()
            .with_comm(comm)
            .with_board(BoardSearch::new(2));
        let board = explore_board(&ddc(), &config).unwrap();
        assert_eq!(board.chip_count(), 2);
        // The winner is the best balanced split whose chips both fit the
        // frame: mixer+integrator on chip 0 (no internal traffic beyond
        // the fused front end), the rest on chip 1 (6 words ≤ 6 slots),
        // with the 4-word rate-change boundary on the bridge.
        assert_eq!((board.chips[0].start, board.chips[0].end), (0, 2));
        assert_eq!((board.chips[1].start, board.chips[1].end), (2, 5));
        assert_eq!(board.bridge_words_per_iteration, 4);
        assert!(board.splits_tried >= 2, "cheaper cuts are tried first");
        for chip in &board.chips {
            assert!(chip.solution.feasible);
        }
        assert!(board.total_tiles() > 0);
        assert!(board.total_power_mw() > 0.0);
        let mapping = board.mapping();
        assert_eq!(mapping.chips(), 2);
        assert_eq!(mapping.placements().len(), 5);
        assert!(mapping.validate_on_board(&ddc(), 2).is_empty());
        // The chip-local actor ids recover the original actors: chip 1's
        // first column is the CIC comb (global actor 2).
        assert_eq!(mapping.placements()[2].actor, ActorId(2));
        assert_eq!(mapping.placements()[2].chip, 1);
    }

    #[test]
    fn board_search_reports_exhaustion_and_respects_bridge_capacity() {
        // No frame capacity at all: every split leaves some chip with
        // internal traffic, so the whole board space is infeasible.
        let starved = ExplorerConfig::new(16e6, 50)
            .single_actor_columns()
            .with_comm(CommSpec::new(1, 0))
            .with_board(BoardSearch::new(2));
        let err = explore_board(&ddc(), &starved).unwrap_err();
        assert!(matches!(
            err,
            ExplorerError::BoardInfeasible { max_chips: 2, .. }
        ));
        assert!(err.to_string().contains("2 chip"));
        // A zero-capacity bridge prunes every multi-chip split before it
        // is attempted: only the (infeasible) single-chip split is tried.
        let bridgeless = ExplorerConfig::new(16e6, 50)
            .single_actor_columns()
            .with_comm(CommSpec::new(1, 6))
            .with_board(BoardSearch::new(4).with_bridge_capacity(0));
        let err = explore_board(&ddc(), &bridgeless).unwrap_err();
        assert!(matches!(
            err,
            ExplorerError::BoardInfeasible {
                max_chips: 4,
                splits_tried: 1
            }
        ));
    }

    #[test]
    fn board_chips_preserve_global_firing_rates() {
        // Chip 0 hosts the 4×-rate front end (mixer + integrator fire
        // four times per graph iteration): its subgraph's repetition
        // vector normalises to [1, 1], so its sub-exploration must run
        // at 4 × 16 MHz for the actors to keep their global work rates.
        // Every column's frequency must therefore equal the actor's
        // whole-graph work (cycles × repetitions × 16 MHz) over its
        // tiles, exactly as on a single chip.
        let comm = CommSpec::new(1, 6);
        let config = ExplorerConfig::new(16e6, 50)
            .single_actor_columns()
            .with_comm(comm)
            .with_board(BoardSearch::new(2));
        let board = explore_board(&ddc(), &config).unwrap();
        let cycles = [15.0f64, 25.0, 5.0, 380.0, 370.0];
        let reps = [4.0f64, 4.0, 1.0, 1.0, 1.0];
        for chip in &board.chips {
            for col in &chip.solution.columns {
                let global = chip.start + col.actors[0].0;
                let want = cycles[global] * reps[global] * 16.0 / col.tiles as f64;
                assert!(
                    (col.frequency_mhz - want).abs() < 1e-6 * want,
                    "actor {global}: {} vs {want}",
                    col.frequency_mhz
                );
            }
        }
    }
}
