//! Multi-chip boards: bridge-aware flow derivation and TDM scheduling.
//!
//! A [`BoardSpec`] generalizes a single [`BusSpec`](crate::BusSpec) to a
//! board of N Synchroscalar chips joined by directed chip-to-chip
//! [`BridgeLane`]s.  Intra-chip traffic is scheduled exactly as on a
//! single chip (one [`RouteSchedule`](crate::RouteSchedule) per chip);
//! inter-chip traffic is packed onto the bridge lanes with the same
//! deterministic greedy first-fit discipline, producing a conflict-free
//! periodic [`BridgeSchedule`].  A board of one chip compiles to exactly
//! the single-chip schedule — the legacy path is a thin wrapper over this
//! one, which the equivalence tests pin bit for bit.

use crate::{BusSpec, ColumnFlow, RouteError, RouteSchedule};
use synchro_sdf::{Mapping, SdfGraph};

/// One directed chip-to-chip bridge lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BridgeLane {
    /// Producing chip.
    pub from: usize,
    /// Consuming chip.
    pub to: usize,
    /// Words the lane carries per bridge cycle.
    pub width_words: u64,
    /// Fixed hop latency in bridge cycles (reported by the simulator's
    /// bridge replay; it does not consume slot capacity).
    pub latency_cycles: u64,
    /// Energy to move one word across the lane, in picojoules (bridges are
    /// rated per word, unlike the on-chip bus whose energy follows wire
    /// capacitance and supply voltage).
    pub energy_pj_per_word: f64,
}

/// Description of a board: per-chip buses plus the bridge lanes joining
/// them and the shared bridge TDM period (bridge cycles per graph
/// iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSpec {
    chips: Vec<BusSpec>,
    lanes: Vec<BridgeLane>,
    bridge_period: u64,
}

impl BoardSpec {
    /// A board with explicit lanes.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] for an empty board, a lane
    /// whose endpoints fall outside the board or coincide, or a zero-width
    /// lane.
    pub fn new(
        chips: Vec<BusSpec>,
        lanes: Vec<BridgeLane>,
        bridge_period: u64,
    ) -> Result<Self, RouteError> {
        if chips.is_empty() {
            return Err(RouteError::InvalidSpec {
                reason: "a board needs at least one chip",
            });
        }
        for lane in &lanes {
            if lane.from >= chips.len() || lane.to >= chips.len() {
                return Err(RouteError::InvalidSpec {
                    reason: "bridge lane endpoint outside the board",
                });
            }
            if lane.from == lane.to {
                return Err(RouteError::InvalidSpec {
                    reason: "bridge lane joins a chip to itself",
                });
            }
            if lane.width_words == 0 {
                return Err(RouteError::InvalidSpec {
                    reason: "bridge lane needs a non-zero width",
                });
            }
        }
        Ok(BoardSpec {
            chips,
            lanes,
            bridge_period,
        })
    }

    /// A board of one chip with no bridge lanes — the legacy single-chip
    /// configuration expressed in board form.
    pub fn single(chip: BusSpec) -> Self {
        BoardSpec {
            chips: vec![chip],
            lanes: Vec::new(),
            bridge_period: 0,
        }
    }

    /// A fully connected board: one lane per ordered chip pair, all with
    /// the same width, latency and energy.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] for an empty board or zero
    /// width.
    pub fn full(
        chips: Vec<BusSpec>,
        width_words: u64,
        latency_cycles: u64,
        energy_pj_per_word: f64,
        bridge_period: u64,
    ) -> Result<Self, RouteError> {
        let n = chips.len();
        let mut lanes = Vec::new();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    lanes.push(BridgeLane {
                        from,
                        to,
                        width_words,
                        latency_cycles,
                        energy_pj_per_word,
                    });
                }
            }
        }
        Self::new(chips, lanes, bridge_period)
    }

    /// A linear board: lanes between adjacent chips only, in both
    /// directions — non-adjacent traffic is unroutable and reports
    /// [`RouteError::BridgeOversubscribed`] with capacity 0.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] for an empty board or zero
    /// width.
    pub fn linear(
        chips: Vec<BusSpec>,
        width_words: u64,
        latency_cycles: u64,
        energy_pj_per_word: f64,
        bridge_period: u64,
    ) -> Result<Self, RouteError> {
        let n = chips.len();
        let mut lanes = Vec::new();
        for left in 0..n.saturating_sub(1) {
            for (from, to) in [(left, left + 1), (left + 1, left)] {
                lanes.push(BridgeLane {
                    from,
                    to,
                    width_words,
                    latency_cycles,
                    energy_pj_per_word,
                });
            }
        }
        Self::new(chips, lanes, bridge_period)
    }

    /// The board that survives `faults`: failed lanes are removed and
    /// degraded lanes have their width clamped to the fault's cap (a cap
    /// of zero removes the lane) — so the scheduler never places a slot on
    /// dead or over-rated bridge hardware.  Chips and the bridge period
    /// are untouched; per-chip split loss is the bus compiler's dimension
    /// and is applied when the [`BusSpec`]s are built.
    #[must_use]
    pub fn apply_faults(&self, faults: &synchro_sdf::FaultSpec) -> BoardSpec {
        let lanes = self
            .lanes
            .iter()
            .filter(|lane| !faults.lane_failed(lane.from, lane.to))
            .filter_map(|lane| {
                let width = match faults.lane_width_limit(lane.from, lane.to) {
                    Some(cap) => lane.width_words.min(u64::from(cap)),
                    None => lane.width_words,
                };
                (width > 0).then_some(BridgeLane {
                    width_words: width,
                    ..*lane
                })
            })
            .collect();
        BoardSpec {
            chips: self.chips.clone(),
            lanes,
            bridge_period: self.bridge_period,
        }
    }

    /// The per-chip bus descriptions.
    pub fn chips(&self) -> &[BusSpec] {
        &self.chips
    }

    /// The bridge lanes.
    pub fn lanes(&self) -> &[BridgeLane] {
        &self.lanes
    }

    /// Bridge cycles per graph iteration (the bridge TDM period).
    pub fn bridge_period(&self) -> u64 {
        self.bridge_period
    }

    /// Words per period the lanes from `from` to `to` can carry in total.
    pub fn bridge_capacity_between(&self, from: usize, to: usize) -> u64 {
        self.lanes
            .iter()
            .filter(|l| l.from == from && l.to == to)
            .map(|l| l.width_words.saturating_mul(self.bridge_period))
            .fold(0, u64::saturating_add)
    }
}

/// One inter-chip flow: the words one SDF edge moves between columns of
/// two different chips per graph iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeFlow {
    /// Index of the originating SDF edge.
    pub edge: usize,
    /// Producing chip.
    pub from_chip: usize,
    /// Producing column on that chip.
    pub from_column: usize,
    /// Consuming chip.
    pub to_chip: usize,
    /// Consuming column on that chip.
    pub to_column: usize,
    /// Words crossing per graph iteration.
    pub words: u64,
}

/// One slot assignment of a bridge schedule: `cycles` back-to-back bridge
/// cycles on one lane, starting at `cycle` within the period, carrying
/// `words` words of one flow (`words ≤ cycles × width_words`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeSlot {
    /// Index of the lane (into [`BoardSpec::lanes`]).
    pub lane: usize,
    /// First bridge cycle of the slot within the period.
    pub cycle: u64,
    /// Back-to-back bridge cycles the slot occupies.
    pub cycles: u64,
    /// Words the slot carries.
    pub words: u64,
    /// The SDF edge the words belong to.
    pub edge: usize,
}

/// A compiled, conflict-free periodic TDM schedule for the bridge lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct BridgeSchedule {
    lanes: Vec<BridgeLane>,
    period: u64,
    slots: Vec<BridgeSlot>,
}

impl BridgeSchedule {
    /// The lanes the schedule was compiled against.
    pub fn lanes(&self) -> &[BridgeLane] {
        &self.lanes
    }

    /// Bridge cycles per graph iteration.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The slot assignments, in compilation order.
    pub fn slots(&self) -> &[BridgeSlot] {
        &self.slots
    }

    /// Total bridge cycles occupied per period.
    pub fn occupied_slots(&self) -> u64 {
        self.slots.iter().map(|s| s.cycles).sum()
    }

    /// Total bridge cycles reserved per period (`lanes × period`).
    pub fn scheduled_slots(&self) -> u64 {
        (self.lanes.len() as u64).saturating_mul(self.period)
    }

    /// Reserved-but-idle bridge cycles per period.
    pub fn idle_slots(&self) -> u64 {
        self.scheduled_slots().saturating_sub(self.occupied_slots())
    }

    /// Fraction of the bridge frame that carries words (0.0 when empty).
    pub fn utilization(&self) -> f64 {
        let frame = self.scheduled_slots();
        if frame == 0 {
            0.0
        } else {
            self.occupied_slots() as f64 / frame as f64
        }
    }

    /// Words moved per period across all lanes.
    pub fn words(&self) -> u64 {
        self.slots.iter().map(|s| s.words).sum()
    }

    /// Words the schedule moves for SDF edge `edge` per period.
    pub fn words_for_edge(&self, edge: usize) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.edge == edge)
            .map(|s| s.words)
            .sum()
    }

    /// Words the schedule moves from chip `from` to chip `to` per period.
    pub fn words_between(&self, from: usize, to: usize) -> u64 {
        self.slots
            .iter()
            .filter(|s| {
                let lane = self.lanes[s.lane];
                lane.from == from && lane.to == to
            })
            .map(|s| s.words)
            .sum()
    }

    /// Check the schedule's structural invariants: every slot fits its
    /// lane's width, stays inside the period, and no two slots of the same
    /// lane overlap in time.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] naming the violated invariant
    /// (only reachable through a hand-built schedule) or
    /// [`RouteError::PeriodOverflow`] for a slot past the period.
    pub fn validate(&self) -> Result<(), RouteError> {
        let mut by_lane: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.lanes.len()];
        for slot in &self.slots {
            let Some(lane) = self.lanes.get(slot.lane) else {
                return Err(RouteError::InvalidSpec {
                    reason: "bridge slot references a lane outside the board",
                });
            };
            if slot.words > slot.cycles.saturating_mul(lane.width_words) {
                return Err(RouteError::InvalidSpec {
                    reason: "bridge slot carries more words than its cycles allow",
                });
            }
            if slot.cycle.saturating_add(slot.cycles) > self.period {
                return Err(RouteError::PeriodOverflow {
                    demand: slot.cycle.saturating_add(slot.cycles),
                    capacity: self.period,
                });
            }
            by_lane[slot.lane].push((slot.cycle, slot.cycles));
        }
        for intervals in &mut by_lane {
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                if pair[0].0 + pair[0].1 > pair[1].0 {
                    return Err(RouteError::InvalidSpec {
                        reason: "bridge slots overlap on a lane",
                    });
                }
            }
        }
        Ok(())
    }
}

/// A fully compiled board route: one conflict-free intra-chip schedule
/// per chip plus the bridge schedule for inter-chip traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardRoute {
    spec: BoardSpec,
    chips: Vec<RouteSchedule>,
    bridge: BridgeSchedule,
}

impl BoardRoute {
    /// The board description the route was compiled against.
    pub fn spec(&self) -> &BoardSpec {
        &self.spec
    }

    /// The per-chip intra-chip schedules (index = chip).
    pub fn chips(&self) -> &[RouteSchedule] {
        &self.chips
    }

    /// The bridge schedule.
    pub fn bridge(&self) -> &BridgeSchedule {
        &self.bridge
    }
}

/// Derive the per-iteration flows of a chip-qualified `(graph, mapping)`
/// pair, split into intra-chip column flows (one vector per chip, columns
/// numbered by placement order *within* that chip) and inter-chip bridge
/// flows.
///
/// A mapping that places everything on chip 0 yields exactly
/// [`column_flows`](crate::column_flows) in its single intra-chip vector
/// and no bridge flows — the identity the board-of-one equivalence tests
/// pin.
///
/// # Errors
///
/// Propagates rate-consistency errors and reports
/// [`RouteError::BadPlacement`] when an actor is unplaced or placed twice.
pub fn board_flows(
    graph: &SdfGraph,
    mapping: &Mapping,
) -> Result<(Vec<Vec<ColumnFlow>>, Vec<BridgeFlow>), RouteError> {
    let tokens = graph.tokens_per_iteration()?;
    let chips = mapping.chips();
    // (chip, column-within-chip) of every actor.
    let mut seat_of_actor: Vec<Option<(usize, usize)>> = vec![None; graph.actors().len()];
    let mut columns_on_chip = vec![0usize; chips];
    for p in mapping.placements() {
        if p.actor.0 >= graph.actors().len() {
            return Err(RouteError::BadPlacement { actor: p.actor.0 });
        }
        let column = columns_on_chip[p.chip];
        columns_on_chip[p.chip] += 1;
        if seat_of_actor[p.actor.0].replace((p.chip, column)).is_some() {
            return Err(RouteError::BadPlacement { actor: p.actor.0 });
        }
    }
    if let Some(unplaced) = seat_of_actor.iter().position(Option::is_none) {
        return Err(RouteError::BadPlacement { actor: unplaced });
    }
    let mut intra: Vec<Vec<ColumnFlow>> = vec![Vec::new(); chips];
    let mut bridge = Vec::new();
    for (edge, e) in graph.edges().iter().enumerate() {
        let (from_chip, from_column) = seat_of_actor[e.from.0].expect("checked above");
        let (to_chip, to_column) = seat_of_actor[e.to.0].expect("checked above");
        if from_chip == to_chip {
            if from_column != to_column {
                intra[from_chip].push(ColumnFlow {
                    edge,
                    from: from_column,
                    to: to_column,
                    words: tokens[edge],
                });
            }
        } else {
            bridge.push(BridgeFlow {
                edge,
                from_chip,
                from_column,
                to_chip,
                to_column,
                words: tokens[edge],
            });
        }
    }
    Ok((intra, bridge))
}

/// Compile a chip-qualified `(graph, mapping)` pair against a board:
/// every chip's intra-chip flows become a conflict-free
/// [`RouteSchedule`](crate::RouteSchedule) on that chip's bus (exactly as
/// [`compile`](crate::compile) would on a single chip), and the
/// inter-chip flows are packed onto the bridge lanes by the same greedy
/// earliest-cursor first-fit, splitting a flow across parallel lanes of
/// its direction when one lane's frame runs out.
///
/// # Errors
///
/// * intra-chip errors propagate verbatim from
///   [`compile_flows`](crate::compile_flows) (so a board of one chip
///   fails exactly like the legacy path),
/// * [`RouteError::BridgeOversubscribed`] — one directed chip pair's
///   traffic exceeds its lanes' word capacity (capacity 0 when the board
///   has no lane in that direction),
/// * [`RouteError::InvalidSpec`] — the mapping references more chips than
///   the board has, or a flow references a column outside its chip's bus.
pub fn compile_board(
    graph: &SdfGraph,
    mapping: &Mapping,
    spec: &BoardSpec,
) -> Result<BoardRoute, RouteError> {
    compile_board_traced(graph, mapping, spec, &synchro_trace::Trace::off())
}

/// [`compile_board`] with observability: a `route.compile_board` phase
/// span, per-chip [`TraceEvent`](synchro_trace::TraceEvent) route slots, a
/// `route.bridge_slots` counter for the bridge packing, and a structured
/// reject event on failure.
///
/// # Errors
///
/// Exactly those of [`compile_board`].
pub fn compile_board_traced(
    graph: &SdfGraph,
    mapping: &Mapping,
    spec: &BoardSpec,
    trace: &synchro_trace::Trace,
) -> Result<BoardRoute, RouteError> {
    let _span = trace.span("route.compile_board");
    let result = compile_board_inner(graph, mapping, spec, trace);
    crate::reject_on_err(trace, &result);
    result
}

fn compile_board_inner(
    graph: &SdfGraph,
    mapping: &Mapping,
    spec: &BoardSpec,
    trace: &synchro_trace::Trace,
) -> Result<BoardRoute, RouteError> {
    let (intra, bridge_flows) = board_flows(graph, mapping)?;
    if intra.len() > spec.chips.len() {
        return Err(RouteError::InvalidSpec {
            reason: "mapping places actors beyond the board's chips",
        });
    }
    let mut chips = Vec::with_capacity(spec.chips.len());
    for (chip, bus) in spec.chips.iter().enumerate() {
        let flows = intra.get(chip).map(Vec::as_slice).unwrap_or(&[]);
        chips.push(crate::compile_flows_inner(flows, bus, trace)?);
    }

    // Fast fail per directed chip pair: total words must fit the
    // direction's word capacity (lanes × width × period).
    let mut demand_between: Vec<(usize, usize, u64)> = Vec::new();
    for f in &bridge_flows {
        match demand_between
            .iter_mut()
            .find(|(from, to, _)| *from == f.from_chip && *to == f.to_chip)
        {
            Some((_, _, words)) => *words += f.words,
            None => demand_between.push((f.from_chip, f.to_chip, f.words)),
        }
    }
    for &(from_chip, to_chip, demand) in &demand_between {
        let capacity = spec.bridge_capacity_between(from_chip, to_chip);
        if demand > capacity {
            return Err(RouteError::BridgeOversubscribed {
                from_chip,
                to_chip,
                demand,
                capacity,
            });
        }
    }

    // Greedy earliest-cursor first-fit over each direction's lanes, in
    // flow input order, mirroring the intra-chip packing discipline.
    let mut cursors = vec![0u64; spec.lanes.len()];
    let mut slots = Vec::new();
    for flow in &bridge_flows {
        let mut remaining = flow.words;
        while remaining > 0 {
            let mut best: Option<usize> = None;
            for (lane, l) in spec.lanes.iter().enumerate() {
                if l.from == flow.from_chip && l.to == flow.to_chip {
                    let earlier = best.is_none_or(|b| cursors[lane] < cursors[b]);
                    if earlier {
                        best = Some(lane);
                    }
                }
            }
            let lane = best.expect("capacity check found a lane for the direction");
            let free_cycles = spec.bridge_period.saturating_sub(cursors[lane]);
            let width = spec.lanes[lane].width_words;
            let free_words = free_cycles.saturating_mul(width);
            if free_words == 0 {
                // Fragmentation left the direction's lanes without room
                // even though the word-capacity pre-check passed.
                return Err(RouteError::BridgeOversubscribed {
                    from_chip: flow.from_chip,
                    to_chip: flow.to_chip,
                    demand: remaining,
                    capacity: 0,
                });
            }
            let words = remaining.min(free_words);
            let cycles = words.div_ceil(width);
            slots.push(BridgeSlot {
                lane,
                cycle: cursors[lane],
                cycles,
                words,
                edge: flow.edge,
            });
            cursors[lane] += cycles;
            remaining -= words;
        }
    }
    trace.counter("route.bridge_slots", slots.len() as u64);
    let bridge = BridgeSchedule {
        lanes: spec.lanes.clone(),
        period: spec.bridge_period,
        slots,
    };
    bridge.validate().expect("compiled schedules are valid");
    Ok(BoardRoute {
        spec: spec.clone(),
        chips,
        bridge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{column_flows, compile};
    use synchro_sdf::{ActorId, Mapping, SdfGraph};

    /// A 4-stage 1:1 chain, 2 words per edge.
    fn chain4() -> SdfGraph {
        let mut g = SdfGraph::new();
        let ids: Vec<_> = (0..4)
            .map(|i| g.add_actor(format!("s{i}"), 10 + i as u64, 8))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 2, 2, 0).unwrap();
        }
        g
    }

    fn split_mapping(boundary: usize) -> Mapping {
        let mut m = Mapping::new();
        for a in 0..4 {
            let chip = usize::from(a >= boundary);
            m.place_on_chip(chip, ActorId(a), 2, 1.0);
        }
        m
    }

    fn two_chip_board() -> BoardSpec {
        let chips = vec![
            BusSpec::broadcast(2, 1, 16).unwrap(),
            BusSpec::broadcast(2, 1, 16).unwrap(),
        ];
        BoardSpec::full(chips, 1, 2, 1.5, 8).unwrap()
    }

    #[test]
    fn apply_faults_removes_failed_lanes_and_clamps_degraded_widths() {
        let spec = two_chip_board();
        assert_eq!(spec.lanes().len(), 2);

        let mut faults = synchro_sdf::FaultSpec::none();
        faults.fail_lane(0, 1);
        let degraded = spec.apply_faults(&faults);
        assert_eq!(degraded.lanes().len(), 1);
        assert_eq!((degraded.lanes()[0].from, degraded.lanes()[0].to), (1, 0));
        assert_eq!(degraded.chips(), spec.chips());
        assert_eq!(degraded.bridge_period(), spec.bridge_period());

        // A width cap shrinks a wide lane; a zero cap removes it outright.
        let wide = BoardSpec::full(
            vec![
                BusSpec::broadcast(2, 1, 16).unwrap(),
                BusSpec::broadcast(2, 1, 16).unwrap(),
            ],
            4,
            2,
            1.5,
            8,
        )
        .unwrap();
        let mut caps = synchro_sdf::FaultSpec::none();
        caps.degrade_lane(0, 1, 1).degrade_lane(1, 0, 0);
        let capped = wide.apply_faults(&caps);
        assert_eq!(capped.lanes().len(), 1);
        assert_eq!((capped.lanes()[0].from, capped.lanes()[0].to), (0, 1));
        assert_eq!(capped.lanes()[0].width_words, 1);

        // No faults: the board is unchanged.
        assert_eq!(spec.apply_faults(&synchro_sdf::FaultSpec::none()), spec);
    }

    #[test]
    fn faulted_board_rejects_traffic_needing_the_dead_lane() {
        let g = chain4();
        let m = split_mapping(2);
        let mut faults = synchro_sdf::FaultSpec::none();
        faults.fail_lane(0, 1);
        let spec = two_chip_board().apply_faults(&faults);
        let err = compile_board(&g, &m, &spec).unwrap_err();
        assert!(matches!(
            err,
            RouteError::BridgeOversubscribed {
                from_chip: 0,
                to_chip: 1,
                capacity: 0,
                ..
            }
        ));
        assert!(err.is_resource_exhaustion());
    }

    #[test]
    fn board_flows_split_intra_and_inter_chip_traffic() {
        let g = chain4();
        let m = split_mapping(2);
        let (intra, bridge) = board_flows(&g, &m).unwrap();
        assert_eq!(intra.len(), 2);
        // Edge 0 stays on chip 0 (columns 0→1), edge 2 on chip 1.
        assert_eq!(
            intra[0],
            vec![ColumnFlow {
                edge: 0,
                from: 0,
                to: 1,
                words: 2
            }]
        );
        assert_eq!(
            intra[1],
            vec![ColumnFlow {
                edge: 2,
                from: 0,
                to: 1,
                words: 2
            }]
        );
        // Edge 1 crosses the boundary.
        assert_eq!(
            bridge,
            vec![BridgeFlow {
                edge: 1,
                from_chip: 0,
                from_column: 1,
                to_chip: 1,
                to_column: 0,
                words: 2
            }]
        );
    }

    #[test]
    fn single_chip_board_flows_match_legacy_column_flows() {
        let g = chain4();
        let mut m = Mapping::new();
        for a in 0..4 {
            m.place(ActorId(a), 2, 1.0);
        }
        let (intra, bridge) = board_flows(&g, &m).unwrap();
        assert!(bridge.is_empty());
        assert_eq!(intra.len(), 1);
        assert_eq!(intra[0], column_flows(&g, &m).unwrap());
    }

    #[test]
    fn single_chip_board_compiles_bit_identically_to_legacy() {
        let g = chain4();
        let mut m = Mapping::new();
        for a in 0..4 {
            m.place(ActorId(a), 2, 1.0);
        }
        let bus = BusSpec::broadcast(4, 1, 16).unwrap();
        let legacy = compile(&g, &m, &bus).unwrap();
        let board = compile_board(&g, &m, &BoardSpec::single(bus)).unwrap();
        assert_eq!(board.chips().len(), 1);
        assert_eq!(board.chips()[0], legacy);
        assert!(board.bridge().slots().is_empty());
        assert_eq!(board.bridge().scheduled_slots(), 0);
    }

    #[test]
    fn two_chip_split_routes_the_boundary_edge_over_the_bridge() {
        let g = chain4();
        let m = split_mapping(2);
        let route = compile_board(&g, &m, &two_chip_board()).unwrap();
        for chip in route.chips() {
            chip.validate().unwrap();
        }
        route.bridge().validate().unwrap();
        assert_eq!(route.bridge().words(), 2);
        assert_eq!(route.bridge().words_between(0, 1), 2);
        assert_eq!(route.bridge().words_between(1, 0), 0);
        assert_eq!(route.bridge().words_for_edge(1), 2);
        // Width 1 → 2 words take 2 bridge cycles.
        assert_eq!(route.bridge().occupied_slots(), 2);
        assert_eq!(route.bridge().scheduled_slots(), 2 * 8);
        assert!((route.bridge().utilization() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn missing_lane_reports_capacity_zero() {
        let g = chain4();
        // Reverse the chain direction across a linear board by placing the
        // tail on chip 0 and the head on chip 1: edge 1 then runs 1→0,
        // which a linear board *does* serve — instead build a board whose
        // only lane runs 1→0 so 0→1 traffic has no lane.
        let chips = vec![
            BusSpec::broadcast(2, 1, 16).unwrap(),
            BusSpec::broadcast(2, 1, 16).unwrap(),
        ];
        let lanes = vec![BridgeLane {
            from: 1,
            to: 0,
            width_words: 1,
            latency_cycles: 1,
            energy_pj_per_word: 1.0,
        }];
        let board = BoardSpec::new(chips, lanes, 8).unwrap();
        let m = split_mapping(2);
        assert_eq!(
            compile_board(&g, &m, &board),
            Err(RouteError::BridgeOversubscribed {
                from_chip: 0,
                to_chip: 1,
                demand: 2,
                capacity: 0,
            })
        );
    }

    #[test]
    fn oversubscribed_bridge_reports_demand_and_capacity() {
        let g = chain4();
        let m = split_mapping(2);
        // Bridge period 1, width 1 → capacity 1 word < 2 demanded.
        let chips = vec![
            BusSpec::broadcast(2, 1, 16).unwrap(),
            BusSpec::broadcast(2, 1, 16).unwrap(),
        ];
        let board = BoardSpec::full(chips, 1, 2, 1.5, 1).unwrap();
        assert_eq!(
            compile_board(&g, &m, &board),
            Err(RouteError::BridgeOversubscribed {
                from_chip: 0,
                to_chip: 1,
                demand: 2,
                capacity: 1,
            })
        );
    }

    #[test]
    fn parallel_lanes_split_one_flow() {
        let g = chain4();
        let m = split_mapping(2);
        // Two parallel 0→1 lanes of width 1 with period 1: the 2-word
        // boundary flow must split one word per lane.
        let chips = vec![
            BusSpec::broadcast(2, 1, 16).unwrap(),
            BusSpec::broadcast(2, 1, 16).unwrap(),
        ];
        let lane = |from, to| BridgeLane {
            from,
            to,
            width_words: 1,
            latency_cycles: 1,
            energy_pj_per_word: 1.0,
        };
        let board = BoardSpec::new(chips, vec![lane(0, 1), lane(0, 1)], 1).unwrap();
        let route = compile_board(&g, &m, &board).unwrap();
        route.bridge().validate().unwrap();
        assert_eq!(route.bridge().slots().len(), 2);
        assert_eq!(route.bridge().slots()[0].lane, 0);
        assert_eq!(route.bridge().slots()[1].lane, 1);
        assert_eq!(route.bridge().words(), 2);
    }

    #[test]
    fn wide_lane_packs_words_per_cycle() {
        let g = chain4();
        let m = split_mapping(2);
        let chips = vec![
            BusSpec::broadcast(2, 1, 16).unwrap(),
            BusSpec::broadcast(2, 1, 16).unwrap(),
        ];
        // Width 2 → the 2-word flow fits one bridge cycle.
        let board = BoardSpec::full(chips, 2, 2, 1.5, 8).unwrap();
        let route = compile_board(&g, &m, &board).unwrap();
        assert_eq!(route.bridge().occupied_slots(), 1);
        assert_eq!(route.bridge().words(), 2);
    }

    #[test]
    fn invalid_boards_are_rejected() {
        assert!(BoardSpec::new(Vec::new(), Vec::new(), 8).is_err());
        let chip = BusSpec::broadcast(2, 1, 16).unwrap();
        let bad_endpoint = BridgeLane {
            from: 0,
            to: 5,
            width_words: 1,
            latency_cycles: 0,
            energy_pj_per_word: 1.0,
        };
        assert!(BoardSpec::new(vec![chip.clone()], vec![bad_endpoint], 8).is_err());
        let self_lane = BridgeLane {
            from: 0,
            to: 0,
            width_words: 1,
            latency_cycles: 0,
            energy_pj_per_word: 1.0,
        };
        assert!(BoardSpec::new(vec![chip.clone()], vec![self_lane], 8).is_err());
        let zero_width = BridgeLane {
            from: 0,
            to: 1,
            width_words: 0,
            latency_cycles: 0,
            energy_pj_per_word: 1.0,
        };
        assert!(BoardSpec::new(vec![chip.clone(), chip.clone()], vec![zero_width], 8).is_err());
        // A mapping spanning more chips than the board has.
        let g = chain4();
        let m = split_mapping(2);
        let board = BoardSpec::single(BusSpec::broadcast(4, 1, 16).unwrap());
        assert!(matches!(
            compile_board(&g, &m, &board),
            Err(RouteError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn bridge_validate_rejects_hand_built_conflicts() {
        let lanes = vec![BridgeLane {
            from: 0,
            to: 1,
            width_words: 1,
            latency_cycles: 0,
            energy_pj_per_word: 1.0,
        }];
        let overlap = BridgeSchedule {
            lanes: lanes.clone(),
            period: 8,
            slots: vec![
                BridgeSlot {
                    lane: 0,
                    cycle: 0,
                    cycles: 3,
                    words: 3,
                    edge: 0,
                },
                BridgeSlot {
                    lane: 0,
                    cycle: 2,
                    cycles: 1,
                    words: 1,
                    edge: 1,
                },
            ],
        };
        assert!(matches!(
            overlap.validate(),
            Err(RouteError::InvalidSpec { .. })
        ));
        let past_period = BridgeSchedule {
            lanes: lanes.clone(),
            period: 4,
            slots: vec![BridgeSlot {
                lane: 0,
                cycle: 3,
                cycles: 2,
                words: 2,
                edge: 0,
            }],
        };
        assert!(matches!(
            past_period.validate(),
            Err(RouteError::PeriodOverflow { .. })
        ));
        let over_width = BridgeSchedule {
            lanes,
            period: 8,
            slots: vec![BridgeSlot {
                lane: 0,
                cycle: 0,
                cycles: 1,
                words: 2,
                edge: 0,
            }],
        };
        assert!(matches!(
            over_width.validate(),
            Err(RouteError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn bridge_error_display_is_informative() {
        let e = RouteError::BridgeOversubscribed {
            from_chip: 0,
            to_chip: 2,
            demand: 9,
            capacity: 4,
        };
        let s = e.to_string();
        assert!(
            s.contains("0→2") && s.contains('9') && s.contains('4'),
            "{s}"
        );
    }
}
