//! Static TDM scheduling of inter-column communication over the segmented
//! horizontal bus (re-exported as `synchroscalar::router`).
//!
//! Synchroscalar's defining claim (Section 2.3 of the paper) is that
//! inter-column communication is *statically scheduled*: because the SDF
//! repetition vector fixes exactly how many words cross every
//! column-to-column edge per graph iteration, the horizontal bus needs no
//! arbitration — a compile-time TDM (time-division-multiplexed) slot
//! schedule assigns every word a `(split, cycle)` position in a periodic
//! frame, and the segment switches let electrically disjoint column groups
//! reuse the same split in the same cycle.
//!
//! This crate closes the gap between that claim and the repo's previous
//! flat per-transfer traffic accounting:
//!
//! * [`column_flows`] derives the per-iteration word flows between columns
//!   of a `(SdfGraph, Mapping)` pair from the repetition vector,
//! * [`BusSpec`] describes the bus — width in words per cycle (splits),
//!   bus cycles per graph iteration (the TDM period), and the per-split
//!   segment-switch topology as a [`synchro_bus::SegmentConfig`] whose
//!   "tiles" are the chip's columns,
//! * [`compile`] / [`compile_flows`] pack the flows into a conflict-free
//!   periodic [`RouteSchedule`] — or return a structured [`RouteError`]
//!   (unreachable pair, oversubscribed segment group, period overflow),
//! * [`RouteSchedule::validate`] replays the schedule cycle by cycle
//!   through a [`SegmentedBus`] (columns as tiles), so conflict freedom is
//!   enforced by exactly the electrically-connected-segment-group rule the
//!   per-cycle simulator already uses.
//!
//! The scheduler is a deterministic greedy first-fit: flows are packed in
//! input order, each onto the candidate split whose segment group (the
//! one electrically connecting producer and consumer) has the earliest
//! free cycle, splitting a flow across several splits when one group's
//! frame is exhausted.  For a broadcast bus this packs the frame exactly
//! up to `splits × period` words; segmented configurations additionally
//! let disjoint column groups overlap in time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use synchro_bus::{BusError, BusOp, SegmentConfig, SegmentedBus};
use synchro_sdf::{Mapping, SdfError, SdfGraph};
use synchro_trace::{Trace, TraceEvent};

pub use board::{
    board_flows, compile_board, compile_board_traced, BoardRoute, BoardSpec, BridgeFlow,
    BridgeLane, BridgeSchedule, BridgeSlot,
};

/// Errors raised while deriving flows or compiling a TDM schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// Graph analysis failed (inconsistent rates, empty graph, ...).
    Sdf(SdfError),
    /// The mapping does not place every actor exactly once, so columns
    /// cannot be identified with placements.
    BadPlacement {
        /// The actor without exactly one placement.
        actor: usize,
    },
    /// The bus description is internally inconsistent (zero splits or
    /// columns, or a segment topology of the wrong shape).
    InvalidSpec {
        /// What was wrong.
        reason: &'static str,
    },
    /// No split of the bus electrically connects the producer to the
    /// consumer under the configured segment topology.
    Unreachable {
        /// Producing column.
        from: usize,
        /// Consuming column.
        to: usize,
    },
    /// Every segment group able to carry the flow is already full: the
    /// least-loaded candidate group cannot fit the remaining words within
    /// the period.
    OversubscribedSegment {
        /// The least-loaded candidate split.
        split: usize,
        /// First column of that split's segment group.
        group_start: usize,
        /// Last column of that split's segment group.
        group_end: usize,
        /// Words that still needed a slot.
        demand: u64,
        /// Slots the group had left in the period.
        remaining: u64,
    },
    /// The total demand exceeds the whole frame — every segment group of
    /// every split offers `period` slots, so capacity is
    /// `lanes × period` — or the period itself is zero while flows exist.
    PeriodOverflow {
        /// Total words per iteration across all flows.
        demand: u64,
        /// Total slots per period across all segment groups of all splits.
        capacity: u64,
    },
    /// The inter-chip traffic between one directed chip pair exceeds the
    /// word capacity of the bridge lanes joining them (capacity 0 when the
    /// board has no lane in that direction).
    BridgeOversubscribed {
        /// Producing chip.
        from_chip: usize,
        /// Consuming chip.
        to_chip: usize,
        /// Words per iteration that needed a bridge slot.
        demand: u64,
        /// Words per period the direction's lanes can carry.
        capacity: u64,
    },
    /// The schedule replay hit the bus model's per-cycle validation (only
    /// reachable through a hand-built, ill-formed schedule).
    Bus(BusError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Sdf(e) => write!(f, "graph analysis: {e}"),
            RouteError::BadPlacement { actor } => {
                write!(f, "actor {actor} is not placed exactly once")
            }
            RouteError::InvalidSpec { reason } => write!(f, "invalid bus description: {reason}"),
            RouteError::Unreachable { from, to } => write!(
                f,
                "no split connects column {from} to column {to} under the segment topology"
            ),
            RouteError::OversubscribedSegment {
                split,
                group_start,
                group_end,
                demand,
                remaining,
            } => write!(
                f,
                "segment group {group_start}..={group_end} of split {split} is oversubscribed: \
                 {demand} words left but only {remaining} free slots in the period"
            ),
            RouteError::PeriodOverflow { demand, capacity } => write!(
                f,
                "schedule period overflow: {demand} words per iteration exceed the frame's \
                 {capacity} slots"
            ),
            RouteError::BridgeOversubscribed {
                from_chip,
                to_chip,
                demand,
                capacity,
            } => write!(
                f,
                "bridge {from_chip}→{to_chip} is oversubscribed: {demand} words per iteration \
                 exceed the direction's {capacity} word slots per period"
            ),
            RouteError::Bus(e) => write!(f, "bus validation: {e}"),
        }
    }
}

impl RouteError {
    /// A stable machine-readable code naming the variant — what a
    /// [`TraceEvent::RouteReject`] and structured log lines carry, so
    /// tooling can classify rejections without parsing `Display` text.
    pub fn code(&self) -> &'static str {
        match self {
            RouteError::Sdf(_) => "sdf",
            RouteError::BadPlacement { .. } => "bad_placement",
            RouteError::InvalidSpec { .. } => "invalid_spec",
            RouteError::Unreachable { .. } => "unreachable",
            RouteError::OversubscribedSegment { .. } => "oversubscribed_segment",
            RouteError::PeriodOverflow { .. } => "period_overflow",
            RouteError::BridgeOversubscribed { .. } => "bridge_oversubscribed",
            RouteError::Bus(_) => "bus",
        }
    }

    /// Is this rejection a capacity problem rather than a malformed
    /// input?  Resource exhaustion (an oversubscribed segment, frame or
    /// bridge) is retryable — a caller can widen the bus, add splits or
    /// lanes, lower the iteration rate, or remap around lost hardware and
    /// compile again.  Everything else reports an input that no amount of
    /// extra capacity fixes.
    pub fn is_resource_exhaustion(&self) -> bool {
        matches!(
            self,
            RouteError::OversubscribedSegment { .. }
                | RouteError::PeriodOverflow { .. }
                | RouteError::BridgeOversubscribed { .. }
        )
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouteError::Sdf(e) => Some(e),
            RouteError::Bus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for RouteError {
    fn from(value: SdfError) -> Self {
        RouteError::Sdf(value)
    }
}

impl From<BusError> for RouteError {
    fn from(value: BusError) -> Self {
        RouteError::Bus(value)
    }
}

/// One inter-column flow: the words one SDF edge moves between two
/// columns per graph iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnFlow {
    /// Index of the originating SDF edge (for conservation checks).
    pub edge: usize,
    /// Producing column.
    pub from: usize,
    /// Consuming column.
    pub to: usize,
    /// Words crossing per graph iteration (one 32-bit word per token).
    pub words: u64,
}

/// Description of the horizontal bus a schedule is compiled against.
#[derive(Debug, Clone, PartialEq)]
pub struct BusSpec {
    columns: usize,
    splits: usize,
    period: u64,
    segments: SegmentConfig,
}

impl BusSpec {
    /// A broadcast bus: `splits` words per cycle, all segment switches
    /// closed, `period` bus cycles per graph iteration.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] for zero columns or splits.
    pub fn broadcast(columns: usize, splits: usize, period: u64) -> Result<Self, RouteError> {
        Self::new(
            columns,
            splits,
            period,
            SegmentConfig::all_closed(splits, columns),
        )
    }

    /// A bus with an explicit per-split segment-switch topology.  The
    /// `segments` configuration spans the chip's columns the way a column
    /// bus spans tiles: gap `g` of split `s` is the switch between columns
    /// `g` and `g + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] when `columns` or `splits` is
    /// zero or `segments` has a different shape.
    pub fn new(
        columns: usize,
        splits: usize,
        period: u64,
        segments: SegmentConfig,
    ) -> Result<Self, RouteError> {
        if columns == 0 {
            return Err(RouteError::InvalidSpec {
                reason: "a bus needs at least one column",
            });
        }
        if splits == 0 {
            return Err(RouteError::InvalidSpec {
                reason: "a bus needs at least one split",
            });
        }
        if segments.splits() != splits || (columns > 1 && segments.tiles() != columns) {
            return Err(RouteError::InvalidSpec {
                reason: "segment topology shape does not match columns × splits",
            });
        }
        Ok(BusSpec {
            columns,
            splits,
            period,
            segments,
        })
    }

    /// A broadcast bus whose period is derived from a bus clock: the
    /// number of whole bus cycles available per graph iteration at
    /// `bus_frequency_hz` when the graph iterates `iteration_rate_hz`
    /// times per second.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] for non-positive frequencies or
    /// zero columns/splits.
    pub fn from_clock(
        columns: usize,
        splits: usize,
        bus_frequency_hz: f64,
        iteration_rate_hz: f64,
    ) -> Result<Self, RouteError> {
        let period = Self::clock_period(bus_frequency_hz, iteration_rate_hz)?;
        Self::broadcast(columns, splits, period)
    }

    /// [`BusSpec::from_clock`] with an explicit segment-switch topology
    /// instead of the all-closed broadcast default (see [`BusSpec::new`]
    /// for the shape `segments` must have).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] for non-positive frequencies,
    /// zero columns/splits, or a mis-shaped topology.
    pub fn from_clock_with_segments(
        columns: usize,
        splits: usize,
        bus_frequency_hz: f64,
        iteration_rate_hz: f64,
        segments: SegmentConfig,
    ) -> Result<Self, RouteError> {
        let period = Self::clock_period(bus_frequency_hz, iteration_rate_hz)?;
        Self::new(columns, splits, period, segments)
    }

    /// Whole bus cycles per graph iteration at the given clocks — also
    /// how a board's bridge period is derived from the bridge clock.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidSpec`] for non-positive or NaN rates.
    pub fn clock_period(bus_frequency_hz: f64, iteration_rate_hz: f64) -> Result<u64, RouteError> {
        if bus_frequency_hz <= 0.0
            || iteration_rate_hz <= 0.0
            || bus_frequency_hz.is_nan()
            || iteration_rate_hz.is_nan()
        {
            return Err(RouteError::InvalidSpec {
                reason: "bus and iteration rates must be positive",
            });
        }
        let period = (bus_frequency_hz / iteration_rate_hz).floor();
        Ok(if period >= u64::MAX as f64 {
            u64::MAX
        } else {
            period as u64
        })
    }

    /// Columns the bus spans.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Words the bus carries per cycle (independent splits).
    pub fn splits(&self) -> usize {
        self.splits
    }

    /// Bus cycles per graph iteration (the TDM period).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The per-split segment-switch topology.
    pub fn segments(&self) -> &SegmentConfig {
        &self.segments
    }

    /// Total slots in one TDM frame: `splits × period` (saturating).
    pub fn frame_slots(&self) -> u64 {
        (self.splits as u64).saturating_mul(self.period)
    }
}

/// One slot assignment of a TDM schedule: `words` back-to-back bus cycles
/// on one split, starting at `cycle` within the period, carrying one
/// flow's words from a source column into its split's destination segment
/// group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdmSlot {
    /// The split carrying the words.
    pub split: usize,
    /// First bus cycle of the slot within the period.
    pub cycle: u64,
    /// Back-to-back words (bus cycles) the slot occupies.
    pub words: u64,
    /// Producing column.
    pub from: usize,
    /// Consuming column.
    pub to: usize,
    /// The SDF edge the words belong to.
    pub edge: usize,
}

/// A compiled, conflict-free periodic TDM schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSchedule {
    spec: BusSpec,
    slots: Vec<TdmSlot>,
}

impl RouteSchedule {
    /// The bus description the schedule was compiled against.
    pub fn spec(&self) -> &BusSpec {
        &self.spec
    }

    /// The slot assignments, in compilation order.
    pub fn slots(&self) -> &[TdmSlot] {
        &self.slots
    }

    /// Total words moved per period (= occupied slots per period).
    pub fn occupied_slots(&self) -> u64 {
        self.slots.iter().map(|s| s.words).sum()
    }

    /// Total slots the frame reserves per period (`splits × period`).
    pub fn scheduled_slots(&self) -> u64 {
        self.spec.frame_slots()
    }

    /// Scheduled-but-idle slots per period.
    pub fn idle_slots(&self) -> u64 {
        self.scheduled_slots().saturating_sub(self.occupied_slots())
    }

    /// Fraction of the frame that carries words (0.0 for an empty frame).
    pub fn utilization(&self) -> f64 {
        let frame = self.scheduled_slots();
        if frame == 0 {
            0.0
        } else {
            self.occupied_slots() as f64 / frame as f64
        }
    }

    /// Words the schedule moves for SDF edge `edge` per period — equals
    /// the edge's `tokens_per_iteration` for a schedule compiled from
    /// [`column_flows`] (the conservation invariant the property tests
    /// pin).
    pub fn words_for_edge(&self, edge: usize) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.edge == edge)
            .map(|s| s.words)
            .sum()
    }

    /// Words the schedule moves from column `from` to column `to` per
    /// period.
    pub fn words_between(&self, from: usize, to: usize) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.from == from && s.to == to)
            .map(|s| s.words)
            .sum()
    }

    /// Replay the schedule cycle by cycle through a [`SegmentedBus`] whose
    /// "tiles" are the chip's columns, under the spec's segment topology —
    /// the same electrically-connected-segment-group rule the per-cycle
    /// simulator enforces.  Only occupied cycles are replayed, so the cost
    /// is proportional to the words scheduled, not the period.
    ///
    /// # Errors
    ///
    /// Returns the first [`BusError`] (driver conflict, unreachable
    /// consumer) as [`RouteError::Bus`]; a compiled schedule never fails.
    pub fn validate(&self) -> Result<(), RouteError> {
        let mut by_cycle: BTreeMap<u64, Vec<BusOp>> = BTreeMap::new();
        for slot in &self.slots {
            if slot.cycle.saturating_add(slot.words) > self.spec.period {
                return Err(RouteError::PeriodOverflow {
                    demand: slot.cycle.saturating_add(slot.words),
                    capacity: self.spec.period,
                });
            }
            for w in 0..slot.words {
                by_cycle.entry(slot.cycle + w).or_default().push(BusOp {
                    split: slot.split,
                    producer: slot.from,
                    consumers: vec![slot.to],
                });
            }
        }
        let mut bus = SegmentedBus::new(self.spec.splits, self.spec.columns);
        for ops in by_cycle.values() {
            bus.cycle(&self.spec.segments, ops)?;
        }
        Ok(())
    }
}

/// Derive the per-iteration word flows between columns of a
/// `(graph, mapping)` pair: placement `i` of the mapping is column `i`,
/// and every SDF edge whose endpoints land on different columns
/// contributes `tokens_per_iteration` words from the producer's column to
/// the consumer's.
///
/// # Errors
///
/// Propagates rate-consistency errors and reports
/// [`RouteError::BadPlacement`] when an actor is unplaced or placed twice.
pub fn column_flows(graph: &SdfGraph, mapping: &Mapping) -> Result<Vec<ColumnFlow>, RouteError> {
    let tokens = graph.tokens_per_iteration()?;
    let mut column_of_actor: Vec<Option<usize>> = vec![None; graph.actors().len()];
    for (column, p) in mapping.placements().iter().enumerate() {
        if p.actor.0 >= graph.actors().len() {
            return Err(RouteError::BadPlacement { actor: p.actor.0 });
        }
        if column_of_actor[p.actor.0].replace(column).is_some() {
            return Err(RouteError::BadPlacement { actor: p.actor.0 });
        }
    }
    if let Some(unplaced) = column_of_actor.iter().position(Option::is_none) {
        return Err(RouteError::BadPlacement { actor: unplaced });
    }
    Ok(graph
        .edges()
        .iter()
        .enumerate()
        .filter_map(|(edge, e)| {
            let from = column_of_actor[e.from.0].expect("checked above");
            let to = column_of_actor[e.to.0].expect("checked above");
            (from != to).then_some(ColumnFlow {
                edge,
                from,
                to,
                words: tokens[edge],
            })
        })
        .collect())
}

/// Compile a conflict-free periodic TDM schedule for a `(graph, mapping)`
/// pair on the bus described by `spec` — the high-level subsystem entry.
///
/// # Errors
///
/// Propagates flow derivation errors and scheduling infeasibilities.
pub fn compile(
    graph: &SdfGraph,
    mapping: &Mapping,
    spec: &BusSpec,
) -> Result<RouteSchedule, RouteError> {
    compile_traced(graph, mapping, spec, &Trace::off())
}

/// [`compile`] with observability: wraps the compile in a
/// `route.compile` phase span, emits one [`TraceEvent::RouteSlot`] per
/// placed TDM slot, and a [`TraceEvent::RouteReject`] carrying the
/// structured error code and context on failure.
///
/// # Errors
///
/// Exactly those of [`compile`].
pub fn compile_traced(
    graph: &SdfGraph,
    mapping: &Mapping,
    spec: &BusSpec,
    trace: &Trace,
) -> Result<RouteSchedule, RouteError> {
    let _span = trace.span("route.compile");
    let result =
        column_flows(graph, mapping).and_then(|flows| compile_flows_inner(&flows, spec, trace));
    reject_on_err(trace, &result);
    result
}

/// Emit a [`TraceEvent::RouteReject`] when `result` is an error.
fn reject_on_err<T>(trace: &Trace, result: &Result<T, RouteError>) {
    if let Err(e) = result {
        trace.emit(|| TraceEvent::RouteReject {
            code: e.code(),
            detail: e.to_string(),
        });
    }
}

/// Cursor state of one electrically connected segment group on one split.
struct GroupLane {
    split: usize,
    /// First and last column of the group (groups of a switch partition
    /// are contiguous column ranges).
    start: usize,
    end: usize,
    /// Next free cycle within the period.
    cursor: u64,
}

/// Compile a conflict-free periodic TDM schedule for explicit flows.
///
/// Flows are packed deterministically in input order; each flow goes to
/// the candidate split whose connecting segment group has the earliest
/// free cycle, splitting across several splits when a group's frame runs
/// out.  The resulting schedule always passes
/// [`RouteSchedule::validate`].
///
/// # Errors
///
/// * [`RouteError::Unreachable`] — no split connects a flow's endpoints,
/// * [`RouteError::PeriodOverflow`] — total demand exceeds the frame,
/// * [`RouteError::OversubscribedSegment`] — a flow's candidate groups are
///   all full even though the frame as a whole had room,
/// * [`RouteError::InvalidSpec`] — a flow references a column outside the
///   spec.
pub fn compile_flows(flows: &[ColumnFlow], spec: &BusSpec) -> Result<RouteSchedule, RouteError> {
    compile_flows_inner(flows, spec, &Trace::off())
}

/// [`compile_flows`] with observability: a `route.compile_flows` phase
/// span, one [`TraceEvent::RouteSlot`] per placed slot and a
/// [`TraceEvent::RouteReject`] on failure.
///
/// # Errors
///
/// Exactly those of [`compile_flows`].
pub fn compile_flows_traced(
    flows: &[ColumnFlow],
    spec: &BusSpec,
    trace: &Trace,
) -> Result<RouteSchedule, RouteError> {
    let _span = trace.span("route.compile_flows");
    let result = compile_flows_inner(flows, spec, trace);
    reject_on_err(trace, &result);
    result
}

pub(crate) fn compile_flows_inner(
    flows: &[ColumnFlow],
    spec: &BusSpec,
    trace: &Trace,
) -> Result<RouteSchedule, RouteError> {
    for f in flows {
        if f.from >= spec.columns || f.to >= spec.columns {
            return Err(RouteError::InvalidSpec {
                reason: "flow references a column outside the bus",
            });
        }
    }

    // One lane per (split, segment group); lanes are identified by the
    // group's lowest column, so `lane_of[split][column]` finds the lane a
    // producer drives.
    let mut lanes: Vec<GroupLane> = Vec::new();
    let mut lane_of: Vec<Vec<usize>> = vec![vec![usize::MAX; spec.columns]; spec.splits];
    for (split, split_lanes) in lane_of.iter_mut().enumerate() {
        let mut column = 0;
        while column < spec.columns {
            let group = spec.segments.connected_group(split, column);
            let start = *group.first().expect("group contains its own column");
            let end = *group.last().expect("group contains its own column");
            let lane = lanes.len();
            lanes.push(GroupLane {
                split,
                start,
                end,
                cursor: 0,
            });
            for slot in split_lanes.iter_mut().take(end + 1).skip(start) {
                *slot = lane;
            }
            column = end + 1;
        }
    }

    // Fast fail on frame exhaustion: each lane offers `period` slots, and
    // segmentation multiplies lanes (the mesh-like-bandwidth property), so
    // the frame's true capacity is `lanes × period`.
    let demand: u64 = flows.iter().map(|f| f.words).sum();
    let capacity = (lanes.len() as u64).saturating_mul(spec.period);
    if demand > capacity {
        return Err(RouteError::PeriodOverflow { demand, capacity });
    }

    let mut slots = Vec::new();
    for flow in flows {
        let mut remaining = flow.words;
        while remaining > 0 {
            // Candidate lanes: splits whose group joins producer and
            // consumer.  Pick the one with the earliest free cycle (ties
            // to the lowest split, which lane construction order gives).
            let mut best: Option<usize> = None;
            let mut reachable = false;
            for split_lanes in &lane_of {
                let lane = split_lanes[flow.from];
                if lanes[lane].start <= flow.to && flow.to <= lanes[lane].end {
                    reachable = true;
                    if best.is_none_or(|b| lanes[lane].cursor < lanes[b].cursor) {
                        best = Some(lane);
                    }
                }
            }
            if !reachable {
                return Err(RouteError::Unreachable {
                    from: flow.from,
                    to: flow.to,
                });
            }
            let lane = best.expect("reachable implies a candidate lane");
            let free = spec.period.saturating_sub(lanes[lane].cursor);
            if free == 0 {
                return Err(RouteError::OversubscribedSegment {
                    split: lanes[lane].split,
                    group_start: lanes[lane].start,
                    group_end: lanes[lane].end,
                    demand: remaining,
                    remaining: free,
                });
            }
            let words = remaining.min(free);
            trace.emit(|| TraceEvent::RouteSlot {
                split: lanes[lane].split as u32,
                cycle: lanes[lane].cursor,
                from: flow.from as u32,
                to: flow.to as u32,
                words,
                edge: flow.edge as u64,
            });
            slots.push(TdmSlot {
                split: lanes[lane].split,
                cycle: lanes[lane].cursor,
                words,
                from: flow.from,
                to: flow.to,
                edge: flow.edge,
            });
            lanes[lane].cursor += words;
            remaining -= words;
        }
    }
    Ok(RouteSchedule {
        spec: spec.clone(),
        slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchro_sdf::{ActorId, Mapping, SdfGraph};

    /// mixer → integrator → (4:1) comb chain, one actor per column.
    fn ddc_like() -> (SdfGraph, Mapping) {
        let mut g = SdfGraph::new();
        let mixer = g.add_actor("mixer", 15, 16);
        let integ = g.add_actor("integ", 25, 16);
        let comb = g.add_actor("comb", 5, 4);
        g.add_edge(mixer, integ, 1, 1, 0).unwrap();
        g.add_edge(integ, comb, 1, 4, 0).unwrap();
        let mut m = Mapping::new();
        m.place(mixer, 8, 1.0);
        m.place(integ, 8, 1.0);
        m.place(comb, 2, 1.0);
        (g, m)
    }

    #[test]
    fn every_variant_classifies_exhaustion_vs_hard_error() {
        let retryable = [
            RouteError::OversubscribedSegment {
                split: 0,
                group_start: 0,
                group_end: 1,
                demand: 4,
                remaining: 2,
            },
            RouteError::PeriodOverflow {
                demand: 10,
                capacity: 6,
            },
            RouteError::BridgeOversubscribed {
                from_chip: 0,
                to_chip: 1,
                demand: 6,
                capacity: 4,
            },
        ];
        for e in &retryable {
            assert!(e.is_resource_exhaustion(), "{e}");
        }
        let hard = [
            RouteError::Sdf(SdfError::Empty),
            RouteError::BadPlacement { actor: 1 },
            RouteError::InvalidSpec { reason: "x" },
            RouteError::Unreachable { from: 0, to: 1 },
            RouteError::Bus(BusError::IndexOutOfRange {
                what: "split",
                index: 9,
                limit: 1,
            }),
        ];
        for e in &hard {
            assert!(!e.is_resource_exhaustion(), "{e}");
        }
    }

    #[test]
    fn flows_follow_the_repetition_vector() {
        let (g, m) = ddc_like();
        let flows = column_flows(&g, &m).unwrap();
        // reps = (4, 4, 1): both edges carry 4 words per iteration.
        assert_eq!(
            flows,
            vec![
                ColumnFlow {
                    edge: 0,
                    from: 0,
                    to: 1,
                    words: 4
                },
                ColumnFlow {
                    edge: 1,
                    from: 1,
                    to: 2,
                    words: 4
                },
            ]
        );
    }

    #[test]
    fn fused_columns_have_no_internal_flows() {
        let (g, _) = ddc_like();
        let mut m = Mapping::new();
        // Place integ and comb on the same column? Columns are placements,
        // so "same column" means one placement — model it by mapping to a
        // 2-actor graph is out of scope here; instead check a single
        // column graph has no flows.
        m.place(ActorId(0), 8, 1.0);
        m.place(ActorId(1), 8, 1.0);
        m.place(ActorId(2), 2, 1.0);
        let flows = column_flows(&g, &m).unwrap();
        assert_eq!(flows.len(), 2);
        let mut solo = SdfGraph::new();
        solo.add_actor("solo", 3, 4);
        let mut sm = Mapping::new();
        sm.place(ActorId(0), 4, 1.0);
        assert!(column_flows(&solo, &sm).unwrap().is_empty());
    }

    #[test]
    fn bad_placements_are_reported() {
        let (g, _) = ddc_like();
        let mut partial = Mapping::new();
        partial.place(ActorId(0), 8, 1.0);
        assert!(matches!(
            column_flows(&g, &partial),
            Err(RouteError::BadPlacement { actor: 1 })
        ));
        let mut duplicated = Mapping::new();
        duplicated.place(ActorId(0), 8, 1.0);
        duplicated.place(ActorId(1), 8, 1.0);
        duplicated.place(ActorId(2), 2, 1.0);
        duplicated.place(ActorId(0), 4, 1.0);
        assert!(matches!(
            column_flows(&g, &duplicated),
            Err(RouteError::BadPlacement { actor: 0 })
        ));
    }

    #[test]
    fn broadcast_schedule_is_conflict_free_and_conserves_tokens() {
        let (g, m) = ddc_like();
        let spec = BusSpec::broadcast(3, 1, 16).unwrap();
        let schedule = compile(&g, &m, &spec).unwrap();
        schedule.validate().unwrap();
        let tokens = g.tokens_per_iteration().unwrap();
        for (edge, &words) in tokens.iter().enumerate() {
            assert_eq!(schedule.words_for_edge(edge), words);
        }
        assert_eq!(schedule.occupied_slots(), 8);
        assert_eq!(schedule.scheduled_slots(), 16);
        assert_eq!(schedule.idle_slots(), 8);
        assert!((schedule.utilization() - 0.5).abs() < 1e-12);
        // On one broadcast split the flows serialize back to back.
        assert_eq!(schedule.slots()[0].cycle, 0);
        assert_eq!(schedule.slots()[1].cycle, 4);
    }

    #[test]
    fn traced_compile_emits_spans_slots_and_rejects() {
        use std::sync::Arc;
        use synchro_trace::RingBufferSink;

        // Success path: span + one RouteSlot per placed slot.
        let (g, m) = ddc_like();
        let ring = Arc::new(RingBufferSink::new(256));
        let trace = Trace::to(ring.clone());
        let spec = BusSpec::broadcast(3, 1, 16).unwrap();
        let schedule = compile_traced(&g, &m, &spec, &trace).unwrap();
        let events = ring.events();
        assert!(events.contains(&TraceEvent::PhaseBegin {
            phase: "route.compile"
        }));
        assert!(events.contains(&TraceEvent::PhaseEnd {
            phase: "route.compile"
        }));
        let placed = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RouteSlot { .. }))
            .count();
        assert_eq!(placed, schedule.slots().len());

        // Failure path: a structured reject with the variant code.
        let ring = Arc::new(RingBufferSink::new(256));
        let trace = Trace::to(ring.clone());
        let tight = BusSpec::broadcast(3, 1, 6).unwrap();
        let err = compile_traced(&g, &m, &tight, &trace).unwrap_err();
        assert_eq!(err.code(), "period_overflow");
        assert!(ring.events().iter().any(|e| matches!(
            e,
            TraceEvent::RouteReject {
                code: "period_overflow",
                ..
            }
        )));
    }

    #[test]
    fn oversubscribed_frame_reports_period_overflow() {
        let (g, m) = ddc_like();
        // 8 words per iteration into a 6-slot frame.
        let spec = BusSpec::broadcast(3, 1, 6).unwrap();
        assert!(matches!(
            compile(&g, &m, &spec),
            Err(RouteError::PeriodOverflow {
                demand: 8,
                capacity: 6
            })
        ));
    }

    #[test]
    fn wide_bus_splits_one_flow_across_splits() {
        // One 10-word flow into a frame with period 6 and 2 splits: the
        // flow must split 6 + 4 across the splits.
        let flows = [ColumnFlow {
            edge: 0,
            from: 0,
            to: 1,
            words: 10,
        }];
        let spec = BusSpec::broadcast(2, 2, 6).unwrap();
        let schedule = compile_flows(&flows, &spec).unwrap();
        schedule.validate().unwrap();
        assert_eq!(schedule.slots().len(), 2);
        assert_eq!(schedule.words_for_edge(0), 10);
        assert_eq!(schedule.slots()[0].split, 0);
        assert_eq!(schedule.slots()[0].words, 6);
        assert_eq!(schedule.slots()[1].split, 1);
        assert_eq!(schedule.slots()[1].words, 4);
    }

    #[test]
    fn segmented_splits_overlap_disjoint_groups_in_time() {
        // 4 columns, 1 split segmented between columns 1 and 2: the
        // 0→1 and 2→3 flows share cycles 0..4 on the same split.
        let mut segments = SegmentConfig::all_closed(1, 4);
        segments.set(0, 1, false);
        let spec = BusSpec::new(4, 1, 4, segments).unwrap();
        let flows = [
            ColumnFlow {
                edge: 0,
                from: 0,
                to: 1,
                words: 4,
            },
            ColumnFlow {
                edge: 1,
                from: 2,
                to: 3,
                words: 4,
            },
        ];
        let schedule = compile_flows(&flows, &spec).unwrap();
        schedule.validate().unwrap();
        assert_eq!(schedule.slots()[0].cycle, 0);
        assert_eq!(schedule.slots()[1].cycle, 0, "disjoint groups overlap");
        // A broadcast bus with the same frame cannot fit both flows.
        let broadcast = BusSpec::broadcast(4, 1, 4).unwrap();
        assert!(matches!(
            compile_flows(&flows, &broadcast),
            Err(RouteError::PeriodOverflow { .. })
        ));
    }

    #[test]
    fn unreachable_pairs_are_reported() {
        // The only split is segmented between columns 0 and 1, so a 0→1
        // flow has no electrically connected path.
        let mut segments = SegmentConfig::all_closed(1, 2);
        segments.set(0, 0, false);
        let spec = BusSpec::new(2, 1, 8, segments).unwrap();
        let flows = [ColumnFlow {
            edge: 0,
            from: 0,
            to: 1,
            words: 1,
        }];
        assert!(matches!(
            compile_flows(&flows, &spec),
            Err(RouteError::Unreachable { from: 0, to: 1 })
        ));
    }

    #[test]
    fn oversubscribed_segment_is_distinguished_from_frame_overflow() {
        // Split 0 broadcast, split 1 segmented so only columns {0, 1}
        // connect.  A 2→3 flow can only use split 0; once split 0 is
        // full the schedule fails with an oversubscribed group even
        // though split 1 still has free slots (frame not exhausted).
        let mut segments = SegmentConfig::all_closed(2, 4);
        segments.set(1, 1, false);
        segments.set(1, 2, false);
        let spec = BusSpec::new(4, 2, 4, segments).unwrap();
        let flows = [
            ColumnFlow {
                edge: 0,
                from: 2,
                to: 3,
                words: 4,
            },
            ColumnFlow {
                edge: 1,
                from: 2,
                to: 3,
                words: 1,
            },
        ];
        let err = compile_flows(&flows, &spec).unwrap_err();
        assert!(
            matches!(err, RouteError::OversubscribedSegment { split: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn from_clock_derives_the_period() {
        let spec = BusSpec::from_clock(3, 1, 400e6, 16e6).unwrap();
        assert_eq!(spec.period(), 25);
        assert_eq!(spec.frame_slots(), 25);
        assert!(matches!(
            BusSpec::from_clock(3, 1, 0.0, 16e6),
            Err(RouteError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(BusSpec::broadcast(0, 1, 8).is_err());
        assert!(BusSpec::broadcast(2, 0, 8).is_err());
        let wrong_shape = SegmentConfig::all_closed(2, 3);
        assert!(BusSpec::new(4, 2, 8, wrong_shape).is_err());
        let spec = BusSpec::broadcast(2, 1, 8).unwrap();
        let flows = [ColumnFlow {
            edge: 0,
            from: 0,
            to: 5,
            words: 1,
        }];
        assert!(matches!(
            compile_flows(&flows, &spec),
            Err(RouteError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn validate_rejects_hand_built_conflicts() {
        let spec = BusSpec::broadcast(3, 1, 8).unwrap();
        let schedule = RouteSchedule {
            spec: spec.clone(),
            slots: vec![
                TdmSlot {
                    split: 0,
                    cycle: 0,
                    words: 2,
                    from: 0,
                    to: 1,
                    edge: 0,
                },
                TdmSlot {
                    split: 0,
                    cycle: 1,
                    words: 1,
                    from: 2,
                    to: 1,
                    edge: 1,
                },
            ],
        };
        assert!(matches!(
            schedule.validate(),
            Err(RouteError::Bus(BusError::DriverConflict { .. }))
        ));
        let past_period = RouteSchedule {
            spec,
            slots: vec![TdmSlot {
                split: 0,
                cycle: 7,
                words: 3,
                from: 0,
                to: 1,
                edge: 0,
            }],
        };
        assert!(matches!(
            past_period.validate(),
            Err(RouteError::PeriodOverflow { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = RouteError::Unreachable { from: 1, to: 3 };
        assert!(e.to_string().contains("column 1"));
        let e = RouteError::PeriodOverflow {
            demand: 10,
            capacity: 6,
        };
        assert!(e.to_string().contains("10"));
        let e = RouteError::OversubscribedSegment {
            split: 2,
            group_start: 0,
            group_end: 3,
            demand: 5,
            remaining: 0,
        };
        assert!(e.to_string().contains("split 2"));
    }
}
