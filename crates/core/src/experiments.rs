//! Regeneration of every table and figure in the paper's evaluation
//! (Section 5).  Each function returns structured data; the `bench` crate's
//! binaries print them in the paper's row/series format, and
//! `EXPERIMENTS.md` records paper-versus-measured values.

use crate::mapper::{self, MapperOptions};
use crate::pipeline::{
    evaluate_application, evaluate_voltage_scaling, savings_percent, try_evaluate_application,
    ApplicationReport, EvaluationOptions,
};
use synchro_apps::{
    deep_pipeline, reference_graph, Application, ApplicationProfile, DEEP_PIPELINE_RATE_HZ,
};
use synchro_baselines::{table3_reference_rows, Platform, PlatformKind};
use synchro_explore::{
    evaluate_mapping, explore, explore_board, explore_degraded, explore_degraded_board,
    BoardSearch, CommSpec, DegradationCurve, ExplorerConfig, ResourceLoss,
};
use synchro_power::{
    AreaModel, BusGeometry, ColumnActivity, ColumnPower, CriticalPath, InterconnectModel,
    LeakageModel, SimdDouArea, SlotActivity, Technology, TileArea, VfCurve,
};
use synchro_sdf::{FaultSpec, SdfGraph};
use synchro_trace::analyze::{self, RejectionLedger};
use synchro_trace::{RingBufferSink, Trace};

use std::sync::Arc;

/// One point of the Figure 5 voltage/frequency curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfPoint {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Maximum operating frequency at a 20-FO4 critical path (MHz).
    pub frequency_fo4_20: f64,
    /// Maximum operating frequency at a 15-FO4 critical path (MHz).
    pub frequency_fo4_15: f64,
}

/// Figure 5: sweep the supply voltage from 0.62 V to 2.12 V and report the
/// 15- and 20-FO4 operating frequencies.
pub fn figure5(tech: &Technology, points: usize) -> Vec<VfPoint> {
    let c20 = VfCurve::with_critical_path(tech, CriticalPath::Fo4_20);
    let c15 = VfCurve::with_critical_path(tech, CriticalPath::Fo4_15);
    c20.sweep(0.62, 2.12, points)
        .into_iter()
        .map(|(v, f20)| VfPoint {
            voltage: v,
            frequency_fo4_20: f20,
            frequency_fo4_15: c15.interpolate(v),
        })
        .collect()
}

/// Table 1 rows as (parameter, value, source) strings.
pub fn table1(tech: &Technology) -> Vec<(String, String, String)> {
    vec![
        (
            "Technology".into(),
            format!("{} nm", tech.feature_nm),
            "Table 1".into(),
        ),
        (
            "Minimum Voltage".into(),
            format!("{} V", tech.min_voltage),
            "Blackfin DSP".into(),
        ),
        (
            "Maximum Voltage".into(),
            format!("{} V", tech.max_voltage),
            "Estimated (BPTM)".into(),
        ),
        (
            "Threshold Voltage".into(),
            format!("{} V", tech.threshold_voltage),
            "BPTM".into(),
        ),
        (
            "Max Frequency".into(),
            format!("{} MHz", tech.max_frequency_mhz),
            "SPICE substitute (VF curve)".into(),
        ),
        (
            "Tile Power".into(),
            format!("{} mW/MHz", tech.tile_power_mw_per_mhz),
            "Synthesis estimate".into(),
        ),
        (
            "Tile Size".into(),
            format!("{} mm^2", tech.tile_area_mm2),
            "Section 4.6".into(),
        ),
        (
            "Wire Cap.".into(),
            format!("{} fF/mm", tech.wire_cap_ff_per_mm),
            "The Future of Wires".into(),
        ),
        (
            "Leakage / tile".into(),
            format!("{} mA", tech.leakage_ma_per_tile),
            "Section 4.4".into(),
        ),
    ]
}

/// Named area rows: (component, area in µm²).
pub type AreaRows = Vec<(String, f64)>;

/// Table 2 rows: (component, area in µm²) for the tile and the SIMD
/// controller + DOU.
pub fn table2() -> (AreaRows, AreaRows) {
    let tile = TileArea::isca2004();
    let ctrl = SimdDouArea::isca2004();
    (
        tile.components()
            .iter()
            .map(|c| (c.name.to_owned(), c.area_um2))
            .collect(),
        ctrl.components()
            .iter()
            .map(|c| (c.name.to_owned(), c.area_um2))
            .collect(),
    )
}

/// One Synchroscalar row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Application name.
    pub application: String,
    /// Platform name ("Synchroscalar" for our rows).
    pub platform: String,
    /// Platform class.
    pub kind: PlatformKind,
    /// Area in mm² when known.
    pub area_mm2: Option<f64>,
    /// Power in mW.
    pub power_mw: f64,
    /// Note string.
    pub notes: String,
}

/// Table 3: the Synchroscalar rows (computed by the pipeline) followed by
/// the published reference platforms.
pub fn table3(tech: &Technology) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for app in [
        Application::Ddc,
        Application::StereoVision,
        Application::Wifi80211a,
        Application::Mpeg4Qcif,
        Application::Mpeg4Cif,
    ] {
        let profile = ApplicationProfile::of(app);
        let report = evaluate_application(&profile, tech, &EvaluationOptions::default());
        rows.push(Table3Row {
            application: profile.application.name().to_owned(),
            platform: "Synchroscalar".to_owned(),
            kind: PlatformKind::Synchroscalar,
            area_mm2: Some(report.area_mm2()),
            power_mw: report.total_mw(),
            notes: format!("Programmable, {}", profile.throughput),
        });
    }
    for p in table3_reference_rows() {
        rows.push(Table3Row {
            application: p.application.to_owned(),
            platform: p.name.to_owned(),
            kind: p.kind,
            area_mm2: p.area_mm2,
            power_mw: p.power_mw,
            notes: p.notes.to_owned(),
        });
    }
    rows
}

/// The headline ratios of Table 3 / the abstract: how far Synchroscalar is
/// from the best ASIC, and how much better it is than the rate-normalised
/// DSP, for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyRatios {
    /// Synchroscalar power divided by the best (lowest-power) ASIC.
    pub vs_asic: f64,
    /// Rate-normalised DSP power divided by Synchroscalar power.
    pub vs_dsp: f64,
}

/// Compute the ASIC / DSP efficiency ratios for one application.
pub fn efficiency_ratios(tech: &Technology, app: Application) -> Option<EfficiencyRatios> {
    let profile = ApplicationProfile::of(app);
    let report = evaluate_application(&profile, tech, &EvaluationOptions::default());
    let references: Vec<Platform> = table3_reference_rows()
        .into_iter()
        .filter(|p| p.application == profile.application.name())
        .collect();
    let best_asic = references
        .iter()
        .filter(|p| matches!(p.kind, PlatformKind::Asic | PlatformKind::Asip))
        .map(|p| p.power_mw / p.rate_fraction.max(1e-9))
        .fold(f64::INFINITY, f64::min);
    let dsp = references
        .iter()
        .filter(|p| p.name.contains("Blackfin"))
        .map(Platform::rate_normalized_power_mw)
        .fold(f64::INFINITY, f64::min);
    if !best_asic.is_finite() || !dsp.is_finite() {
        return None;
    }
    Some(EfficiencyRatios {
        vs_asic: report.total_mw() / best_asic,
        vs_dsp: dsp / report.total_mw(),
    })
}

/// One Table 4 row: a block's operating point and power under both voltage
/// policies.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Application name.
    pub application: String,
    /// Algorithm block name.
    pub algorithm: String,
    /// Tiles assigned.
    pub tiles: u32,
    /// Frequency in MHz.
    pub frequency_mhz: f64,
    /// Per-column voltage in volts.
    pub voltage: f64,
    /// Power with per-column voltage scaling (mW).
    pub power_mw: f64,
    /// Power with a single application-wide voltage (mW).
    pub single_voltage_mw: f64,
}

impl Table4Row {
    /// Percentage power saved by per-column voltages for this block.
    pub fn savings_percent(&self) -> f64 {
        if self.single_voltage_mw <= 0.0 {
            return 0.0;
        }
        (1.0 - self.power_mw / self.single_voltage_mw) * 100.0
    }
}

/// Table 4: every application's per-block rows plus totals.
pub fn table4(tech: &Technology) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for app in Application::all() {
        let profile = ApplicationProfile::of(app);
        let (per_column, single) =
            evaluate_voltage_scaling(&profile, tech, &EvaluationOptions::default());
        for (pc, sv) in per_column.blocks.iter().zip(&single.blocks) {
            rows.push(Table4Row {
                application: profile.application.name().to_owned(),
                algorithm: pc.name.clone(),
                tiles: pc.tiles,
                frequency_mhz: pc.frequency_mhz,
                voltage: pc.voltage,
                power_mw: pc.total_mw(),
                single_voltage_mw: sv.total_mw(),
            });
        }
        rows.push(Table4Row {
            application: profile.application.name().to_owned(),
            algorithm: "TOTAL".to_owned(),
            tiles: per_column.total_tiles(),
            frequency_mhz: 0.0,
            voltage: 0.0,
            power_mw: per_column.total_mw(),
            single_voltage_mw: single.total_mw(),
        });
    }
    rows
}

/// One bar of Figure 6: application power with and without per-column
/// voltage scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure6Bar {
    /// Application name.
    pub application: String,
    /// Power with per-column voltage scaling (mW).
    pub scaled_mw: f64,
    /// Additional power without voltage scaling (mW).
    pub additional_unscaled_mw: f64,
    /// Savings percentage.
    pub savings_percent: f64,
}

/// Figure 6: per-application power with vs without voltage scaling.
pub fn figure6(tech: &Technology) -> Vec<Figure6Bar> {
    Application::all()
        .into_iter()
        .map(|app| {
            let profile = ApplicationProfile::of(app);
            let (per_column, single) =
                evaluate_voltage_scaling(&profile, tech, &EvaluationOptions::default());
            Figure6Bar {
                application: profile.application.name().to_owned(),
                scaled_mw: per_column.total_mw(),
                additional_unscaled_mw: (single.total_mw() - per_column.total_mw()).max(0.0),
                savings_percent: savings_percent(&per_column, &single),
            }
        })
        .collect()
}

/// One bar of Figure 7: an application at one parallelisation level, split
/// into compute power and interconnect + leakage overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure7Bar {
    /// Application name.
    pub application: String,
    /// Total tiles in this variant.
    pub tiles: u32,
    /// Compute (tile) power in mW.
    pub compute_mw: f64,
    /// Interconnect + leakage power in mW.
    pub overhead_mw: f64,
    /// Whether every block fits the supply envelope at this parallelism.
    pub feasible: bool,
}

impl Figure7Bar {
    /// Total power of the bar.
    pub fn total_mw(&self) -> f64 {
        self.compute_mw + self.overhead_mw
    }
}

/// Figure 7: sweep each application over its studied parallelisation
/// levels.
pub fn figure7(tech: &Technology) -> Vec<Figure7Bar> {
    figure7_with_options(tech, &EvaluationOptions::default())
}

/// Figure 7 with overridden evaluation options (used by the leakage
/// sensitivity sweeps of Figures 9 and 10).
pub fn figure7_with_options(tech: &Technology, options: &EvaluationOptions) -> Vec<Figure7Bar> {
    let mut bars = Vec::new();
    for app in Application::all() {
        let profile = ApplicationProfile::of(app);
        for &total in &profile.parallelization_variants {
            let allocation = profile.allocation_for_total(total);
            let tiles: u32 = allocation.iter().sum();
            let report = try_evaluate_application(
                &profile,
                tech,
                &EvaluationOptions {
                    allocation: Some(allocation),
                    ..options.clone()
                },
            )
            .expect("allocation_for_total covers every block of its own profile");
            bars.push(Figure7Bar {
                application: profile.application.name().to_owned(),
                tiles,
                compute_mw: report.compute_mw(),
                overhead_mw: report.overhead_mw(),
                feasible: report.feasible(),
            });
        }
    }
    bars
}

/// One point of Figure 8: the Viterbi ACS mapped onto a tile count with a
/// given bus width.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure8Point {
    /// Tiles running the ACS trellis.
    pub tiles: u32,
    /// Bus width in bits.
    pub bus_width_bits: u32,
    /// Chip area of the configuration in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Figure 8: power/area of the Viterbi ACS for 8/16/32 tiles across bus
/// widths from 32 to 1024 bits.
///
/// Narrower buses move fewer words per cycle, so the tiles stall waiting
/// for path-metric exchanges and the column must run (and be supplied)
/// faster; wider buses trade area for lower frequency and voltage.
pub fn figure8(tech: &Technology) -> Vec<Figure8Point> {
    let wifi = ApplicationProfile::of(Application::Wifi80211a);
    let acs = wifi
        .algorithms
        .iter()
        .find(|a| a.name == "Viterbi ACS")
        .expect("profile has a Viterbi ACS block");
    // Split the reference operating point into compute and communication
    // components: at the reference 16 tiles / 256-bit bus, the bus moves
    // the ACS's word traffic at 8 words per cycle per column.
    let ref_tiles = acs.reference_tiles;
    let ref_columns = f64::from(ref_tiles.div_ceil(tech.tiles_per_column));
    let ref_splits = 8.0;
    let words_per_us = acs.reference_bus_words_per_second / 1e6;
    let ref_comm_mhz = words_per_us / (ref_splits * ref_columns);
    let compute_work_mhz_tiles =
        (acs.reference_frequency_mhz - ref_comm_mhz) * f64::from(ref_tiles);

    let area = AreaModel::isca2004();
    let curve = VfCurve::fo4_20(tech);
    let leakage = LeakageModel::new(tech);
    let mut points = Vec::new();
    for &tiles in &[8u32, 16, 32] {
        for &width in &[32u32, 64, 128, 256, 512, 1024] {
            let splits = f64::from(width / 32);
            let columns = f64::from(tiles.div_ceil(tech.tiles_per_column));
            let comm_mhz = words_per_us / (splits * columns);
            let frequency = compute_work_mhz_tiles / f64::from(tiles) + comm_mhz;
            let (voltage, _within) = curve.voltage_for_frequency_extrapolated(frequency);
            let bus_tech = tech.clone().with_bus_width(width);
            let activity = ColumnActivity {
                tiles,
                frequency_mhz: frequency,
                voltage,
                bus_words_per_second: acs.reference_bus_words_per_second,
                bus_length_mm: tech.column_bus_length_mm,
            };
            let power = ColumnPower::estimate_with(
                &synchro_power::TilePowerModel::new(&bus_tech),
                &synchro_power::InterconnectModel::new(&bus_tech),
                &leakage,
                &bus_tech,
                &activity,
            );
            points.push(Figure8Point {
                tiles,
                bus_width_bits: width,
                area_mm2: area.chip_area_with_bus_mm2(tiles, width / 32),
                power_mw: power.total_mw(),
            });
        }
    }
    points
}

/// One curve point of Figures 9/10: an application variant's total power at
/// a given per-tile leakage current.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakagePoint {
    /// Application name.
    pub application: String,
    /// Tiles in the variant.
    pub tiles: u32,
    /// Leakage current per tile in mA.
    pub leakage_ma_per_tile: f64,
    /// Total power in mW.
    pub power_mw: f64,
}

/// Figures 9 and 10: sweep per-tile leakage over the paper's nine points
/// for every parallelisation variant of every application.  Figure 9 plots
/// the DDC and 802.11a subsets, Figure 10 the MPEG-4 and Stereo Vision
/// subsets.
pub fn leakage_sensitivity(tech: &Technology) -> Vec<LeakagePoint> {
    let mut points = Vec::new();
    for &leak in LeakageModel::figure9_sweep_points() {
        let bars = figure7_with_options(
            tech,
            &EvaluationOptions {
                leakage_ma_per_tile: Some(leak),
                ..EvaluationOptions::default()
            },
        );
        for bar in bars {
            points.push(LeakagePoint {
                application: bar.application.clone(),
                tiles: bar.tiles,
                leakage_ma_per_tile: leak,
                power_mw: bar.total_mw(),
            });
        }
    }
    points
}

/// One point of the Section 5.5 tile-power sensitivity analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// Tile power `U` in mW/MHz.
    pub tile_power_mw_per_mhz: f64,
    /// Application name.
    pub application: String,
    /// Total power at that `U` (mW).
    pub power_mw: f64,
}

/// Section 5.5: sweep the tile power parameter `U` from 0.05 to
/// 0.2 mW/MHz and report every application's total power.
pub fn tile_power_sensitivity(tech: &Technology) -> Vec<SensitivityPoint> {
    let mut out = Vec::new();
    for &u in &[0.05, 0.07, 0.1, 0.15, 0.2] {
        for app in Application::all() {
            let profile = ApplicationProfile::of(app);
            let report = evaluate_application(
                &profile,
                tech,
                &EvaluationOptions {
                    tile_power_mw_per_mhz: Some(u),
                    ..EvaluationOptions::default()
                },
            );
            out.push(SensitivityPoint {
                tile_power_mw_per_mhz: u,
                application: profile.application.name().to_owned(),
                power_mw: report.total_mw(),
            });
        }
    }
    out
}

/// One row of the automatic-mapping summary: how the explorer's result at
/// the reference tile budget compares with the hand-built Table 4 mapping
/// for one application.
#[derive(Debug, Clone)]
pub struct AutoMapRow {
    /// Application name.
    pub application: String,
    /// Reference (Table 4) tile budget the search was given.
    pub tiles: u32,
    /// Power of the auto-derived single-actor-per-column mapping at the
    /// reference budget, under the explorer's cost model (mW).
    pub auto_power_mw: f64,
    /// Power of the hand-built reference mapping under the same cost
    /// model (mW).
    pub reference_power_mw: f64,
    /// Best power when the search may also fuse adjacent actors into one
    /// column group (mW); at most `auto_power_mw`.
    pub fused_power_mw: f64,
    /// Largest relative disagreement between the auto-mapped per-column
    /// frequencies and the published Table 4 frequencies.
    pub max_frequency_error: f64,
    /// Whether the auto-derived winner compiled, executed with exact
    /// firing counts, and cross-validated against the analytic
    /// [`ApplicationReport`].
    pub cross_validated: bool,
}

/// Auto-map every paper application at its Table 4 tile budget and
/// compare the result with the hand-built reference mapping: the
/// graph → auto-map → chip flow the explorer subsystem adds, run end to
/// end (search, compile, execute, cross-validate) for the whole suite.
pub fn auto_mapping_summary(tech: &Technology) -> Vec<AutoMapRow> {
    let mut rows = Vec::new();
    for app in Application::all() {
        let profile = ApplicationProfile::of(app);
        let reference = reference_graph(app);
        let budget = profile.reference_tiles();
        let config = ExplorerConfig::new(reference.iteration_rate_hz, budget)
            .with_tech(tech.clone())
            .single_actor_columns();

        let exploration = explore(&reference.graph, &config).expect("reference graphs explore");
        let winner = exploration
            .solution_for_tiles(budget)
            .unwrap_or(&exploration.best)
            .clone();
        let reference_cost = evaluate_mapping(&reference.graph, &reference.mapping, &config)
            .expect("reference mappings are well-formed");

        let fused = explore(
            &reference.graph,
            &ExplorerConfig::new(reference.iteration_rate_hz, budget).with_tech(tech.clone()),
        )
        .expect("reference graphs explore");

        let max_frequency_error = winner
            .frequencies_mhz()
            .iter()
            .zip(&profile.algorithms)
            .map(|(freq, algorithm)| {
                (freq - algorithm.reference_frequency_mhz).abs() / algorithm.reference_frequency_mhz
            })
            .fold(0.0, f64::max);

        let cross_validated = {
            let options = MapperOptions {
                iterations: 2,
                iteration_rate_hz: reference.iteration_rate_hz,
                ..MapperOptions::default()
            };
            let report = try_evaluate_application(&profile, tech, &EvaluationOptions::default())
                .expect("default options carry no allocation override");
            mapper::compile_explored(&reference.graph, &winner, &options)
                .and_then(|mut compiled| {
                    let execution = compiled.execute()?;
                    Ok(mapper::cross_validate(&compiled, &execution, &report))
                })
                .map(|validation| validation.agrees_within(1e-9))
                .unwrap_or(false)
        };

        rows.push(AutoMapRow {
            application: profile.application.name().to_owned(),
            tiles: budget,
            auto_power_mw: winner.power_mw,
            reference_power_mw: reference_cost.power_mw,
            fused_power_mw: fused.best.power_mw,
            max_frequency_error,
            cross_validated,
        });
    }
    rows
}

/// One row of the communication-schedule summary: an application's
/// reference mapping compiled to a static TDM schedule over the reference
/// horizontal bus, with the slot-activity energy calibration next to the
/// rate-based model.
#[derive(Debug, Clone)]
pub struct RouteSummaryRow {
    /// Application name.
    pub application: String,
    /// Columns (placements) of the reference mapping.
    pub columns: usize,
    /// Bus cycles per graph iteration (the TDM period).
    pub period: u64,
    /// Slots carrying a word per period.
    pub occupied_slots: u64,
    /// Scheduled-but-idle slots per period.
    pub idle_slots: u64,
    /// Occupied fraction of the frame.
    pub utilization: f64,
    /// Horizontal-bus power from the slot-activity path (mW), at the
    /// chip's maximum column voltage.
    pub slot_power_mw: f64,
    /// The same traffic through the rate-based model (mW) — the
    /// calibration reference the slot path must reproduce when idle slots
    /// are free.
    pub rate_power_mw: f64,
    /// Whether the compiled schedule replayed conflict-free through the
    /// segment-group rule.
    pub conflict_free: bool,
}

/// Compile every reference profile's mapping to a TDM route schedule at
/// the reference bus configuration (one split, 400 MHz) and summarise the
/// frame: the "communication scheduling" counterpart of
/// [`auto_mapping_summary`], pinning that all paper operating points stay
/// schedulable and the slot-activity power path matches the rate model.
pub fn route_schedule_summary(tech: &Technology) -> Vec<RouteSummaryRow> {
    let mut rows = Vec::new();
    for app in Application::all() {
        let reference = reference_graph(app);
        let options = MapperOptions {
            iterations: 1,
            iteration_rate_hz: reference.iteration_rate_hz,
            tech: tech.clone(),
            ..MapperOptions::default()
        };
        let compiled = mapper::compile(&reference.graph, &reference.mapping, &options)
            .expect("reference mappings schedule at the reference bus configuration");
        let route = compiled.route();
        let conflict_free = route.validate().is_ok();
        let voltage = compiled
            .plans()
            .iter()
            .map(|p| p.voltage)
            .fold(0.0, f64::max);
        let geometry = BusGeometry::horizontal(tech);
        let model = InterconnectModel::new(tech);
        let slots = SlotActivity::per_iteration(
            route.occupied_slots(),
            route.idle_slots(),
            reference.iteration_rate_hz,
        );
        rows.push(RouteSummaryRow {
            application: ApplicationProfile::of(app).application.name().to_owned(),
            columns: compiled.plans().len(),
            period: route.spec().period(),
            occupied_slots: route.occupied_slots(),
            idle_slots: route.idle_slots(),
            utilization: route.utilization(),
            slot_power_mw: model.power_mw_slots(&geometry, &slots, voltage),
            rate_power_mw: model.power_mw(
                &geometry,
                route.occupied_slots() as f64 * reference.iteration_rate_hz,
                voltage,
            ),
            conflict_free,
        });
    }
    rows
}

/// One row of the trace-scale simulation summary: a reference application
/// executed end to end for `frames` graph iterations (a million-frame
/// trace, not a handful of smoke iterations) on the fast execution tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceScaleRow {
    /// Application name.
    pub application: String,
    /// Graph iterations (frames/symbols/samples) executed.
    pub frames: u64,
    /// Reference ticks the run consumed.
    pub reference_ticks: u64,
    /// Reference ticks per graph iteration.
    pub hyperperiod: u64,
    /// Column clock cycles summed over all columns.
    pub column_cycles: u64,
    /// Words moved across the horizontal bus.
    pub horizontal_words: u64,
    /// Occupied fraction of the scheduled TDM slots (0 when the schedule
    /// reserved none).
    pub bus_utilization: f64,
    /// Whether measured firing counts matched the repetition vector
    /// exactly over the whole trace.
    pub firings_exact: bool,
}

/// Errors raised by the trace-scale entry points — the structured
/// counterpart of the panics the eager wrappers keep (mirrors the
/// [`crate::pipeline::PipelineError`] `try_` pattern).
#[derive(Debug)]
pub enum TraceScaleError {
    /// The application's reference mapping failed to compile or execute at
    /// the requested iteration rate (typically: the TDM frame implied by
    /// the rate is too small for the per-iteration traffic).
    Unschedulable {
        /// Application name.
        application: String,
        /// The iteration rate the mapping was compiled for.
        iteration_rate_hz: f64,
        /// The underlying mapper failure.
        source: mapper::MapperError,
    },
}

impl std::fmt::Display for TraceScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceScaleError::Unschedulable {
                application,
                iteration_rate_hz,
                source,
            } => write!(
                f,
                "{application} is unschedulable at {iteration_rate_hz} iterations/s: {source}"
            ),
        }
    }
}

impl std::error::Error for TraceScaleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceScaleError::Unschedulable { source, .. } => Some(source),
        }
    }
}

/// Execute one application's reference mapping for `frames` graph
/// iterations at `iteration_rate_hz` on the fast tier and summarise the
/// trace.
///
/// # Errors
///
/// [`TraceScaleError::Unschedulable`] when the mapping cannot be compiled
/// or executed at that rate.
pub fn try_trace_scale_row(
    tech: &Technology,
    app: Application,
    iteration_rate_hz: f64,
    frames: u64,
) -> Result<TraceScaleRow, TraceScaleError> {
    let application = ApplicationProfile::of(app).application.name().to_owned();
    let reference = reference_graph(app);
    let options = MapperOptions {
        iterations: frames,
        iteration_rate_hz,
        tech: tech.clone(),
        tier: mapper::ExecutionTier::Fast,
        ..MapperOptions::default()
    };
    let wrap = |source| TraceScaleError::Unschedulable {
        application: application.clone(),
        iteration_rate_hz,
        source,
    };
    let mut compiled =
        mapper::compile(&reference.graph, &reference.mapping, &options).map_err(wrap)?;
    let report = compiled.execute().map_err(wrap)?;
    Ok(TraceScaleRow {
        application,
        frames,
        reference_ticks: report.reference_ticks,
        hyperperiod: report.hyperperiod,
        column_cycles: report.column_cycles.iter().sum(),
        horizontal_words: report.simulated_horizontal_words,
        bus_utilization: if report.scheduled_bus_slots == 0 {
            0.0
        } else {
            report.occupied_bus_slots as f64 / report.scheduled_bus_slots as f64
        },
        firings_exact: report.firings_exact(),
    })
}

/// Trace-scale summary of every reference application at its reference
/// iteration rate.
///
/// # Errors
///
/// Propagates the first [`TraceScaleError`] — a reference application
/// failing to schedule at its own reference rate indicates a broken model.
pub fn try_trace_scale_summary(
    tech: &Technology,
    frames: u64,
) -> Result<Vec<TraceScaleRow>, TraceScaleError> {
    Application::all()
        .into_iter()
        .map(|app| {
            let rate = reference_graph(app).iteration_rate_hz;
            try_trace_scale_row(tech, app, rate, frames)
        })
        .collect()
}

/// Eager wrapper of [`try_trace_scale_summary`].
///
/// # Panics
///
/// Panics when a reference application fails to schedule at its own
/// reference rate (a broken model, not a data-dependent condition).
pub fn trace_scale_summary(tech: &Technology, frames: u64) -> Vec<TraceScaleRow> {
    try_trace_scale_summary(tech, frames)
        .expect("reference applications schedule at their reference rates")
}

/// One row of the multi-chip board summary: the 24-stage deep pipeline
/// ([`deep_pipeline`]) attempted at one board size, end to end through
/// explorer → mapper → board simulator.
#[derive(Debug, Clone)]
pub struct BoardSummaryRow {
    /// Chips the attempt was allowed to use.
    pub max_chips: usize,
    /// Chips the winning partition actually used (0 when rejected).
    pub chips: usize,
    /// Why the attempt was rejected (`None` when the board is feasible).
    pub rejection: Option<String>,
    /// Total tiles across the board.
    pub total_tiles: u32,
    /// Explorer compute power summed over every chip (mW).
    pub compute_power_mw: f64,
    /// Words per graph iteration crossing the chip-to-chip bridges.
    pub bridge_words_per_iteration: u64,
    /// Occupied bridge slots per TDM period.
    pub bridge_occupied_slots: u64,
    /// Scheduled-but-idle bridge slots per period.
    pub bridge_idle_slots: u64,
    /// Occupied fraction of the bridge frame.
    pub bridge_utilization: f64,
    /// Bridge transfer power from the slot-activity path (mW) — the
    /// inter-chip traffic priced into the board's budget.
    pub bridge_power_mw: f64,
    /// Whether the simulated board fired exactly as the repetition vector
    /// predicts.
    pub firings_exact: bool,
}

fn rejected_board_row(max_chips: usize, chips: usize, why: String) -> BoardSummaryRow {
    BoardSummaryRow {
        max_chips,
        chips,
        rejection: Some(why),
        total_tiles: 0,
        compute_power_mw: 0.0,
        bridge_words_per_iteration: 0,
        bridge_occupied_slots: 0,
        bridge_idle_slots: 0,
        bridge_utilization: 0.0,
        bridge_power_mw: 0.0,
        firings_exact: false,
    }
}

/// The multi-chip board experiment: the 24-stage deep pipeline is too
/// communication-heavy for one chip (46 cross words against the reference
/// 25-slot TDM frame — the single-chip row records the router's
/// rejection), but partitions feasibly across 2–4 chips.  Each feasible
/// row runs the partition end to end — board exploration, board
/// compilation, simulated execution on the fast tier — and prices the
/// bridge traffic through the slot-activity path.
pub fn board_summary(tech: &Technology) -> Vec<BoardSummaryRow> {
    let graph = deep_pipeline();
    let rate = DEEP_PIPELINE_RATE_HZ;
    let options = MapperOptions {
        iterations: 8,
        iteration_rate_hz: rate,
        tech: tech.clone(),
        tier: mapper::ExecutionTier::Fast,
        ..MapperOptions::default()
    };
    let comm = CommSpec::from_clock(options.bus_splits as u32, options.bus_frequency_hz, rate);
    let mut rows = Vec::new();

    // The single-chip row: the tile/power search succeeds, but the
    // router rejects the mapping — the per-iteration traffic outgrows
    // the TDM frame.
    let single = explore(
        &graph,
        &ExplorerConfig::new(rate, 64).single_actor_columns(),
    )
    .expect("the single-chip tile search itself succeeds");
    let (realized, mapping) = single
        .best
        .realize(&graph)
        .expect("single-actor winners realize");
    rows.push(match mapper::compile(&realized, &mapping, &options) {
        Err(err) => rejected_board_row(1, 1, err.to_string()),
        Ok(_) => unreachable!("46 words cannot fit a 25-slot frame"),
    });

    let model = InterconnectModel::new(tech);
    for max_chips in 2..=4usize {
        let config = ExplorerConfig::new(rate, 40)
            .single_actor_columns()
            .with_comm(comm)
            .with_board(BoardSearch::new(max_chips));
        let exploration = match explore_board(&graph, &config) {
            Ok(e) => e,
            Err(err) => {
                rows.push(rejected_board_row(max_chips, 0, err.to_string()));
                continue;
            }
        };
        let mapping = exploration.mapping();
        let mut compiled = match mapper::compile_board(
            &graph,
            &mapping,
            &options,
            &mapper::BoardConfig::default(),
        ) {
            Ok(c) => c,
            Err(err) => {
                rows.push(rejected_board_row(
                    max_chips,
                    exploration.chip_count(),
                    err.to_string(),
                ));
                continue;
            }
        };
        let report = compiled
            .execute()
            .expect("explored boards execute at their own rate");
        let bridge = compiled.route().bridge();
        let slots = SlotActivity::per_iteration(bridge.occupied_slots(), bridge.idle_slots(), rate);
        rows.push(BoardSummaryRow {
            max_chips,
            chips: exploration.chip_count(),
            rejection: None,
            total_tiles: exploration.total_tiles(),
            compute_power_mw: exploration.total_power_mw(),
            bridge_words_per_iteration: compiled.bridge_words_per_iteration(),
            bridge_occupied_slots: bridge.occupied_slots(),
            bridge_idle_slots: bridge.idle_slots(),
            bridge_utilization: bridge.utilization(),
            bridge_power_mw: model
                .power_mw_bridge_slots(compiled.bridge_energy_pj_per_word(), &slots),
            firings_exact: report.firings_exact(),
        });
    }
    rows
}

/// One row of the degraded-mode summary: an application re-explored
/// with each of its reference columns' tile allocations excluded in
/// turn, walking the iteration rate down
/// [`synchro_explore::RATE_LADDER`] until a feasible remap exists (the
/// board row also severs a bridge direction).
#[derive(Debug, Clone)]
pub struct DegradedModeRow {
    /// Application (or board scenario) name.
    pub application: String,
    /// The undegraded target iteration rate (Hz).
    pub full_rate_hz: f64,
    /// Columns of the reference mapping (= curve points for the
    /// single-chip rows, one loss per column).
    pub columns: usize,
    /// One [`synchro_explore::DegradationPoint`] per loss, sorted by
    /// ascending tiles lost — monotone by construction of the ladder.
    pub curve: DegradationCurve,
    /// Whether [`mapper::compile`] (or `compile_board` for the board
    /// row) rejected a mapping landing on the dead hardware with a
    /// structured fault error — the static half of the fault story.
    pub fault_rejected: bool,
}

/// Degraded-mode remapping across the suite: for each of the six
/// reference applications, lose each reference column's tile
/// allocation in turn and re-explore at the reference budget, walking
/// the rate ladder down until feasible; the final row degrades the
/// two-chip deep-pipeline board (largest per-chip column lost on every
/// chip, then the forward bridge direction severed).  Every row also
/// pins the static rejection: compiling the *unchanged* reference
/// mapping against a [`FaultSpec`] naming dead hardware it uses must
/// fail with a fault-class error, not silently run.
pub fn degraded_mode_summary(tech: &Technology) -> Vec<DegradedModeRow> {
    let mut rows = Vec::new();
    for app in Application::all() {
        let reference = reference_graph(app);
        let profile = ApplicationProfile::of(app);
        let budget = profile.reference_tiles();
        let config = ExplorerConfig::new(reference.iteration_rate_hz, budget)
            .with_tech(tech.clone())
            .single_actor_columns();
        let mut losses: Vec<ResourceLoss> = reference
            .mapping
            .placements()
            .iter()
            .enumerate()
            .map(|(column, p)| {
                ResourceLoss::column(
                    format!("column {column} failed ({} tiles)", p.tiles),
                    p.tiles,
                )
            })
            .collect();
        losses.sort_by_key(|l| l.tiles_lost);
        let curve =
            explore_degraded(&reference.graph, &config, &losses).expect("reference graphs explore");

        let fault_rejected = {
            let mut faults = FaultSpec::none();
            faults.fail_column(0, 0);
            let options = MapperOptions {
                iterations: 1,
                iteration_rate_hz: reference.iteration_rate_hz,
                tech: tech.clone(),
                faults,
                ..MapperOptions::default()
            };
            matches!(
                mapper::compile(&reference.graph, &reference.mapping, &options),
                Err(e) if e.is_fault()
            )
        };

        rows.push(DegradedModeRow {
            application: profile.application.name().to_owned(),
            full_rate_hz: reference.iteration_rate_hz,
            columns: reference.mapping.placements().len(),
            curve,
            fault_rejected,
        });
    }

    // The two-chip deep-pipeline board: same losses, board-level walker.
    let graph = deep_pipeline();
    let rate = DEEP_PIPELINE_RATE_HZ;
    let defaults = MapperOptions::default();
    let comm = CommSpec::from_clock(defaults.bus_splits as u32, defaults.bus_frequency_hz, rate);
    let config = ExplorerConfig::new(rate, 40)
        .with_tech(tech.clone())
        .single_actor_columns()
        .with_comm(comm)
        .with_board(BoardSearch::new(2));
    let healthy = explore_board(&graph, &config).expect("the deep pipeline partitions at 2 chips");
    let biggest_column = healthy
        .chips
        .iter()
        .flat_map(|c| c.solution.columns.iter().map(|col| col.tiles))
        .max()
        .unwrap_or(0);
    let losses = vec![
        ResourceLoss::column(
            format!("largest column failed ({biggest_column} tiles, every chip)"),
            biggest_column,
        ),
        ResourceLoss::bridge("bridge 0\u{2192}1 severed", 0),
    ];
    let curve =
        explore_degraded_board(&graph, &config, &losses).expect("board degradation explores");

    let fault_rejected = {
        let mut faults = FaultSpec::none();
        faults.fail_lane(0, 1);
        let options = MapperOptions {
            iterations: 1,
            iteration_rate_hz: rate,
            tech: tech.clone(),
            faults,
            ..MapperOptions::default()
        };
        matches!(
            mapper::compile_board(
                &graph,
                &healthy.mapping(),
                &options,
                &mapper::BoardConfig::default(),
            ),
            Err(e) if e.is_fault()
        )
    };

    rows.push(DegradedModeRow {
        application: format!("deep_pipeline ({} chips)", healthy.chip_count()),
        full_rate_hz: rate,
        columns: healthy.mapping().placements().len(),
        curve,
        fault_rejected,
    });
    rows
}

/// One row of the energy-attribution cross-check: a reference
/// application run with the trace substrate on, its captured event
/// stream priced through [`synchro_trace::analyze::attribute`], and the
/// total compared against the independent report-counter energy
/// ([`mapper::ReportEnergy`]).
#[derive(Debug, Clone)]
pub struct EnergyAttributionRow {
    /// Application name.
    pub application: String,
    /// Execution tier the run used (`"interpreted"` / `"fast"`).
    pub tier: &'static str,
    /// Event-priced total energy of the run, joules.
    pub attributed_j: f64,
    /// Report-counter total energy of the run, joules.
    pub report_j: f64,
    /// `|attributed − report| / report` (0 when both are 0).
    pub relative_error: f64,
    /// Average attributed power over the run, milliwatts.
    pub average_power_mw: f64,
    /// Label of the binding resource per the bottleneck analysis.
    pub binding: String,
    /// Utilization of the binding resource in `[0, 1]`.
    pub binding_utilization: f64,
    /// Reference ticks of deadline headroom per hyperperiod on the
    /// binding resource.
    pub headroom_ticks: u64,
    /// Simulation events the pricing spec could not bill (0 = every
    /// event attributed).
    pub unpriced_events: u64,
}

/// The energy-attribution experiment: every reference application, on
/// both execution tiers, compiled with a [`RingBufferSink`] installed,
/// executed, and its event stream priced against the compiled pricing
/// spec.  The acceptance pin — attributed total ≡ report-counter total
/// within 0.1 % — holds because both paths bill the same physical
/// counters (billed cycles, occupied slots) through the same models;
/// this function measures it rather than assuming it.
///
/// # Panics
///
/// Panics if a reference application fails to compile or execute, or if
/// the capture ring overflows (the rows would silently under-count).
pub fn energy_attribution_summary(tech: &Technology) -> Vec<EnergyAttributionRow> {
    let mut rows = Vec::new();
    for app in Application::all() {
        let reference = reference_graph(app);
        for (tier, tier_name) in [
            (mapper::ExecutionTier::Interpreted, "interpreted"),
            (mapper::ExecutionTier::Fast, "fast"),
        ] {
            let ring = Arc::new(RingBufferSink::new(1 << 22));
            let options = MapperOptions {
                iterations: 4,
                iteration_rate_hz: reference.iteration_rate_hz,
                tech: tech.clone(),
                tier,
                trace: Trace::to(ring.clone()),
                ..MapperOptions::default()
            };
            let mut compiled = mapper::compile(&reference.graph, &reference.mapping, &options)
                .expect("reference mappings compile");
            let report = compiled.execute().expect("reference mappings execute");
            assert_eq!(
                ring.dropped(),
                0,
                "capture ring overflowed; the attribution would under-count"
            );
            let events = ring.events();
            let spec = compiled.price_spec(tech);
            let ledger = analyze::attribute(&events, &spec, report.reference_ticks);
            let bottleneck = analyze::bottlenecks(&events, &spec, report.reference_ticks);
            let report_energy = compiled.execution_energy(&report, tech);
            let attributed_j = ledger.total_j();
            let report_j = report_energy.total_j();
            let relative_error = if report_j == 0.0 {
                if attributed_j == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (attributed_j - report_j).abs() / report_j
            };
            rows.push(EnergyAttributionRow {
                application: app.name().to_owned(),
                tier: tier_name,
                attributed_j,
                report_j,
                relative_error,
                average_power_mw: ledger.average_power_mw(),
                binding: bottleneck.binding.clone().unwrap_or_default(),
                binding_utilization: bottleneck.binding_utilization,
                headroom_ticks: bottleneck.headroom_ticks_per_hyperperiod,
                unpriced_events: ledger.unpriced_events,
            });
        }
    }
    rows
}

/// The aggregated answer to "why is this `(graph, rate, budget)` triple
/// infeasible?": the ranked rejection classes a [`RejectionLedger`]
/// collected across exploration, realization and compilation, plus the
/// rendered explanation.
#[derive(Debug, Clone)]
pub struct InfeasibilityExplanation {
    /// Whether the triple compiled after all (empty ledger, no story to
    /// tell).
    pub feasible: bool,
    /// Rejection classes, most frequent first.
    pub classes: Vec<synchro_trace::analyze::RejectionClass>,
    /// The rendered ranked explanation.
    pub explanation: String,
}

/// Explain why `(graph, rate_hz, tile_budget)` does — or does not —
/// map: run the explorer and (when it finds a candidate) the mapper with
/// a [`RejectionLedger`] installed as the trace sink, so every
/// structured rejection (router `PeriodOverflow`, explorer budget/comm
/// prunes, fault rejections) lands in one ranked ledger.
///
/// The paper-pinned case: the 24-stage deep pipeline on one chip
/// explores fine but dies in the router with `PeriodOverflow` — 46
/// cross words against the reference 25-slot TDM frame — and that is
/// exactly the dominant class this report names.
pub fn explain_infeasibility(
    graph: &SdfGraph,
    rate_hz: f64,
    tile_budget: u32,
) -> InfeasibilityExplanation {
    let ledger = Arc::new(RejectionLedger::new());
    let trace = Trace::to(ledger.clone());
    let config = ExplorerConfig::new(rate_hz, tile_budget)
        .single_actor_columns()
        .with_trace(trace.clone());
    let feasible = match explore(graph, &config) {
        Err(_) => false,
        Ok(exploration) => match exploration.best.realize(graph) {
            Err(err) => {
                // Realization failures do not flow through a traced
                // callee; mirror them into the ledger by hand.
                trace.emit(|| synchro_trace::TraceEvent::RouteReject {
                    code: err.code(),
                    detail: err.to_string(),
                });
                false
            }
            Ok((realized, mapping)) => {
                let options = MapperOptions {
                    iterations: 1,
                    iteration_rate_hz: rate_hz,
                    trace: trace.clone(),
                    ..MapperOptions::default()
                };
                mapper::compile(&realized, &mapping, &options).is_ok()
            }
        },
    };
    let title = format!(
        "why the mapping {} at {:.0} Hz within {} tiles",
        if feasible { "succeeds" } else { "fails" },
        rate_hz,
        tile_budget
    );
    InfeasibilityExplanation {
        feasible,
        classes: ledger.classes(),
        explanation: ledger.explain(&title),
    }
}

/// Convenience: the reference report of every application (used by the
/// examples and the benchmark harness).
pub fn reference_reports(tech: &Technology) -> Vec<ApplicationReport> {
    Application::all()
        .into_iter()
        .map(|app| {
            evaluate_application(
                &ApplicationProfile::of(app),
                tech,
                &EvaluationOptions::default(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::isca2004()
    }

    #[test]
    fn figure5_is_monotone_and_fo4_15_is_faster() {
        let pts = figure5(&tech(), 31);
        assert_eq!(pts.len(), 31);
        for pair in pts.windows(2) {
            assert!(pair[1].frequency_fo4_20 >= pair[0].frequency_fo4_20);
        }
        for p in &pts {
            assert!(p.frequency_fo4_15 > p.frequency_fo4_20);
        }
    }

    #[test]
    fn energy_attribution_agrees_with_report_counters() {
        let rows = energy_attribution_summary(&tech());
        assert_eq!(rows.len(), 12, "six profiles on two tiers");
        for row in &rows {
            assert_eq!(
                row.unpriced_events, 0,
                "{} [{}]: every simulation event must be billable",
                row.application, row.tier
            );
            assert!(
                row.relative_error <= 1e-3,
                "{} [{}]: attributed {} J vs report {} J disagree by {:.4}%",
                row.application,
                row.tier,
                row.attributed_j,
                row.report_j,
                row.relative_error * 100.0
            );
            assert!(row.attributed_j > 0.0);
            assert!(row.average_power_mw > 0.0);
            assert!(
                !row.binding.is_empty(),
                "a loaded run has a binding resource"
            );
            assert!(row.binding_utilization > 0.0 && row.binding_utilization <= 1.0);
        }
        // The two tiers of one application price to the same energy —
        // their streams are batching-equivalent, so the ledgers agree.
        for pair in rows.chunks(2) {
            let rel = (pair[0].attributed_j - pair[1].attributed_j).abs()
                / pair[0].attributed_j.max(f64::MIN_POSITIVE);
            assert!(
                rel <= 1e-9,
                "{}: tiers disagree by {rel}",
                pair[0].application
            );
        }
    }

    #[test]
    fn explain_infeasibility_names_the_period_overflow() {
        let explanation = explain_infeasibility(&deep_pipeline(), DEEP_PIPELINE_RATE_HZ, 64);
        assert!(!explanation.feasible);
        let dominant = explanation
            .classes
            .first()
            .expect("an infeasible triple has at least one rejection class");
        assert_eq!(dominant.code, "period_overflow");
        assert!(
            explanation.explanation.contains("46") && explanation.explanation.contains("25"),
            "the explanation names the 46-word demand against the 25-slot frame:\n{}",
            explanation.explanation
        );
    }

    #[test]
    fn explain_infeasibility_reports_feasible_triples_with_an_empty_ledger() {
        let reference = reference_graph(Application::Ddc);
        // The DDC reference mapping realizes within a generous budget.
        let explanation = explain_infeasibility(&reference.graph, reference.iteration_rate_hz, 64);
        assert!(explanation.feasible);
        assert!(explanation.classes.is_empty());
        assert!(explanation.explanation.contains("no rejections"));
    }

    #[test]
    fn table1_and_table2_have_the_published_shape() {
        let t1 = table1(&tech());
        assert!(t1
            .iter()
            .any(|(k, v, _)| k == "Tile Power" && v.contains("0.1")));
        let (tile, ctrl) = table2();
        assert_eq!(tile.len(), 7);
        assert_eq!(ctrl.len(), 6);
        let total: f64 = tile.iter().map(|(_, a)| a).sum();
        assert!((total / 1e6 - 7.27).abs() < 0.01);
    }

    #[test]
    fn table3_contains_synchroscalar_and_reference_rows() {
        let rows = table3(&tech());
        let synchro = rows
            .iter()
            .filter(|r| r.platform == "Synchroscalar")
            .count();
        assert_eq!(synchro, 5);
        assert!(rows.len() > 15);
        // The DDC Synchroscalar row should land near the paper's 2427 mW.
        let ddc = rows
            .iter()
            .find(|r| r.platform == "Synchroscalar" && r.application == "DDC")
            .unwrap();
        assert!(ddc.power_mw > 2100.0 && ddc.power_mw < 2800.0);
    }

    #[test]
    fn efficiency_ratios_match_the_headline_claims() {
        // The abstract claims 8–30× of ASIC power and 10–60× better than
        // DSPs; allow a generous band around those ranges.
        let t = tech();
        for app in [
            Application::Wifi80211a,
            Application::Ddc,
            Application::Mpeg4Qcif,
        ] {
            let r = efficiency_ratios(&t, app).unwrap();
            assert!(
                r.vs_asic > 1.0 && r.vs_asic < 60.0,
                "{app:?}: vs ASIC ratio {:.1}",
                r.vs_asic
            );
            assert!(
                r.vs_dsp > 3.0,
                "{app:?}: vs DSP ratio {:.1} should show a large advantage",
                r.vs_dsp
            );
        }
    }

    #[test]
    fn table4_totals_are_consistent_with_blocks() {
        let rows = table4(&tech());
        for app in Application::all() {
            let name = app.name();
            let blocks: Vec<&Table4Row> = rows
                .iter()
                .filter(|r| r.application == name && r.algorithm != "TOTAL")
                .collect();
            let total = rows
                .iter()
                .find(|r| r.application == name && r.algorithm == "TOTAL")
                .unwrap();
            let sum: f64 = blocks.iter().map(|r| r.power_mw).sum();
            assert!((sum - total.power_mw).abs() < 1e-6);
            assert!(total.single_voltage_mw >= total.power_mw - 1e-9);
        }
    }

    #[test]
    fn figure6_savings_are_nonnegative_and_bounded() {
        for bar in figure6(&tech()) {
            assert!(bar.savings_percent >= 0.0 && bar.savings_percent < 60.0);
            assert!(bar.additional_unscaled_mw >= 0.0);
        }
    }

    #[test]
    fn figure7_more_tiles_reduces_compute_power_for_wifi() {
        let bars = figure7(&tech());
        let wifi: Vec<&Figure7Bar> = bars.iter().filter(|b| b.application == "802.11a").collect();
        assert_eq!(wifi.len(), 3);
        // 12 → 20 → 36 tiles: compute power falls as frequency and voltage
        // scale down, and so does the total despite the growing tile count.
        assert!(wifi[0].compute_mw > wifi[1].compute_mw);
        assert!(wifi[1].compute_mw >= wifi[2].compute_mw);
        assert!(wifi[0].total_mw() > wifi[1].total_mw());
        assert!(wifi[1].total_mw() > wifi[2].total_mw());
        // The 12-tile squeeze pushes the Viterbi ACS past the supply
        // envelope while the reference 20-tile mapping fits.
        assert!(!wifi[0].feasible);
        assert!(wifi[1].feasible);
    }

    #[test]
    fn figure8_reproduces_the_bus_width_knee() {
        let pts = figure8(&tech());
        assert_eq!(pts.len(), 18);
        let power = |tiles: u32, width: u32| {
            pts.iter()
                .find(|p| p.tiles == tiles && p.bus_width_bits == width)
                .unwrap()
                .power_mw
        };
        for tiles in [8, 16, 32] {
            let gain_128_to_256 = power(tiles, 128) - power(tiles, 256);
            let gain_256_to_512 = power(tiles, 256) - power(tiles, 512);
            assert!(gain_128_to_256 > 0.0, "wider bus must save power");
            assert!(
                gain_128_to_256 > gain_256_to_512,
                "diminishing returns beyond 256 bits for {tiles} tiles"
            );
        }
        // Area grows with both tiles and bus width.
        let area = |tiles: u32, width: u32| {
            pts.iter()
                .find(|p| p.tiles == tiles && p.bus_width_bits == width)
                .unwrap()
                .area_mm2
        };
        assert!(area(32, 256) > area(16, 256));
        assert!(area(16, 1024) > area(16, 32));
    }

    #[test]
    fn leakage_sensitivity_reproduces_the_crossover_behaviour() {
        let pts = leakage_sensitivity(&tech());
        // At low leakage the most-parallel MPEG-4 variant is at least as
        // good as the 12-tile variant; at the highest leakage the ordering
        // flips (Figure 10's cross-over).
        let power = |tiles: u32, leak: f64| {
            pts.iter()
                .find(|p| {
                    p.application == "MPEG4 CIF"
                        && p.tiles == tiles
                        && (p.leakage_ma_per_tile - leak).abs() < 1e-9
                })
                .map(|p| p.power_mw)
                .unwrap()
        };
        let lowest = LeakageModel::figure9_sweep_points()[0];
        let highest = *LeakageModel::figure9_sweep_points().last().unwrap();
        let low_36 = power(36, lowest);
        let low_12 = power(12, lowest);
        let high_36 = power(36, highest);
        let high_12 = power(12, highest);
        assert!(
            low_36 <= low_12 * 1.05,
            "at low leakage more tiles should win or tie"
        );
        assert!(high_36 > high_12, "at high leakage fewer tiles must win");
    }

    #[test]
    fn leakage_sweep_covers_every_variant_and_point() {
        let pts = leakage_sensitivity(&tech());
        let variants: usize = Application::all()
            .iter()
            .map(|&a| ApplicationProfile::of(a).parallelization_variants.len())
            .sum();
        assert_eq!(pts.len(), variants * 9);
    }

    #[test]
    fn sensitivity_sweep_is_monotone_in_u() {
        let pts = tile_power_sensitivity(&tech());
        let ddc: Vec<&SensitivityPoint> = pts.iter().filter(|p| p.application == "DDC").collect();
        for pair in ddc.windows(2) {
            assert!(pair[1].power_mw > pair[0].power_mw);
        }
    }

    #[test]
    fn auto_mapping_rediscovers_every_table4_operating_point() {
        let rows = auto_mapping_summary(&tech());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.max_frequency_error < 1e-9,
                "{}: auto-mapped frequencies off Table 4 by {}",
                row.application,
                row.max_frequency_error
            );
            assert!(
                row.auto_power_mw <= row.reference_power_mw + 1e-9,
                "{}: auto {} mW vs reference {} mW",
                row.application,
                row.auto_power_mw,
                row.reference_power_mw
            );
            assert!(row.fused_power_mw <= row.auto_power_mw + 1e-9);
            assert!(row.cross_validated, "{}", row.application);
        }
    }

    #[test]
    fn every_reference_profile_compiles_to_a_conflict_free_tdm_schedule() {
        let rows = route_schedule_summary(&tech());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.conflict_free, "{}", row.application);
            assert!(row.occupied_slots > 0, "{}", row.application);
            assert!(
                row.utilization > 0.0 && row.utilization <= 1.0,
                "{}: utilization {}",
                row.application,
                row.utilization
            );
            // Slot-activity calibration: with idle slots free, the slot
            // path must reproduce the rate-based model.
            assert!(
                (row.slot_power_mw - row.rate_power_mw).abs()
                    <= 1e-9 * row.rate_power_mw.max(1e-12),
                "{}: {} vs {} mW",
                row.application,
                row.slot_power_mw,
                row.rate_power_mw
            );
        }
        // The DDC frame: 25 slots, 10 occupied.
        let ddc = rows.iter().find(|r| r.application == "DDC").unwrap();
        assert_eq!(ddc.period, 25);
        assert_eq!(ddc.occupied_slots, 10);
        assert_eq!(ddc.idle_slots, 15);
    }

    #[test]
    fn trace_scale_rows_match_an_interpreted_short_run_scaled_up() {
        // 10 000 frames of every application, batched: every firing count
        // exact, every schedule busy, and the tick count an exact multiple
        // of the analytic hyperperiod expectation (plus the drain tail).
        let rows = try_trace_scale_summary(&tech(), 10_000).unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.firings_exact, "{}", row.application);
            assert!(row.horizontal_words > 0, "{}", row.application);
            assert!(
                row.reference_ticks >= row.frames * row.hyperperiod,
                "{}: {} ticks for {} frames of {}",
                row.application,
                row.reference_ticks,
                row.frames,
                row.hyperperiod
            );
            assert!(row.bus_utilization > 0.0 && row.bus_utilization <= 1.0);
        }
    }

    #[test]
    fn unschedulable_rates_return_structured_errors_not_panics() {
        // The DDC moves 10 words per iteration; at 100 M iterations/s the
        // 400 MHz bus frame has only 4 slots, so the mapping must be
        // rejected via the structured error path.
        let err = try_trace_scale_row(&tech(), Application::Ddc, 100e6, 100).unwrap_err();
        let TraceScaleError::Unschedulable {
            application,
            iteration_rate_hz,
            source,
        } = &err;
        assert_eq!(application, "DDC");
        assert_eq!(*iteration_rate_hz, 100e6);
        assert!(matches!(source, mapper::MapperError::Route(_)), "{source}");
        assert!(err.to_string().contains("unschedulable"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn reference_reports_cover_all_applications() {
        let reports = reference_reports(&tech());
        assert_eq!(reports.len(), 6);
        assert!(reports.iter().all(|r| r.total_mw() > 0.0));
    }

    #[test]
    fn board_summary_rejects_one_chip_and_prices_the_multi_chip_bridges() {
        let rows = board_summary(&tech());
        assert_eq!(rows.len(), 4);
        // The pinned single-chip rejection: 46 words cannot fit the
        // reference 25-slot frame.
        let single = &rows[0];
        assert_eq!((single.max_chips, single.chips), (1, 1));
        let why = single.rejection.as_deref().expect("one chip is rejected");
        assert!(why.contains("46"), "{why}");
        assert!(why.contains("25"), "{why}");
        // Every larger board is feasible end to end, with the 2-word
        // bridge boundary simulated and priced.
        for row in &rows[1..] {
            assert!(row.rejection.is_none(), "{:?}", row.rejection);
            assert!(row.chips >= 2 && row.chips <= row.max_chips);
            assert!(row.total_tiles >= 24);
            assert!(row.compute_power_mw > 0.0);
            assert!(row.bridge_words_per_iteration >= 2);
            assert!(row.bridge_occupied_slots >= row.bridge_words_per_iteration);
            assert!(row.bridge_utilization > 0.0 && row.bridge_utilization <= 1.0);
            assert!(row.bridge_power_mw > 0.0);
            assert!(row.firings_exact);
        }
        // Chip counts are searched ascending, so the cheapest feasible
        // board (2 chips, one 2-word bridge crossing) wins everywhere.
        assert!(rows[1..].iter().all(|r| r.chips == 2));
        assert_eq!(rows[1].bridge_words_per_iteration, 2);
    }

    #[test]
    fn degraded_mode_summary_pins_monotone_curves_and_fault_rejections() {
        let rows = degraded_mode_summary(&tech());
        // Six reference applications plus the two-chip deep pipeline.
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(
                row.fault_rejected,
                "{}: compiling onto dead hardware must be rejected",
                row.application
            );
            assert!(!row.curve.points.is_empty(), "{}", row.application);
            assert!(
                row.curve.is_monotone(),
                "{}: degradation must never buy throughput back: {:#?}",
                row.application,
                row.curve.points
            );
            assert_eq!(row.curve.full_rate_hz, row.full_rate_hz);
            for p in &row.curve.points {
                assert!(p.rate_hz <= row.full_rate_hz);
                assert!(
                    !p.feasible || p.power_mw > 0.0,
                    "{}: feasible points carry a cost: {p:?}",
                    row.application
                );
            }
        }
        // Single-chip rows lose each reference column in turn.
        for row in &rows[..6] {
            assert_eq!(row.curve.points.len(), row.columns, "{}", row.application);
        }
        // Every application survives the loss of its smallest column at
        // *some* rate — the reference mappings do not sit on a cliff.
        for row in &rows[..6] {
            assert!(
                row.curve.points[0].feasible,
                "{}: smallest-column loss found no remap: {:?}",
                row.application, row.curve.points[0]
            );
        }
        // The board row: the largest-column loss and the severed bridge
        // both find a degraded operating point rather than a dead end
        // (the bridge loss falls back to fewer chips at a reduced rate).
        let board = &rows[6];
        assert!(board.application.starts_with("deep_pipeline"));
        assert_eq!(board.curve.points.len(), 2);
        assert!(
            board.curve.points[0].feasible,
            "column loss: {:?}",
            board.curve.points[0]
        );
        assert!(
            board.curve.points[1].feasible,
            "bridge loss: {:?}",
            board.curve.points[1]
        );
    }
}
