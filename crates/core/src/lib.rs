//! # Synchroscalar
//!
//! A reproduction of *Synchroscalar: A Multiple Clock Domain, Power-Aware,
//! Tile-Based Embedded Processor* (ISCA 2004) as a Rust library.
//!
//! The crate ties the substrates together into the paper's evaluation
//! methodology (Section 4.1):
//!
//! 1. describe an application as mapped algorithm blocks
//!    ([`synchro_apps::profiles`]),
//! 2. derive each block's operating frequency from its work and tile
//!    allocation,
//! 3. pick the minimum supply voltage able to sustain that frequency from
//!    the Figure 5 voltage/frequency curve ([`synchro_power::VfCurve`]),
//! 4. roll up dynamic tile power, interconnect power and leakage into a
//!    per-block and per-application power report ([`pipeline`]),
//! 5. regenerate every table and figure of the paper's evaluation
//!    ([`experiments`]),
//! 6. *derive* mappings instead of hand-building them: the [`explorer`]
//!    searches tile allocations and actor→column groupings of an SDF
//!    graph for the minimum-power feasible mapping and its Pareto
//!    frontier, and [`mapper::compile_explored`] runs the winners on the
//!    simulated chip,
//! 7. statically schedule the inter-column communication: the [`router`]
//!    compiles every mapping's cross-column traffic into a conflict-free
//!    periodic TDM slot schedule over the segmented horizontal bus, which
//!    the simulated chip is driven from and the slot-activity power path
//!    is calibrated against,
//! 8. scale past one chip: [`explorer::explore_board`] shards an
//!    oversized SDF graph across a board of chips, the [`router`] packs
//!    the inter-chip flows onto TDM-scheduled bridge lanes, and
//!    [`mapper::compile_board`] produces a simulated [`sim::Board`] that
//!    co-advances the chips in shared reference time with the bridge
//!    traffic priced ([`experiments::board_summary`]).
//!
//! ```
//! use synchroscalar::pipeline::{evaluate_application, EvaluationOptions};
//! use synchro_apps::{Application, ApplicationProfile};
//! use synchro_power::Technology;
//!
//! let tech = Technology::isca2004();
//! let profile = ApplicationProfile::of(Application::Ddc);
//! let report = evaluate_application(&profile, &tech, &EvaluationOptions::default());
//! // The 50-tile DDC lands in the low single-digit watts (Table 4: 2.43 W).
//! assert!(report.total_mw() > 1500.0 && report.total_mw() < 3500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod mapper;
pub mod pipeline;

pub use mapper::{
    compile as compile_mapping, compile_board, BoardConfig, BoardExecutionReport, CompiledBoard,
    CompiledChip, CrossValidation, ExecutionTier, FaultedBoardRun, FaultedRun, MapperOptions,
};
pub use pipeline::{
    evaluate_application, try_evaluate_application, ApplicationReport, BlockReport,
    EvaluationOptions, PipelineError, VoltagePolicy,
};

/// The automatic mapping / design-space exploration engine: searches tile
/// allocations and actor→column groupings of an SDF graph for the
/// minimum-power feasible mapping and its Pareto frontier (see
/// [`explorer::explore`]).
pub use synchro_explore as explorer;

/// Static TDM communication scheduling over the segmented horizontal bus:
/// derives per-iteration inter-column word flows from the repetition
/// vector and compiles them into a conflict-free periodic slot schedule
/// (see [`router::compile`]); [`mapper::compile`] drives the simulated
/// chip's horizontal bus from it.
pub use synchro_route as router;

/// Structured tracing and metrics: the [`trace::TraceSink`] event stream
/// every layer emits into (column firings, divider ticks, ZORM stalls,
/// bus/bridge slots, router decisions, explorer phases), the
/// [`trace::MetricsSink`] counter registry, and the Chrome
/// `trace_event` / utilization-histogram exporters
/// ([`trace::chrome`], [`trace::report`]).  Install a sink via
/// [`mapper::MapperOptions::trace`] or
/// [`explorer::ExplorerConfig`]'s `trace` field; the default
/// [`trace::Trace::off`] handle is zero-cost.
pub use synchro_trace as trace;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use synchro_apps as apps;
pub use synchro_baselines as baselines;
pub use synchro_bus as bus;
pub use synchro_dou as dou;
pub use synchro_isa as isa;
pub use synchro_power as power;
pub use synchro_sdf as sdf;
pub use synchro_sim as sim;
pub use synchro_simd as simd;
pub use synchro_tile as tile;
