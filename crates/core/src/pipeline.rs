//! The power-evaluation pipeline: from an application mapping to a
//! per-block and per-application power report (methodology steps 7–9).

use std::error::Error;
use std::fmt;

use synchro_apps::ApplicationProfile;
use synchro_power::{
    ColumnActivity, ColumnPower, InterconnectModel, LeakageModel, Technology, TilePowerModel,
    VfCurve,
};

/// Errors raised while evaluating an application mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// An explicit allocation override does not cover every algorithm
    /// block of the profile.
    AllocationMismatch {
        /// Blocks the profile has.
        expected: usize,
        /// Entries the allocation supplied.
        got: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::AllocationMismatch { expected, got } => write!(
                f,
                "allocation override has {got} entries but the profile has {expected} blocks"
            ),
        }
    }
}

impl Error for PipelineError {}

/// How supply voltages are assigned to the application's blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VoltagePolicy {
    /// Each block (column group) gets the minimum voltage its frequency
    /// needs — Synchroscalar's per-column voltage domains.
    #[default]
    PerColumn,
    /// Every block runs at the single highest voltage any block needs —
    /// the "Single Voltage" comparison column of Table 4 / Figure 6.
    SingleVoltage,
}

/// Options controlling one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationOptions {
    /// Voltage assignment policy.
    pub voltage_policy: VoltagePolicy,
    /// Override of the per-block tile allocation (same order and length as
    /// the profile's algorithm list).  `None` uses the Table 4 reference
    /// allocation.
    pub allocation: Option<Vec<u32>>,
    /// Per-tile leakage current override in mA (Figures 9/10 sweep this);
    /// `None` uses the technology default (1.5 mA).
    pub leakage_ma_per_tile: Option<f64>,
    /// Tile power (`U`, mW/MHz) override for the Section 5.5 sensitivity
    /// analysis; `None` uses the technology default (0.1 mW/MHz).
    pub tile_power_mw_per_mhz: Option<f64>,
}

impl Default for EvaluationOptions {
    fn default() -> Self {
        EvaluationOptions {
            voltage_policy: VoltagePolicy::PerColumn,
            allocation: None,
            leakage_ma_per_tile: None,
            tile_power_mw_per_mhz: None,
        }
    }
}

/// The evaluated operating point and power of one algorithm block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReport {
    /// Block name (Table 4 row).
    pub name: String,
    /// Tiles assigned.
    pub tiles: u32,
    /// Required per-tile frequency in MHz.
    pub frequency_mhz: f64,
    /// Assigned supply voltage in volts.
    pub voltage: f64,
    /// Whether the operating point fits inside the technology's supply
    /// envelope (false means the voltage was extrapolated beyond the
    /// maximum supply — an under-provisioned mapping).
    pub within_envelope: bool,
    /// Power breakdown at the assigned operating point.
    pub power: ColumnPower,
}

impl BlockReport {
    /// Total block power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.power.total_mw()
    }
}

/// The evaluated power of a whole application mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationReport {
    /// Application name.
    pub application: String,
    /// Throughput target description.
    pub throughput: String,
    /// Voltage policy used.
    pub voltage_policy: VoltagePolicy,
    /// Per-block reports in profile order.
    pub blocks: Vec<BlockReport>,
}

impl ApplicationReport {
    /// Total tiles used.
    pub fn total_tiles(&self) -> u32 {
        self.blocks.iter().map(|b| b.tiles).sum()
    }

    /// Total application power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.blocks.iter().map(BlockReport::total_mw).sum()
    }

    /// Total compute (tile) power in milliwatts.
    pub fn compute_mw(&self) -> f64 {
        self.blocks.iter().map(|b| b.power.tile_mw).sum()
    }

    /// Total interconnect + leakage power in milliwatts (the dark portion
    /// of the Figure 7 bars).
    pub fn overhead_mw(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.power.interconnect_mw + b.power.leakage_mw)
            .sum()
    }

    /// True if every block's operating point fits the supply envelope.
    pub fn feasible(&self) -> bool {
        self.blocks.iter().all(|b| b.within_envelope)
    }

    /// Silicon area of the configuration in mm² (tiles rounded up to whole
    /// columns plus per-column control, Table 3's area column).
    pub fn area_mm2(&self) -> f64 {
        synchro_power::AreaModel::isca2004().chip_area_mm2(self.total_tiles())
    }
}

fn technology_with_overrides(tech: &Technology, options: &EvaluationOptions) -> Technology {
    let mut t = tech.clone();
    if let Some(leak) = options.leakage_ma_per_tile {
        t = t.with_leakage_ma_per_tile(leak);
    }
    if let Some(u) = options.tile_power_mw_per_mhz {
        t = t.with_tile_power(u);
    }
    t
}

/// Evaluate an application mapping under the given technology and options,
/// producing the per-block operating points and power (methodology steps
/// 7–9 of Section 4.1).
///
/// # Panics
///
/// Panics if an explicit allocation override does not cover every
/// algorithm block; use [`try_evaluate_application`] to get the mismatch
/// as a [`PipelineError`] instead.
pub fn evaluate_application(
    profile: &ApplicationProfile,
    tech: &Technology,
    options: &EvaluationOptions,
) -> ApplicationReport {
    try_evaluate_application(profile, tech, options).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`evaluate_application`]: a malformed allocation
/// override is reported as a [`PipelineError`] instead of a panic.
///
/// # Errors
///
/// Returns [`PipelineError::AllocationMismatch`] when
/// `options.allocation` is present with the wrong length.
pub fn try_evaluate_application(
    profile: &ApplicationProfile,
    tech: &Technology,
    options: &EvaluationOptions,
) -> Result<ApplicationReport, PipelineError> {
    let tech = technology_with_overrides(tech, options);
    let curve = VfCurve::fo4_20(&tech);
    let tile_model = TilePowerModel::new(&tech);
    let bus_model = InterconnectModel::new(&tech);
    let leakage_model = LeakageModel::new(&tech);

    let allocation: Vec<u32> = match &options.allocation {
        Some(explicit) => explicit.clone(),
        None => profile
            .algorithms
            .iter()
            .map(|a| a.reference_tiles)
            .collect(),
    };
    if allocation.len() != profile.algorithms.len() {
        return Err(PipelineError::AllocationMismatch {
            expected: profile.algorithms.len(),
            got: allocation.len(),
        });
    }

    // First pass: frequencies and per-block minimum voltages.
    let mut operating: Vec<(f64, f64, bool)> = Vec::with_capacity(profile.algorithms.len());
    for (algorithm, &tiles) in profile.algorithms.iter().zip(&allocation) {
        let frequency = algorithm.frequency_for_tiles(tiles);
        let (voltage, within) = curve.voltage_for_frequency_extrapolated(frequency);
        operating.push((frequency, voltage, within));
    }

    // Single-voltage policy: every block runs at the highest voltage.
    let max_voltage = operating
        .iter()
        .map(|&(_, v, _)| v)
        .fold(tech.min_voltage, f64::max);

    let mut blocks = Vec::with_capacity(profile.algorithms.len());
    for ((algorithm, &tiles), &(frequency, min_voltage, within)) in
        profile.algorithms.iter().zip(&allocation).zip(&operating)
    {
        let voltage = match options.voltage_policy {
            VoltagePolicy::PerColumn => min_voltage,
            VoltagePolicy::SingleVoltage => max_voltage,
        };
        let activity = ColumnActivity {
            tiles,
            frequency_mhz: frequency,
            voltage,
            bus_words_per_second: algorithm.bus_words_for_tiles(tiles),
            bus_length_mm: tech.column_bus_length_mm,
        };
        let power =
            ColumnPower::estimate_with(&tile_model, &bus_model, &leakage_model, &tech, &activity);
        blocks.push(BlockReport {
            name: algorithm.name.to_owned(),
            tiles,
            frequency_mhz: frequency,
            voltage,
            within_envelope: within,
            power,
        });
    }

    Ok(ApplicationReport {
        application: profile.application.name().to_owned(),
        throughput: profile.throughput.to_owned(),
        voltage_policy: options.voltage_policy,
        blocks,
    })
}

/// Evaluate both voltage policies and return `(per_column, single_voltage)`
/// — the pair Table 4 and Figure 6 compare.
///
/// # Panics
///
/// Panics on a malformed allocation override; use
/// [`try_evaluate_voltage_scaling`] for the fallible variant.
pub fn evaluate_voltage_scaling(
    profile: &ApplicationProfile,
    tech: &Technology,
    options: &EvaluationOptions,
) -> (ApplicationReport, ApplicationReport) {
    try_evaluate_voltage_scaling(profile, tech, options).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`evaluate_voltage_scaling`].
///
/// # Errors
///
/// Returns [`PipelineError::AllocationMismatch`] when
/// `options.allocation` is present with the wrong length.
pub fn try_evaluate_voltage_scaling(
    profile: &ApplicationProfile,
    tech: &Technology,
    options: &EvaluationOptions,
) -> Result<(ApplicationReport, ApplicationReport), PipelineError> {
    let per_column = try_evaluate_application(
        profile,
        tech,
        &EvaluationOptions {
            voltage_policy: VoltagePolicy::PerColumn,
            ..options.clone()
        },
    )?;
    let single = try_evaluate_application(
        profile,
        tech,
        &EvaluationOptions {
            voltage_policy: VoltagePolicy::SingleVoltage,
            ..options.clone()
        },
    )?;
    Ok((per_column, single))
}

/// Percentage power saved by per-column voltage scaling relative to the
/// single-voltage design.
pub fn savings_percent(per_column: &ApplicationReport, single: &ApplicationReport) -> f64 {
    let single_total = single.total_mw();
    if single_total <= 0.0 {
        return 0.0;
    }
    (1.0 - per_column.total_mw() / single_total) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchro_apps::{Application, ApplicationProfile};

    fn tech() -> Technology {
        Technology::isca2004()
    }

    #[test]
    fn table4_operating_points_are_reproduced_for_ddc() {
        let profile = ApplicationProfile::of(Application::Ddc);
        let report = evaluate_application(&profile, &tech(), &EvaluationOptions::default());
        let expected = [
            ("Digital Mixer", 8, 120.0, 0.8),
            ("CIC Integrator", 8, 200.0, 1.0),
            ("CIC Comb", 2, 40.0, 0.7),
            ("CFIR", 16, 380.0, 1.3),
            ("PFIR", 16, 370.0, 1.3),
        ];
        for (block, (name, tiles, freq, volt)) in report.blocks.iter().zip(expected) {
            assert_eq!(block.name, name);
            assert_eq!(block.tiles, tiles);
            assert!(
                (block.frequency_mhz - freq).abs() < 1e-9,
                "{name} frequency"
            );
            assert!((block.voltage - volt).abs() < 1e-9, "{name} voltage");
            assert!(block.within_envelope);
        }
    }

    #[test]
    fn ddc_total_power_is_near_table4() {
        // Table 4: 2427 mW total for the 50-tile DDC.
        let profile = ApplicationProfile::of(Application::Ddc);
        let report = evaluate_application(&profile, &tech(), &EvaluationOptions::default());
        let total = report.total_mw();
        assert!(
            total > 2100.0 && total < 2800.0,
            "DDC total {total} mW outside the Table 4 neighbourhood"
        );
        assert_eq!(report.total_tiles(), 50);
    }

    #[test]
    fn wifi_total_power_is_near_table4() {
        // Table 4: 3930 mW for the 20-tile 802.11a receiver.
        let profile = ApplicationProfile::of(Application::Wifi80211a);
        let report = evaluate_application(&profile, &tech(), &EvaluationOptions::default());
        let total = report.total_mw();
        assert!(
            total > 3400.0 && total < 4400.0,
            "802.11a total {total} mW outside the Table 4 neighbourhood"
        );
    }

    #[test]
    fn single_voltage_policy_costs_more_power() {
        let t = tech();
        for app in Application::all() {
            let profile = ApplicationProfile::of(app);
            let (per_column, single) =
                evaluate_voltage_scaling(&profile, &t, &EvaluationOptions::default());
            assert!(
                single.total_mw() >= per_column.total_mw() - 1e-9,
                "{}: single-voltage must not be cheaper",
                profile.application.name()
            );
        }
    }

    #[test]
    fn voltage_scaling_savings_match_paper_ordering() {
        // The paper reports ~32 % savings for Stereo Vision, ~11 % for DDC
        // and only ~3 % for 802.11a (Table 4): SV benefits most because one
        // serial block pins the single-voltage design at 1.5 V.
        let t = tech();
        let sv = {
            let p = ApplicationProfile::of(Application::StereoVision);
            let (a, b) = evaluate_voltage_scaling(&p, &t, &EvaluationOptions::default());
            savings_percent(&a, &b)
        };
        let ddc = {
            let p = ApplicationProfile::of(Application::Ddc);
            let (a, b) = evaluate_voltage_scaling(&p, &t, &EvaluationOptions::default());
            savings_percent(&a, &b)
        };
        let wifi = {
            let p = ApplicationProfile::of(Application::Wifi80211a);
            let (a, b) = evaluate_voltage_scaling(&p, &t, &EvaluationOptions::default());
            savings_percent(&a, &b)
        };
        assert!(sv > ddc, "SV savings {sv:.1}% should exceed DDC {ddc:.1}%");
        assert!(
            ddc > wifi,
            "DDC savings {ddc:.1}% should exceed 802.11a {wifi:.1}%"
        );
        assert!(sv > 15.0 && sv < 50.0, "SV savings {sv:.1}%");
        assert!(wifi < 10.0, "802.11a savings {wifi:.1}%");
    }

    #[test]
    fn fewer_tiles_means_higher_frequency_and_voltage() {
        let profile = ApplicationProfile::of(Application::Mpeg4Cif);
        let t = tech();
        let reference = evaluate_application(&profile, &t, &EvaluationOptions::default());
        let squeezed = evaluate_application(
            &profile,
            &t,
            &EvaluationOptions {
                allocation: Some(profile.allocation_for_total(8)),
                ..EvaluationOptions::default()
            },
        );
        assert!(squeezed.total_tiles() < reference.total_tiles());
        assert!(
            squeezed.blocks[0].frequency_mhz > reference.blocks[0].frequency_mhz,
            "squeezing tiles must raise the ME frequency"
        );
        assert!(squeezed.blocks[0].voltage >= reference.blocks[0].voltage);
    }

    #[test]
    fn leakage_override_raises_power_linearly_in_tiles() {
        let profile = ApplicationProfile::of(Application::Wifi80211a);
        let t = tech();
        let base = evaluate_application(&profile, &t, &EvaluationOptions::default());
        let leaky = evaluate_application(
            &profile,
            &t,
            &EvaluationOptions {
                leakage_ma_per_tile: Some(59.3),
                ..EvaluationOptions::default()
            },
        );
        assert!(leaky.total_mw() > base.total_mw());
        let leak_delta = leaky.overhead_mw() - base.overhead_mw();
        // (59.3 - 1.5) mA × Σ(V·tiles) should match the overhead increase.
        let expected: f64 = base
            .blocks
            .iter()
            .map(|b| (59.3 - 1.5) * b.voltage * f64::from(b.tiles))
            .sum();
        assert!((leak_delta - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn tile_power_sensitivity_is_roughly_linear() {
        // Section 5.5: total power is roughly linear in U because tile
        // power dominates.
        let profile = ApplicationProfile::of(Application::Ddc);
        let t = tech();
        let base = evaluate_application(&profile, &t, &EvaluationOptions::default());
        let doubled = evaluate_application(
            &profile,
            &t,
            &EvaluationOptions {
                tile_power_mw_per_mhz: Some(0.2),
                ..EvaluationOptions::default()
            },
        );
        let ratio = doubled.total_mw() / base.total_mw();
        assert!(ratio > 1.7 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn infeasible_allocations_are_flagged_not_dropped() {
        // Forcing the whole 802.11a Viterbi ACS onto 8 tiles needs over a
        // gigahertz — beyond the supply envelope.
        let profile = ApplicationProfile::of(Application::Wifi80211a);
        let report = evaluate_application(
            &profile,
            &tech(),
            &EvaluationOptions {
                allocation: Some(vec![2, 1, 8, 1]),
                ..EvaluationOptions::default()
            },
        );
        let acs = &report.blocks[2];
        assert!(acs.frequency_mhz > 1000.0);
        assert!(!acs.within_envelope);
        assert!(!report.feasible());
        assert!(acs.voltage > 1.7);
    }

    #[test]
    fn mismatched_allocations_are_a_proper_error() {
        let profile = ApplicationProfile::of(Application::Ddc);
        let options = EvaluationOptions {
            allocation: Some(vec![8, 8]), // DDC has five blocks
            ..EvaluationOptions::default()
        };
        let err = try_evaluate_application(&profile, &tech(), &options).unwrap_err();
        assert_eq!(
            err,
            PipelineError::AllocationMismatch {
                expected: 5,
                got: 2
            }
        );
        assert!(err.to_string().contains("5 blocks"));
        let err2 = try_evaluate_voltage_scaling(&profile, &tech(), &options).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    #[should_panic(expected = "allocation override has 2 entries")]
    fn infallible_wrapper_panics_with_the_error_message() {
        let profile = ApplicationProfile::of(Application::Ddc);
        evaluate_application(
            &profile,
            &tech(),
            &EvaluationOptions {
                allocation: Some(vec![8, 8]),
                ..EvaluationOptions::default()
            },
        );
    }

    #[test]
    fn try_variant_agrees_with_the_wrapper_on_valid_input() {
        let profile = ApplicationProfile::of(Application::Wifi80211a);
        let a = evaluate_application(&profile, &tech(), &EvaluationOptions::default());
        let b = try_evaluate_application(&profile, &tech(), &EvaluationOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn area_reporting_uses_whole_columns() {
        let profile = ApplicationProfile::of(Application::StereoVision);
        let report = evaluate_application(&profile, &tech(), &EvaluationOptions::default());
        // 17 tiles round up to 5 columns of 4 tiles.
        assert!(report.area_mm2() > 5.0 * 4.0 * 1.82 - 1.0);
    }
}
