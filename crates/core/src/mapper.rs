//! The SDF → chip mapping/execution subsystem: the bridge between the
//! analytic power pipeline and the cycle-accurate substrate.
//!
//! The paper's methodology (Section 4.1, steps 1–9) is a *flow*: describe
//! the application as an SDF graph, solve the balance equations, place the
//! actors on tile groups, rate-match the columns with clock dividers (plus
//! ZORM for the residue), compile static communication schedules, and only
//! then evaluate power.  The analytic half of that flow lives in
//! [`crate::pipeline`]; this module closes the loop by *compiling* an
//! [`SdfGraph`] + [`Mapping`] into a runnable [`synchro_sim::Chip`]:
//!
//! 1. solve the repetition vector, schedule and buffer bounds
//!    ([`SdfGraph`]),
//! 2. give every placed actor its own column with the right tile count and
//!    the supply voltage its required frequency demands ([`VfCurve`]),
//! 3. derive per-column clock dividers so that, per hyperperiod of the
//!    reference clock, each column executes exactly `reps × cycles`
//!    column cycles — firing rates match the repetition vector *exactly*
//!    (with a [`RateMatcher`] fallback when the exact divider would exceed
//!    the hardware range),
//! 4. emit a per-firing SIMD [`Program`](synchro_isa::Program) and a
//!    [`DouProgram`] that distributes each produced token across the
//!    column's tiles at a statically scheduled bus cycle,
//! 5. compile the inter-column traffic into a conflict-free periodic TDM
//!    slot schedule over the segmented horizontal bus
//!    (`synchro_route`, [`CompiledChip::route`]) — mappings whose traffic
//!    cannot be scheduled are rejected as [`MapperError::Route`],
//! 6. execute end to end, the chip's horizontal bus driven slot by slot
//!    from that schedule as the reference clock passes each slot, and
//! 7. cross-validate the measurements against the analytic
//!    [`ApplicationReport`] ([`cross_validate`]).
//!
//! Inter-column token payloads are not physically modelled — the chip's
//! horizontal bus is an accounting device, exactly as in the power
//! methodology — but firing *rates* are measured from the simulation and
//! bus traffic follows the static schedule cycle by cycle, with
//! scheduled-vs-occupied slot counts surviving into the power
//! calibration.

use std::error::Error;
use std::fmt;

use synchro_bus::{BusOp, BusStats, SegmentConfig};
use synchro_dou::{DouError, DouProgram, ScheduleCompiler};
use synchro_explore::{ExplorerError, ExplorerSolution};
use synchro_isa::{DataReg, Program, ProgramBuilder};
use synchro_power::{
    BusGeometry, InterconnectModel, LeakageModel, Technology, TilePowerModel, VfCurve,
};
use synchro_route::{board_flows, BoardRoute, BoardSpec, BusSpec, RouteError, RouteSchedule};
use synchro_sdf::{ActorId, FaultSpec, Mapping, MappingViolation, SdfError, SdfGraph};
use synchro_sim::fast::{ColumnBatch, FastTier, FastTierError, FiringProfile};
use synchro_sim::{
    Board, BridgeProgram, BridgeTransfer, BusProgram, BusSlot, Chip, Column, ColumnConfig,
    ColumnError, ColumnStats, FaultPlan, FaultTarget, SimFault,
};
use synchro_simd::RateMatcher;
use synchro_trace::analyze::{BusPricing, ColumnPricing, PriceSpec};
use synchro_trace::report::TrackUtilization;
use synchro_trace::{Trace, TraceEvent};

use crate::pipeline::ApplicationReport;

/// Issue slots a firing spends outside its compute loop: the token-tag
/// load, the `send`, and the `recv`.
const FIRING_OVERHEAD_SLOTS: u64 = 3;

/// The DOU state machine holds 128 states; a firing pattern needs
/// `compute + FIRING_OVERHEAD_SLOTS` of them.
const MAX_COMPUTE_SLOTS: u64 = (synchro_dou::MAX_STATES as u64) - FIRING_OVERHEAD_SLOTS;

/// Errors raised while compiling or executing a mapped chip.
#[derive(Debug)]
pub enum MapperError {
    /// Graph analysis failed (inconsistent rates, deadlock, ...).
    Sdf(SdfError),
    /// A generated DOU schedule was rejected.
    Dou(DouError),
    /// The simulated chip faulted.
    Column(ColumnError),
    /// An actor of the graph has no placement in the mapping.
    UnplacedActor {
        /// The actor without a placement.
        actor: ActorId,
    },
    /// An actor was placed more than once.
    DuplicatePlacement {
        /// The actor placed twice.
        actor: ActorId,
    },
    /// The mapping failed [`Mapping::validate`]: zero-tile, over-parallel
    /// or unknown-actor placements that the lenient analytic accessors
    /// would silently reshape are rejected loudly here.
    InvalidMapping {
        /// The reported violations.
        violations: Vec<MappingViolation>,
    },
    /// Realizing an explorer solution failed.
    Explorer(ExplorerError),
    /// The inter-column traffic cannot be TDM-scheduled on the configured
    /// horizontal bus (unreachable pair, oversubscribed segment group, or
    /// the frame is too small for the per-iteration word demand).
    Route(RouteError),
    /// A derived quantity (hyperperiod, firing count, ...) overflowed its
    /// representation.
    Overflow {
        /// The quantity that overflowed.
        what: &'static str,
    },
    /// The chip did not drain within its computed tick budget.
    Incomplete {
        /// Reference ticks spent before giving up.
        ticks: u64,
    },
    /// The fast tier could not profile or batch the compiled programs
    /// (non-steady firing pattern, pre-stepped chip, ...).
    FastTier(FastTierError),
    /// The mapping targets hardware the [`MapperOptions::faults`] spec
    /// declares dead or degraded: a placement on a failed column or tile,
    /// a chip with every horizontal-bus split lost, or cross-chip traffic
    /// whose every bridge lane is down.  Unlike
    /// [`MapperError::InvalidMapping`] the mapping itself is well-formed —
    /// remapping around the lost resource (see
    /// `synchro_explore::explore_degraded`) can recover.
    Fault {
        /// The fault-class violations (every one satisfies
        /// [`MappingViolation::is_fault`]).
        violations: Vec<MappingViolation>,
    },
    /// A run was abandoned with a structured [`SimFault`] outcome: the
    /// starvation watchdog observed a full hyperperiod window with zero
    /// column, bus and bridge progress while columns were still live.
    SimFault(SimFault),
}

impl MapperError {
    /// Is this a resource-exhaustion failure — the inputs were well-posed
    /// but the configured hardware could not host or finish the run?
    /// Covers the router's and explorer's exhaustion classes plus
    /// [`MapperError::Incomplete`] (the tick budget is a resource too).
    pub fn is_resource_exhaustion(&self) -> bool {
        match self {
            MapperError::Route(e) => e.is_resource_exhaustion(),
            MapperError::Explorer(e) => e.is_resource_exhaustion(),
            MapperError::Incomplete { .. } => true,
            _ => false,
        }
    }

    /// Is this failure caused by dead or degraded hardware (a
    /// [`FaultSpec`] rejection or a runtime [`SimFault`]) rather than by
    /// the inputs themselves?  Fault-class errors are the retryable class
    /// degraded-mode remapping recovers from.
    pub fn is_fault(&self) -> bool {
        matches!(self, MapperError::Fault { .. } | MapperError::SimFault(_))
    }
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapperError::Sdf(e) => write!(f, "graph analysis: {e}"),
            MapperError::Dou(e) => write!(f, "DOU schedule: {e}"),
            MapperError::Column(e) => write!(f, "simulation: {e}"),
            MapperError::UnplacedActor { actor } => {
                write!(f, "actor {} has no placement", actor.0)
            }
            MapperError::DuplicatePlacement { actor } => {
                write!(f, "actor {} is placed more than once", actor.0)
            }
            MapperError::InvalidMapping { violations } => {
                write!(f, "mapping has {} violation(s)", violations.len())?;
                for v in violations {
                    write!(f, "; {v}")?;
                }
                Ok(())
            }
            MapperError::Explorer(e) => write!(f, "explorer solution: {e}"),
            MapperError::Route(e) => write!(f, "communication schedule: {e}"),
            MapperError::Overflow { what } => write!(f, "{what} overflowed"),
            MapperError::Incomplete { ticks } => {
                write!(f, "chip did not halt within {ticks} reference ticks")
            }
            MapperError::FastTier(e) => write!(f, "fast tier: {e}"),
            MapperError::Fault { violations } => {
                write!(
                    f,
                    "mapping targets failed hardware ({} violation(s))",
                    violations.len()
                )?;
                for v in violations {
                    write!(f, "; {v}")?;
                }
                Ok(())
            }
            MapperError::SimFault(e) => write!(f, "hardware fault: {e}"),
        }
    }
}

impl Error for MapperError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapperError::Sdf(e) => Some(e),
            MapperError::Dou(e) => Some(e),
            MapperError::Column(e) => Some(e),
            MapperError::Explorer(e) => Some(e),
            MapperError::Route(e) => Some(e),
            MapperError::FastTier(e) => Some(e),
            MapperError::SimFault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for MapperError {
    fn from(value: SdfError) -> Self {
        MapperError::Sdf(value)
    }
}

impl From<DouError> for MapperError {
    fn from(value: DouError) -> Self {
        MapperError::Dou(value)
    }
}

impl From<ColumnError> for MapperError {
    fn from(value: ColumnError) -> Self {
        MapperError::Column(value)
    }
}

impl From<ExplorerError> for MapperError {
    fn from(value: ExplorerError) -> Self {
        MapperError::Explorer(value)
    }
}

impl From<RouteError> for MapperError {
    fn from(value: RouteError) -> Self {
        MapperError::Route(value)
    }
}

impl From<FastTierError> for MapperError {
    fn from(value: FastTierError) -> Self {
        MapperError::FastTier(value)
    }
}

/// Which execution strategy [`CompiledChip::execute`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionTier {
    /// Interpret every column cycle — the reference semantics.
    #[default]
    Interpreted,
    /// Profile one firing per column through the interpreter, then batch
    /// the remaining firings as closed-form counter updates
    /// ([`synchro_sim::fast`]).  Statistics are bit-identical to the
    /// interpreted tier; tile register files are not reproduced.
    Fast,
}

/// Options controlling one compilation.
#[derive(Debug, Clone)]
pub struct MapperOptions {
    /// Graph iterations the compiled programs execute before halting.
    pub iterations: u64,
    /// Target graph-iteration rate.  Annotates each column with the
    /// frequency/voltage operating point the analytic pipeline would
    /// assign, and fixes the TDM frame size together with
    /// `bus_frequency_hz` (so it gates communication schedulability,
    /// though not the functional column simulation).
    pub iteration_rate_hz: f64,
    /// Upper bound on simulated compute slots per firing.  When the
    /// largest actor cost exceeds this, every cost is scaled down
    /// proportionally so relative column rates are preserved while the
    /// per-firing DOU pattern stays within the 128-state FSM.
    pub compute_cycle_cap: u64,
    /// Largest exact clock divider; beyond it the column falls back to the
    /// nearest divider plus ZORM throttling ([`RateMatcher`]).
    pub max_divider: u32,
    /// Technology used for the voltage annotation.
    pub tech: Technology,
    /// Horizontal-bus width in words per cycle (independent splits the TDM
    /// schedule may pack concurrently).  The paper's single horizontal bus
    /// is one word per cycle.
    pub bus_splits: usize,
    /// Horizontal-bus clock in Hz.  Together with `iteration_rate_hz` it
    /// fixes the TDM period (bus cycles per graph iteration); narrowing it
    /// shrinks the frame until the per-iteration traffic no longer fits
    /// and [`compile`] rejects the mapping as communication-infeasible.
    pub bus_frequency_hz: f64,
    /// Segment switch configuration of the horizontal bus.  `None` keeps
    /// the paper's column-spanning broadcast bus; a [`SegmentConfig`]
    /// restricts which column pairs each split can connect, and mappings
    /// whose traffic crosses an open switch are rejected as
    /// [`RouteError::Unreachable`].
    pub bus_segments: Option<SegmentConfig>,
    /// Hardware the compiler must treat as dead or degraded: failed
    /// columns/tiles reject any mapping placed on them
    /// ([`MapperError::Fault`]), lost bus splits shrink the chip's TDM
    /// capacity, and failed or degraded bridge lanes are removed from (or
    /// narrowed in) the board spec before routing.  The default
    /// [`FaultSpec::none`] compiles for healthy silicon.
    pub faults: FaultSpec,
    /// Execution strategy [`CompiledChip::execute`] uses.
    pub tier: ExecutionTier,
    /// Trace handle compilation and execution events flow through.  The
    /// default [`Trace::off`] is zero-cost; install a sink (e.g. a
    /// [`synchro_trace::RingBufferSink`]) to observe mapper/router compile
    /// phases and, through the compiled chip or board, the simulation
    /// event stream (divider ticks, ZORM stalls, bus/bridge slots,
    /// per-column firing totals).
    pub trace: Trace,
}

impl Default for MapperOptions {
    fn default() -> Self {
        MapperOptions {
            iterations: 8,
            iteration_rate_hz: 1e6,
            compute_cycle_cap: 100,
            max_divider: 1 << 20,
            tech: Technology::isca2004(),
            bus_splits: 1,
            bus_frequency_hz: 400e6,
            bus_segments: None,
            faults: FaultSpec::none(),
            tier: ExecutionTier::Interpreted,
            trace: Trace::off(),
        }
    }
}

/// Board-level options for [`compile_board`]: the chip-to-chip bridge
/// fabric joining the chips.  The chip count itself is derived from the
/// mapping (`Mapping::chips`), not configured here; the board is built
/// with a full bridge mesh — one lane per ordered chip pair — so
/// feasibility is governed by capacity, not topology.
#[derive(Debug, Clone)]
pub struct BoardConfig {
    /// Words one bridge lane carries per bridge cycle.
    pub bridge_width_words: u64,
    /// Chip-to-chip hop latency in bridge cycles (recorded on the lanes;
    /// schedulability is capacity-bound, as for the horizontal bus).
    pub bridge_latency_cycles: u64,
    /// Energy per word crossing a bridge lane, in pJ — board-level I/O is
    /// priced per word rather than through the on-chip wire model.
    pub bridge_energy_pj_per_word: f64,
    /// Bridge clock in Hz.  Together with the mapper's
    /// `iteration_rate_hz` it fixes the bridge TDM period (bridge cycles
    /// per graph iteration), exactly like the horizontal-bus clock.
    pub bridge_frequency_hz: f64,
}

impl Default for BoardConfig {
    fn default() -> Self {
        BoardConfig {
            bridge_width_words: 1,
            bridge_latency_cycles: 2,
            bridge_energy_pj_per_word: 2.0,
            bridge_frequency_hz: 200e6,
        }
    }
}

/// One column of the compiled chip: where an actor landed and at what
/// operating point.
#[derive(Debug, Clone)]
pub struct ColumnPlan {
    /// The mapped actor.
    pub actor: ActorId,
    /// The actor's name.
    pub name: String,
    /// The board chip hosting the column (0 on a single-chip compile).
    pub chip: usize,
    /// Index of the column in its chip.
    pub column: usize,
    /// Tiles the placement requested (the analytic view).
    pub tiles: u32,
    /// Tiles instantiated in the simulated column (placements wider than
    /// one physical column are folded into it; `columns_spanned` records
    /// the physical footprint).
    pub sim_tiles: usize,
    /// Physical 4-tile columns the placement spans.
    pub columns_spanned: u32,
    /// Firings per graph iteration (the repetition-vector entry).
    pub firings_per_iteration: u64,
    /// Simulated issue slots per firing (compute + communication).
    pub sim_cycles_per_firing: u64,
    /// Clock divider relative to the chip reference clock.
    pub clock_divider: u32,
    /// ZORM fallback when the exact divider exceeded the hardware range;
    /// `None` means firing rates are matched exactly by the divider alone.
    pub rate_matcher: Option<RateMatcher>,
    /// Per-tile frequency (MHz) the analytic model requires of this
    /// placement at the target iteration rate.
    pub required_frequency_mhz: f64,
    /// Supply voltage assigned from the VF curve for that frequency.
    pub voltage: f64,
}

/// One SDF edge whose endpoints live on different columns, with its
/// analytic traffic and staging requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossEdge {
    /// Producing column.
    pub from_column: usize,
    /// Consuming column.
    pub to_column: usize,
    /// Tokens produced per firing of the producer.
    pub produce: u64,
    /// Words crossing the edge per graph iteration (one 32-bit word per
    /// token) — `SdfGraph::tokens_per_iteration` for this edge.
    pub words_per_iteration: u64,
    /// Maximum tokens simultaneously staged on the edge
    /// (`SdfGraph::buffer_bounds`).
    pub buffer_bound: u64,
}

/// Measurements from one end-to-end execution of a compiled chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Graph iterations executed.
    pub iterations: u64,
    /// Reference ticks consumed.
    pub reference_ticks: u64,
    /// Reference ticks one graph iteration occupies (the hyperperiod).
    pub hyperperiod: u64,
    /// Measured firings per column (from the broadcast counters).
    pub firing_counts: Vec<u64>,
    /// `iterations × repetition_vector` — the analytic prediction.
    pub expected_firings: Vec<u64>,
    /// Horizontal-bus words accounted from measured firings.
    pub simulated_horizontal_words: u64,
    /// Horizontal-bus words the analytic model predicts.
    pub predicted_horizontal_words: u64,
    /// Column clock cycles executed per column.
    pub column_cycles: Vec<u64>,
    /// Intra-column (segmented vertical bus) word transfers per column.
    pub intra_column_words: Vec<u64>,
    /// Horizontal-bus TDM slots the schedule reserved over this run
    /// (occupied + idle) — one numerator of the slot-activity power model.
    pub scheduled_bus_slots: u64,
    /// Reserved horizontal-bus slots that carried a word — the other
    /// numerator.
    pub occupied_bus_slots: u64,
    /// Full per-column execution counters over this run (cycles,
    /// broadcasts, branch and rate-match stalls, DOU word transfers), in
    /// column order.  `column_cycles` and `intra_column_words` above are
    /// projections of these kept for compatibility.
    pub column_stats: Vec<ColumnStats>,
    /// Per-column segmented vertical-bus statistics over this run
    /// (scheduled vs occupied slots, word transfers), in column order.
    pub column_bus: Vec<BusStats>,
}

impl ExecutionReport {
    /// Did every column fire exactly as the repetition vector predicts?
    pub fn firings_exact(&self) -> bool {
        self.firing_counts == self.expected_firings
    }

    /// Relative error of the simulated horizontal traffic against the
    /// analytic prediction (0.0 when both are zero).
    pub fn horizontal_traffic_error(&self) -> f64 {
        relative_error(
            self.simulated_horizontal_words as f64,
            self.predicted_horizontal_words as f64,
        )
    }
}

/// One block of a [`cross_validate`] comparison.
#[derive(Debug, Clone)]
pub struct BlockComparison {
    /// Block/actor name.
    pub name: String,
    /// Frequency the analytic [`ApplicationReport`] assigns (MHz).
    pub analytic_frequency_mhz: f64,
    /// Frequency the mapping derives from the SDF graph (MHz).
    pub mapped_frequency_mhz: f64,
    /// Relative disagreement between the two.
    pub frequency_error: f64,
}

/// The outcome of comparing a simulated execution against the analytic
/// application report.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// Per-block frequency comparisons, in placement order.
    pub blocks: Vec<BlockComparison>,
    /// Whether the mapping's placements and the report's blocks pair up
    /// one-to-one.  When false, `blocks` only covers the overlap and the
    /// comparison is structurally invalid (wrong application report for
    /// this chip).
    pub blocks_match: bool,
    /// Whether measured firing counts equal the repetition-vector
    /// prediction exactly.
    pub firings_exact: bool,
    /// Relative error of simulated vs predicted horizontal-bus words.
    pub bus_traffic_error: f64,
    /// Largest per-block frequency disagreement.
    pub max_frequency_error: f64,
}

impl CrossValidation {
    /// Do the two worlds agree within `tolerance` (every block compared,
    /// firing counts exact)?
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        self.blocks_match
            && self.firings_exact
            && self.bus_traffic_error <= tolerance
            && self.max_frequency_error <= tolerance
    }
}

/// Aggregate energy of one run, derived purely from execution-report
/// counters — the independent cross-check for the event-priced
/// [`synchro_trace::analyze::EnergyLedger`].  Both sides bill the same
/// physical quantities (billed column cycles, occupied bus slots, bridge
/// words) through the same `synchro-power` models, so the two totals
/// must agree to rounding; the `analyze_properties` suite pins that on
/// every reference profile across both execution tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportEnergy {
    /// Dynamic switching energy of all columns, joules.
    pub compute_j: f64,
    /// Supply-time leakage energy of all columns, joules.
    pub leakage_j: f64,
    /// Interconnect energy (horizontal buses + bridge lanes), joules.
    pub interconnect_j: f64,
    /// Wall-clock seconds the run spanned.
    pub duration_s: f64,
}

impl ReportEnergy {
    /// Compute + leakage + interconnect, joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.leakage_j + self.interconnect_j
    }

    /// Average power over the run, milliwatts (0 for a zero-length run).
    pub fn average_power_mw(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.total_j() / self.duration_s * 1e3
        }
    }
}

/// [`ColumnPricing`] rows for `plans`, one per placed column.
fn column_pricing_rows(plans: &[ColumnPlan]) -> Vec<ColumnPricing> {
    plans
        .iter()
        .map(|p| ColumnPricing {
            chip: p.chip as u32,
            column: p.column as u32,
            label: p.name.clone(),
            tiles: p.tiles,
            voltage: p.voltage,
            clock_divider: p.clock_divider,
        })
        .collect()
}

/// The supply voltage interconnect transfers switch at: the maximum
/// column voltage of the chip (the calibration convention the
/// route-schedule power summary uses).
fn bus_voltage(plans: &[ColumnPlan]) -> f64 {
    plans.iter().map(|p| p.voltage).fold(0.0, f64::max)
}

/// Column energy over one run per the report counters: every billed
/// cycle (stalls included — a stalled column still clocks) at the
/// column's operating point, plus leakage over the run.
fn column_report_energy(
    plans: &[ColumnPlan],
    stats: &[ColumnStats],
    tech: &Technology,
    duration_s: f64,
) -> (f64, f64) {
    let tile_power = TilePowerModel::new(tech);
    let leakage = LeakageModel::new(tech);
    let mut compute_j = 0.0;
    let mut leakage_j = 0.0;
    for (plan, stats) in plans.iter().zip(stats) {
        compute_j += tile_power.energy_per_cycle_nj(plan.voltage)
            * 1e-9
            * f64::from(plan.tiles)
            * stats.cycles as f64;
        leakage_j += leakage.power_mw(plan.tiles, plan.voltage) * 1e-3 * duration_s;
    }
    (compute_j, leakage_j)
}

/// A compiled, runnable chip plus everything needed to interpret it.
#[derive(Debug)]
pub struct CompiledChip {
    chip: Chip,
    plans: Vec<ColumnPlan>,
    blueprints: Vec<ColumnBlueprint>,
    cross_edges: Vec<CrossEdge>,
    route: RouteSchedule,
    hyperperiod: u64,
    iterations: u64,
    iteration_rate_hz: f64,
    drain_budget: u64,
    tier: ExecutionTier,
}

/// The pieces one column was built from, kept so the fast tier can
/// profile a throw-away replica without disturbing the live chip.
#[derive(Debug, Clone)]
struct ColumnBlueprint {
    config: ColumnConfig,
    program: Program,
    dou: Option<DouProgram>,
}

/// Lifetime counters of a chip at one instant; [`CompiledChip::execute`]
/// reports the difference of two of these.
struct StatsSnapshot {
    ticks: u64,
    words: u64,
    firings: Vec<u64>,
    columns: Vec<ColumnStats>,
    column_bus: Vec<BusStats>,
    bus: BusStats,
}

/// The per-chip pieces of a compiled board, in board-chip order.
#[derive(Debug, Default)]
struct BoardChipParts {
    plans: Vec<ColumnPlan>,
    blueprints: Vec<ColumnBlueprint>,
    cross_edges: Vec<CrossEdge>,
}

/// A compiled, runnable board of chips plus everything needed to
/// interpret it: one simulated [`Chip`] with its plans, blueprints and
/// TDM schedule per board chip, and the bridge schedule the [`Board`]
/// driver replays between them.
#[derive(Debug)]
pub struct CompiledBoard {
    board: Board,
    parts: Vec<BoardChipParts>,
    route: BoardRoute,
    bridge_words_per_iteration: u64,
    bridge_energy_pj_per_word: f64,
    hyperperiod: u64,
    iterations: u64,
    iteration_rate_hz: f64,
    drain_budget: u64,
    tier: ExecutionTier,
}

/// Lifetime counters of a board at one instant; [`CompiledBoard::execute`]
/// reports the difference of two of these.
struct BoardSnapshot {
    reference: u64,
    chips: Vec<StatsSnapshot>,
    bridge: BusStats,
    lane_words: Vec<u64>,
}

/// Measurements from one end-to-end execution of a compiled board: the
/// per-chip [`ExecutionReport`]s (each in that chip's column order) plus
/// the board-level bridge accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardExecutionReport {
    /// Per-chip reports, in board-chip order.
    pub chips: Vec<ExecutionReport>,
    /// Board reference ticks consumed (the frontier's advance).
    pub reference_ticks: u64,
    /// Reference ticks one graph iteration occupies (the global
    /// hyperperiod, shared by every chip).
    pub hyperperiod: u64,
    /// Words carried over the chip-to-chip bridge lanes.
    pub bridge_words: u64,
    /// Bridge words the analytic model predicts
    /// (`Σ bridge-edge words per iteration × iterations`).
    pub predicted_bridge_words: u64,
    /// Bridge cycles the schedule reserved over this run (occupied +
    /// idle) — the slot-activity numerator for bridge power.
    pub scheduled_bridge_slots: u64,
    /// Reserved bridge cycles that carried words — the other numerator.
    pub occupied_bridge_slots: u64,
    /// Words per bridge lane, indexed like the board spec's lanes.
    pub lane_words: Vec<u64>,
}

impl BoardExecutionReport {
    /// Did every column of every chip fire exactly as the repetition
    /// vector predicts?
    pub fn firings_exact(&self) -> bool {
        self.chips.iter().all(ExecutionReport::firings_exact)
    }

    /// Relative error of the simulated bridge traffic against the
    /// analytic prediction (0.0 when both are zero).
    pub fn bridge_traffic_error(&self) -> f64 {
        relative_error(self.bridge_words as f64, self.predicted_bridge_words as f64)
    }
}

/// The structured outcome of a fault-injected chip run: the per-run
/// measurements plus whether the run was abandoned on a [`SimFault`]
/// (`None` means the chip drained to halt — every scheduled fault either
/// fired without starving it or never fired because the chip halted
/// first).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRun {
    /// Measurements up to completion or the stall point (bus programs are
    /// only played out on completion — a stalled chip's schedule has no
    /// meaningful tail).
    pub report: ExecutionReport,
    /// The structured fault outcome, if the run could not complete.
    pub fault: Option<SimFault>,
}

/// The structured outcome of a fault-injected board run — the board-wide
/// analogue of [`FaultedRun`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedBoardRun {
    /// Measurements up to completion or the stall point.
    pub report: BoardExecutionReport,
    /// The structured fault outcome, if the run could not complete.
    pub fault: Option<SimFault>,
}

/// Monotone work counters of one chip, deliberately excluding the
/// reference clock (which advances even on a fully starved chip): the
/// starvation watchdog declares a stall when one full hyperperiod window
/// passes with this signature unchanged while columns are still live.
/// Any live, non-failed column fires at least once per window (its
/// divider is at most the hyperperiod) and bills cycles when it does —
/// ZORM stall slots included — so a live machine can never trip it; a
/// still-playing bus program advances its scheduled-slot counters and
/// also counts as progress.
type ChipProgress = (Vec<ColumnStats>, Vec<BusStats>, Option<BusStats>, usize);

/// Per-chip signatures plus the bridge counters — the board-wide
/// watchdog signature.
type BoardProgress = (Vec<ChipProgress>, BusStats, Vec<u64>);

fn chip_progress(chip: &Chip) -> ChipProgress {
    let halted = (0..chip.columns())
        .filter(|&i| chip.column(i).is_some_and(Column::is_halted))
        .count();
    (
        chip.column_stats(),
        chip.column_bus_stats(),
        chip.horizontal_stats(),
        halted,
    )
}

/// Build the closed-form batch tier for one chip's compiled columns.
fn build_fast_tier(
    plans: &[ColumnPlan],
    blueprints: &[ColumnBlueprint],
    iterations: u64,
) -> Result<FastTier, MapperError> {
    let mut tier = FastTier::new();
    for (plan, blueprint) in plans.iter().zip(blueprints) {
        let firings =
            plan.firings_per_iteration
                .checked_mul(iterations)
                .ok_or(MapperError::Overflow {
                    what: "total firing count",
                })?;
        let profile = FiringProfile::measure(
            &blueprint.config,
            &blueprint.program,
            blueprint.dou.as_ref(),
            plan.sim_cycles_per_firing,
            firings,
        )?;
        tier.push(ColumnBatch {
            column: plan.column,
            firings,
            profile,
        });
    }
    Ok(tier)
}

fn board_progress(board: &Board) -> BoardProgress {
    (
        (0..board.chips())
            .map(|c| chip_progress(board.chip(c).expect("index in range")))
            .collect(),
        board.bridge_stats(),
        board.lane_words().to_vec(),
    )
}

fn measured_firings_of(chip: &Chip, plans: &[ColumnPlan]) -> Vec<u64> {
    plans
        .iter()
        .map(|p| {
            let broadcasts = chip.column(p.column).map_or(0, |c| c.stats().broadcasts);
            broadcasts / p.sim_cycles_per_firing
        })
        .collect()
}

fn snapshot_of(chip: &Chip, plans: &[ColumnPlan]) -> StatsSnapshot {
    StatsSnapshot {
        ticks: chip.stats().reference_cycles,
        words: chip.stats().horizontal_transfers,
        firings: measured_firings_of(chip, plans),
        columns: chip.column_stats(),
        column_bus: chip.column_bus_stats(),
        bus: chip.horizontal_stats().unwrap_or_default(),
    }
}

fn report_of(
    chip: &Chip,
    plans: &[ColumnPlan],
    cross_edges: &[CrossEdge],
    hyperperiod: u64,
    iterations: u64,
    start: &StatsSnapshot,
) -> ExecutionReport {
    let firings = measured_firings_of(chip, plans);
    let firing_counts: Vec<u64> = firings
        .iter()
        .zip(&start.firings)
        .map(|(now, before)| now - before)
        .collect();
    let expected: Vec<u64> = plans
        .iter()
        .map(|p| p.firings_per_iteration * iterations)
        .collect();
    let predicted_words = cross_edges
        .iter()
        .map(|e| e.words_per_iteration * iterations)
        .sum();
    let column_stats: Vec<ColumnStats> = chip
        .column_stats()
        .iter()
        .zip(&start.columns)
        .map(|(now, before)| now.delta(before))
        .collect();
    let column_bus: Vec<BusStats> = chip
        .column_bus_stats()
        .iter()
        .zip(&start.column_bus)
        .map(|(now, before)| now.delta(before))
        .collect();
    let bus = chip.horizontal_stats().unwrap_or_default();
    // Firing totals are derived from the broadcast counters at report
    // time on both tiers (the interpreter has no per-firing hook), so
    // interpreted and fast runs emit the identical batched event.
    let trace = chip.trace();
    if trace.enabled() {
        let chip_id = chip.chip_id();
        let tick = chip.stats().reference_cycles;
        for (column, &count) in firing_counts.iter().enumerate() {
            if count > 0 {
                trace.emit(|| TraceEvent::ColumnFiring {
                    chip: chip_id,
                    column: column as u32,
                    tick,
                    count,
                });
            }
        }
    }
    ExecutionReport {
        iterations,
        reference_ticks: chip.stats().reference_cycles - start.ticks,
        hyperperiod,
        firing_counts,
        expected_firings: expected,
        simulated_horizontal_words: chip.stats().horizontal_transfers - start.words,
        predicted_horizontal_words: predicted_words,
        column_cycles: column_stats.iter().map(|s| s.cycles).collect(),
        intra_column_words: column_stats.iter().map(|s| s.bus_word_transfers).collect(),
        scheduled_bus_slots: bus.scheduled_slots - start.bus.scheduled_slots,
        occupied_bus_slots: bus.occupied_slots - start.bus.occupied_slots,
        column_stats,
        column_bus,
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn checked_lcm(a: u64, b: u64) -> Option<u64> {
    (a / gcd(a, b)).checked_mul(b)
}

fn relative_error(measured: f64, predicted: f64) -> f64 {
    if predicted == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - predicted).abs() / predicted
    }
}

/// Compile an [`SdfGraph`] and a [`Mapping`] into a runnable chip.
///
/// Every actor must be placed exactly once; each placement becomes one
/// simulated column (clamped to the physical 4-tile width, with the
/// spanned-column count recorded in its [`ColumnPlan`]).
///
/// This is a thin wrapper over [`compile_board`]: the mapping compiles as
/// a board of one chip and the single chip is unwrapped, so the legacy
/// path and the board path share one implementation (the equivalence is
/// pinned bit for bit by the board property tests).
///
/// # Errors
///
/// Returns a [`MapperError`] for inconsistent/deadlocking graphs,
/// ill-formed mappings ([`Mapping::validate`] violations, incomplete or
/// duplicated placements, placements on chips other than 0), or
/// overflowing derived quantities.
pub fn compile(
    graph: &SdfGraph,
    mapping: &Mapping,
    options: &MapperOptions,
) -> Result<CompiledChip, MapperError> {
    if mapping.chips() > 1 {
        return Err(MapperError::InvalidMapping {
            violations: mapping.validate_on_board(graph, 1),
        });
    }
    compile_board(graph, mapping, options, &BoardConfig::default())
        .map(CompiledBoard::into_single_chip)
}

/// Compile a chip-qualified [`SdfGraph`] + [`Mapping`] into a runnable
/// board of chips: one simulated [`Chip`] with its own columns, bus
/// program and TDM schedule per board chip, plus a bridge schedule for
/// the inter-chip traffic (packed onto the [`BoardConfig`]'s lanes and
/// replayed by the [`Board`] driver in shared reference time).
///
/// The board spans `mapping.chips()` chips — every placement's `chip`
/// index selects its host.  All columns share one global hyperperiod (the
/// chips run off one reference clock, the paper's rationally-related
/// clocking extended board-wide), and the per-chip compilation is
/// identical to [`compile`]'s: a mapping placed entirely on chip 0
/// produces the same chip bit for bit.
///
/// # Errors
///
/// As for [`compile`], plus [`MapperError::Route`] with
/// [`RouteError::BridgeOversubscribed`] when one directed chip pair's
/// traffic exceeds its bridge capacity.
pub fn compile_board(
    graph: &SdfGraph,
    mapping: &Mapping,
    options: &MapperOptions,
    board: &BoardConfig,
) -> Result<CompiledBoard, MapperError> {
    let trace = &options.trace;
    let _compile_span = trace.span("mapper.compile_board");
    let chips_n = mapping.chips();
    // Reject zero-tile, over-parallel and unknown-actor placements loudly
    // instead of letting the analytic accessors silently reshape them.
    // (The board dimension cannot be violated: the board is sized from the
    // mapping itself.)
    let violations = mapping.validate(graph);
    if !violations.is_empty() {
        return Err(MapperError::InvalidMapping { violations });
    }
    // A well-formed mapping may still land on dead silicon: reject
    // placements on failed columns/tiles with the structured fault class
    // (retryable by remapping) rather than folding them into the
    // shape-violation class above.
    let fault_violations = mapping.validate_with_faults(graph, &options.faults);
    if !fault_violations.is_empty() {
        return Err(MapperError::Fault {
            violations: fault_violations,
        });
    }
    let reps = graph.repetition_vector()?;
    // The schedule doubles as the deadlock check; the buffer bounds and
    // per-iteration token counts feed the cross-edge traffic model.
    graph.schedule()?;
    let bounds = graph.buffer_bounds()?;

    // Every actor placed exactly once.
    let mut column_of_actor: Vec<Option<usize>> = vec![None; graph.actors().len()];
    for (i, p) in mapping.placements().iter().enumerate() {
        if p.actor.0 >= graph.actors().len() {
            return Err(MapperError::Sdf(SdfError::UnknownActor { id: p.actor }));
        }
        if column_of_actor[p.actor.0].replace(i).is_some() {
            return Err(MapperError::DuplicatePlacement { actor: p.actor });
        }
    }
    if let Some(unplaced) = column_of_actor.iter().position(Option::is_none) {
        return Err(MapperError::UnplacedActor {
            actor: ActorId(unplaced),
        });
    }

    let requirements = mapping.requirements(graph, options.iteration_rate_hz)?;
    let curve = VfCurve::fo4_20(&options.tech);

    // Scale per-firing compute costs so the largest fits the DOU pattern
    // budget while relative costs (and thus relative column rates) are
    // preserved.
    let cap = options.compute_cycle_cap.clamp(1, MAX_COMPUTE_SLOTS);
    let max_cost = mapping
        .placements()
        .iter()
        .map(|p| graph.actor(p.actor).map_or(1, |a| a.cycles_per_firing))
        .max()
        .unwrap_or(1)
        .max(1);
    let compute_slots = |cycles: u64| -> u64 {
        if max_cost <= cap {
            cycles.max(1)
        } else {
            // Round to nearest, in u128 to avoid overflow.
            let scaled = (u128::from(cycles) * u128::from(cap) + u128::from(max_cost) / 2)
                / u128::from(max_cost);
            (scaled as u64).clamp(1, cap)
        }
    };

    // Per-column work (column cycles per graph iteration) and the
    // hyperperiod: the smallest reference window in which every column can
    // execute exactly its work.
    let mut work = Vec::with_capacity(mapping.placements().len());
    for p in mapping.placements() {
        let actor = graph.actor(p.actor).expect("validated above");
        let slots = compute_slots(actor.cycles_per_firing) + FIRING_OVERHEAD_SLOTS;
        let w = reps[p.actor.0]
            .checked_mul(slots)
            .ok_or(MapperError::Overflow {
                what: "column work per iteration",
            })?;
        work.push((slots, w));
    }
    let hyperperiod = work.iter().try_fold(1u64, |acc, &(_, w)| {
        checked_lcm(acc, w).ok_or(MapperError::Overflow {
            what: "hyperperiod",
        })
    })?;

    let mut sim_board = Board::new();
    let mut parts: Vec<BoardChipParts> = Vec::with_capacity(chips_n);
    for _ in 0..chips_n {
        sim_board.add_chip(Chip::new());
        parts.push(BoardChipParts::default());
    }
    // Stamp every chip (and, transitively, every column added below) with
    // the trace handle and its board-chip identity.
    sim_board.set_trace(trace.clone());
    let mut columns_on_chip = vec![0usize; chips_n];
    let mut drain_budget: u64 = hyperperiod; // one extra window for halt observation
    for (i, (p, &(slots, w))) in mapping.placements().iter().zip(&work).enumerate() {
        let column = columns_on_chip[p.chip];
        columns_on_chip[p.chip] += 1;
        let actor = graph.actor(p.actor).expect("validated above");
        let rep = reps[p.actor.0];
        let total_firings = options
            .iterations
            .checked_mul(rep)
            .and_then(|t| u32::try_from(t).ok())
            .ok_or(MapperError::Overflow {
                what: "total firing count",
            })?;

        // Exact divider, or the nearest representable one plus ZORM.
        let ideal = hyperperiod / w;
        let (divider, rate_matcher) = match u32::try_from(ideal) {
            Ok(d) if d <= options.max_divider => (d, None),
            _ => {
                let d = options.max_divider;
                // Throttle the surplus: the column gets 1/d of the
                // reference rate but only needs w/hyperperiod of it.
                let matcher =
                    RateMatcher::for_rates(1.0 / f64::from(d), w as f64 / hyperperiod as f64);
                (d, matcher)
            }
        };

        let required_frequency_mhz = requirements[i].frequency_mhz;
        let (voltage, _within) = curve.voltage_for_frequency_extrapolated(required_frequency_mhz);

        // The per-firing SIMD program: tag the token, expose it to the
        // bus, model the compute, consume the staged input.
        let compute = slots - FIRING_OVERHEAD_SLOTS;
        let mut builder = ProgramBuilder::new();
        builder.counted_loop(total_firings, |b| {
            b.load_imm(DataReg::new(7), p.actor.0 as i32 + 1);
            b.send();
            b.counted_loop(compute as u32, |b| {
                b.nop();
            });
            b.recv(DataReg::new(2));
        });
        builder.halt();
        let program = builder.build().expect("mapper programs use no labels");

        // The DOU distributes each produced token across the column's
        // tiles one cycle after the send fills the write buffer.  ZORM
        // stalls would desynchronise the pattern, so throttled columns
        // skip intra-column distribution.
        let sim_tiles = p.tiles.clamp(1, 4) as usize;
        let dou: Option<DouProgram> = if sim_tiles > 1 && rate_matcher.is_none() {
            let mut schedule = ScheduleCompiler::new();
            schedule.idle_for(2).push_op(BusOp {
                split: 0,
                producer: 0,
                consumers: (1..sim_tiles).collect(),
            });
            schedule.idle_for(slots as usize - 3);
            Some(schedule.compile(total_firings)?)
        } else {
            None
        };

        let config = ColumnConfig {
            tiles: sim_tiles,
            clock_divider: divider,
            voltage,
            enabled_tiles: vec![true; sim_tiles],
            rate_matcher,
        };
        sim_board
            .chip_mut(p.chip)
            .expect("board sized from the mapping")
            .add_column(Column::new(config.clone(), program.clone(), dou.clone()));
        parts[p.chip].blueprints.push(ColumnBlueprint {
            config,
            program,
            dou,
        });

        // Reference ticks this column needs to finish, ZORM stalls
        // included.
        let slots_needed = match rate_matcher {
            Some(m) => {
                let period = u64::from(m.period);
                (u64::from(total_firings) * slots)
                    .checked_mul(period)
                    .map_or(u64::MAX, |s| s.div_ceil(period - u64::from(m.stalls)))
            }
            None => u64::from(total_firings) * slots,
        };
        drain_budget = drain_budget.max(
            slots_needed
                .saturating_mul(u64::from(divider))
                .saturating_add(hyperperiod),
        );

        parts[p.chip].plans.push(ColumnPlan {
            actor: p.actor,
            name: actor.name.clone(),
            chip: p.chip,
            column,
            tiles: p.tiles,
            sim_tiles,
            columns_spanned: p.tiles.div_ceil(4),
            firings_per_iteration: rep,
            sim_cycles_per_firing: slots,
            clock_divider: divider,
            rate_matcher,
            required_frequency_mhz,
            voltage,
        });
    }

    // The router owns the flow-derivation invariant (placements number
    // the columns within their chip, cross words per iteration from the
    // repetition vector); the mapper only decorates each flow with its
    // buffer bound and per-firing rate for the cross-edge bookkeeping.
    let (intra_flows, bridge_flows) = board_flows(graph, mapping)?;
    for (chip_parts, flows) in parts.iter_mut().zip(&intra_flows) {
        chip_parts.cross_edges = flows
            .iter()
            .map(|f| CrossEdge {
                from_column: f.from,
                to_column: f.to,
                produce: graph.edges()[f.edge].produce,
                words_per_iteration: f.words,
                buffer_bound: bounds[f.edge],
            })
            .collect();
    }
    let bridge_words_per_iteration: u64 = bridge_flows.iter().map(|f| f.words).sum();

    // Compile the static TDM communication schedules: every cross-column
    // word gets a (split, cycle) slot in its chip's periodic frame of
    // `bus_frequency / iteration_rate` bus cycles, conflict-free under
    // the segment-group rule, and every cross-chip word a bridge-lane
    // cycle — or the mapping is rejected as communication-infeasible.
    let mut chip_specs = Vec::with_capacity(chips_n);
    for (chip_index, &columns) in columns_on_chip.iter().enumerate() {
        // Reduced bus splits: a chip that lost splits routes on what
        // survives; a chip that lost them all cannot route at all.
        let lost = options.faults.splits_lost(chip_index);
        let splits = options.bus_splits.saturating_sub(lost as usize);
        if splits == 0 && lost > 0 {
            return Err(MapperError::Fault {
                violations: vec![MappingViolation::BusSplitsExhausted {
                    chip: chip_index,
                    splits: options.bus_splits as u32,
                    lost,
                }],
            });
        }
        chip_specs.push(match &options.bus_segments {
            Some(segments) => BusSpec::from_clock_with_segments(
                columns.max(1),
                splits,
                options.bus_frequency_hz,
                options.iteration_rate_hz,
                segments.clone(),
            )?,
            None => BusSpec::from_clock(
                columns.max(1),
                splits,
                options.bus_frequency_hz,
                options.iteration_rate_hz,
            )?,
        });
    }
    let bridge_period =
        BusSpec::clock_period(board.bridge_frequency_hz, options.iteration_rate_hz)?;
    let mut board_spec = BoardSpec::full(
        chip_specs,
        board.bridge_width_words,
        board.bridge_latency_cycles,
        board.bridge_energy_pj_per_word,
        bridge_period,
    )?;
    if !options.faults.is_empty() {
        // Drop failed lanes and clamp degraded ones, then make sure every
        // direction cross-chip traffic needs still has a surviving lane —
        // a severed direction is a fault rejection, not a router error.
        board_spec = board_spec.apply_faults(&options.faults);
        let mut down: Vec<MappingViolation> = Vec::new();
        for flow in &bridge_flows {
            if flow.words == 0 {
                continue;
            }
            let served = board_spec
                .lanes()
                .iter()
                .any(|l| l.from == flow.from_chip && l.to == flow.to_chip);
            let violation = MappingViolation::BridgeDown {
                from_chip: flow.from_chip,
                to_chip: flow.to_chip,
            };
            if !served && !down.contains(&violation) {
                down.push(violation);
            }
        }
        if !down.is_empty() {
            return Err(MapperError::Fault { violations: down });
        }
    }
    let route = synchro_route::compile_board_traced(graph, mapping, &board_spec, trace)?;

    // Drive each simulated chip's horizontal bus from its schedule: one
    // chip-level bus program whose period is the global hyperperiod, with
    // each TDM slot's bus cycle scaled onto the reference clock.
    for (chip_index, schedule) in route.chips().iter().enumerate() {
        if schedule.slots().is_empty() {
            continue;
        }
        let period = schedule.spec().period().max(1);
        let mut slots: Vec<BusSlot> = schedule
            .slots()
            .iter()
            .map(|slot| BusSlot {
                tick: ((u128::from(slot.cycle) * u128::from(hyperperiod)) / u128::from(period))
                    as u64,
                from: slot.from,
                to: vec![slot.to],
                words: slot.words,
            })
            .collect();
        slots.sort_by_key(|s| s.tick);
        let program = BusProgram::new(
            hyperperiod,
            options.iterations,
            schedule.scheduled_slots(),
            slots,
        );
        sim_board
            .chip_mut(chip_index)
            .expect("board sized from the mapping")
            .load_bus_program(program)
            .map_err(|e| MapperError::Column(ColumnError::Bus(e)))?;
    }

    // And the board's bridge from the bridge schedule, scaled the same
    // way onto the shared reference clock.
    if !route.bridge().slots().is_empty() {
        let period = route.bridge().period().max(1);
        let mut slots: Vec<BridgeTransfer> = route
            .bridge()
            .slots()
            .iter()
            .map(|slot| {
                let lane = route.spec().lanes()[slot.lane];
                BridgeTransfer {
                    tick: ((u128::from(slot.cycle) * u128::from(hyperperiod)) / u128::from(period))
                        as u64,
                    lane: slot.lane,
                    from_chip: lane.from,
                    to_chip: lane.to,
                    words: slot.words,
                    cycles: slot.cycles,
                }
            })
            .collect();
        slots.sort_by_key(|s| s.tick);
        let program = BridgeProgram::new(
            hyperperiod,
            options.iterations,
            route.bridge().scheduled_slots(),
            slots,
        );
        sim_board
            .load_bridge_program(program)
            .map_err(|e| MapperError::Column(ColumnError::Bus(e)))?;
    }

    Ok(CompiledBoard {
        board: sim_board,
        parts,
        route,
        bridge_words_per_iteration,
        bridge_energy_pj_per_word: board.bridge_energy_pj_per_word,
        hyperperiod,
        iterations: options.iterations,
        iteration_rate_hz: options.iteration_rate_hz,
        drain_budget,
        tier: options.tier,
    })
}

impl CompiledChip {
    /// The underlying simulated chip.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Mutable access to the simulated chip (e.g. to stage tile data).
    pub fn chip_mut(&mut self) -> &mut Chip {
        &mut self.chip
    }

    /// Per-column plans in placement order.
    pub fn plans(&self) -> &[ColumnPlan] {
        &self.plans
    }

    /// Edges whose endpoints live on different columns.
    pub fn cross_edges(&self) -> &[CrossEdge] {
        &self.cross_edges
    }

    /// The compiled TDM communication schedule the chip's horizontal bus
    /// is driven from (empty for single-column graphs).
    pub fn route(&self) -> &RouteSchedule {
        &self.route
    }

    /// Reference ticks per graph iteration.
    pub fn hyperperiod(&self) -> u64 {
        self.hyperperiod
    }

    /// Graph iterations the compiled programs execute.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Graph-iteration rate the chip was compiled for.
    pub fn iteration_rate_hz(&self) -> f64 {
        self.iteration_rate_hz
    }

    /// The pricing context [`synchro_trace::analyze::attribute`] bills a
    /// captured event stream of this chip against: per-column operating
    /// points from the compiled plans plus the shared power models under
    /// `tech`.
    pub fn price_spec(&self, tech: &Technology) -> PriceSpec {
        PriceSpec {
            iteration_rate_hz: self.iteration_rate_hz,
            hyperperiod: self.hyperperiod,
            tile_power: TilePowerModel::new(tech),
            leakage: LeakageModel::new(tech),
            interconnect: InterconnectModel::new(tech),
            columns: column_pricing_rows(&self.plans),
            buses: vec![BusPricing {
                chip: 0,
                geometry: BusGeometry::horizontal(tech),
                voltage: bus_voltage(&self.plans),
                scheduled_slots_per_iteration: self.route.scheduled_slots(),
            }],
            bridge_energy_pj_per_word: 0.0,
            bridge_scheduled_slots_per_iteration: 0,
        }
    }

    /// Aggregate energy of one run derived from the report counters —
    /// the independent cross-check for the event-priced ledger (see
    /// [`ReportEnergy`]).
    pub fn execution_energy(&self, report: &ExecutionReport, tech: &Technology) -> ReportEnergy {
        let duration_s = if self.hyperperiod == 0 || self.iteration_rate_hz <= 0.0 {
            0.0
        } else {
            report.reference_ticks as f64 / (self.hyperperiod as f64 * self.iteration_rate_hz)
        };
        let (compute_j, leakage_j) =
            column_report_energy(&self.plans, &report.column_stats, tech, duration_s);
        let word_j = InterconnectModel::new(tech)
            .word_energy_j(&BusGeometry::horizontal(tech), bus_voltage(&self.plans));
        ReportEnergy {
            compute_j,
            leakage_j,
            interconnect_j: word_j * report.occupied_bus_slots as f64,
            duration_s,
        }
    }

    /// Measured firings per column so far, derived from the broadcast
    /// counters (every issue slot of a firing is a broadcast).
    pub fn measured_firings(&self) -> Vec<u64> {
        measured_firings_of(&self.chip, &self.plans)
    }

    /// Per-track utilization rows of one run's [`ExecutionReport`] — the
    /// input [`synchro_trace::report::histogram`] renders: one row per
    /// column (useful cycles over executed cycles, branch and ZORM stalls
    /// excluded from busy) plus the horizontal bus (occupied over
    /// scheduled TDM slots).
    pub fn utilization(&self, report: &ExecutionReport) -> Vec<TrackUtilization> {
        let mut tracks: Vec<TrackUtilization> = report
            .column_stats
            .iter()
            .enumerate()
            .map(|(i, stats)| {
                let name = self.plans.get(i).map_or("?", |p| p.name.as_str());
                let divider = self.plans.get(i).map_or(1, |p| p.clock_divider);
                TrackUtilization {
                    label: format!("col{i} {name} (\u{f7}{divider})"),
                    busy: stats.cycles - stats.branch_stalls - stats.rate_match_stalls,
                    total: stats.cycles,
                    unit: "cycles",
                    detail: format!(
                        "{} firings, {} stall cycles",
                        report.firing_counts.get(i).copied().unwrap_or(0),
                        stats.branch_stalls + stats.rate_match_stalls,
                    ),
                }
            })
            .collect();
        tracks.push(TrackUtilization {
            label: "horizontal bus".to_owned(),
            busy: report.occupied_bus_slots,
            total: report.scheduled_bus_slots,
            unit: "slots",
            detail: format!("{} words", report.simulated_horizontal_words),
        });
        tracks
    }

    /// Run the chip to completion.  Horizontal-bus traffic is driven
    /// cycle-by-cycle from the compiled TDM route schedule (loaded into
    /// the chip as a [`BusProgram`]) as the reference clock passes each
    /// slot's time — the statically scheduled communication the paper
    /// describes, rather than after-the-fact aggregate billing.  For a
    /// contention-free schedule the per-run word totals are identical to
    /// the old firing-count accounting, bit for bit.
    ///
    /// Every quantity in the returned [`ExecutionReport`] covers *this
    /// call only*: counters are snapshotted on entry and reported as
    /// deltas, so traffic or cycles staged through [`CompiledChip::chip_mut`]
    /// beforehand do not pollute the cross-validation (the compiled
    /// programs themselves run once — a second `execute` reports an empty,
    /// and therefore inexact, run).
    ///
    /// # Errors
    ///
    /// Propagates simulation faults and reports [`MapperError::Incomplete`]
    /// if the chip fails to halt within its drain budget.  On error the
    /// chip state is unspecified (the interpreted tier leaves it partially
    /// run, the fast tier untouched) — the returned error value itself is
    /// tier-independent.
    pub fn execute(&mut self) -> Result<ExecutionReport, MapperError> {
        match self.tier {
            ExecutionTier::Interpreted => self.execute_interpreted(),
            ExecutionTier::Fast => self.execute_fast(),
        }
    }

    /// [`CompiledChip::execute`] on the interpreted tier, regardless of
    /// the compiled [`ExecutionTier`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledChip::execute`].
    pub fn execute_interpreted(&mut self) -> Result<ExecutionReport, MapperError> {
        let start = self.snapshot();

        for _ in 0..self.iterations {
            if self.chip.all_halted() {
                break;
            }
            self.chip.run(self.hyperperiod)?;
        }
        // Drain: the halt-observing tick of every column (and, for
        // ZORM-throttled columns, the stall surplus) lies past the last
        // iteration window.  The watchdog turns a drain that makes no
        // progress across a full window into a structured stall instead
        // of spinning the budget down on a wedged chip.
        let window = self.hyperperiod.max(1);
        let mut spent = self.chip.stats().reference_cycles - start.ticks;
        while !self.chip.all_halted() && spent < self.drain_budget {
            let before = chip_progress(&self.chip);
            self.chip.run(window)?;
            spent = self.chip.stats().reference_cycles - start.ticks;
            if !self.chip.all_halted() && chip_progress(&self.chip) == before {
                let tick = self.chip.stats().reference_cycles;
                self.chip
                    .trace()
                    .emit(|| TraceEvent::FaultStalled { tick, window });
                return Err(MapperError::SimFault(SimFault::Stalled {
                    reference_cycles: spent,
                    window,
                }));
            }
        }
        if !self.chip.all_halted() {
            // Budget exhausted with live columns: one diagnostic window
            // separates a wedged chip (zero progress — structured stall)
            // from a merely slow one (Incomplete).  The error value stays
            // tier-independent; the chip state on error is unspecified.
            let before = chip_progress(&self.chip);
            self.chip.run(window)?;
            if chip_progress(&self.chip) == before {
                let tick = self.chip.stats().reference_cycles;
                self.chip
                    .trace()
                    .emit(|| TraceEvent::FaultStalled { tick, window });
                return Err(MapperError::SimFault(SimFault::Stalled {
                    reference_cycles: tick - start.ticks,
                    window,
                }));
            }
            return Err(MapperError::Incomplete { ticks: spent });
        }
        // The columns can halt before the reference clock crosses the last
        // slots of the final frame; the DOUs still play their schedule
        // out, so drive the bus program to completion.
        self.chip.finish_bus_program()?;
        Ok(self.report_since(&start))
    }

    /// [`CompiledChip::execute`] on the fast tier, regardless of the
    /// compiled [`ExecutionTier`]: profile one firing per column through
    /// the interpreter, check the run would fit the interpreted tier's
    /// tick budget, then apply every remaining firing as a closed-form
    /// counter update and drain the bus program in bulk.  The produced
    /// report — and the chip's externally visible statistics — are
    /// bit-identical to [`CompiledChip::execute_interpreted`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledChip::execute`], plus [`MapperError::FastTier`]
    /// when the compiled programs cannot be batched (e.g. the chip was
    /// stepped by hand through [`CompiledChip::chip_mut`] first).  The
    /// budget check reproduces [`MapperError::Incomplete`] *without*
    /// mutating the chip.
    pub fn execute_fast(&mut self) -> Result<ExecutionReport, MapperError> {
        if self.chip.any_failed() {
            // A failed column has no closed form — it executes nothing,
            // forever — so delegate to the interpreted driver, whose
            // watchdog classifies the wedge as a structured stall.
            return self.execute_interpreted();
        }
        let start = self.snapshot();

        if !self.chip.all_halted() {
            let tier = build_fast_tier(&self.plans, &self.blueprints, self.iterations)?;
            // The interpreted tier gives up after `iterations` hyperperiod
            // windows plus drain windows up to its budget; reproduce the
            // same Incomplete verdict from the predicted halt tick, before
            // touching the chip.
            let window = self.hyperperiod.max(1);
            let budget_windows = self.iterations.max(self.drain_budget.div_ceil(window));
            let budget_ticks = budget_windows.saturating_mul(window);
            if let Some(halt_tick) = tier.completion_tick(&self.chip)? {
                if halt_tick >= budget_ticks {
                    return Err(MapperError::Incomplete {
                        ticks: budget_ticks,
                    });
                }
            }
            tier.run(&mut self.chip)?;
        } else {
            // An already-halted chip: the interpreted tier would observe
            // the halt immediately and still play the bus schedule out.
            self.chip.finish_bus_program_batched()?;
        }
        Ok(self.report_since(&start))
    }

    /// Run the chip to completion under a deterministic [`FaultPlan`]:
    /// each scheduled event fires iff the chip has not fully halted when
    /// its reference tick is reached (a chip that drains first never sees
    /// the fault), killing the targeted column mid-run.  A killed column
    /// executes nothing and bills nothing from its event tick on but
    /// never reports halted — the paper's static schedules have no
    /// recovery path — so the run ends either at halt (`fault: None`) or
    /// when the starvation watchdog observes a full hyperperiod window
    /// with zero progress (`fault: Some(SimFault::Stalled)`), never by
    /// wedging.  Bridge-lane events are no-ops on a single chip.
    ///
    /// An empty plan delegates to [`CompiledChip::execute`] exactly.  On
    /// the fast tier, a run whose predicted halt precedes every scheduled
    /// event keeps the closed-form batch path (no event would ever fire);
    /// otherwise the run falls back to the interpreted driver, whose
    /// statistics are bit-identical anyway.
    ///
    /// # Errors
    ///
    /// As for [`CompiledChip::execute`]; a watchdog stall is *not* an
    /// error here — it is the structured [`FaultedRun::fault`] outcome.
    pub fn execute_faulted(&mut self, plan: &FaultPlan) -> Result<FaultedRun, MapperError> {
        if plan.is_empty() {
            let report = self.execute()?;
            return Ok(FaultedRun {
                report,
                fault: None,
            });
        }
        match self.tier {
            ExecutionTier::Interpreted => self.run_faulted(plan, false),
            ExecutionTier::Fast => self.execute_faulted_fast(plan),
        }
    }

    /// [`CompiledChip::execute_faulted`] on the interpreted event-driven
    /// tier, regardless of the compiled [`ExecutionTier`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledChip::execute_faulted`].
    pub fn execute_faulted_interpreted(
        &mut self,
        plan: &FaultPlan,
    ) -> Result<FaultedRun, MapperError> {
        if plan.is_empty() {
            let report = self.execute_interpreted()?;
            return Ok(FaultedRun {
                report,
                fault: None,
            });
        }
        self.run_faulted(plan, false)
    }

    /// [`CompiledChip::execute_faulted`] on the naive tick-by-tick
    /// driver ([`Chip::run_ticked`]) — the differential-testing
    /// reference.  Windows are cut at exactly the same reference ticks as
    /// the event-driven driver's, so the two produce bit-identical
    /// statistics and outcomes.
    ///
    /// # Errors
    ///
    /// As for [`CompiledChip::execute_faulted`].
    pub fn execute_faulted_ticked(&mut self, plan: &FaultPlan) -> Result<FaultedRun, MapperError> {
        self.run_faulted(plan, true)
    }

    fn execute_faulted_fast(&mut self, plan: &FaultPlan) -> Result<FaultedRun, MapperError> {
        if self.chip.all_halted() {
            let report = self.execute_fast()?;
            return Ok(FaultedRun {
                report,
                fault: None,
            });
        }
        // Predict the un-faulted halt tick: when it strictly precedes the
        // first scheduled event, the chip halts before any fault could
        // fire and the closed-form batch run is exact.  (At equality the
        // event fires first — the halt-observing tick has not executed
        // yet — so only a strict inequality keeps the fast path.)
        let tier = build_fast_tier(&self.plans, &self.blueprints, self.iterations)?;
        let halt_tick = tier.completion_tick(&self.chip)?;
        let first = plan.first_tick().expect("plan checked non-empty");
        if halt_tick.is_some_and(|t| t < first) {
            let report = self.execute_fast()?;
            return Ok(FaultedRun {
                report,
                fault: None,
            });
        }
        // A fault fires mid-run: closed-form batching has no mid-run
        // point to inject at, so fall back to the interpreted driver
        // (statistics stay bit-identical across tiers).
        self.run_faulted(plan, false)
    }

    /// The shared faulted driver: run in windows, firing due events at
    /// their exact reference ticks, with the starvation watchdog armed on
    /// every full window.
    fn run_faulted(&mut self, plan: &FaultPlan, ticked: bool) -> Result<FaultedRun, MapperError> {
        let start = self.snapshot();
        let origin = self.chip.stats().reference_cycles;
        let window = self.hyperperiod.max(1);
        let budget = self
            .iterations
            .saturating_mul(window)
            .saturating_add(self.drain_budget);
        let events = plan.events();
        let mut next = 0usize;
        let fault = loop {
            if self.chip.all_halted() {
                break None;
            }
            let now = self.chip.stats().reference_cycles - origin;
            while next < events.len() && events[next].at_tick <= now {
                if let FaultTarget::Column { chip, column } = events[next].target {
                    if chip == 0 {
                        self.chip.fail_column(column, origin + events[next].at_tick);
                    }
                }
                // Bridge lanes do not exist on a single chip.
                next += 1;
            }
            if now >= budget {
                return Err(MapperError::Incomplete { ticks: now });
            }
            // Cut the window at the next unfired event so it fires at its
            // exact tick; watchdog checks only cover full windows.
            let mut target = now.saturating_add(window);
            if next < events.len() {
                target = target.min(events[next].at_tick);
            }
            let full_window = target - now == window;
            let before = chip_progress(&self.chip);
            if ticked {
                self.chip.run_ticked(target - now)?;
            } else {
                self.chip.run(target - now)?;
            }
            if full_window && !self.chip.all_halted() && chip_progress(&self.chip) == before {
                let tick = self.chip.stats().reference_cycles;
                self.chip
                    .trace()
                    .emit(|| TraceEvent::FaultStalled { tick, window });
                break Some(SimFault::Stalled {
                    reference_cycles: tick - origin,
                    window,
                });
            }
        };
        if fault.is_none() {
            self.chip.finish_bus_program()?;
        }
        Ok(FaultedRun {
            report: self.report_since(&start),
            fault,
        })
    }

    fn snapshot(&self) -> StatsSnapshot {
        snapshot_of(&self.chip, &self.plans)
    }

    fn report_since(&self, start: &StatsSnapshot) -> ExecutionReport {
        report_of(
            &self.chip,
            &self.plans,
            &self.cross_edges,
            self.hyperperiod,
            self.iterations,
            start,
        )
    }
}

impl CompiledBoard {
    /// The underlying simulated board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Mutable access to the simulated board (e.g. to stage tile data on
    /// one of its chips).
    pub fn board_mut(&mut self) -> &mut Board {
        &mut self.board
    }

    /// Number of chips on the board.
    pub fn chips(&self) -> usize {
        self.parts.len()
    }

    /// Per-column plans of one chip, in that chip's column order.
    pub fn chip_plans(&self, chip: usize) -> &[ColumnPlan] {
        &self.parts[chip].plans
    }

    /// Edges whose endpoints live on different columns of the same chip.
    pub fn chip_cross_edges(&self, chip: usize) -> &[CrossEdge] {
        &self.parts[chip].cross_edges
    }

    /// The compiled board route: one TDM schedule per chip plus the
    /// bridge schedule.
    pub fn route(&self) -> &BoardRoute {
        &self.route
    }

    /// Reference ticks per graph iteration (global — every chip shares
    /// the board reference clock).
    pub fn hyperperiod(&self) -> u64 {
        self.hyperperiod
    }

    /// Graph iterations the compiled programs execute.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Words crossing chip boundaries per graph iteration.
    pub fn bridge_words_per_iteration(&self) -> u64 {
        self.bridge_words_per_iteration
    }

    /// The per-word bridge energy rating the board was compiled with, in
    /// pJ — the input to `InterconnectModel::power_mw_bridge_slots`.
    pub fn bridge_energy_pj_per_word(&self) -> f64 {
        self.bridge_energy_pj_per_word
    }

    /// Graph-iteration rate the board was compiled for.
    pub fn iteration_rate_hz(&self) -> f64 {
        self.iteration_rate_hz
    }

    /// The pricing context [`synchro_trace::analyze::attribute`] bills a
    /// captured event stream of this board against: every chip's column
    /// operating points and bus, plus the bridge-lane word rating.
    pub fn price_spec(&self, tech: &Technology) -> PriceSpec {
        let columns = self
            .parts
            .iter()
            .flat_map(|part| column_pricing_rows(&part.plans))
            .collect();
        let buses = self
            .parts
            .iter()
            .enumerate()
            .map(|(chip, part)| BusPricing {
                chip: chip as u32,
                geometry: BusGeometry::horizontal(tech),
                voltage: bus_voltage(&part.plans),
                scheduled_slots_per_iteration: self.route.chips()[chip].scheduled_slots(),
            })
            .collect();
        PriceSpec {
            iteration_rate_hz: self.iteration_rate_hz,
            hyperperiod: self.hyperperiod,
            tile_power: TilePowerModel::new(tech),
            leakage: LeakageModel::new(tech),
            interconnect: InterconnectModel::new(tech),
            columns,
            buses,
            bridge_energy_pj_per_word: self.bridge_energy_pj_per_word,
            bridge_scheduled_slots_per_iteration: self.route.bridge().scheduled_slots(),
        }
    }

    /// Aggregate energy of one run derived from the report counters —
    /// the independent cross-check for the event-priced ledger (see
    /// [`ReportEnergy`]).
    pub fn execution_energy(
        &self,
        report: &BoardExecutionReport,
        tech: &Technology,
    ) -> ReportEnergy {
        let duration_s = if self.hyperperiod == 0 || self.iteration_rate_hz <= 0.0 {
            0.0
        } else {
            report.reference_ticks as f64 / (self.hyperperiod as f64 * self.iteration_rate_hz)
        };
        let interconnect = InterconnectModel::new(tech);
        let mut compute_j = 0.0;
        let mut leakage_j = 0.0;
        let mut interconnect_j = interconnect.bridge_word_energy_j(self.bridge_energy_pj_per_word)
            * report.bridge_words as f64;
        for (part, chip_report) in self.parts.iter().zip(&report.chips) {
            let (c, l) =
                column_report_energy(&part.plans, &chip_report.column_stats, tech, duration_s);
            compute_j += c;
            leakage_j += l;
            interconnect_j += interconnect
                .word_energy_j(&BusGeometry::horizontal(tech), bus_voltage(&part.plans))
                * chip_report.occupied_bus_slots as f64;
        }
        ReportEnergy {
            compute_j,
            leakage_j,
            interconnect_j,
            duration_s,
        }
    }

    /// Per-track utilization rows of one run's [`BoardExecutionReport`]
    /// — the board-level analogue of [`CompiledChip::utilization`]: per
    /// chip one row per column plus its horizontal bus, then one row per
    /// bridge lane (words carried over the lane's word capacity for the
    /// run) and the board-wide bridge frame occupancy.
    pub fn utilization(&self, report: &BoardExecutionReport) -> Vec<TrackUtilization> {
        let mut tracks = Vec::new();
        for (chip, (part, chip_report)) in self.parts.iter().zip(&report.chips).enumerate() {
            for (i, stats) in chip_report.column_stats.iter().enumerate() {
                let name = part.plans.get(i).map_or("?", |p| p.name.as_str());
                let divider = part.plans.get(i).map_or(1, |p| p.clock_divider);
                tracks.push(TrackUtilization {
                    label: format!("chip{chip}/col{i} {name} (\u{f7}{divider})"),
                    busy: stats.cycles - stats.branch_stalls - stats.rate_match_stalls,
                    total: stats.cycles,
                    unit: "cycles",
                    detail: format!(
                        "{} firings, {} stall cycles",
                        chip_report.firing_counts.get(i).copied().unwrap_or(0),
                        stats.branch_stalls + stats.rate_match_stalls,
                    ),
                });
            }
            tracks.push(TrackUtilization {
                label: format!("chip{chip}/horizontal bus"),
                busy: chip_report.occupied_bus_slots,
                total: chip_report.scheduled_bus_slots,
                unit: "slots",
                detail: format!("{} words", chip_report.simulated_horizontal_words),
            });
        }
        let bridge = self.route.bridge();
        let iterations = report
            .reference_ticks
            .checked_div(self.hyperperiod)
            .unwrap_or(0);
        for (i, lane) in bridge.lanes().iter().enumerate() {
            tracks.push(TrackUtilization {
                label: format!("bridge lane {i}"),
                busy: report.lane_words.get(i).copied().unwrap_or(0),
                total: lane.width_words * bridge.period() * iterations,
                unit: "words",
                detail: format!("chip{}\u{2192}chip{}", lane.from, lane.to),
            });
        }
        tracks.push(TrackUtilization {
            label: "bridge frame".to_owned(),
            busy: report.occupied_bridge_slots,
            total: report.scheduled_bridge_slots,
            unit: "slots",
            detail: format!("{} words", report.bridge_words),
        });
        tracks
    }

    /// Unwrap a board of one chip into the legacy [`CompiledChip`] — the
    /// single-chip [`compile`] path.
    ///
    /// # Panics
    ///
    /// Panics on a board of more than one chip.
    fn into_single_chip(mut self) -> CompiledChip {
        assert_eq!(
            self.parts.len(),
            1,
            "into_single_chip requires a board of exactly one chip"
        );
        let parts = self.parts.remove(0);
        let route = self.route.chips()[0].clone();
        let chip = self
            .board
            .into_chips()
            .pop()
            .expect("board of one chip has a chip");
        CompiledChip {
            chip,
            plans: parts.plans,
            blueprints: parts.blueprints,
            cross_edges: parts.cross_edges,
            route,
            hyperperiod: self.hyperperiod,
            iterations: self.iterations,
            iteration_rate_hz: self.iteration_rate_hz,
            drain_budget: self.drain_budget,
            tier: self.tier,
        }
    }

    /// Run the board to completion: the chips co-advance in shared
    /// reference time (each chip's horizontal bus driven from its own
    /// TDM schedule exactly as in [`CompiledChip::execute`]) and the
    /// bridge schedule replays the inter-chip transfers as the board
    /// clock passes each slot.  On a board of one chip every per-chip
    /// quantity is bit-identical to the single-chip path.
    ///
    /// Every quantity in the returned [`BoardExecutionReport`] covers
    /// *this call only* (counters are snapshotted on entry and reported
    /// as deltas, per-chip and board-wide alike).
    ///
    /// # Errors
    ///
    /// As for [`CompiledChip::execute`], against the board-wide drain
    /// budget.
    pub fn execute(&mut self) -> Result<BoardExecutionReport, MapperError> {
        match self.tier {
            ExecutionTier::Interpreted => self.execute_interpreted(),
            ExecutionTier::Fast => self.execute_fast(),
        }
    }

    /// [`CompiledBoard::execute`] on the interpreted tier, regardless of
    /// the compiled [`ExecutionTier`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledBoard::execute`].
    pub fn execute_interpreted(&mut self) -> Result<BoardExecutionReport, MapperError> {
        let start = self.snapshot();

        for _ in 0..self.iterations {
            if self.board.all_halted() {
                break;
            }
            self.board.run(self.hyperperiod)?;
        }
        // Drain: the halt-observing tick of every column of every chip
        // lies past the last iteration window.  The watchdog turns a
        // drain that makes no progress across a full window into a
        // structured stall instead of spinning the budget down on a
        // wedged board.
        let window = self.hyperperiod.max(1);
        let mut spent = self.board.reference_cycles() - start.reference;
        while !self.board.all_halted() && spent < self.drain_budget {
            let before = board_progress(&self.board);
            self.board.run(window)?;
            spent = self.board.reference_cycles() - start.reference;
            if !self.board.all_halted() && board_progress(&self.board) == before {
                let tick = self.board.reference_cycles();
                self.board
                    .trace()
                    .emit(|| TraceEvent::FaultStalled { tick, window });
                return Err(MapperError::SimFault(SimFault::Stalled {
                    reference_cycles: spent,
                    window,
                }));
            }
        }
        if !self.board.all_halted() {
            // Budget exhausted with live columns: one diagnostic window
            // separates a wedged board (zero progress — structured stall)
            // from a merely slow one (Incomplete).  The error value stays
            // tier-independent; the board state on error is unspecified.
            let before = board_progress(&self.board);
            self.board.run(window)?;
            if board_progress(&self.board) == before {
                let tick = self.board.reference_cycles();
                self.board
                    .trace()
                    .emit(|| TraceEvent::FaultStalled { tick, window });
                return Err(MapperError::SimFault(SimFault::Stalled {
                    reference_cycles: tick - start.reference,
                    window,
                }));
            }
            return Err(MapperError::Incomplete { ticks: spent });
        }
        // Play out the remaining slots of every schedule: the chips'
        // bus programs first, then the board's bridge program.
        for chip in 0..self.parts.len() {
            self.board
                .chip_mut(chip)
                .expect("board sized from the mapping")
                .finish_bus_program()?;
        }
        self.board.finish_bridge_program();
        Ok(self.report_since(&start))
    }

    /// [`CompiledBoard::execute`] on the fast tier: each chip is
    /// profiled and batched exactly as in [`CompiledChip::execute_fast`],
    /// the board clock jumps to the fleet's frontier, and the bridge
    /// program drains in bulk.  The produced report — and every chip's
    /// externally visible statistics — are bit-identical to
    /// [`CompiledBoard::execute_interpreted`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledChip::execute_fast`]; the budget check reproduces
    /// [`MapperError::Incomplete`] *without* mutating any chip.
    pub fn execute_fast(&mut self) -> Result<BoardExecutionReport, MapperError> {
        if (0..self.parts.len()).any(|chip| self.board.chip(chip).is_some_and(Chip::any_failed)) {
            // A failed column has no closed form — it executes nothing,
            // forever — so delegate to the interpreted driver, whose
            // watchdog classifies the wedge as a structured stall.
            return self.execute_interpreted();
        }
        let start = self.snapshot();

        if !self.board.all_halted() {
            let mut tiers = Vec::with_capacity(self.parts.len());
            for parts in &self.parts {
                tiers.push(build_fast_tier(
                    &parts.plans,
                    &parts.blueprints,
                    self.iterations,
                )?);
            }
            // Same budget verdict as the interpreted board driver, from
            // the predicted per-chip halt ticks, before touching any chip.
            let window = self.hyperperiod.max(1);
            let budget_windows = self.iterations.max(self.drain_budget.div_ceil(window));
            let budget_ticks = budget_windows.saturating_mul(window);
            for (chip, tier) in tiers.iter().enumerate() {
                let chip = self.board.chip(chip).expect("board sized from the mapping");
                if let Some(halt_tick) = tier.completion_tick(chip)? {
                    if halt_tick >= budget_ticks {
                        return Err(MapperError::Incomplete {
                            ticks: budget_ticks,
                        });
                    }
                }
            }
            for (chip, tier) in tiers.into_iter().enumerate() {
                tier.run(
                    self.board
                        .chip_mut(chip)
                        .expect("board sized from the mapping"),
                )?;
            }
            // Publish the fleet's frontier as the board reference clock
            // (a zero-tick run: every chip is already at or past it).
            self.board.run(0)?;
        } else {
            // An already-halted board: the interpreted driver would
            // observe the halt immediately and still play the bus
            // schedules out.
            for chip in 0..self.parts.len() {
                self.board
                    .chip_mut(chip)
                    .expect("board sized from the mapping")
                    .finish_bus_program_batched()?;
            }
        }
        self.board.finish_bridge_program_batched();
        Ok(self.report_since(&start))
    }

    /// Run the board to completion under a deterministic [`FaultPlan`] —
    /// the board-wide analogue of [`CompiledChip::execute_faulted`].
    /// Column events kill a column of one chip; bridge-lane events kill a
    /// lane, dropping every slot scheduled on it from the event tick on
    /// (undelivered and unaccounted).  A lane kill alone never starves a
    /// column — receives do not block — so such runs complete with
    /// `fault: None` and reduced bridge traffic; a column kill starves
    /// the board and ends in `fault: Some(SimFault::Stalled)` via the
    /// watchdog.
    ///
    /// # Errors
    ///
    /// As for [`CompiledBoard::execute`]; a watchdog stall is the
    /// structured [`FaultedBoardRun::fault`] outcome, not an error.
    pub fn execute_faulted(&mut self, plan: &FaultPlan) -> Result<FaultedBoardRun, MapperError> {
        if plan.is_empty() {
            let report = self.execute()?;
            return Ok(FaultedBoardRun {
                report,
                fault: None,
            });
        }
        match self.tier {
            ExecutionTier::Interpreted => self.run_faulted_board(plan),
            ExecutionTier::Fast => self.execute_faulted_board_fast(plan),
        }
    }

    /// [`CompiledBoard::execute_faulted`] on the interpreted tier,
    /// regardless of the compiled [`ExecutionTier`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledBoard::execute_faulted`].
    pub fn execute_faulted_interpreted(
        &mut self,
        plan: &FaultPlan,
    ) -> Result<FaultedBoardRun, MapperError> {
        if plan.is_empty() {
            let report = self.execute_interpreted()?;
            return Ok(FaultedBoardRun {
                report,
                fault: None,
            });
        }
        self.run_faulted_board(plan)
    }

    fn execute_faulted_board_fast(
        &mut self,
        plan: &FaultPlan,
    ) -> Result<FaultedBoardRun, MapperError> {
        if self.board.all_halted() {
            let report = self.execute_fast()?;
            return Ok(FaultedBoardRun {
                report,
                fault: None,
            });
        }
        // Board-wide halt prediction: the latest chip halt tick.  As for
        // the single chip, only a strictly earlier halt keeps the
        // closed-form path.
        let mut latest: Option<u64> = None;
        for (c, parts) in self.parts.iter().enumerate() {
            let tier = build_fast_tier(&parts.plans, &parts.blueprints, self.iterations)?;
            let chip = self.board.chip(c).expect("board sized from the mapping");
            if let Some(t) = tier.completion_tick(chip)? {
                latest = Some(latest.map_or(t, |l| l.max(t)));
            }
        }
        let first = plan.first_tick().expect("plan checked non-empty");
        if latest.is_some_and(|t| t < first) {
            let report = self.execute_fast()?;
            return Ok(FaultedBoardRun {
                report,
                fault: None,
            });
        }
        self.run_faulted_board(plan)
    }

    /// The board faulted driver — the same window/event/watchdog loop as
    /// [`CompiledChip::run_faulted`], over the co-advancing fleet.
    fn run_faulted_board(&mut self, plan: &FaultPlan) -> Result<FaultedBoardRun, MapperError> {
        let start = self.snapshot();
        let origin = self.board.reference_cycles();
        let window = self.hyperperiod.max(1);
        let budget = self
            .iterations
            .saturating_mul(window)
            .saturating_add(self.drain_budget);
        let events = plan.events();
        let mut next = 0usize;
        let fault = loop {
            if self.board.all_halted() {
                break None;
            }
            let now = self.board.reference_cycles() - origin;
            while next < events.len() && events[next].at_tick <= now {
                let at = origin + events[next].at_tick;
                match events[next].target {
                    FaultTarget::Column { chip, column } => {
                        self.board.fail_column(chip, column, at);
                    }
                    FaultTarget::BridgeLane { lane } => {
                        self.board.fail_lane(lane, at);
                    }
                }
                next += 1;
            }
            if now >= budget {
                return Err(MapperError::Incomplete { ticks: now });
            }
            let mut target = now.saturating_add(window);
            if next < events.len() {
                target = target.min(events[next].at_tick);
            }
            let full_window = target - now == window;
            let before = board_progress(&self.board);
            self.board.run(target - now)?;
            if full_window && !self.board.all_halted() && board_progress(&self.board) == before {
                let tick = self.board.reference_cycles();
                self.board
                    .trace()
                    .emit(|| TraceEvent::FaultStalled { tick, window });
                break Some(SimFault::Stalled {
                    reference_cycles: tick - origin,
                    window,
                });
            }
        };
        if fault.is_none() {
            for chip in 0..self.parts.len() {
                self.board
                    .chip_mut(chip)
                    .expect("board sized from the mapping")
                    .finish_bus_program()?;
            }
            self.board.finish_bridge_program();
        }
        Ok(FaultedBoardRun {
            report: self.report_since(&start),
            fault,
        })
    }

    fn snapshot(&self) -> BoardSnapshot {
        BoardSnapshot {
            reference: self.board.reference_cycles(),
            chips: self
                .parts
                .iter()
                .enumerate()
                .map(|(c, parts)| {
                    snapshot_of(
                        self.board.chip(c).expect("board sized from the mapping"),
                        &parts.plans,
                    )
                })
                .collect(),
            bridge: self.board.bridge_stats(),
            lane_words: self.board.lane_words().to_vec(),
        }
    }

    fn report_since(&self, start: &BoardSnapshot) -> BoardExecutionReport {
        let chips = self
            .parts
            .iter()
            .enumerate()
            .map(|(c, parts)| {
                report_of(
                    self.board.chip(c).expect("board sized from the mapping"),
                    &parts.plans,
                    &parts.cross_edges,
                    self.hyperperiod,
                    self.iterations,
                    &start.chips[c],
                )
            })
            .collect();
        let bridge = self.board.bridge_stats();
        BoardExecutionReport {
            chips,
            reference_ticks: self.board.reference_cycles() - start.reference,
            hyperperiod: self.hyperperiod,
            bridge_words: bridge.word_transfers - start.bridge.word_transfers,
            predicted_bridge_words: self.bridge_words_per_iteration * self.iterations,
            scheduled_bridge_slots: bridge.scheduled_slots - start.bridge.scheduled_slots,
            occupied_bridge_slots: bridge.occupied_slots - start.bridge.occupied_slots,
            lane_words: self
                .board
                .lane_words()
                .iter()
                .enumerate()
                .map(|(i, now)| now - start.lane_words.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }
}

/// Compare a simulated execution against the analytic
/// [`ApplicationReport`] for the same application.
///
/// Blocks are matched by position: the mapping's placements must be in the
/// same order as the report's blocks (both follow the application's
/// pipeline order).  A count mismatch is reported via
/// [`CrossValidation::blocks_match`] and fails
/// [`CrossValidation::agrees_within`] — never silently truncated.
pub fn cross_validate(
    compiled: &CompiledChip,
    execution: &ExecutionReport,
    report: &ApplicationReport,
) -> CrossValidation {
    let blocks: Vec<BlockComparison> = compiled
        .plans()
        .iter()
        .zip(&report.blocks)
        .map(|(plan, block)| BlockComparison {
            name: plan.name.clone(),
            analytic_frequency_mhz: block.frequency_mhz,
            mapped_frequency_mhz: plan.required_frequency_mhz,
            frequency_error: relative_error(plan.required_frequency_mhz, block.frequency_mhz),
        })
        .collect();
    let max_frequency_error = blocks.iter().map(|b| b.frequency_error).fold(0.0, f64::max);
    CrossValidation {
        max_frequency_error,
        blocks_match: compiled.plans().len() == report.blocks.len(),
        firings_exact: execution.firings_exact(),
        bus_traffic_error: execution.horizontal_traffic_error(),
        blocks,
    }
}

/// Compile an explorer solution: realize it back into a `(graph,
/// mapping)` pair (the original graph for single-actor columns, the
/// clustered graph for fused ones) and run it through [`compile`].
///
/// The `options.iteration_rate_hz` should match the rate the solution was
/// explored at so the voltage annotations line up.
///
/// # Errors
///
/// Propagates realization and compilation failures.
pub fn compile_explored(
    graph: &SdfGraph,
    solution: &ExplorerSolution,
    options: &MapperOptions,
) -> Result<CompiledChip, MapperError> {
    let (realized_graph, mapping) = solution.realize(graph)?;
    compile(&realized_graph, &mapping, options)
}

/// The DDC front end as an SDF graph whose mapping reproduces the paper's
/// Table 4 operating points: mixer → CIC integrator → (4:1) CIC comb →
/// CFIR → PFIR at 16 M graph iterations/s (64 MS/s, 4 samples per
/// iteration).  Returns `(graph, mapping, iteration_rate_hz)`; the graph
/// definition lives in [`synchro_apps::graphs`].
pub fn ddc_reference() -> (SdfGraph, Mapping, f64) {
    let reference = synchro_apps::reference_graph(synchro_apps::Application::Ddc);
    (
        reference.graph,
        reference.mapping,
        reference.iteration_rate_hz,
    )
}

/// The 802.11a receive chain as an SDF graph whose mapping reproduces the
/// paper's Table 4 operating points: FFT → de-mod/de-interleave → Viterbi
/// ACS → traceback at 250 k OFDM symbols/s.  Returns
/// `(graph, mapping, iteration_rate_hz)`; the graph definition lives in
/// [`synchro_apps::graphs`].
pub fn wifi_reference() -> (SdfGraph, Mapping, f64) {
    let reference = synchro_apps::reference_graph(synchro_apps::Application::Wifi80211a);
    (
        reference.graph,
        reference.mapping,
        reference.iteration_rate_hz,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_actor_chain(produce: u64, consume: u64) -> (SdfGraph, Mapping) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 4, 4);
        let b = g.add_actor("b", 6, 4);
        g.add_edge(a, b, produce, consume, 0).unwrap();
        let mut m = Mapping::new();
        m.place(a, 4, 1.0);
        m.place(b, 2, 1.0);
        (g, m)
    }

    #[test]
    fn compile_rejects_incomplete_or_duplicate_mappings() {
        let (g, _) = two_actor_chain(1, 1);
        let mut partial = Mapping::new();
        partial.place(ActorId(0), 1, 1.0);
        assert!(matches!(
            compile(&g, &partial, &MapperOptions::default()),
            Err(MapperError::UnplacedActor { actor: ActorId(1) })
        ));

        let mut duplicated = Mapping::new();
        duplicated.place(ActorId(0), 1, 1.0);
        duplicated.place(ActorId(1), 1, 1.0);
        duplicated.place(ActorId(0), 2, 1.0);
        assert!(matches!(
            compile(&g, &duplicated, &MapperOptions::default()),
            Err(MapperError::DuplicatePlacement { actor: ActorId(0) })
        ));
    }

    #[test]
    fn dividers_balance_work_across_the_hyperperiod() {
        let (g, m) = two_actor_chain(2, 3);
        let compiled = compile(&g, &m, &MapperOptions::default()).unwrap();
        // reps = (3, 2); slots = cycles + 3 → (7, 9); work = (21, 18);
        // hyperperiod = lcm = 126; dividers = (6, 7).
        assert_eq!(compiled.hyperperiod(), 126);
        let plans = compiled.plans();
        assert_eq!(plans[0].firings_per_iteration, 3);
        assert_eq!(plans[1].firings_per_iteration, 2);
        assert_eq!(plans[0].sim_cycles_per_firing, 7);
        assert_eq!(plans[1].sim_cycles_per_firing, 9);
        assert_eq!(plans[0].clock_divider, 6);
        assert_eq!(plans[1].clock_divider, 7);
        assert!(plans.iter().all(|p| p.rate_matcher.is_none()));
        for (plan, d) in plans.iter().zip([6u64, 7]) {
            assert_eq!(
                compiled.hyperperiod() / d,
                plan.firings_per_iteration * plan.sim_cycles_per_firing,
                "each column executes exactly its work per hyperperiod"
            );
        }
    }

    #[test]
    fn execution_matches_repetition_vector_exactly() {
        let (g, m) = two_actor_chain(2, 3);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        let mut compiled = compile(&g, &m, &options).unwrap();
        let report = compiled.execute().unwrap();
        assert_eq!(report.firing_counts, vec![15, 10]);
        assert!(report.firings_exact());
        // Each firing moves `produce` words across the cross-column edge:
        // 15 firings × 2 words.
        assert_eq!(report.simulated_horizontal_words, 30);
        assert_eq!(report.predicted_horizontal_words, 30);
        assert_eq!(report.horizontal_traffic_error(), 0.0);
        // Column cycles are exactly firings × slots (halt not billed).
        assert_eq!(report.column_cycles, vec![15 * 7, 10 * 9]);
        // The drain tail is at most one hyperperiod past the iterations.
        assert!(report.reference_ticks <= (options.iterations + 1) * report.hyperperiod);
    }

    #[test]
    fn intra_column_distribution_happens_once_per_firing() {
        let (g, m) = two_actor_chain(1, 1);
        let options = MapperOptions {
            iterations: 3,
            ..MapperOptions::default()
        };
        let mut compiled = compile(&g, &m, &options).unwrap();
        let report = compiled.execute().unwrap();
        // Column 0 has 4 sim tiles, column 1 has 2: both distribute each
        // produced token once per firing over the vertical bus.
        assert_eq!(report.intra_column_words, vec![3, 3]);
    }

    #[test]
    fn oversized_dividers_fall_back_to_rate_matching() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("fast", 1, 1);
        let b = g.add_actor("slow", 97, 1);
        g.add_edge(a, b, 50, 1, 0).unwrap();
        let mut m = Mapping::new();
        m.place(a, 1, 1.0);
        m.place(b, 1, 1.0);
        let options = MapperOptions {
            max_divider: 8,
            iterations: 1,
            ..MapperOptions::default()
        };
        let compiled = compile(&g, &m, &options).unwrap();
        // reps = (1, 50): the fast actor's ideal divider exceeds 8.
        let throttled = compiled
            .plans()
            .iter()
            .filter(|p| p.rate_matcher.is_some())
            .count();
        assert!(throttled >= 1, "at least one column must fall back to ZORM");
        assert!(compiled.plans().iter().all(|p| p.clock_divider <= 8));
        // The chip still drains.
        let mut compiled = compiled;
        let report = compiled.execute().unwrap();
        assert_eq!(report.firing_counts, report.expected_firings);
    }

    #[test]
    fn compute_costs_scale_into_the_dou_budget() {
        let (g, m, rate) = wifi_reference();
        let options = MapperOptions {
            iteration_rate_hz: rate,
            ..MapperOptions::default()
        };
        let compiled = compile(&g, &m, &options).unwrap();
        for plan in compiled.plans() {
            assert!(plan.sim_cycles_per_firing <= synchro_dou::MAX_STATES as u64);
        }
        // Scaling preserves the cost ordering: ACS remains the slowest.
        let acs = &compiled.plans()[2];
        assert!(compiled
            .plans()
            .iter()
            .all(|p| p.sim_cycles_per_firing <= acs.sim_cycles_per_firing));
        // And the voltage annotation follows the required frequency.
        assert!(acs.voltage > compiled.plans()[1].voltage);
    }

    #[test]
    fn execute_reports_deltas_not_lifetime_counters() {
        let (g, m) = two_actor_chain(1, 1);
        let options = MapperOptions {
            iterations: 2,
            ..MapperOptions::default()
        };
        let mut compiled = compile(&g, &m, &options).unwrap();
        // Traffic staged by hand before execution must not pollute the
        // report's simulated word count.
        compiled.chip_mut().horizontal_transfer(0, &[1]).unwrap();
        let report = compiled.execute().unwrap();
        assert_eq!(report.simulated_horizontal_words, 2);
        assert!(report.firings_exact());
        assert_eq!(report.horizontal_traffic_error(), 0.0);
        // A second execute covers an already-halted chip: an honest empty
        // (and therefore inexact) run, not a replay of stale counters.
        let rerun = compiled.execute().unwrap();
        assert_eq!(rerun.firing_counts, vec![0, 0]);
        assert!(!rerun.firings_exact());
        assert_eq!(rerun.simulated_horizontal_words, 0);
    }

    #[test]
    fn cross_validation_rejects_mismatched_block_counts() {
        use crate::pipeline::{evaluate_application, EvaluationOptions};
        use synchro_apps::{Application, ApplicationProfile};

        // A 4-column 802.11a chip validated against the 5-block DDC report
        // must flag the structural mismatch instead of truncating.
        let (graph, mapping, rate) = wifi_reference();
        let options = MapperOptions {
            iterations: 1,
            iteration_rate_hz: rate,
            ..MapperOptions::default()
        };
        let mut compiled = compile(&graph, &mapping, &options).unwrap();
        let execution = compiled.execute().unwrap();
        let wrong_report = evaluate_application(
            &ApplicationProfile::of(Application::Ddc),
            &Technology::isca2004(),
            &EvaluationOptions::default(),
        );
        let validation = cross_validate(&compiled, &execution, &wrong_report);
        assert!(!validation.blocks_match);
        assert!(!validation.agrees_within(1.0));
    }

    #[test]
    fn compile_rejects_invalid_placements_loudly() {
        let (g, _) = two_actor_chain(1, 1);
        let mut m = Mapping::new();
        m.place(ActorId(0), 0, 1.0); // zero tiles
        m.place(ActorId(1), 9, 1.0); // parallelism cap is 4
        match compile(&g, &m, &MapperOptions::default()) {
            Err(MapperError::InvalidMapping { violations }) => {
                assert_eq!(violations.len(), 2);
                assert!(matches!(violations[0], MappingViolation::ZeroTiles { .. }));
                assert!(matches!(
                    violations[1],
                    MappingViolation::OverParallel { tiles: 9, .. }
                ));
            }
            other => panic!("expected InvalidMapping, got {other:?}"),
        }
    }

    #[test]
    fn explored_solutions_compile_and_cross_validate() {
        use synchro_explore::{explore, ExplorerConfig};

        let (graph, _, rate) = ddc_reference();
        let config = ExplorerConfig::new(rate, 50).single_actor_columns();
        let exploration = explore(&graph, &config).unwrap();
        let winner = exploration
            .solution_for_tiles(50)
            .expect("reference budget reachable");
        let options = MapperOptions {
            iterations: 2,
            iteration_rate_hz: rate,
            ..MapperOptions::default()
        };
        let mut compiled = compile_explored(&graph, winner, &options).unwrap();
        let execution = compiled.execute().unwrap();
        assert!(execution.firings_exact());

        use crate::pipeline::{try_evaluate_application, EvaluationOptions};
        use synchro_apps::{Application, ApplicationProfile};
        let report = try_evaluate_application(
            &ApplicationProfile::of(Application::Ddc),
            &Technology::isca2004(),
            &EvaluationOptions::default(),
        )
        .unwrap();
        let validation = cross_validate(&compiled, &execution, &report);
        assert!(validation.agrees_within(1e-9));
    }

    #[test]
    fn fused_explorer_solutions_still_execute_exactly() {
        use synchro_explore::{explore, ExplorerConfig};

        // Grouping enabled: the DDC winner fuses mixer + integrator.
        let (graph, _, rate) = ddc_reference();
        let exploration = explore(&graph, &ExplorerConfig::new(rate, 50)).unwrap();
        assert!(!exploration.best.is_single_actor_columns());
        let options = MapperOptions {
            iterations: 2,
            iteration_rate_hz: rate,
            ..MapperOptions::default()
        };
        let mut compiled = compile_explored(&graph, &exploration.best, &options).unwrap();
        let execution = compiled.execute().unwrap();
        assert!(execution.firings_exact());
        assert_eq!(execution.horizontal_traffic_error(), 0.0);
    }

    #[test]
    fn compiled_chips_carry_a_conflict_free_route_schedule() {
        let (g, m) = two_actor_chain(2, 3);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        let mut compiled = compile(&g, &m, &options).unwrap();
        let route = compiled.route().clone();
        route.validate().unwrap();
        // reps = (3, 2): the cross edge moves 6 words per iteration.
        assert_eq!(route.occupied_slots(), 6);
        assert_eq!(route.words_for_edge(0), 6);
        // Default bus: 1 split at 400 MHz over a 1 MHz iteration rate.
        assert_eq!(route.spec().period(), 400);
        assert_eq!(route.spec().splits(), 1);

        let report = compiled.execute().unwrap();
        assert_eq!(report.occupied_bus_slots, 5 * 6);
        assert_eq!(report.scheduled_bus_slots, 5 * 400);
        assert_eq!(report.simulated_horizontal_words, 30);
    }

    #[test]
    fn narrow_bus_rejects_unschedulable_mappings() {
        // The DDC reference moves 10 words per iteration at 16 M
        // iterations/s; a 100 MHz single-split bus offers only
        // floor(100/16) = 6 TDM slots per iteration, so the mapping must
        // be rejected as communication-infeasible — while the same
        // mapping at the reference 400 MHz bus schedules fine.
        let (g, m, rate) = ddc_reference();
        let narrow = MapperOptions {
            iteration_rate_hz: rate,
            bus_frequency_hz: 100e6,
            ..MapperOptions::default()
        };
        match compile(&g, &m, &narrow) {
            Err(MapperError::Route(RouteError::PeriodOverflow { demand, capacity })) => {
                assert_eq!(demand, 10);
                assert_eq!(capacity, 6);
            }
            other => panic!("expected a period overflow, got {other:?}"),
        }
        let reference = MapperOptions {
            iteration_rate_hz: rate,
            ..MapperOptions::default()
        };
        let compiled = compile(&g, &m, &reference).unwrap();
        compiled.route().validate().unwrap();
        assert_eq!(compiled.route().occupied_slots(), 10);
        // A second split halves the pressure: the narrow clock schedules.
        let widened = MapperOptions {
            iteration_rate_hz: rate,
            bus_frequency_hz: 100e6,
            bus_splits: 2,
            ..MapperOptions::default()
        };
        let compiled = compile(&g, &m, &widened).unwrap();
        compiled.route().validate().unwrap();
    }

    /// Execute the same `(graph, mapping, options)` on both tiers and
    /// require bit-identical reports and chip statistics.
    fn assert_tiers_agree(graph: &SdfGraph, mapping: &Mapping, options: &MapperOptions) {
        let interpreted_options = MapperOptions {
            tier: ExecutionTier::Interpreted,
            ..options.clone()
        };
        let fast_options = MapperOptions {
            tier: ExecutionTier::Fast,
            ..options.clone()
        };
        let mut interpreted = compile(graph, mapping, &interpreted_options).unwrap();
        let mut fast = compile(graph, mapping, &fast_options).unwrap();
        let a = interpreted.execute().unwrap();
        let b = fast.execute().unwrap();
        assert_eq!(a, b, "execution reports diverge");
        assert_eq!(interpreted.chip().stats(), fast.chip().stats());
        assert_eq!(
            interpreted.chip().column_stats(),
            fast.chip().column_stats()
        );
        assert_eq!(
            interpreted.chip().horizontal_stats(),
            fast.chip().horizontal_stats()
        );
        for i in 0..interpreted.chip().columns() {
            assert_eq!(
                interpreted.chip().column(i).unwrap().bus_stats(),
                fast.chip().column(i).unwrap().bus_stats(),
                "column {i} vertical bus diverges"
            );
        }
        // A second execute covers an already-halted chip on both tiers.
        let a2 = interpreted.execute().unwrap();
        let b2 = fast.execute().unwrap();
        assert_eq!(a2, b2, "rerun reports diverge");
    }

    #[test]
    fn fast_tier_matches_the_interpreted_tier_bit_for_bit() {
        let (g, m) = two_actor_chain(2, 3);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        assert_tiers_agree(&g, &m, &options);
    }

    #[test]
    fn fast_tier_matches_on_zorm_fallback_chips() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("fast", 1, 1);
        let b = g.add_actor("slow", 97, 1);
        g.add_edge(a, b, 50, 1, 0).unwrap();
        let mut m = Mapping::new();
        m.place(a, 1, 1.0);
        m.place(b, 1, 1.0);
        let options = MapperOptions {
            max_divider: 8,
            iterations: 2,
            ..MapperOptions::default()
        };
        assert_tiers_agree(&g, &m, &options);
    }

    #[test]
    fn fast_tier_matches_on_the_reference_applications() {
        for (g, m, rate) in [ddc_reference(), wifi_reference()] {
            let options = MapperOptions {
                iterations: 3,
                iteration_rate_hz: rate,
                ..MapperOptions::default()
            };
            assert_tiers_agree(&g, &m, &options);
        }
    }

    #[test]
    fn segmented_bus_options_gate_reachability() {
        let (g, m) = two_actor_chain(1, 1);
        // Split 0 with the switch between columns 0 and 1 open: the cross
        // edge cannot be scheduled.
        let mut open = SegmentConfig::all_closed(1, 2);
        open.set(0, 0, false);
        let severed = MapperOptions {
            bus_segments: Some(open),
            ..MapperOptions::default()
        };
        assert!(matches!(
            compile(&g, &m, &severed),
            Err(MapperError::Route(RouteError::Unreachable { .. }))
        ));
        // The same topology with the switch closed schedules fine.
        let connected = MapperOptions {
            bus_segments: Some(SegmentConfig::all_closed(1, 2)),
            ..MapperOptions::default()
        };
        let compiled = compile(&g, &m, &connected).unwrap();
        compiled.route().validate().unwrap();
    }

    #[test]
    fn compile_rejects_multi_chip_mappings() {
        let (g, _) = two_actor_chain(1, 1);
        let mut m = Mapping::new();
        m.place(ActorId(0), 1, 1.0);
        m.place_on_chip(1, ActorId(1), 1, 1.0);
        match compile(&g, &m, &MapperOptions::default()) {
            Err(MapperError::InvalidMapping { violations }) => {
                assert!(violations
                    .iter()
                    .any(|v| matches!(v, MappingViolation::ChipOutOfRange { chip: 1, .. })));
            }
            other => panic!("expected InvalidMapping, got {other:?}"),
        }
    }

    #[test]
    fn board_of_one_chip_matches_the_legacy_compile_path() {
        let (g, m) = two_actor_chain(2, 3);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        let mut legacy = compile(&g, &m, &options).unwrap();
        let mut board = compile_board(&g, &m, &options, &BoardConfig::default()).unwrap();
        assert_eq!(board.chips(), 1);
        assert_eq!(board.bridge_words_per_iteration(), 0);

        let single = legacy.execute().unwrap();
        let report = board.execute().unwrap();
        assert_eq!(report.chips.len(), 1);
        assert_eq!(report.chips[0], single, "per-chip report diverges");
        assert_eq!(report.reference_ticks, single.reference_ticks);
        assert_eq!(report.bridge_words, 0);
        assert_eq!(report.scheduled_bridge_slots, 0);
        assert_eq!(
            legacy.chip().stats(),
            board.board().chip(0).unwrap().stats()
        );
    }

    #[test]
    fn board_compile_splits_a_chain_across_two_chips() {
        let (g, _) = two_actor_chain(2, 3);
        let mut m = Mapping::new();
        m.place_on_chip(0, ActorId(0), 4, 1.0);
        m.place_on_chip(1, ActorId(1), 2, 1.0);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        let mut board = compile_board(&g, &m, &options, &BoardConfig::default()).unwrap();
        assert_eq!(board.chips(), 2);
        // The whole cross edge now crosses the chip boundary: 3 firings ×
        // 2 words per iteration over the bridge, nothing intra-chip.
        assert_eq!(board.bridge_words_per_iteration(), 6);
        assert!(board.chip_cross_edges(0).is_empty());
        assert!(board.chip_cross_edges(1).is_empty());
        assert_eq!(board.route().bridge().words(), 6);

        let report = board.execute().unwrap();
        assert!(report.firings_exact());
        assert_eq!(report.chips[0].firing_counts, vec![15]);
        assert_eq!(report.chips[1].firing_counts, vec![10]);
        assert_eq!(report.bridge_words, 5 * 6);
        assert_eq!(report.predicted_bridge_words, 5 * 6);
        assert_eq!(report.bridge_traffic_error(), 0.0);
        assert_eq!(report.occupied_bridge_slots, 5 * 6);
        assert!(report.scheduled_bridge_slots >= report.occupied_bridge_slots);
        assert_eq!(report.lane_words.iter().sum::<u64>(), 30);
        // Both chips share the global hyperperiod and one reference clock.
        assert_eq!(report.chips[0].hyperperiod, report.chips[1].hyperperiod);
    }

    /// Execute the same board mapping on both tiers and require
    /// bit-identical reports and statistics, chip by chip.
    fn assert_board_tiers_agree(graph: &SdfGraph, mapping: &Mapping, options: &MapperOptions) {
        let board_config = BoardConfig::default();
        let interpreted_options = MapperOptions {
            tier: ExecutionTier::Interpreted,
            ..options.clone()
        };
        let fast_options = MapperOptions {
            tier: ExecutionTier::Fast,
            ..options.clone()
        };
        let mut interpreted =
            compile_board(graph, mapping, &interpreted_options, &board_config).unwrap();
        let mut fast = compile_board(graph, mapping, &fast_options, &board_config).unwrap();
        let a = interpreted.execute().unwrap();
        let b = fast.execute().unwrap();
        assert_eq!(a, b, "board execution reports diverge");
        assert_eq!(
            interpreted.board().bridge_stats(),
            fast.board().bridge_stats()
        );
        assert_eq!(interpreted.board().lane_words(), fast.board().lane_words());
        for c in 0..interpreted.chips() {
            assert_eq!(
                interpreted.board().chip(c).unwrap().stats(),
                fast.board().chip(c).unwrap().stats(),
                "chip {c} stats diverge"
            );
            assert_eq!(
                interpreted.board().chip(c).unwrap().column_stats(),
                fast.board().chip(c).unwrap().column_stats(),
                "chip {c} column stats diverge"
            );
        }
        // A second execute covers an already-halted board on both tiers.
        let a2 = interpreted.execute().unwrap();
        let b2 = fast.execute().unwrap();
        assert_eq!(a2, b2, "board rerun reports diverge");
    }

    #[test]
    fn board_tiers_agree_on_a_two_chip_split() {
        let (g, _) = two_actor_chain(2, 3);
        let mut m = Mapping::new();
        m.place_on_chip(0, ActorId(0), 4, 1.0);
        m.place_on_chip(1, ActorId(1), 2, 1.0);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        assert_board_tiers_agree(&g, &m, &options);
    }

    #[test]
    fn narrow_bridges_reject_cross_chip_traffic() {
        let (g, _) = two_actor_chain(2, 3);
        let mut m = Mapping::new();
        m.place_on_chip(0, ActorId(0), 4, 1.0);
        m.place_on_chip(1, ActorId(1), 2, 1.0);
        // 6 words per iteration over the bridge; a 4 MHz bridge at a 1 MHz
        // iteration rate offers only 4 cycles of one 1-word lane.
        let options = MapperOptions::default();
        let narrow = BoardConfig {
            bridge_frequency_hz: 4e6,
            ..BoardConfig::default()
        };
        match compile_board(&g, &m, &options, &narrow) {
            Err(MapperError::Route(RouteError::BridgeOversubscribed {
                from_chip,
                to_chip,
                demand,
                capacity,
            })) => {
                assert_eq!((from_chip, to_chip), (0, 1));
                assert_eq!(demand, 6);
                assert_eq!(capacity, 4);
            }
            other => panic!("expected a bridge oversubscription, got {other:?}"),
        }
    }

    #[test]
    fn fault_spec_rejects_placements_on_dead_hardware() {
        let (g, m) = two_actor_chain(2, 3);
        let mut faults = FaultSpec::none();
        faults.fail_column(0, 1);
        let options = MapperOptions {
            faults,
            ..MapperOptions::default()
        };
        match compile(&g, &m, &options) {
            Err(e @ MapperError::Fault { .. }) => {
                assert!(e.is_fault());
                assert!(!e.is_resource_exhaustion());
                let MapperError::Fault { violations } = &e else {
                    unreachable!()
                };
                assert!(matches!(
                    violations[..],
                    [MappingViolation::FailedColumn {
                        chip: 0,
                        column: 1,
                        ..
                    }]
                ));
                let text = e.to_string();
                assert!(text.contains("failed hardware"), "{text}");
                assert!(text.contains("column 1"), "{text}");
            }
            other => panic!("expected a fault rejection, got {other:?}"),
        }
        // A failed tile under a placement is rejected the same way.
        let mut faults = FaultSpec::none();
        faults.fail_tile(0, 0, 2);
        let options = MapperOptions {
            faults,
            ..MapperOptions::default()
        };
        assert!(matches!(
            compile(&g, &m, &options),
            Err(MapperError::Fault { .. })
        ));
        // Faults on hardware the mapping never touches compile fine.
        let mut faults = FaultSpec::none();
        faults.fail_column(0, 7).fail_tile(0, 1, 3);
        let options = MapperOptions {
            faults,
            ..MapperOptions::default()
        };
        compile(&g, &m, &options).unwrap();
    }

    #[test]
    fn lost_bus_splits_shrink_or_reject_the_route() {
        let (g, m) = two_actor_chain(2, 3);
        // Losing the only split leaves the chip unroutable: fault class.
        let mut faults = FaultSpec::none();
        faults.lose_splits(0, 1);
        let options = MapperOptions {
            faults,
            ..MapperOptions::default()
        };
        match compile(&g, &m, &options) {
            Err(MapperError::Fault { violations }) => {
                assert!(matches!(
                    violations[..],
                    [MappingViolation::BusSplitsExhausted {
                        chip: 0,
                        splits: 1,
                        lost: 1,
                    }]
                ));
            }
            other => panic!("expected a split exhaustion fault, got {other:?}"),
        }
        // With two splits configured, losing one routes on the survivor.
        let mut faults = FaultSpec::none();
        faults.lose_splits(0, 1);
        let options = MapperOptions {
            bus_splits: 2,
            faults,
            ..MapperOptions::default()
        };
        let compiled = compile(&g, &m, &options).unwrap();
        assert_eq!(compiled.route().spec().splits(), 1);
    }

    #[test]
    fn severed_bridge_directions_are_fault_rejections() {
        let (g, _) = two_actor_chain(2, 3);
        let mut m = Mapping::new();
        m.place_on_chip(0, ActorId(0), 4, 1.0);
        m.place_on_chip(1, ActorId(1), 2, 1.0);
        let mut faults = FaultSpec::none();
        faults.fail_lane(0, 1);
        let options = MapperOptions {
            faults,
            ..MapperOptions::default()
        };
        match compile_board(&g, &m, &options, &BoardConfig::default()) {
            Err(MapperError::Fault { violations }) => {
                assert!(matches!(
                    violations[..],
                    [MappingViolation::BridgeDown {
                        from_chip: 0,
                        to_chip: 1,
                    }]
                ));
            }
            other => panic!("expected a bridge-down fault, got {other:?}"),
        }
        // Degrading the lane to zero width severs it the same way; a
        // nonzero degradation still routes (capacity permitting).
        let mut faults = FaultSpec::none();
        faults.degrade_lane(0, 1, 0);
        let options = MapperOptions {
            faults,
            ..MapperOptions::default()
        };
        assert!(matches!(
            compile_board(&g, &m, &options, &BoardConfig::default()),
            Err(MapperError::Fault { .. })
        ));
        // Killing the unused reverse direction is harmless.
        let mut faults = FaultSpec::none();
        faults.fail_lane(1, 0);
        let options = MapperOptions {
            faults,
            ..MapperOptions::default()
        };
        compile_board(&g, &m, &options, &BoardConfig::default()).unwrap();
    }

    #[test]
    fn error_classification_covers_every_variant() {
        use synchro_sdf::SdfError;

        let exhaustion = [
            MapperError::Route(RouteError::PeriodOverflow {
                demand: 10,
                capacity: 6,
            }),
            MapperError::Explorer(ExplorerError::NoSolutions),
            MapperError::Incomplete { ticks: 7 },
        ];
        for e in &exhaustion {
            assert!(e.is_resource_exhaustion(), "{e}");
            assert!(!e.is_fault(), "{e}");
        }
        let faults = [
            MapperError::Fault {
                violations: vec![MappingViolation::FailedColumn {
                    actor: ActorId(0),
                    chip: 0,
                    column: 1,
                }],
            },
            MapperError::SimFault(SimFault::Stalled {
                reference_cycles: 252,
                window: 126,
            }),
        ];
        for e in &faults {
            assert!(e.is_fault(), "{e}");
            assert!(!e.is_resource_exhaustion(), "{e}");
        }
        let neither = [
            MapperError::Sdf(SdfError::Empty),
            MapperError::Dou(synchro_dou::DouError::EmptyPattern),
            MapperError::Column(ColumnError::Bus(synchro_bus::BusError::IndexOutOfRange {
                what: "split",
                index: 9,
                limit: 1,
            })),
            MapperError::UnplacedActor { actor: ActorId(0) },
            MapperError::DuplicatePlacement { actor: ActorId(0) },
            MapperError::InvalidMapping { violations: vec![] },
            MapperError::Explorer(ExplorerError::Sdf(SdfError::Empty)),
            MapperError::Route(RouteError::Unreachable { from: 0, to: 1 }),
            MapperError::Overflow { what: "test" },
            MapperError::FastTier(FastTierError::NonUniform { firing: 2 }),
        ];
        for e in &neither {
            assert!(!e.is_resource_exhaustion(), "{e}");
            assert!(!e.is_fault(), "{e}");
        }
    }

    #[test]
    fn empty_fault_plans_match_plain_execution_bit_for_bit() {
        for tier in [ExecutionTier::Interpreted, ExecutionTier::Fast] {
            let (g, m) = two_actor_chain(2, 3);
            let options = MapperOptions {
                iterations: 3,
                tier,
                ..MapperOptions::default()
            };
            let mut plain = compile(&g, &m, &options).unwrap();
            let mut faulted = compile(&g, &m, &options).unwrap();
            let report = plain.execute().unwrap();
            let run = faulted.execute_faulted(&FaultPlan::none()).unwrap();
            assert_eq!(run.fault, None);
            assert_eq!(run.report, report);
            assert_eq!(plain.chip().stats(), faulted.chip().stats());
        }
    }

    #[test]
    fn faults_scheduled_past_the_halt_never_fire() {
        for tier in [ExecutionTier::Interpreted, ExecutionTier::Fast] {
            let (g, m) = two_actor_chain(2, 3);
            let options = MapperOptions {
                iterations: 3,
                tier,
                ..MapperOptions::default()
            };
            let mut plain = compile(&g, &m, &options).unwrap();
            let mut faulted = compile(&g, &m, &options).unwrap();
            let report = plain.execute().unwrap();
            let mut plan = FaultPlan::none();
            plan.kill_column(0, 0, 1_000_000);
            let run = faulted.execute_faulted(&plan).unwrap();
            assert_eq!(run.fault, None, "the chip halts before the event");
            assert_eq!(run.report, report);
            assert_eq!(plain.chip().stats(), faulted.chip().stats());
        }
    }

    #[test]
    fn mid_run_column_kills_stall_identically_on_every_tier() {
        let mut outcomes = Vec::new();
        for tier in [ExecutionTier::Interpreted, ExecutionTier::Fast] {
            let (g, m) = two_actor_chain(2, 3);
            let options = MapperOptions {
                iterations: 5,
                tier,
                ..MapperOptions::default()
            };
            let mut compiled = compile(&g, &m, &options).unwrap();
            let mut plan = FaultPlan::none();
            plan.kill_column(0, 1, 200);
            let run = compiled.execute_faulted(&plan).unwrap();
            let fault = run.fault.expect("a killed column starves the chip");
            assert!(matches!(fault, SimFault::Stalled { .. }));
            // The surviving column finished its own work before starving.
            assert_eq!(run.report.firing_counts[0], 15);
            outcomes.push((run, compiled.chip().stats()));
        }
        // And the naive tick-by-tick driver agrees with both.
        let (g, m) = two_actor_chain(2, 3);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        let mut compiled = compile(&g, &m, &options).unwrap();
        let mut plan = FaultPlan::none();
        plan.kill_column(0, 1, 200);
        let run = compiled.execute_faulted_ticked(&plan).unwrap();
        outcomes.push((run, compiled.chip().stats()));
        let (first_run, first_stats) = &outcomes[0];
        for (run, stats) in &outcomes[1..] {
            assert_eq!(run, first_run, "faulted runs diverge across tiers");
            assert_eq!(stats, first_stats, "chip stats diverge across tiers");
        }
    }

    #[test]
    fn wedged_chips_return_structured_stalls_from_normal_execution() {
        let (g, m) = two_actor_chain(2, 3);
        let options = MapperOptions {
            iterations: 2,
            ..MapperOptions::default()
        };
        let mut compiled = compile(&g, &m, &options).unwrap();
        // Kill a column by hand before the run: the drain watchdog must
        // report a structured stall instead of spinning to Incomplete.
        compiled.chip_mut().fail_column(0, 0);
        match compiled.execute() {
            Err(e @ MapperError::SimFault(SimFault::Stalled { .. })) => {
                assert!(e.is_fault());
            }
            other => panic!("expected a structured stall, got {other:?}"),
        }
    }

    #[test]
    fn board_lane_kills_drop_traffic_but_complete() {
        let (g, _) = two_actor_chain(2, 3);
        let mut m = Mapping::new();
        m.place_on_chip(0, ActorId(0), 4, 1.0);
        m.place_on_chip(1, ActorId(1), 2, 1.0);
        let options = MapperOptions {
            iterations: 5,
            ..MapperOptions::default()
        };
        let mut plain = compile_board(&g, &m, &options, &BoardConfig::default()).unwrap();
        let healthy = plain.execute().unwrap();
        assert_eq!(healthy.bridge_words, 30);

        let mut board = compile_board(&g, &m, &options, &BoardConfig::default()).unwrap();
        let mut plan = FaultPlan::none();
        plan.kill_lane(0, 200);
        let run = board.execute_faulted(&plan).unwrap();
        // Receives never block, so a dead lane starves nobody: the run
        // completes with the post-fault slots dropped undelivered.
        assert_eq!(run.fault, None);
        assert!(run.report.firings_exact());
        assert!(
            run.report.bridge_words < healthy.bridge_words,
            "post-fault slots must be dropped ({} words)",
            run.report.bridge_words
        );
        assert_eq!(
            run.report.scheduled_bridge_slots, healthy.scheduled_bridge_slots,
            "dead lanes drop deliveries, not reservations"
        );
    }

    #[test]
    fn board_column_kills_stall_identically_on_both_tiers() {
        let mut runs = Vec::new();
        for tier in [ExecutionTier::Interpreted, ExecutionTier::Fast] {
            let (g, _) = two_actor_chain(2, 3);
            let mut m = Mapping::new();
            m.place_on_chip(0, ActorId(0), 4, 1.0);
            m.place_on_chip(1, ActorId(1), 2, 1.0);
            let options = MapperOptions {
                iterations: 5,
                tier,
                ..MapperOptions::default()
            };
            let mut board = compile_board(&g, &m, &options, &BoardConfig::default()).unwrap();
            let mut plan = FaultPlan::none();
            plan.kill_column(1, 0, 150);
            let run = board.execute_faulted(&plan).unwrap();
            assert!(matches!(run.fault, Some(SimFault::Stalled { .. })));
            // Chip 0's column still finished its own firings.
            assert_eq!(run.report.chips[0].firing_counts, vec![15]);
            runs.push(run);
        }
        assert_eq!(runs[0], runs[1], "board tiers diverge on the fault");
    }

    #[test]
    fn single_column_graph_has_no_horizontal_traffic() {
        let mut g = SdfGraph::new();
        g.add_actor("solo", 3, 4);
        let mut m = Mapping::new();
        m.place(ActorId(0), 4, 1.0);
        let mut compiled = compile(&g, &m, &MapperOptions::default()).unwrap();
        assert!(compiled.cross_edges().is_empty());
        let report = compiled.execute().unwrap();
        assert_eq!(report.simulated_horizontal_words, 0);
        assert_eq!(report.predicted_horizontal_words, 0);
        assert_eq!(report.horizontal_traffic_error(), 0.0);
    }
}
