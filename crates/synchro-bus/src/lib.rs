//! The Synchroscalar segmented bus (Section 2.3 of the paper).
//!
//! Each column owns a 256-bit vertical bus organised as eight separable
//! 32-bit *splits*.  Between each pair of adjacent tiles every split has a
//! *segment switch*; closing all switches turns a split into a broadcast
//! bus, while opening some of them lets disjoint tile groups exchange
//! different words on the same split in the same cycle (mesh-like local
//! bandwidth).  A single horizontal bus connects the columns.
//!
//! The bus itself is passive: the per-column DOU decides, cycle by cycle,
//! which switches are closed and which tile's write buffer drives which
//! split (crate `synchro-dou`).  This crate checks that a requested set of
//! transfers is physically realisable (no two drivers on an electrically
//! connected segment group) and counts traffic for the power model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Errors raised when validating bus activity for one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// A tile or split index was out of range for this bus.
    IndexOutOfRange {
        /// Description of the offending index ("tile" or "split").
        what: &'static str,
        /// The index supplied.
        index: usize,
        /// Number of valid positions.
        limit: usize,
    },
    /// Two transfers drive the same electrically-connected segment group of
    /// the same split in the same cycle.
    DriverConflict {
        /// The split on which the conflict occurs.
        split: usize,
        /// The first driving tile.
        first_driver: usize,
        /// The second driving tile.
        second_driver: usize,
    },
    /// A consumer is not electrically reachable from the producer with the
    /// given segment configuration.
    Unreachable {
        /// The split used for the transfer.
        split: usize,
        /// The producing tile.
        producer: usize,
        /// The unreachable consuming tile.
        consumer: usize,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            BusError::DriverConflict {
                split,
                first_driver,
                second_driver,
            } => write!(
                f,
                "split {split}: tiles {first_driver} and {second_driver} drive the same segment group"
            ),
            BusError::Unreachable {
                split,
                producer,
                consumer,
            } => write!(
                f,
                "split {split}: consumer tile {consumer} is not connected to producer tile {producer}"
            ),
        }
    }
}

impl Error for BusError {}

/// Per-split segment switch configuration for one cycle.
///
/// `closed[s][g]` is true when the switch in gap `g` (between tile `g` and
/// tile `g+1`) of split `s` is closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentConfig {
    closed: Vec<Vec<bool>>,
}

impl SegmentConfig {
    /// All switches closed: every split is a column-wide broadcast bus.
    pub fn all_closed(splits: usize, tiles: usize) -> Self {
        SegmentConfig {
            closed: vec![vec![true; tiles.saturating_sub(1)]; splits],
        }
    }

    /// All switches open: every tile is isolated on every split.
    pub fn all_open(splits: usize, tiles: usize) -> Self {
        SegmentConfig {
            closed: vec![vec![false; tiles.saturating_sub(1)]; splits],
        }
    }

    /// Number of splits configured.
    pub fn splits(&self) -> usize {
        self.closed.len()
    }

    /// Number of tiles this configuration spans.
    pub fn tiles(&self) -> usize {
        self.closed.first().map_or(0, |gaps| gaps.len() + 1)
    }

    /// Open or close the switch in `gap` of `split`.
    ///
    /// # Panics
    ///
    /// Panics if `split` or `gap` is out of range.
    pub fn set(&mut self, split: usize, gap: usize, closed: bool) {
        self.closed[split][gap] = closed;
    }

    /// Is the switch in `gap` of `split` closed?
    pub fn is_closed(&self, split: usize, gap: usize) -> bool {
        self.closed[split][gap]
    }

    /// The set of tiles electrically connected to `tile` on `split`
    /// (including `tile` itself).
    pub fn connected_group(&self, split: usize, tile: usize) -> BTreeSet<usize> {
        let mut group = BTreeSet::new();
        group.insert(tile);
        // Walk down while switches are closed.
        let gaps = &self.closed[split];
        let mut lo = tile;
        while lo > 0 && gaps[lo - 1] {
            lo -= 1;
            group.insert(lo);
        }
        let mut hi = tile;
        while hi < gaps.len() && gaps[hi] {
            hi += 1;
            group.insert(hi);
        }
        group
    }
}

/// One requested word transfer on the column bus in a given cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusOp {
    /// Which 32-bit split carries the word.
    pub split: usize,
    /// The producing tile (drives the split from its write buffer).
    pub producer: usize,
    /// The consuming tiles (latch the split into their read buffers).
    pub consumers: Vec<usize>,
}

/// Traffic counters the power model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusStats {
    /// Cycles on which at least one transfer occurred.
    pub active_cycles: u64,
    /// Total word transfers (one per producer per cycle, regardless of how
    /// many consumers latch it — the wire switches once).
    pub word_transfers: u64,
    /// Total consumer deliveries.
    pub deliveries: u64,
    /// TDM slots (one split of one scheduled bus cycle) the static schedule
    /// reserved, whether or not a word was driven through them.
    pub scheduled_slots: u64,
    /// Reserved slots that actually carried a word.  Together with
    /// [`BusStats::scheduled_slots`] this gives the slot-activity power
    /// model both numerators (occupied slots switch the full split width,
    /// scheduled-but-idle slots only clock the drivers).
    pub occupied_slots: u64,
}

impl BusStats {
    /// Scheduled slots that carried no word — the idle half of the static
    /// TDM schedule (saturating, so hand-accounted stats that never called
    /// a scheduled-slot path do not underflow).
    pub fn idle_slots(&self) -> u64 {
        self.scheduled_slots.saturating_sub(self.occupied_slots)
    }

    /// Accumulate `times` repetitions of `delta` into these counters.
    ///
    /// Every counter is a plain sum over cycles, so replaying a periodic
    /// traffic pattern `times` times is exactly `times × delta` — the
    /// identity the batched simulation tier relies on.
    pub fn add_scaled(&mut self, delta: &BusStats, times: u64) {
        self.active_cycles += delta.active_cycles * times;
        self.word_transfers += delta.word_transfers * times;
        self.deliveries += delta.deliveries * times;
        self.scheduled_slots += delta.scheduled_slots * times;
        self.occupied_slots += delta.occupied_slots * times;
    }

    /// The counter-wise difference `self - earlier` — the traffic that
    /// occurred between two snapshots (execution reporting uses this to
    /// attribute per-window bus activity).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually an earlier
    /// snapshot of the same monotonically growing counters.
    #[must_use]
    pub fn delta(&self, earlier: &BusStats) -> BusStats {
        BusStats {
            active_cycles: self.active_cycles - earlier.active_cycles,
            word_transfers: self.word_transfers - earlier.word_transfers,
            deliveries: self.deliveries - earlier.deliveries,
            scheduled_slots: self.scheduled_slots - earlier.scheduled_slots,
            occupied_slots: self.occupied_slots - earlier.occupied_slots,
        }
    }
}

/// A column's segmented vertical bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedBus {
    splits: usize,
    tiles: usize,
    stats: BusStats,
}

impl SegmentedBus {
    /// The paper's configuration: 8 splits of 32 bits spanning 4 tiles.
    pub fn isca2004() -> Self {
        Self::new(8, 4)
    }

    /// A bus with `splits` 32-bit splits spanning `tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `splits` or `tiles` is zero.
    pub fn new(splits: usize, tiles: usize) -> Self {
        assert!(splits > 0, "a bus needs at least one split");
        assert!(tiles > 0, "a bus needs at least one tile");
        SegmentedBus {
            splits,
            tiles,
            stats: BusStats::default(),
        }
    }

    /// Number of 32-bit splits.
    pub fn splits(&self) -> usize {
        self.splits
    }

    /// Number of tiles spanned.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Accumulate `times` repetitions of a per-period traffic `delta`
    /// without replaying the cycles (see [`BusStats::add_scaled`]).  The
    /// batched simulation tier uses this to account a steady-state firing
    /// pattern measured once by the interpreter.
    pub fn accumulate(&mut self, delta: &BusStats, times: u64) {
        self.stats.add_scaled(delta, times);
    }

    /// Validate and account one cycle of transfers under a segment
    /// configuration.  On success returns, for each op, the set of
    /// consumers that latched the producer's word.
    ///
    /// # Errors
    ///
    /// Returns a [`BusError`] when indices are out of range, two producers
    /// drive the same connected segment group of one split, or a consumer
    /// is not reachable from its producer.
    pub fn cycle(
        &mut self,
        config: &SegmentConfig,
        ops: &[BusOp],
    ) -> Result<Vec<Vec<usize>>, BusError> {
        // Every invoked cycle is a scheduled one: the DOU reserved all
        // splits for this bus cycle even when none carries a word.  Idle
        // cycles take this allocation-free early exit — they sit on the
        // simulator's per-column-cycle hot path.
        self.stats.scheduled_slots += self.splits as u64;
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        // Per split, remember which (producer, group) pairs already drive.
        let mut drivers: Vec<Vec<(usize, BTreeSet<usize>)>> = vec![Vec::new(); self.splits];
        let mut delivered = Vec::with_capacity(ops.len());

        for op in ops {
            if op.split >= self.splits {
                return Err(BusError::IndexOutOfRange {
                    what: "split",
                    index: op.split,
                    limit: self.splits,
                });
            }
            if op.producer >= self.tiles {
                return Err(BusError::IndexOutOfRange {
                    what: "tile",
                    index: op.producer,
                    limit: self.tiles,
                });
            }
            for &c in &op.consumers {
                if c >= self.tiles {
                    return Err(BusError::IndexOutOfRange {
                        what: "tile",
                        index: c,
                        limit: self.tiles,
                    });
                }
            }
            let group = config.connected_group(op.split, op.producer);
            for (other, other_group) in &drivers[op.split] {
                if !group.is_disjoint(other_group) {
                    return Err(BusError::DriverConflict {
                        split: op.split,
                        first_driver: *other,
                        second_driver: op.producer,
                    });
                }
            }
            for &c in &op.consumers {
                if !group.contains(&c) {
                    return Err(BusError::Unreachable {
                        split: op.split,
                        producer: op.producer,
                        consumer: c,
                    });
                }
            }
            drivers[op.split].push((op.producer, group));
            delivered.push(op.consumers.clone());
        }

        self.stats.occupied_slots += ops.len() as u64;
        self.stats.active_cycles += 1;
        self.stats.word_transfers += ops.len() as u64;
        self.stats.deliveries += ops.iter().map(|o| o.consumers.len() as u64).sum::<u64>();
        Ok(delivered)
    }
}

/// The single horizontal bus connecting the columns: one transfer per cycle,
/// any column to any set of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HorizontalBus {
    columns: usize,
    stats: BusStats,
}

impl HorizontalBus {
    /// A horizontal bus spanning `columns` columns.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero.
    pub fn new(columns: usize) -> Self {
        assert!(columns > 0, "a horizontal bus needs at least one column");
        HorizontalBus {
            columns,
            stats: BusStats::default(),
        }
    }

    /// Number of columns spanned.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Change the number of columns the bus spans while preserving the
    /// accumulated traffic statistics (used when columns are added to a
    /// chip after transfers have already been accounted).
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero.
    pub fn resize(&mut self, columns: usize) {
        assert!(columns > 0, "a horizontal bus needs at least one column");
        self.columns = columns;
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Account one inter-column transfer.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::IndexOutOfRange`] if a column index is invalid.
    pub fn transfer(&mut self, from: usize, to: &[usize]) -> Result<(), BusError> {
        self.transfer_words(from, to, 1)
    }

    /// Account `words` back-to-back transfers from `from` to `to` in one
    /// call (the bus carries one word per cycle, so this stands for
    /// `words` bus cycles).  Statistics-equivalent to calling
    /// [`HorizontalBus::transfer`] `words` times, without the loop.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::IndexOutOfRange`] if a column index is invalid.
    pub fn transfer_words(
        &mut self,
        from: usize,
        to: &[usize],
        words: u64,
    ) -> Result<(), BusError> {
        if from >= self.columns {
            return Err(BusError::IndexOutOfRange {
                what: "column",
                index: from,
                limit: self.columns,
            });
        }
        for &c in to {
            if c >= self.columns {
                return Err(BusError::IndexOutOfRange {
                    what: "column",
                    index: c,
                    limit: self.columns,
                });
            }
        }
        self.stats.active_cycles += words;
        self.stats.word_transfers += words;
        self.stats.occupied_slots += words;
        self.stats.deliveries += (to.len() as u64) * words;
        Ok(())
    }

    /// Account `slots` statically scheduled TDM slots (whether occupied or
    /// not).  A TDM-driven chip calls this once per completed schedule
    /// period with `period × splits`; the occupied half is accumulated by
    /// the individual transfers, so `stats().idle_slots()` is the
    /// scheduled-but-idle remainder the power calibration needs.
    pub fn account_scheduled_slots(&mut self, slots: u64) {
        self.stats.scheduled_slots += slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_paper() {
        let bus = SegmentedBus::isca2004();
        assert_eq!(bus.splits(), 8);
        assert_eq!(bus.tiles(), 4);
    }

    #[test]
    fn all_closed_is_a_broadcast_bus() {
        let cfg = SegmentConfig::all_closed(8, 4);
        let group = cfg.connected_group(0, 0);
        assert_eq!(group.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_open_isolates_tiles() {
        let cfg = SegmentConfig::all_open(8, 4);
        let group = cfg.connected_group(3, 2);
        assert_eq!(group.into_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn broadcast_reaches_all_tiles() {
        let mut bus = SegmentedBus::isca2004();
        let cfg = SegmentConfig::all_closed(8, 4);
        let delivered = bus
            .cycle(
                &cfg,
                &[BusOp {
                    split: 0,
                    producer: 0,
                    consumers: vec![1, 2, 3],
                }],
            )
            .unwrap();
        assert_eq!(delivered, vec![vec![1, 2, 3]]);
        assert_eq!(bus.stats().word_transfers, 1);
        assert_eq!(bus.stats().deliveries, 3);
    }

    #[test]
    fn segmentation_allows_two_messages_on_one_split() {
        // Open the middle gap: tiles {0,1} and {2,3} form independent
        // segments and can each carry a message on the same split — the
        // "approximate bandwidth of a mesh" property from the paper.
        let mut bus = SegmentedBus::isca2004();
        let mut cfg = SegmentConfig::all_closed(8, 4);
        cfg.set(0, 1, false);
        let ops = [
            BusOp {
                split: 0,
                producer: 0,
                consumers: vec![1],
            },
            BusOp {
                split: 0,
                producer: 3,
                consumers: vec![2],
            },
        ];
        let delivered = bus.cycle(&cfg, &ops).unwrap();
        assert_eq!(delivered.len(), 2);
    }

    #[test]
    fn driver_conflict_is_detected() {
        let mut bus = SegmentedBus::isca2004();
        let cfg = SegmentConfig::all_closed(8, 4);
        let ops = [
            BusOp {
                split: 2,
                producer: 0,
                consumers: vec![1],
            },
            BusOp {
                split: 2,
                producer: 3,
                consumers: vec![2],
            },
        ];
        let err = bus.cycle(&cfg, &ops).unwrap_err();
        assert!(matches!(err, BusError::DriverConflict { split: 2, .. }));
    }

    #[test]
    fn different_splits_never_conflict() {
        let mut bus = SegmentedBus::isca2004();
        let cfg = SegmentConfig::all_closed(8, 4);
        let ops: Vec<BusOp> = (0..8)
            .map(|s| BusOp {
                split: s,
                producer: s % 4,
                consumers: vec![(s + 1) % 4],
            })
            .collect();
        assert!(bus.cycle(&cfg, &ops).is_ok());
        assert_eq!(bus.stats().word_transfers, 8);
    }

    #[test]
    fn unreachable_consumer_is_detected() {
        let mut bus = SegmentedBus::isca2004();
        let mut cfg = SegmentConfig::all_closed(8, 4);
        cfg.set(5, 1, false);
        let err = bus
            .cycle(
                &cfg,
                &[BusOp {
                    split: 5,
                    producer: 0,
                    consumers: vec![3],
                }],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            BusError::Unreachable {
                split: 5,
                producer: 0,
                consumer: 3
            }
        ));
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut bus = SegmentedBus::isca2004();
        let cfg = SegmentConfig::all_closed(8, 4);
        assert!(bus
            .cycle(
                &cfg,
                &[BusOp {
                    split: 8,
                    producer: 0,
                    consumers: vec![]
                }]
            )
            .is_err());
        assert!(bus
            .cycle(
                &cfg,
                &[BusOp {
                    split: 0,
                    producer: 4,
                    consumers: vec![]
                }]
            )
            .is_err());
        assert!(bus
            .cycle(
                &cfg,
                &[BusOp {
                    split: 0,
                    producer: 0,
                    consumers: vec![9]
                }]
            )
            .is_err());
    }

    #[test]
    fn idle_cycles_do_not_count_as_active() {
        let mut bus = SegmentedBus::isca2004();
        let cfg = SegmentConfig::all_closed(8, 4);
        bus.cycle(&cfg, &[]).unwrap();
        assert_eq!(bus.stats().active_cycles, 0);
        assert_eq!(bus.stats().word_transfers, 0);
        // ... but they are still scheduled slots the DOU reserved.
        assert_eq!(bus.stats().scheduled_slots, 8);
        assert_eq!(bus.stats().occupied_slots, 0);
        assert_eq!(bus.stats().idle_slots(), 8);
    }

    #[test]
    fn scheduled_and_occupied_slots_are_counted_separately() {
        let mut bus = SegmentedBus::isca2004();
        let cfg = SegmentConfig::all_closed(8, 4);
        bus.cycle(
            &cfg,
            &[BusOp {
                split: 0,
                producer: 0,
                consumers: vec![1],
            }],
        )
        .unwrap();
        bus.cycle(&cfg, &[]).unwrap();
        // Two scheduled cycles × 8 splits, one of which carried a word.
        assert_eq!(bus.stats().scheduled_slots, 16);
        assert_eq!(bus.stats().occupied_slots, 1);
        assert_eq!(bus.stats().idle_slots(), 15);
    }

    #[test]
    fn horizontal_scheduled_slots_accumulate_independently_of_transfers() {
        let mut h = HorizontalBus::new(3);
        h.transfer_words(0, &[1], 4).unwrap();
        assert_eq!(h.stats().occupied_slots, 4);
        assert_eq!(h.stats().scheduled_slots, 0);
        h.account_scheduled_slots(10);
        assert_eq!(h.stats().scheduled_slots, 10);
        assert_eq!(h.stats().idle_slots(), 6);
        // Hand-accounted stats with no scheduled-slot path never underflow.
        let lone = HorizontalBus::new(2).stats();
        assert_eq!(lone.idle_slots(), 0);
    }

    #[test]
    fn bulk_word_transfers_match_repeated_single_transfers() {
        let mut bulk = HorizontalBus::new(3);
        bulk.transfer_words(0, &[1, 2], 5).unwrap();
        let mut single = HorizontalBus::new(3);
        for _ in 0..5 {
            single.transfer(0, &[1, 2]).unwrap();
        }
        assert_eq!(bulk.stats(), single.stats());
        assert!(bulk.transfer_words(3, &[0], 1).is_err());
        assert!(bulk.transfer_words(0, &[9], 1).is_err());
    }

    #[test]
    fn scaled_accumulation_matches_replayed_cycles() {
        let cfg = SegmentConfig::all_closed(8, 4);
        let op = BusOp {
            split: 0,
            producer: 0,
            consumers: vec![1, 2, 3],
        };
        // Measure one period: an active cycle followed by an idle one.
        let mut probe = SegmentedBus::isca2004();
        probe.cycle(&cfg, std::slice::from_ref(&op)).unwrap();
        probe.cycle(&cfg, &[]).unwrap();
        let delta = probe.stats();
        // Replay the period 7 times against bulk accumulation.
        let mut replayed = SegmentedBus::isca2004();
        for _ in 0..7 {
            replayed.cycle(&cfg, std::slice::from_ref(&op)).unwrap();
            replayed.cycle(&cfg, &[]).unwrap();
        }
        let mut bulk = SegmentedBus::isca2004();
        bulk.accumulate(&delta, 7);
        assert_eq!(bulk.stats(), replayed.stats());
        // Zero repetitions accumulate nothing.
        bulk.accumulate(&delta, 0);
        assert_eq!(bulk.stats(), replayed.stats());
    }

    #[test]
    fn horizontal_resize_preserves_stats() {
        let mut h = HorizontalBus::new(2);
        h.transfer(0, &[1]).unwrap();
        h.transfer(1, &[0]).unwrap();
        let before = h.stats();
        h.resize(3);
        assert_eq!(h.columns(), 3);
        assert_eq!(h.stats(), before, "resizing must not discard statistics");
        // The new column is immediately addressable.
        h.transfer(2, &[0, 1]).unwrap();
        assert_eq!(h.stats().word_transfers, 3);
    }

    #[test]
    fn horizontal_bus_counts_traffic_and_validates() {
        let mut h = HorizontalBus::new(4);
        h.transfer(0, &[1, 2]).unwrap();
        h.transfer(3, &[0]).unwrap();
        assert_eq!(h.stats().word_transfers, 2);
        assert_eq!(h.stats().deliveries, 3);
        assert!(h.transfer(4, &[0]).is_err());
        assert!(h.transfer(0, &[7]).is_err());
        assert_eq!(h.columns(), 4);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = BusError::DriverConflict {
            split: 1,
            first_driver: 0,
            second_driver: 2,
        };
        assert!(e.to_string().contains("split 1"));
        let e = BusError::Unreachable {
            split: 0,
            producer: 1,
            consumer: 3,
        };
        assert!(e.to_string().contains("consumer tile 3"));
    }
}
