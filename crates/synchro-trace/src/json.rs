//! A minimal JSON value model with an emitter and a parser.
//!
//! The workspace vendors no `serde_json`, but the Chrome `trace_event`
//! exporter must produce output that demonstrably *parses* — the CI
//! round-trip check loads every exported timeline back through
//! [`parse`].  This module is deliberately small: objects preserve
//! insertion order, numbers are `f64` (every value this crate emits is
//! an exact small integer), and strings escape the mandatory set.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a number value from an integer.
    pub fn num(n: u64) -> Value {
        Value::Num(n as f64)
    }

    /// Look up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`], or explain why it is not JSON.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected {literal:?} at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Value::Obj(vec![
            ("name".to_owned(), Value::str("col 0 \"fir\"\n")),
            (
                "ticks".to_owned(),
                Value::Arr(vec![Value::num(0), Value::num(125)]),
            ),
            ("ok".to_owned(), Value::Bool(true)),
            ("none".to_owned(), Value::Null),
            ("ratio".to_owned(), Value::Num(0.5)),
        ]);
        let text = value.to_json();
        assert_eq!(parse(&text).expect("round trip"), value);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Value::num(1_000_000).to_json(), "1000000");
        assert_eq!(Value::Num(2.5).to_json(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_malformed_escapes() {
        let err = parse("\"\\q\"").expect_err("unknown escape");
        assert!(err.contains("bad escape"), "{err}");
        let err = parse("\"\\u00").expect_err("truncated \\u escape");
        assert!(err.contains("truncated \\u escape"), "{err}");
        let err = parse("\"\\uZZZZ\"").expect_err("non-hex \\u digits");
        assert!(err.contains("bad \\u escape"), "{err}");
        let err = parse("\"\\").expect_err("escape at end of input");
        assert!(err.contains("bad escape"), "{err}");
    }

    #[test]
    fn rejects_truncated_arrays_and_objects() {
        let err = parse("[1,2").expect_err("unclosed array");
        assert!(err.contains("expected ',' or ']'"), "{err}");
        assert!(parse("[1 2]").is_err(), "missing separator");
        let err = parse("{\"a\":1,").expect_err("object cut after comma");
        assert!(err.contains("expected '\"'"), "{err}");
        let err = parse("{\"a\":1 \"b\":2}").expect_err("missing comma");
        assert!(err.contains("expected ',' or '}'"), "{err}");
        let err = parse("").expect_err("empty input");
        assert!(err.contains("unexpected end of input"), "{err}");
        let err = parse("[").expect_err("bare open bracket");
        assert!(err.contains("unexpected end of input"), "{err}");
    }

    #[test]
    fn rejects_non_numeric_counter_values() {
        // A counters payload whose value is not a number must fail the
        // whole parse, not silently coerce.
        let err = parse("{\"value\":+-}").expect_err("sign salad");
        assert!(err.contains("bad number"), "{err}");
        assert!(parse("{\"value\":nan}").is_err(), "bare nan literal");
        assert!(parse("{\"value\":1.2.3}").is_err(), "double decimal point");
        assert!(parse("{\"value\":0x10}").is_err(), "hex is not JSON");
        assert!(parse("truish").is_err(), "corrupted literal");
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let parsed = parse(" { \"k\" : \"a\\u0041\\n\" , \"n\" : [ ] } ").expect("parse");
        assert_eq!(parsed.get("k").and_then(|v| v.as_str()), Some("aA\n"));
        assert_eq!(
            parsed.get("n").and_then(|v| v.as_arr()).map(<[Value]>::len),
            Some(0)
        );
    }
}
