//! Structured tracing and metrics for the Synchroscalar stack.
//!
//! The paper's whole argument rests on being able to *see* where cycles,
//! bus slots and milliwatts go.  This crate is the observability substrate
//! every layer reports into:
//!
//! * a typed event vocabulary ([`TraceEvent`]) covering column firings,
//!   divider ticks, ZORM stalls, horizontal-bus slot occupancy, bridge
//!   transfers, rate-matcher re-locks and the mapper/router/explorer
//!   compile phases,
//! * a sink abstraction ([`TraceSink`]) with three implementations —
//!   [`NullSink`] (drop everything), [`RingBufferSink`] (keep the last N
//!   events for timeline export) and [`MetricsSink`] (a counting metrics
//!   registry, lock-free on the simulator hot path),
//! * a zero-cost-when-disabled handle ([`Trace`]): an instrumented hot
//!   loop pays exactly one branch per event site when no sink is
//!   installed, and events are only *constructed* when a sink will
//!   receive them,
//! * exporters: Chrome `trace_event` JSON ([`chrome::chrome_trace`],
//!   loadable in Perfetto / `chrome://tracing`) and a plain-text
//!   utilization histogram ([`report::histogram`]).
//!
//! The two execution tiers of `synchro-sim` emit *equivalent* streams at
//! different granularity — the interpreter one event per occurrence, the
//! fast tier one batched event per column or slot with a `count` — so
//! [`normalize`] folds both to one canonical form for bit-exact
//! comparison (the `sim_equivalence` differential suite pins this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod analyze;
pub mod chrome;
pub mod json;
pub mod report;

/// One structured observation from somewhere in the stack.
///
/// Simulation events carry a `count` (or batch-summed payload) so the
/// fast execution tier can emit one event per column or slot where the
/// interpreter emits one per occurrence; [`normalize`] makes the two
/// granularities comparable.  `tick` is always a board/chip reference
/// tick: the shared timebase every timeline track is plotted against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `count` completed firings on a column (derived from the static
    /// schedule's repetition vector by the mapper layer).
    ColumnFiring {
        /// Board chip index.
        chip: u32,
        /// Column index within the chip.
        column: u32,
        /// Reference tick of (the last of) the completions.
        tick: u64,
        /// Firings completed.
        count: u64,
    },
    /// `count` divider-selected column steps (billed column cycles).
    DividerTick {
        /// Board chip index.
        chip: u32,
        /// Column index within the chip.
        column: u32,
        /// Reference tick of (the last of) the steps.
        tick: u64,
        /// Billed column cycles.
        count: u64,
    },
    /// `cycles` Zero-Overhead Rate Matching stall cycles.
    ZormStall {
        /// Board chip index.
        chip: u32,
        /// Column index within the chip.
        column: u32,
        /// Reference tick of (the last of) the stalls.
        tick: u64,
        /// Stall cycles.
        cycles: u64,
    },
    /// A rate matcher re-armed its stall budget at a period boundary
    /// (`count` re-locks).
    RateMatcherRelock {
        /// Board chip index.
        chip: u32,
        /// Column index within the chip.
        column: u32,
        /// Reference tick of (the last of) the re-locks.
        tick: u64,
        /// Period boundaries crossed.
        count: u64,
    },
    /// `count` occurrences of one horizontal-bus TDM slot carrying
    /// `words` words in total from column `from` to columns `to`.
    BusSlot {
        /// Board chip index.
        chip: u32,
        /// Reference tick of (the last of) the occurrences.
        tick: u64,
        /// Producing column.
        from: u32,
        /// Consuming columns.
        to: Vec<u32>,
        /// Words transferred, summed over the batch.
        words: u64,
        /// Slot occurrences batched into this event.
        count: u64,
    },
    /// `count` bridge-lane transfers carrying `words` words in total
    /// between two chips of a board.
    BridgeTransfer {
        /// Bridge lane index.
        lane: u32,
        /// Producing chip.
        from_chip: u32,
        /// Consuming chip.
        to_chip: u32,
        /// Reference tick of (the last of) the transfers.
        tick: u64,
        /// Words transferred, summed over the batch.
        words: u64,
        /// Transfers batched into this event.
        count: u64,
    },
    /// A named compile/search phase opened (mapper, router, explorer).
    PhaseBegin {
        /// Phase name, e.g. `"mapper.compile_board"`.
        phase: &'static str,
    },
    /// A named compile/search phase closed.
    PhaseEnd {
        /// Phase name matching the corresponding [`TraceEvent::PhaseBegin`].
        phase: &'static str,
    },
    /// The router placed one TDM slot: `words` words of SDF edge `edge`
    /// on `(split, cycle)` from column `from` to column `to`.
    RouteSlot {
        /// Bus split carrying the slot.
        split: u32,
        /// First bus cycle of the slot within the frame.
        cycle: u64,
        /// Producing column.
        from: u32,
        /// Consuming column.
        to: u32,
        /// Words placed.
        words: u64,
        /// SDF edge index the words belong to.
        edge: u64,
    },
    /// The router rejected a flow set, with the structured error code and
    /// rendered context of the `RouteError`.
    RouteReject {
        /// Stable machine-readable variant code, e.g. `"period_overflow"`.
        code: &'static str,
        /// Human-readable context (the error's `Display` output).
        detail: String,
    },
    /// A named counter increment — the generic metrics-registry event
    /// (the explorer reports its prune/cache counters through this).
    Counter {
        /// Registry key, e.g. `"explore.states_pruned"`.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// A fault plan killed one SIMD column mid-run: from `tick` onward
    /// the column executes nothing and bills no cycles.
    FaultColumnKilled {
        /// Chip holding the column.
        chip: u32,
        /// Column index within the chip.
        column: u32,
        /// Reference tick the fault fired at.
        tick: u64,
    },
    /// A fault plan killed one bridge lane mid-run: slots scheduled on
    /// the lane at or after `tick` are dropped undelivered.
    FaultLaneKilled {
        /// Bridge lane index within the board.
        lane: u32,
        /// Producing chip of the lane.
        from_chip: u32,
        /// Consuming chip of the lane.
        to_chip: u32,
        /// Reference tick the fault fired at.
        tick: u64,
    },
    /// The starvation watchdog tripped: no column, bus, or bridge
    /// progress across a full observation `window`, so the driver gave
    /// up instead of spinning.
    FaultStalled {
        /// Reference tick the run was abandoned at.
        tick: u64,
        /// Watchdog window (reference ticks) that saw zero progress.
        window: u64,
    },
}

/// Where events go.  Implementations must tolerate concurrent `record`
/// calls ([`MetricsSink`] is lock-free; [`RingBufferSink`] takes one
/// uncontended lock per event).
pub trait TraceSink: Send + Sync {
    /// Consume one event.
    fn record(&self, event: &TraceEvent);

    /// Will this sink do anything with events?  [`Trace::to`] drops
    /// disabled sinks entirely, so instrumented code pays nothing — not
    /// even event construction — for a sink that reports `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything.  Installing it is indistinguishable
/// (including in cost) from installing no sink at all: [`Trace::to`]
/// collapses it to the disabled handle.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

struct RingState {
    events: Vec<TraceEvent>,
    /// Index of the logical first event within `events` once the buffer
    /// has wrapped.
    head: usize,
    dropped: u64,
}

/// A consistent occupancy snapshot of a [`RingBufferSink`], taken under
/// one lock so `len` and `dropped` agree with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Events the buffer retains before evicting.
    pub capacity: usize,
    /// Events currently held.
    pub len: usize,
    /// Events evicted because the buffer was full.
    pub dropped: u64,
}

impl RingStats {
    /// True when the captured timeline is incomplete (events were
    /// evicted).
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }
}

/// A bounded buffer keeping the most recent `capacity` events (oldest
/// dropped first), for timeline export and differential testing.
pub struct RingBufferSink {
    capacity: usize,
    state: Mutex<RingState>,
}

impl fmt::Debug for RingBufferSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("ring buffer poisoned");
        f.debug_struct("RingBufferSink")
            .field("capacity", &self.capacity)
            .field("len", &state.events.len())
            .field("dropped", &state.dropped)
            .finish()
    }
}

impl RingBufferSink {
    /// A sink keeping the latest `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                events: Vec::new(),
                head: 0,
                dropped: 0,
            }),
        }
    }

    /// Events recorded so far, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let state = self.state.lock().expect("ring buffer poisoned");
        let mut out = Vec::with_capacity(state.events.len());
        out.extend_from_slice(&state.events[state.head..]);
        out.extend_from_slice(&state.events[..state.head]);
        out
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("ring buffer poisoned").dropped
    }

    /// The buffer's capacity (events retained before eviction starts).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// One consistent snapshot of the buffer's occupancy — a
    /// [`TraceEvent`]-free view for consumers that only need to know
    /// whether a timeline is complete, without cloning the events.
    pub fn stats(&self) -> RingStats {
        let state = self.state.lock().expect("ring buffer poisoned");
        RingStats {
            capacity: self.capacity,
            len: state.events.len(),
            dropped: state.dropped,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("ring buffer poisoned")
            .events
            .len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: &TraceEvent) {
        let mut state = self.state.lock().expect("ring buffer poisoned");
        if state.events.len() < self.capacity {
            state.events.push(event.clone());
        } else {
            let head = state.head;
            state.events[head] = event.clone();
            state.head = (head + 1) % self.capacity;
            state.dropped += 1;
        }
    }
}

/// A counting metrics registry: every event folds into a monotonic
/// counter.  The simulation-event counters are plain atomics — recording
/// from the simulator hot path is lock-free — while named
/// [`TraceEvent::Counter`] events (batched by their emitters) share one
/// mutex-guarded map.
#[derive(Debug, Default)]
pub struct MetricsSink {
    firings: AtomicU64,
    divider_ticks: AtomicU64,
    zorm_stall_cycles: AtomicU64,
    relocks: AtomicU64,
    bus_slots: AtomicU64,
    bus_words: AtomicU64,
    bridge_transfers: AtomicU64,
    bridge_words: AtomicU64,
    phases: AtomicU64,
    route_slots: AtomicU64,
    route_words: AtomicU64,
    route_rejects: AtomicU64,
    fault_columns: AtomicU64,
    fault_lanes: AtomicU64,
    fault_stalls: AtomicU64,
    named: Mutex<BTreeMap<&'static str, u64>>,
}

impl MetricsSink {
    /// A fresh, all-zero registry.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// The unified registry view: every non-zero counter under its
    /// canonical `sim.` / `route.` / named key, sorted by key.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        let mut put = |key: &str, value: u64| {
            if value > 0 {
                out.insert(key.to_owned(), value);
            }
        };
        put("sim.firings", self.firings.load(Ordering::Relaxed));
        put(
            "sim.divider_ticks",
            self.divider_ticks.load(Ordering::Relaxed),
        );
        put(
            "sim.zorm_stall_cycles",
            self.zorm_stall_cycles.load(Ordering::Relaxed),
        );
        put(
            "sim.rate_matcher_relocks",
            self.relocks.load(Ordering::Relaxed),
        );
        put("sim.bus_slots", self.bus_slots.load(Ordering::Relaxed));
        put("sim.bus_words", self.bus_words.load(Ordering::Relaxed));
        put(
            "sim.bridge_transfers",
            self.bridge_transfers.load(Ordering::Relaxed),
        );
        put(
            "sim.bridge_words",
            self.bridge_words.load(Ordering::Relaxed),
        );
        put("trace.phases", self.phases.load(Ordering::Relaxed));
        put("route.slots", self.route_slots.load(Ordering::Relaxed));
        put("route.words", self.route_words.load(Ordering::Relaxed));
        put("route.rejects", self.route_rejects.load(Ordering::Relaxed));
        put(
            "sim.fault_columns",
            self.fault_columns.load(Ordering::Relaxed),
        );
        put("sim.fault_lanes", self.fault_lanes.load(Ordering::Relaxed));
        put(
            "sim.fault_stalls",
            self.fault_stalls.load(Ordering::Relaxed),
        );
        for (name, value) in self.named.lock().expect("registry poisoned").iter() {
            put(name, *value);
        }
        out
    }

    /// One counter by canonical key (0 when never bumped).
    pub fn value(&self, name: &str) -> u64 {
        self.counters().get(name).copied().unwrap_or(0)
    }
}

impl TraceSink for MetricsSink {
    fn record(&self, event: &TraceEvent) {
        match event {
            TraceEvent::ColumnFiring { count, .. } => {
                self.firings.fetch_add(*count, Ordering::Relaxed);
            }
            TraceEvent::DividerTick { count, .. } => {
                self.divider_ticks.fetch_add(*count, Ordering::Relaxed);
            }
            TraceEvent::ZormStall { cycles, .. } => {
                self.zorm_stall_cycles.fetch_add(*cycles, Ordering::Relaxed);
            }
            TraceEvent::RateMatcherRelock { count, .. } => {
                self.relocks.fetch_add(*count, Ordering::Relaxed);
            }
            TraceEvent::BusSlot { words, count, .. } => {
                self.bus_slots.fetch_add(*count, Ordering::Relaxed);
                self.bus_words.fetch_add(*words, Ordering::Relaxed);
            }
            TraceEvent::BridgeTransfer { words, count, .. } => {
                self.bridge_transfers.fetch_add(*count, Ordering::Relaxed);
                self.bridge_words.fetch_add(*words, Ordering::Relaxed);
            }
            TraceEvent::PhaseBegin { .. } => {
                self.phases.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::PhaseEnd { .. } => {}
            TraceEvent::RouteSlot { words, .. } => {
                self.route_slots.fetch_add(1, Ordering::Relaxed);
                self.route_words.fetch_add(*words, Ordering::Relaxed);
            }
            TraceEvent::RouteReject { .. } => {
                self.route_rejects.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::Counter { name, delta } => {
                *self
                    .named
                    .lock()
                    .expect("registry poisoned")
                    .entry(name)
                    .or_insert(0) += delta;
            }
            TraceEvent::FaultColumnKilled { .. } => {
                self.fault_columns.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::FaultLaneKilled { .. } => {
                self.fault_lanes.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::FaultStalled { .. } => {
                self.fault_stalls.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The handle instrumented code holds.  Disabled (the default) it is one
/// `Option` branch per event site — no event is constructed, no dynamic
/// call is made — which is what keeps the simulator's per-cycle hot path
/// within its <2 % overhead budget.
#[derive(Clone, Default)]
pub struct Trace {
    sink: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.sink.is_some() {
            "Trace(on)"
        } else {
            "Trace(off)"
        })
    }
}

impl Trace {
    /// The disabled handle (what [`Trace::default`] gives).
    pub fn off() -> Self {
        Trace::default()
    }

    /// A handle feeding `sink`.  A sink reporting `enabled() == false`
    /// (e.g. [`NullSink`]) collapses to the disabled handle, so the
    /// "tracing compiled in but switched off" path is bit-for-bit the
    /// no-sink path.
    pub fn to(sink: Arc<dyn TraceSink>) -> Self {
        Trace {
            sink: sink.enabled().then_some(sink),
        }
    }

    /// Is a sink installed?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record the event built by `build` — which runs only when a sink is
    /// installed.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&build());
        }
    }

    /// Bump the named registry counter by `delta` (a no-op when disabled
    /// or when `delta` is zero).
    pub fn counter(&self, name: &'static str, delta: u64) {
        if delta > 0 {
            self.emit(|| TraceEvent::Counter { name, delta });
        }
    }

    /// Open a phase span: emits [`TraceEvent::PhaseBegin`] now and
    /// [`TraceEvent::PhaseEnd`] when the returned guard drops.
    pub fn span(&self, phase: &'static str) -> TraceSpan<'_> {
        self.emit(|| TraceEvent::PhaseBegin { phase });
        TraceSpan { trace: self, phase }
    }
}

/// RAII guard of one [`Trace::span`] phase.
pub struct TraceSpan<'a> {
    trace: &'a Trace,
    phase: &'static str,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        self.trace
            .emit(|| TraceEvent::PhaseEnd { phase: self.phase });
    }
}

/// The canonical aggregation key of one event, used by [`normalize`].
type NormKey = (u8, u64, u64, u64, Vec<u64>, String);

fn key_of(event: &TraceEvent) -> NormKey {
    match event {
        TraceEvent::ColumnFiring { chip, column, .. } => (
            0,
            u64::from(*chip),
            u64::from(*column),
            0,
            Vec::new(),
            String::new(),
        ),
        TraceEvent::DividerTick { chip, column, .. } => (
            1,
            u64::from(*chip),
            u64::from(*column),
            0,
            Vec::new(),
            String::new(),
        ),
        TraceEvent::ZormStall { chip, column, .. } => (
            2,
            u64::from(*chip),
            u64::from(*column),
            0,
            Vec::new(),
            String::new(),
        ),
        TraceEvent::RateMatcherRelock { chip, column, .. } => (
            3,
            u64::from(*chip),
            u64::from(*column),
            0,
            Vec::new(),
            String::new(),
        ),
        TraceEvent::BusSlot { chip, from, to, .. } => (
            4,
            u64::from(*chip),
            u64::from(*from),
            0,
            to.iter().map(|&c| u64::from(c)).collect(),
            String::new(),
        ),
        TraceEvent::BridgeTransfer {
            lane,
            from_chip,
            to_chip,
            ..
        } => (
            5,
            u64::from(*lane),
            u64::from(*from_chip),
            u64::from(*to_chip),
            Vec::new(),
            String::new(),
        ),
        TraceEvent::PhaseBegin { phase } => (6, 0, 0, 0, Vec::new(), (*phase).to_owned()),
        TraceEvent::PhaseEnd { phase } => (7, 0, 0, 0, Vec::new(), (*phase).to_owned()),
        TraceEvent::RouteSlot {
            split,
            from,
            to,
            edge,
            ..
        } => (
            8,
            u64::from(*split),
            u64::from(*from),
            u64::from(*to),
            vec![*edge],
            String::new(),
        ),
        TraceEvent::RouteReject { code, .. } => (9, 0, 0, 0, Vec::new(), (*code).to_owned()),
        TraceEvent::Counter { name, .. } => (10, 0, 0, 0, Vec::new(), (*name).to_owned()),
        TraceEvent::FaultColumnKilled { chip, column, .. } => (
            11,
            u64::from(*chip),
            u64::from(*column),
            0,
            Vec::new(),
            String::new(),
        ),
        TraceEvent::FaultLaneKilled {
            lane,
            from_chip,
            to_chip,
            ..
        } => (
            12,
            u64::from(*lane),
            u64::from(*from_chip),
            u64::from(*to_chip),
            Vec::new(),
            String::new(),
        ),
        TraceEvent::FaultStalled { .. } => (13, 0, 0, 0, Vec::new(), String::new()),
    }
}

/// The two payload accumulators of one normalized key: `(count, words)`
/// for slot-like events, `(count, 0)` otherwise.
fn payload_of(event: &TraceEvent) -> (u64, u64) {
    match event {
        TraceEvent::ColumnFiring { count, .. }
        | TraceEvent::DividerTick { count, .. }
        | TraceEvent::RateMatcherRelock { count, .. } => (*count, 0),
        TraceEvent::ZormStall { cycles, .. } => (*cycles, 0),
        TraceEvent::BusSlot { words, count, .. }
        | TraceEvent::BridgeTransfer { words, count, .. } => (*count, *words),
        TraceEvent::PhaseBegin { .. } | TraceEvent::PhaseEnd { .. } => (1, 0),
        TraceEvent::RouteSlot { words, .. } => (1, *words),
        TraceEvent::RouteReject { .. } => (1, 0),
        TraceEvent::Counter { delta, .. } => (*delta, 0),
        TraceEvent::FaultColumnKilled { .. }
        | TraceEvent::FaultLaneKilled { .. }
        | TraceEvent::FaultStalled { .. } => (1, 0),
    }
}

/// Fold an event stream to its canonical batching-independent form: one
/// event per `(kind, track)` key with ticks dropped and counts/words
/// summed, sorted by key.
///
/// Two streams describing the same execution at different batching
/// granularity — the interpreter's per-occurrence events and the fast
/// tier's per-column/per-slot batches — normalize to bit-identical
/// vectors; this is the comparison the tier-equivalence suite pins.
pub fn normalize(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut folded: BTreeMap<NormKey, ((u64, u64), TraceEvent)> = BTreeMap::new();
    for event in events {
        let (count, words) = payload_of(event);
        folded
            .entry(key_of(event))
            .and_modify(|((c, w), _)| {
                *c += count;
                *w += words;
            })
            .or_insert(((count, words), event.clone()));
    }
    folded
        .into_values()
        .map(|((count, words), representative)| match representative {
            TraceEvent::ColumnFiring { chip, column, .. } => TraceEvent::ColumnFiring {
                chip,
                column,
                tick: 0,
                count,
            },
            TraceEvent::DividerTick { chip, column, .. } => TraceEvent::DividerTick {
                chip,
                column,
                tick: 0,
                count,
            },
            TraceEvent::ZormStall { chip, column, .. } => TraceEvent::ZormStall {
                chip,
                column,
                tick: 0,
                cycles: count,
            },
            TraceEvent::RateMatcherRelock { chip, column, .. } => TraceEvent::RateMatcherRelock {
                chip,
                column,
                tick: 0,
                count,
            },
            TraceEvent::BusSlot { chip, from, to, .. } => TraceEvent::BusSlot {
                chip,
                tick: 0,
                from,
                to,
                words,
                count,
            },
            TraceEvent::BridgeTransfer {
                lane,
                from_chip,
                to_chip,
                ..
            } => TraceEvent::BridgeTransfer {
                lane,
                from_chip,
                to_chip,
                tick: 0,
                words,
                count,
            },
            TraceEvent::PhaseBegin { phase } => TraceEvent::PhaseBegin { phase },
            TraceEvent::PhaseEnd { phase } => TraceEvent::PhaseEnd { phase },
            TraceEvent::RouteSlot {
                split,
                from,
                to,
                edge,
                ..
            } => TraceEvent::RouteSlot {
                split,
                cycle: 0,
                from,
                to,
                words,
                edge,
            },
            TraceEvent::RouteReject { code, detail } => TraceEvent::RouteReject { code, detail },
            TraceEvent::Counter { name, .. } => TraceEvent::Counter { name, delta: count },
            TraceEvent::FaultColumnKilled { chip, column, .. } => TraceEvent::FaultColumnKilled {
                chip,
                column,
                tick: 0,
            },
            TraceEvent::FaultLaneKilled {
                lane,
                from_chip,
                to_chip,
                ..
            } => TraceEvent::FaultLaneKilled {
                lane,
                from_chip,
                to_chip,
                tick: 0,
            },
            TraceEvent::FaultStalled { window, .. } => TraceEvent::FaultStalled { tick: 0, window },
        })
        .collect()
}

/// Render `seconds` since the Unix epoch as an ISO-8601 UTC timestamp
/// (`YYYY-MM-DDTHH:MM:SSZ`), via the standard civil-from-days algorithm.
pub fn iso8601_utc(seconds_since_epoch: u64) -> String {
    let days = seconds_since_epoch / 86_400;
    let secs = seconds_since_epoch % 86_400;
    // Howard Hinnant's civil_from_days, shifted to the 0000-03-01 era.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// The current wall clock as an ISO-8601 UTC timestamp — what the perf
/// records stamp into their `generated_at` field.
pub fn iso8601_utc_now() -> String {
    let seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso8601_utc(seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tickless_bus(chip: u32, from: u32, words: u64, count: u64) -> TraceEvent {
        TraceEvent::BusSlot {
            chip,
            tick: 0,
            from,
            to: vec![from + 1],
            words,
            count,
        }
    }

    #[test]
    fn null_sink_collapses_to_the_disabled_handle() {
        let trace = Trace::to(Arc::new(NullSink));
        assert!(!trace.enabled());
        // The builder must never run.
        trace.emit(|| unreachable!("disabled handles must not build events"));
        assert_eq!(format!("{trace:?}"), "Trace(off)");
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent_events() {
        let ring = RingBufferSink::new(3);
        let trace = Trace::to(Arc::new(RingBufferSink::new(3)));
        assert!(trace.enabled());
        for i in 0..5u64 {
            ring.record(&TraceEvent::Counter {
                name: "x",
                delta: i,
            });
        }
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
        let deltas: Vec<u64> = ring
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Counter { delta, .. } => *delta,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(deltas, vec![2, 3, 4], "oldest events are evicted first");
    }

    #[test]
    fn ring_buffer_stats_detect_truncation_without_cloning_events() {
        let ring = RingBufferSink::new(2);
        assert_eq!(ring.capacity(), 2);
        let before = ring.stats();
        assert_eq!(before.len, 0);
        assert!(!before.truncated());
        for i in 0..3u64 {
            ring.record(&TraceEvent::Counter {
                name: "x",
                delta: i,
            });
        }
        let after = ring.stats();
        assert_eq!(
            after,
            RingStats {
                capacity: 2,
                len: 2,
                dropped: 1
            }
        );
        assert!(after.truncated());
    }

    #[test]
    fn metrics_sink_folds_events_into_the_registry() {
        let sink = MetricsSink::new();
        sink.record(&TraceEvent::DividerTick {
            chip: 0,
            column: 1,
            tick: 9,
            count: 4,
        });
        sink.record(&tickless_bus(0, 0, 6, 2));
        sink.record(&TraceEvent::Counter {
            name: "explore.states_pruned",
            delta: 17,
        });
        sink.record(&TraceEvent::Counter {
            name: "explore.states_pruned",
            delta: 3,
        });
        assert_eq!(sink.value("sim.divider_ticks"), 4);
        assert_eq!(sink.value("sim.bus_words"), 6);
        assert_eq!(sink.value("sim.bus_slots"), 2);
        assert_eq!(sink.value("explore.states_pruned"), 20);
        assert_eq!(sink.value("never.bumped"), 0);
        assert!(sink.counters().keys().all(|k| !k.is_empty()));
    }

    #[test]
    fn span_emits_matched_begin_and_end() {
        let ring = Arc::new(RingBufferSink::new(8));
        let trace = Trace::to(ring.clone());
        {
            let _span = trace.span("mapper.compile");
            trace.counter("inner", 1);
        }
        let events = ring.events();
        assert_eq!(
            events,
            vec![
                TraceEvent::PhaseBegin {
                    phase: "mapper.compile"
                },
                TraceEvent::Counter {
                    name: "inner",
                    delta: 1
                },
                TraceEvent::PhaseEnd {
                    phase: "mapper.compile"
                },
            ]
        );
    }

    #[test]
    fn normalize_is_batching_independent() {
        // Interpreter granularity: per occurrence, with ticks.
        let fine = vec![
            TraceEvent::DividerTick {
                chip: 0,
                column: 0,
                tick: 0,
                count: 1,
            },
            TraceEvent::BusSlot {
                chip: 0,
                tick: 3,
                from: 0,
                to: vec![1],
                words: 2,
                count: 1,
            },
            TraceEvent::DividerTick {
                chip: 0,
                column: 0,
                tick: 2,
                count: 1,
            },
            TraceEvent::BusSlot {
                chip: 0,
                tick: 14,
                from: 0,
                to: vec![1],
                words: 2,
                count: 1,
            },
        ];
        // Fast-tier granularity: one batch per track.
        let batched = vec![
            tickless_bus(0, 0, 4, 2),
            TraceEvent::DividerTick {
                chip: 0,
                column: 0,
                tick: 2,
                count: 2,
            },
        ];
        assert_eq!(normalize(&fine), normalize(&batched));
        // Different totals must NOT normalize equal.
        assert_ne!(normalize(&fine), normalize(&batched[..1]));
    }

    #[test]
    fn fault_events_fold_into_the_registry_and_normalize() {
        let sink = MetricsSink::new();
        sink.record(&TraceEvent::FaultColumnKilled {
            chip: 0,
            column: 2,
            tick: 700,
        });
        sink.record(&TraceEvent::FaultLaneKilled {
            lane: 1,
            from_chip: 0,
            to_chip: 1,
            tick: 700,
        });
        sink.record(&TraceEvent::FaultStalled {
            tick: 1_440,
            window: 720,
        });
        sink.record(&TraceEvent::FaultStalled {
            tick: 2_880,
            window: 720,
        });
        assert_eq!(sink.value("sim.fault_columns"), 1);
        assert_eq!(sink.value("sim.fault_lanes"), 1);
        assert_eq!(sink.value("sim.fault_stalls"), 2);

        // Normalization drops ticks but keeps the fault's identity, so
        // the ticked and event-driven tiers compare equal while a fault
        // on a different column does not.
        let a = vec![TraceEvent::FaultColumnKilled {
            chip: 0,
            column: 2,
            tick: 700,
        }];
        let b = vec![TraceEvent::FaultColumnKilled {
            chip: 0,
            column: 2,
            tick: 703,
        }];
        let c = vec![TraceEvent::FaultColumnKilled {
            chip: 0,
            column: 1,
            tick: 700,
        }];
        assert_eq!(normalize(&a), normalize(&b));
        assert_ne!(normalize(&a), normalize(&c));
    }

    #[test]
    fn iso8601_matches_known_instants() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        // 2004-06-19 (ISCA 2004 week) 12:34:56 UTC.
        assert_eq!(iso8601_utc(1_087_648_496), "2004-06-19T12:34:56Z");
        // Leap-year boundary.
        assert_eq!(iso8601_utc(951_782_400), "2000-02-29T00:00:00Z");
        let now = iso8601_utc_now();
        assert_eq!(now.len(), 20);
        assert!(now.ends_with('Z'));
    }
}
