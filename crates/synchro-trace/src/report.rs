//! Plain-text utilization/occupancy histogram report.
//!
//! The mapper turns per-column stats into [`TrackUtilization`] rows and
//! [`histogram`] renders them as ASCII bars — the quick-look companion
//! to the Chrome-trace timeline.

use std::fmt::Write as _;

/// One row of the utilization report: a track (column, bus, bridge) that
/// was busy for `busy` of `total` reference-time units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackUtilization {
    /// Track label, e.g. `"chip0/col2 (÷5)"` or `"horizontal bus"`.
    pub label: String,
    /// Busy units (billed cycles, occupied slots, transfer words).
    pub busy: u64,
    /// Capacity in the same units; `0` renders as an idle track.
    pub total: u64,
    /// What the `busy/total` denominator counts (`"cycles"`, `"slots"`,
    /// `"words"`) — printed with every row so tracks measured in
    /// different units stay comparable at a glance.
    pub unit: &'static str,
    /// Free-form annotation appended to the row (stall split, words, …).
    pub detail: String,
}

impl TrackUtilization {
    /// Utilization in `[0, 1]` (saturating above 100 %).
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.busy as f64 / self.total as f64).min(1.0)
        }
    }
}

/// Render `tracks` as an aligned ASCII histogram titled `title`.
///
/// ```text
/// chip0/col0 (÷1)  |########################################| 100.0%  4000/4000 cycles
/// horizontal bus   |################----------------------- |  40.0%  10/25 slots
/// ```
pub fn histogram(title: &str, tracks: &[TrackUtilization]) -> String {
    const WIDTH: usize = 40;
    let label_width = tracks
        .iter()
        .map(|t| t.label.chars().count())
        .max()
        .unwrap_or(0)
        .max(title.chars().count());
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "=".repeat(label_width + WIDTH + 22));
    for t in tracks {
        let filled = (t.ratio() * WIDTH as f64).round() as usize;
        let bar: String = "#".repeat(filled) + &"-".repeat(WIDTH - filled.min(WIDTH));
        let pad = label_width - t.label.chars().count();
        let _ = writeln!(
            out,
            "{}{} |{}| {:>5.1}%  {}/{}{}{}{}{}",
            t.label,
            " ".repeat(pad),
            bar,
            t.ratio() * 100.0,
            t.busy,
            t.total,
            if t.unit.is_empty() { "" } else { " " },
            t.unit,
            if t.detail.is_empty() { "" } else { "  " },
            t.detail,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let tracks = vec![
            TrackUtilization {
                label: "col 0".to_owned(),
                busy: 4,
                total: 4,
                unit: "cycles",
                detail: String::new(),
            },
            TrackUtilization {
                label: "horizontal bus".to_owned(),
                busy: 10,
                total: 25,
                unit: "slots",
                detail: "40 words".to_owned(),
            },
            TrackUtilization {
                label: "idle".to_owned(),
                busy: 0,
                total: 0,
                unit: "",
                detail: String::new(),
            },
        ];
        let text = histogram("DDC utilization", &tracks);
        assert!(text.starts_with("DDC utilization\n"));
        assert!(text.contains("100.0%"));
        assert!(text.contains(" 40.0%"));
        assert!(text.contains("4/4 cycles"));
        assert!(text.contains("10/25 slots  40 words"));
        assert!(text.contains("   0.0%  0/0"));
        // All bars are the same width.
        let widths: Vec<usize> = text
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.split('|').nth(1).unwrap().chars().count())
            .collect();
        assert!(widths.iter().all(|w| *w == widths[0]));
    }

    #[test]
    fn over_capacity_saturates_at_full() {
        let t = TrackUtilization {
            label: "x".into(),
            busy: 10,
            total: 4,
            unit: "cycles",
            detail: String::new(),
        };
        assert_eq!(t.ratio(), 1.0);
    }
}
