//! Chrome `trace_event` JSON export.
//!
//! [`chrome_trace`] renders an event stream as the JSON-object flavour of
//! the Trace Event Format (`{"traceEvents": [...]}`), loadable in
//! Perfetto or `chrome://tracing`.  Track layout:
//!
//! * one *process* per chip (`chip N`), with one *thread* per column and
//!   one for the horizontal bus,
//! * a `board` process with one thread per bridge lane,
//! * a `compile` process holding the mapper/router/explorer phase spans,
//!   router slot placements and registry counters.
//!
//! Reference ticks map directly to microsecond timestamps; compile-side
//! events (which carry no tick) are laid out on a sequence axis.

use crate::analyze::PowerTimeline;
use crate::json::Value;
use crate::TraceEvent;

const PID_COMPILE: u64 = 1;
const PID_BOARD: u64 = 2;
const PID_POWER: u64 = 3;
const PID_CHIP_BASE: u64 = 10;
const TID_HORIZONTAL_BUS: u64 = 1_000;

fn event(name: &str, ph: &str, ts: u64, pid: u64, tid: u64) -> Vec<(String, Value)> {
    vec![
        ("name".to_owned(), Value::str(name)),
        ("ph".to_owned(), Value::str(ph)),
        ("ts".to_owned(), Value::num(ts)),
        ("pid".to_owned(), Value::num(pid)),
        ("tid".to_owned(), Value::num(tid)),
    ]
}

fn with_args(mut fields: Vec<(String, Value)>, args: Vec<(String, Value)>) -> Value {
    fields.push(("args".to_owned(), Value::Obj(args)));
    Value::Obj(fields)
}

fn with_dur(mut fields: Vec<(String, Value)>, dur: u64) -> Vec<(String, Value)> {
    fields.push(("dur".to_owned(), Value::num(dur.max(1))));
    fields
}

fn metadata(kind: &str, pid: u64, tid: u64, label: &str) -> Value {
    let mut fields = event(kind, "M", 0, pid, tid);
    fields.pop(); // metadata events carry no "tid" when naming a process
    if kind == "thread_name" {
        fields.push(("tid".to_owned(), Value::num(tid)));
    }
    with_args(fields, vec![("name".to_owned(), Value::str(label))])
}

/// Render `events` as Chrome `trace_event` JSON.
///
/// The output is one JSON object; parse it back with [`crate::json::parse`]
/// to validate (CI does exactly this round trip on the exported DDC
/// timeline).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    finish(build(events))
}

/// Render `events` as Chrome `trace_event` JSON with the attributed
/// power timeline appended as Perfetto counter tracks.
///
/// A `power` process carries one `"C"` (counter) event per timeline
/// bucket with `compute_mw` / `interconnect_mw` / `leakage_mw` series —
/// Perfetto stacks the three into one area chart aligned with the
/// reference-tick timeline of the simulation tracks.  Build the timeline
/// with [`crate::analyze::power_timeline`] over the same events.
pub fn chrome_trace_with_power(events: &[TraceEvent], power: &PowerTimeline) -> String {
    let mut all = build(events);
    all.push(metadata("process_name", PID_POWER, 0, "power"));
    all.push(metadata(
        "thread_name",
        PID_POWER,
        0,
        "attributed power (mW)",
    ));
    for sample in &power.samples {
        all.push(with_args(
            event("power (mW)", "C", sample.start_tick, PID_POWER, 0),
            vec![
                ("compute_mw".to_owned(), Value::Num(sample.compute_mw)),
                (
                    "interconnect_mw".to_owned(),
                    Value::Num(sample.interconnect_mw),
                ),
                ("leakage_mw".to_owned(), Value::Num(sample.leakage_mw)),
            ],
        ));
    }
    finish(all)
}

fn finish(all: Vec<Value>) -> String {
    Value::Obj(vec![
        ("traceEvents".to_owned(), Value::Arr(all)),
        ("displayTimeUnit".to_owned(), Value::str("ms")),
    ])
    .to_json()
}

fn build(events: &[TraceEvent]) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    let mut tracks: Vec<(u64, u64, String)> = Vec::new();
    let mut track = |pid: u64, tid: u64, label: String| {
        if !tracks.iter().any(|(p, t, _)| (*p, *t) == (pid, tid)) {
            tracks.push((pid, tid, label));
        }
    };
    // Compile-side events carry no reference tick; give them a strictly
    // increasing sequence timestamp so spans nest correctly.
    let mut seq: u64 = 0;
    for e in events {
        match e {
            TraceEvent::ColumnFiring {
                chip,
                column,
                tick,
                count,
            } => {
                let (pid, tid) = (PID_CHIP_BASE + u64::from(*chip), u64::from(*column));
                track(pid, tid, format!("column {column}"));
                let mut fields = event("firing", "i", *tick, pid, tid);
                fields.push(("s".to_owned(), Value::str("t")));
                out.push(with_args(
                    fields,
                    vec![("count".to_owned(), Value::num(*count))],
                ));
            }
            TraceEvent::DividerTick {
                chip,
                column,
                tick,
                count,
            } => {
                let (pid, tid) = (PID_CHIP_BASE + u64::from(*chip), u64::from(*column));
                track(pid, tid, format!("column {column}"));
                let start = tick.saturating_sub(count.saturating_sub(1));
                out.push(with_args(
                    with_dur(event("step", "X", start, pid, tid), *count),
                    vec![("cycles".to_owned(), Value::num(*count))],
                ));
            }
            TraceEvent::ZormStall {
                chip,
                column,
                tick,
                cycles,
            } => {
                let (pid, tid) = (PID_CHIP_BASE + u64::from(*chip), u64::from(*column));
                track(pid, tid, format!("column {column}"));
                let start = tick.saturating_sub(cycles.saturating_sub(1));
                out.push(with_args(
                    with_dur(event("zorm stall", "X", start, pid, tid), *cycles),
                    vec![("cycles".to_owned(), Value::num(*cycles))],
                ));
            }
            TraceEvent::RateMatcherRelock {
                chip,
                column,
                tick,
                count,
            } => {
                let (pid, tid) = (PID_CHIP_BASE + u64::from(*chip), u64::from(*column));
                track(pid, tid, format!("column {column}"));
                let mut fields = event("zorm relock", "i", *tick, pid, tid);
                fields.push(("s".to_owned(), Value::str("t")));
                out.push(with_args(
                    fields,
                    vec![("count".to_owned(), Value::num(*count))],
                ));
            }
            TraceEvent::BusSlot {
                chip,
                tick,
                from,
                to,
                words,
                count,
            } => {
                let (pid, tid) = (PID_CHIP_BASE + u64::from(*chip), TID_HORIZONTAL_BUS);
                track(pid, tid, "horizontal bus".to_owned());
                let to_list = to
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push(with_args(
                    with_dur(
                        event(
                            &format!("slot c{from}→c{{{to_list}}}"),
                            "X",
                            *tick,
                            pid,
                            tid,
                        ),
                        *count,
                    ),
                    vec![
                        ("words".to_owned(), Value::num(*words)),
                        ("count".to_owned(), Value::num(*count)),
                    ],
                ));
            }
            TraceEvent::BridgeTransfer {
                lane,
                from_chip,
                to_chip,
                tick,
                words,
                count,
            } => {
                let (pid, tid) = (PID_BOARD, u64::from(*lane));
                track(pid, tid, format!("bridge lane {lane}"));
                out.push(with_args(
                    with_dur(
                        event(
                            &format!("chip{from_chip}→chip{to_chip}"),
                            "X",
                            *tick,
                            pid,
                            tid,
                        ),
                        *count,
                    ),
                    vec![
                        ("words".to_owned(), Value::num(*words)),
                        ("count".to_owned(), Value::num(*count)),
                    ],
                ));
            }
            TraceEvent::PhaseBegin { phase } => {
                track(PID_COMPILE, 0, "phases".to_owned());
                seq += 1;
                out.push(with_args(event(phase, "B", seq, PID_COMPILE, 0), vec![]));
            }
            TraceEvent::PhaseEnd { phase } => {
                track(PID_COMPILE, 0, "phases".to_owned());
                seq += 1;
                out.push(with_args(event(phase, "E", seq, PID_COMPILE, 0), vec![]));
            }
            TraceEvent::RouteSlot {
                split,
                cycle,
                from,
                to,
                words,
                edge,
            } => {
                track(
                    PID_COMPILE,
                    1 + u64::from(*split),
                    format!("router split {split}"),
                );
                out.push(with_args(
                    with_dur(
                        event(
                            &format!("c{from}→c{to}"),
                            "X",
                            *cycle,
                            PID_COMPILE,
                            1 + u64::from(*split),
                        ),
                        *words,
                    ),
                    vec![
                        ("words".to_owned(), Value::num(*words)),
                        ("edge".to_owned(), Value::num(*edge)),
                    ],
                ));
            }
            TraceEvent::RouteReject { code, detail } => {
                track(PID_COMPILE, 0, "phases".to_owned());
                seq += 1;
                let mut fields = event(&format!("route reject: {code}"), "i", seq, PID_COMPILE, 0);
                fields.push(("s".to_owned(), Value::str("p")));
                out.push(with_args(
                    fields,
                    vec![("detail".to_owned(), Value::str(detail.clone()))],
                ));
            }
            TraceEvent::Counter { name, delta } => {
                track(PID_COMPILE, 2_000, "counters".to_owned());
                seq += 1;
                out.push(with_args(
                    event(name, "C", seq, PID_COMPILE, 2_000),
                    vec![("value".to_owned(), Value::num(*delta))],
                ));
            }
            TraceEvent::FaultColumnKilled { chip, column, tick } => {
                let (pid, tid) = (PID_CHIP_BASE + u64::from(*chip), u64::from(*column));
                track(pid, tid, format!("column {column}"));
                let mut fields = event("fault: column killed", "i", *tick, pid, tid);
                fields.push(("s".to_owned(), Value::str("g")));
                out.push(with_args(fields, vec![]));
            }
            TraceEvent::FaultLaneKilled {
                lane,
                from_chip,
                to_chip,
                tick,
            } => {
                let (pid, tid) = (PID_BOARD, u64::from(*lane));
                track(pid, tid, format!("bridge lane {lane}"));
                let mut fields = event("fault: lane killed", "i", *tick, pid, tid);
                fields.push(("s".to_owned(), Value::str("g")));
                out.push(with_args(
                    fields,
                    vec![
                        ("from_chip".to_owned(), Value::num(u64::from(*from_chip))),
                        ("to_chip".to_owned(), Value::num(u64::from(*to_chip))),
                    ],
                ));
            }
            TraceEvent::FaultStalled { tick, window } => {
                track(PID_BOARD, 3_000, "faults".to_owned());
                let mut fields = event("fault: stalled", "i", *tick, PID_BOARD, 3_000);
                fields.push(("s".to_owned(), Value::str("g")));
                out.push(with_args(
                    fields,
                    vec![("window".to_owned(), Value::num(*window))],
                ));
            }
        }
    }
    let mut all = Vec::with_capacity(out.len() + 2 * tracks.len());
    let mut named_pids: Vec<u64> = Vec::new();
    for (pid, tid, label) in &tracks {
        if !named_pids.contains(pid) {
            named_pids.push(*pid);
            let name = match *pid {
                PID_COMPILE => "compile".to_owned(),
                PID_BOARD => "board".to_owned(),
                p => format!("chip {}", p - PID_CHIP_BASE),
            };
            all.push(metadata("process_name", *pid, 0, &name));
        }
        all.push(metadata("thread_name", *pid, *tid, label));
    }
    all.extend(out);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_round_trips_and_names_tracks() {
        let events = vec![
            TraceEvent::PhaseBegin {
                phase: "mapper.compile",
            },
            TraceEvent::RouteSlot {
                split: 0,
                cycle: 3,
                from: 0,
                to: 1,
                words: 4,
                edge: 2,
            },
            TraceEvent::PhaseEnd {
                phase: "mapper.compile",
            },
            TraceEvent::DividerTick {
                chip: 0,
                column: 2,
                tick: 125,
                count: 1,
            },
            TraceEvent::BusSlot {
                chip: 0,
                tick: 40,
                from: 1,
                to: vec![2, 3],
                words: 8,
                count: 1,
            },
            TraceEvent::BridgeTransfer {
                lane: 0,
                from_chip: 0,
                to_chip: 1,
                tick: 500,
                words: 16,
                count: 2,
            },
            TraceEvent::Counter {
                name: "explore.states_pruned",
                delta: 9,
            },
        ];
        let text = chrome_trace(&events);
        let parsed = json::parse(&text).expect("exporter must emit valid JSON");
        let items = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        // 7 payload events + metadata rows for 3 processes and 6 threads
        // (phases, router split, counters, column, bus, bridge lane).
        assert_eq!(items.len(), 7 + 3 + 6);
        let phases: Vec<&str> = items
            .iter()
            .filter_map(|e| e.get("ph").and_then(|v| v.as_str()))
            .collect();
        assert!(phases.contains(&"B") && phases.contains(&"E"));
        assert!(phases.contains(&"X") && phases.contains(&"C") && phases.contains(&"M"));
        let names: Vec<&str> = items
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
            })
            .collect();
        assert!(names.contains(&"chip 0"));
        assert!(names.contains(&"column 2"));
        assert!(names.contains(&"horizontal bus"));
        assert!(names.contains(&"bridge lane 0"));
    }

    #[test]
    fn power_export_appends_counter_tracks() {
        use crate::analyze::{PowerSample, PowerTimeline};
        let events = vec![TraceEvent::DividerTick {
            chip: 0,
            column: 0,
            tick: 4,
            count: 5,
        }];
        let power = PowerTimeline {
            bucket_ticks: 5,
            bucket_seconds: 5e-6,
            samples: vec![
                PowerSample {
                    start_tick: 0,
                    compute_mw: 120.5,
                    interconnect_mw: 3.25,
                    leakage_mw: 10.0,
                },
                PowerSample {
                    start_tick: 5,
                    compute_mw: 0.0,
                    interconnect_mw: 0.0,
                    leakage_mw: 10.0,
                },
            ],
        };
        let text = chrome_trace_with_power(&events, &power);
        let parsed = json::parse(&text).expect("valid JSON");
        let items = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        let counters: Vec<_> = items
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("C")
                    && e.get("name").and_then(|v| v.as_str()) == Some("power (mW)")
            })
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(
            counters[0]
                .get("args")
                .and_then(|a| a.get("compute_mw"))
                .and_then(|v| v.as_num()),
            Some(120.5)
        );
        assert_eq!(counters[1].get("ts").and_then(|v| v.as_num()), Some(5.0));
        let names: Vec<&str> = items
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
            })
            .collect();
        assert!(names.contains(&"power"));
        assert!(names.contains(&"attributed power (mW)"));
        // The plain exporter is unchanged by the power-aware one.
        assert!(!chrome_trace(&events).contains("power"));
    }

    #[test]
    fn batched_span_starts_are_back_dated() {
        let text = chrome_trace(&[TraceEvent::DividerTick {
            chip: 0,
            column: 0,
            tick: 9,
            count: 10,
        }]);
        let parsed = json::parse(&text).expect("valid JSON");
        let step = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .and_then(|items| {
                items
                    .iter()
                    .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("step"))
            })
            .expect("step event");
        assert_eq!(step.get("ts").and_then(|v| v.as_num()), Some(0.0));
        assert_eq!(step.get("dur").and_then(|v| v.as_num()), Some(10.0));
    }
}
